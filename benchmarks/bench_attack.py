"""E11 (extension) — sorting modeling attack on disclosed CRPs.

Every disclosed RO-PUF response bit is a ground-truth frequency comparison
with public pair indices; comparisons compose transitively, so a few dozen
CRPs suffice to predict the rest of the challenge space.  The curve is the
quantitative argument for the paper's key-generation deployment (responses
never leave the chip) and for the E10 verifier's never-reuse-challenges
rule.  Aging resistance is orthogonal: both designs fall at the same rate.

The benchmarked kernel is model construction + one batch of predictions.
"""

import pytest

from _common import emit
from repro.analysis import ExperimentConfig, attack_experiment
from repro.analysis.render import render_e11
from repro.core import conventional_design
from repro.protocol import build_attack_model, harvest_crps, sorting_attack


@pytest.fixture(scope="module")
def result():
    res = attack_experiment(ExperimentConfig(n_chips=1, n_ros=128))
    emit("e11_attack", render_e11(res))
    return res


class TestTable:
    def test_accuracy_grows_with_disclosure(self, result):
        """Coverage is strictly monotone; accuracy rides on it with a
        little coin-flip noise at low disclosure, so allow 3 pp slack."""
        for rows in result.rows.values():
            coverages = [cov for _, _, cov in rows]
            assert coverages == sorted(coverages)
            accs = [acc for _, acc, _ in rows]
            for earlier, later in zip(accs, accs[1:]):
                assert later >= earlier - 0.03
            assert accs[-1] > accs[0] + 0.2

    def test_single_crp_is_chance(self, result):
        for rows in result.rows.values():
            _, acc, _ = rows[0]
            assert acc < 0.65

    def test_attack_succeeds_with_modest_disclosure(self, result):
        """A few dozen CRPs predict >90 % of unseen bits."""
        for rows in result.rows.values():
            n, acc, coverage = rows[-1]
            assert n <= 64
            assert acc > 0.9
            assert coverage > 0.85

    def test_aro_is_equally_vulnerable(self, result):
        """Aging resistance does not buy modeling resistance."""
        final_conv = result.rows["ro-puf"][-1][1]
        final_aro = result.rows["aro-puf"][-1][1]
        assert abs(final_conv - final_aro) < 0.08


class TestPerf:
    def test_perf_model_build_and_predict(self, benchmark, result):
        inst = conventional_design(n_ros=64).sample_instances(1, rng=0)[0]
        table = harvest_crps(inst, 48, rng=1)
        train, test = table.split(32)

        def attack():
            return sorting_attack(train, test, 64, rng=2)

        accuracy = benchmark(attack)
        assert accuracy > 0.8
