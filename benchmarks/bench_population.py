"""Population-batch engine vs per-chip loop (the PR's headline speedup).

Times the full E2-style aging sweep — golden responses plus reliability
at every default year point — at paper scale (50 chips x 256 ROs) twice:
once through the per-chip :class:`~repro.core.factory.Study` loop and
once through the batched :class:`~repro.core.population.BatchStudy`
engine.  Asserts the two paths agree bit-for-bit on every response and
reliability report, and that the batched engine is at least 10x faster.

The sweep timing uses best-of-N wall clock (min is the least noisy
statistic on shared boxes); the memos are cleared per round so every
round pays the full evaluation cost.

``TestTelemetryOverhead`` guards the observability budget: the batched
sweep with *no tracer installed* (the default, single-branch disabled
path) must stay within a few percent of itself with telemetry fully
enabled, and the headline speedup artefact records the work-done
counters (kernel blocks, memo traffic) so ``tools/bench_compare.py``
can diff work alongside wall time.

``TestParallelScaling`` measures the chip-sharded parallel engine's
``--jobs`` scaling curve end-to-end and enforces the >= 2x floor at four
workers (skipped on boxes with fewer than four cores; the bit-identity
companion check runs everywhere).

``TestStoreOutOfCore`` gates the streaming population store: the
``--store mmap`` sweep must be bit-identical to the dense serial path at
paper scale, its overhead at in-RAM-feasible sizes must stay bounded,
and a fresh-interpreter subprocess sweep (the only honest way to measure
a peak-RSS high-water mark) must complete a 50k-chip E2 story inside a
fixed memory ceiling at a useful chips/sec.  Set ``REPRO_BENCH_MILLION=1``
to additionally run the full 1,000,000-chip x 128-bit acceptance sweep
(< 4 GB peak RSS; needs ~65 GB of scratch disk and tens of minutes).
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from _common import best_of, emit
from repro import telemetry
from repro.analysis import DEFAULT_YEARS
from repro.core import (
    aro_design,
    conventional_design,
    make_batch_study,
    make_study,
)
from repro.metrics.reliability import reliability
from repro.parallel import make_parallel_study

N_CHIPS = 50
SEED = 20140324
SPEEDUP_FLOOR = 10.0


def _sweep_per_chip(study, years):
    goldens = study.responses()
    return goldens, [
        reliability(goldens, study.responses(t_years=t)) for t in years
    ]


def _sweep_batched(batch, years):
    batch._freq_memo.clear()
    batch.aging._memo.clear()
    goldens = batch.responses()
    return goldens, [
        reliability(goldens, batch.responses(t_years=t)) for t in years
    ]


def chips_years_per_s(n_chips, years, elapsed_s):
    """Sweep throughput in simulated chip-years per wall second.

    The perf ledger's headline throughput: one E2-style sweep simulates
    ``sum(years)`` field-years for each of ``n_chips`` chips, so this is
    comparable across chip counts and year grids, unlike raw wall time.
    """
    return n_chips * sum(years) / elapsed_s


@pytest.mark.slow
class TestPopulationEngine:
    @pytest.fixture(scope="class", params=["ro-puf", "aro-puf"])
    def case(self, request):
        design = conventional_design() if request.param == "ro-puf" else aro_design()
        study = make_study(design, n_chips=N_CHIPS, rng=SEED)
        batch = make_batch_study(design, n_chips=N_CHIPS, rng=SEED)
        return request.param, design, study, batch

    def test_bit_identical_sweep(self, case):
        """Every golden response and reliability report matches exactly."""
        name, design, study, batch = case
        years = list(DEFAULT_YEARS)
        g_old, r_old = _sweep_per_chip(study, years)
        g_new, r_new = _sweep_batched(batch, years)
        assert np.array_equal(np.vstack(g_old), g_new)
        for a, b in zip(r_old, r_new):
            assert a.mean_flip_fraction == b.mean_flip_fraction
            assert np.array_equal(a.per_chip, b.per_chip)

    def test_speedup_floor(self, case):
        """The batched sweep is at least 10x faster than the per-chip loop."""
        name, design, study, batch = case
        years = list(DEFAULT_YEARS)
        # best_of's warm-up round pays each path's one-time costs (first
        # batched call faults in its buffers) outside the timing
        t_old = best_of(lambda: _sweep_per_chip(study, years), rounds=5)
        t_new = best_of(lambda: _sweep_batched(batch, years), rounds=15)
        speedup = t_old / t_new
        # one instrumented pass (outside the timing) snapshots the work
        # done, so the artefact records kernel traffic next to wall time
        with telemetry.session() as tracer:
            _sweep_batched(batch, years)
        emit(
            f"population_speedup_{name}",
            f"E2 aging sweep, {N_CHIPS} chips x {study.design.n_ros} ROs, "
            f"{len(years)} year points ({name})\n"
            f"  per-chip loop : {t_old * 1e3:8.2f} ms\n"
            f"  batched engine: {t_new * 1e3:8.2f} ms\n"
            f"  speedup       : {speedup:8.2f} x",
            values={
                "per_chip_s": t_old,
                "batched_s": t_new,
                "speedup": speedup,
            },
            counters=tracer.counters,
            roofline={
                "chips_years_per_s": chips_years_per_s(
                    N_CHIPS, years, t_new
                ),
            },
        )
        assert speedup >= SPEEDUP_FLOOR, (
            f"{name}: batched sweep only {speedup:.2f}x faster "
            f"({t_old * 1e3:.2f} ms vs {t_new * 1e3:.2f} ms), "
            f"need >= {SPEEDUP_FLOOR}x"
        )


@pytest.mark.slow
class TestFusedKernel:
    """The fused single-pass kernel: sink identity plus the dtype tiers.

    ``test_fused_sinks_bit_identical`` pins the fusion contract — bits
    and histogram counts taken from the streaming pass's block sinks
    equal a full-tensor re-read of the very frequencies the pass
    memoised.  ``test_dtype_tier_roofline`` first proves the float32
    tier's response-bit identity at anchor scale through the
    :mod:`repro.kernel.validate` harness (the precondition for the tier
    gating anything), then measures both tiers' E2-sweep throughput in
    chips x years per second.  Both tiers land in the artefact's
    ``roofline`` section: the perf ledger tracks the float64 number
    longitudinally (CI's perf gate fails on a drop), and the float32
    tier must beat float64 by >= 1.5x here and now.
    """

    FLOAT32_SPEEDUP_FLOOR = 1.5

    def test_fused_sinks_bit_identical(self):
        from repro.core.readout import compare_pairs
        from repro.metrics.margins import (
            histogram_edges,
            margin_histogram,
            relative_margins,
        )

        design = aro_design()
        batch = make_batch_study(design, n_chips=N_CHIPS, rng=SEED)
        pairs = design.pairing.pairs(design.n_ros, None)
        edges = histogram_edges(0.02, 64)
        for t in (0.0, 10.0):
            # memo miss: the sink fills bits during the streaming pass
            bits = batch.responses(t_years=t)
            # memo hit: the exact tensor the sink's blocks came from
            freqs = batch.frequencies(t)
            assert np.array_equal(
                bits,
                compare_pairs(freqs, pairs, design.tech, design.readout),
            )
            batch._freq_memo.clear()
            counts = batch.margin_histogram(edges, t_years=t)
            freqs = batch.frequencies(t)
            assert np.array_equal(
                counts,
                margin_histogram(relative_margins(freqs, pairs), edges),
            )

    def test_dtype_tier_roofline(self):
        from repro.kernel import validate_response_identity

        design = aro_design()
        years = list(DEFAULT_YEARS)

        report = validate_response_identity(
            design, N_CHIPS, seed=SEED, years=tuple(years)
        )
        assert report.ok, report.summary()

        b64 = make_batch_study(design, n_chips=N_CHIPS, rng=SEED)
        b32 = make_batch_study(
            design, n_chips=N_CHIPS, rng=SEED, dtype="float32"
        )
        t64 = best_of(lambda: _sweep_batched(b64, years), rounds=15)
        t32 = best_of(lambda: _sweep_batched(b32, years), rounds=15)
        speedup = t64 / t32
        cy64 = chips_years_per_s(N_CHIPS, years, t64)
        cy32 = chips_years_per_s(N_CHIPS, years, t32)
        emit(
            "fused_dtype_tiers",
            f"E2 aging sweep, {N_CHIPS} chips x {design.n_ros} ROs, "
            f"{len(years)} year points (aro-puf)\n"
            f"  float64 tier: {t64 * 1e3:8.2f} ms "
            f"({cy64:10.0f} chip-years/s)\n"
            f"  float32 tier: {t32 * 1e3:8.2f} ms "
            f"({cy32:10.0f} chip-years/s)\n"
            f"  tier speedup: {speedup:8.2f} x\n"
            f"  {report.summary()}",
            values={
                "float64_s": t64,
                "float32_s": t32,
                "float32_speedup": speedup,
            },
            roofline={
                "chips_years_per_s": cy64,
                "chips_years_per_s_float32": cy32,
            },
        )
        assert speedup >= self.FLOAT32_SPEEDUP_FLOOR, (
            f"float32 tier only {speedup:.2f}x over float64 "
            f"({t32 * 1e3:.2f} ms vs {t64 * 1e3:.2f} ms); "
            f"need >= {self.FLOAT32_SPEEDUP_FLOOR}x"
        )


@pytest.mark.slow
class TestTelemetryOverhead:
    """The disabled-tracer instrumentation must be (near) free.

    The instrumented call sites in the frequency/aging kernels pay one
    module-attribute load and one branch when no tracer is installed.
    This benchmark measures the E2 batched sweep with telemetry disabled
    versus fully enabled, emits both numbers, and asserts the *enabled*
    tax stays moderate — the disabled path's absolute cost is pinned by
    ``TestPopulationEngine.test_speedup_floor`` holding the >= 10x bar
    on the identical sweep.
    """

    #: generous bound: collection (spans + counters) may cost this much
    ENABLED_OVERHEAD_CEILING = 0.25

    def test_disabled_path_overhead(self):
        design = aro_design()
        batch = make_batch_study(design, n_chips=N_CHIPS, rng=SEED)
        years = list(DEFAULT_YEARS)

        t_disabled = best_of(lambda: _sweep_batched(batch, years), rounds=15)
        tracer = telemetry.install(telemetry.Tracer())
        try:
            t_enabled = best_of(lambda: _sweep_batched(batch, years), rounds=15)
        finally:
            telemetry.uninstall()
        overhead = t_enabled / t_disabled - 1.0
        emit(
            "telemetry_overhead",
            f"E2 batched sweep, {N_CHIPS} chips x {design.n_ros} ROs, "
            f"{len(years)} year points (aro-puf)\n"
            f"  telemetry disabled: {t_disabled * 1e3:8.2f} ms\n"
            f"  telemetry enabled : {t_enabled * 1e3:8.2f} ms\n"
            f"  enabled overhead  : {100.0 * overhead:8.2f} %",
            values={
                "disabled_s": t_disabled,
                "enabled_s": t_enabled,
                "enabled_overhead": max(overhead, 0.0),
            },
        )
        assert overhead <= self.ENABLED_OVERHEAD_CEILING, (
            f"telemetry-enabled sweep costs {overhead:+.1%} over disabled "
            f"({t_enabled * 1e3:.2f} ms vs {t_disabled * 1e3:.2f} ms); "
            f"ceiling is {self.ENABLED_OVERHEAD_CEILING:.0%}"
        )

    #: the progress heartbeat budget from the observability PR: events
    #: enabled must stay within 2 % of the no-emitter sweep
    EVENTS_OVERHEAD_CEILING = 0.02

    def test_events_enabled_overhead(self, tmp_path):
        """A throttled emitter adds < 2 % to the E2 batched sweep."""
        design = aro_design()
        batch = make_batch_study(design, n_chips=N_CHIPS, rng=SEED)
        years = list(DEFAULT_YEARS)

        t_disabled = best_of(lambda: _sweep_batched(batch, years), rounds=15)
        emitter = telemetry.install_emitter(
            telemetry.ProgressEmitter(tmp_path / "events.jsonl")
        )
        try:
            t_enabled = best_of(lambda: _sweep_batched(batch, years), rounds=15)
            n_events = emitter.n_events
        finally:
            telemetry.uninstall_emitter()
        overhead = t_enabled / t_disabled - 1.0
        emit(
            "events_overhead",
            f"E2 batched sweep, {N_CHIPS} chips x {design.n_ros} ROs, "
            f"{len(years)} year points (aro-puf)\n"
            f"  events disabled: {t_disabled * 1e3:8.2f} ms\n"
            f"  events enabled : {t_enabled * 1e3:8.2f} ms\n"
            f"  overhead       : {100.0 * overhead:8.2f} %  "
            f"({n_events} line(s) written)\n",
            values={
                "disabled_s": t_disabled,
                "enabled_s": t_enabled,
                "enabled_overhead": max(overhead, 0.0),
            },
        )
        assert overhead <= self.EVENTS_OVERHEAD_CEILING, (
            f"events-enabled sweep costs {overhead:+.1%} over disabled "
            f"({t_enabled * 1e3:.2f} ms vs {t_disabled * 1e3:.2f} ms); "
            f"ceiling is {self.EVENTS_OVERHEAD_CEILING:.0%}"
        )

    #: forensics disabled-path budget: with no collector installed, the
    #: margin hook in ``responses()`` must cost < 2 % of the E2 sweep
    #: beyond a bare no-op call — it is one module-slot read and one
    #: branch, and must stay that way
    FORENSICS_DISABLED_CEILING = 0.02

    #: live capture does real work (one relative-margin evaluation per
    #: responses() call); generous bound like the tracer's
    FORENSICS_ENABLED_CEILING = 0.25

    def test_forensics_disabled_path_overhead(self, monkeypatch):
        """The uninstalled margin hook adds < 2 % to the E2 batched sweep.

        Baseline replaces the hook with an empty function, so the
        measured difference is exactly what the real disabled path does
        beyond being called: read the collector slot, branch, return.
        If the disabled path ever starts computing margins before
        checking the slot, this gate catches it.
        """
        import repro.core.population as pop

        design = aro_design()
        batch = make_batch_study(design, n_chips=N_CHIPS, rng=SEED)
        years = list(DEFAULT_YEARS)

        t_hooked = best_of(lambda: _sweep_batched(batch, years), rounds=25)
        with monkeypatch.context() as m:
            m.setattr(pop, "record_response_margins", lambda *a, **k: None)
            t_stubbed = best_of(
                lambda: _sweep_batched(batch, years), rounds=25
            )
        overhead = t_hooked / t_stubbed - 1.0
        emit(
            "forensics_disabled_overhead",
            f"E2 batched sweep, {N_CHIPS} chips x {design.n_ros} ROs, "
            f"{len(years)} year points (aro-puf)\n"
            f"  hook stubbed out: {t_stubbed * 1e3:8.2f} ms\n"
            f"  hook disabled   : {t_hooked * 1e3:8.2f} ms\n"
            f"  overhead        : {100.0 * overhead:8.2f} %",
            values={
                "stubbed_s": t_stubbed,
                "hooked_s": t_hooked,
                "disabled_overhead": max(overhead, 0.0),
            },
        )
        assert overhead <= self.FORENSICS_DISABLED_CEILING, (
            f"disabled margin hook costs {overhead:+.1%} over a no-op stub "
            f"({t_hooked * 1e3:.2f} ms vs {t_stubbed * 1e3:.2f} ms); "
            f"ceiling is {self.FORENSICS_DISABLED_CEILING:.0%}"
        )

    def test_forensics_collector_overhead(self):
        """Live margin capture stays within the tracer-class budget.

        Also asserts the sweep is bit-identical with and without the
        collector: capture only *reads* the frequency tensors the
        response path already produced.
        """
        from repro.forensics import MarginCollector, collector_session

        design = aro_design()
        batch = make_batch_study(design, n_chips=N_CHIPS, rng=SEED)
        years = list(DEFAULT_YEARS)

        baseline = _sweep_batched(batch, years)
        t_disabled = best_of(lambda: _sweep_batched(batch, years), rounds=15)
        with collector_session(MarginCollector()) as collector:
            captured = _sweep_batched(batch, years)
            t_enabled = best_of(
                lambda: _sweep_batched(batch, years), rounds=15
            )
            n_corners = len(collector)
        assert np.array_equal(baseline[0], captured[0])
        for a, b in zip(baseline[1], captured[1]):
            assert np.array_equal(a.per_chip, b.per_chip)
        overhead = t_enabled / t_disabled - 1.0
        emit(
            "forensics_overhead",
            f"E2 batched sweep, {N_CHIPS} chips x {design.n_ros} ROs, "
            f"{len(years)} year points (aro-puf)\n"
            f"  collector absent   : {t_disabled * 1e3:8.2f} ms\n"
            f"  collector installed: {t_enabled * 1e3:8.2f} ms\n"
            f"  overhead           : {100.0 * overhead:8.2f} %  "
            f"({n_corners} corner(s) on tape)",
            values={
                "disabled_s": t_disabled,
                "enabled_s": t_enabled,
                "enabled_overhead": max(overhead, 0.0),
            },
        )
        assert overhead <= self.FORENSICS_ENABLED_CEILING, (
            f"collector-enabled sweep costs {overhead:+.1%} over disabled "
            f"({t_enabled * 1e3:.2f} ms vs {t_disabled * 1e3:.2f} ms); "
            f"ceiling is {self.FORENSICS_ENABLED_CEILING:.0%}"
        )

    #: the run-observatory disabled-path budget: with nothing installed,
    #: *every* telemetry hook on the sweep path together (spans, counters,
    #: progress, per-block latency observes) must cost < 2 % over no-op
    #: stubs — the single-branch discipline, measured as one number
    OBSERVATORY_DISABLED_CEILING = 0.02

    def test_observatory_disabled_path_overhead(self, monkeypatch):
        """All disabled telemetry hooks add < 2 % to the E2 batched sweep.

        Baseline replaces the telemetry module reference inside the
        population engine with no-op stubs, so the measured difference is
        exactly what the real disabled path does beyond being called:
        module-attribute loads, ``is None`` branches, nothing else.  If
        any hook (including the histogram ``observe`` sites) ever starts
        doing work before checking its slot, this gate catches it.
        """
        from contextlib import contextmanager

        import repro.core.population as pop

        class _StubTelemetry:
            @staticmethod
            def active():
                return None

            @staticmethod
            def enabled():
                return False

            @staticmethod
            @contextmanager
            def span(*args, **kwargs):
                yield None

            def __getattr__(self, name):
                return lambda *args, **kwargs: None

        design = aro_design()
        batch = make_batch_study(design, n_chips=N_CHIPS, rng=SEED)
        years = list(DEFAULT_YEARS)

        t_hooked = best_of(lambda: _sweep_batched(batch, years), rounds=25)
        with monkeypatch.context() as m:
            m.setattr(pop, "telemetry", _StubTelemetry())
            t_stubbed = best_of(
                lambda: _sweep_batched(batch, years), rounds=25
            )
        overhead = t_hooked / t_stubbed - 1.0
        emit(
            "observatory_disabled_overhead",
            f"E2 batched sweep, {N_CHIPS} chips x {design.n_ros} ROs, "
            f"{len(years)} year points (aro-puf)\n"
            f"  hooks stubbed out: {t_stubbed * 1e3:8.2f} ms\n"
            f"  hooks disabled   : {t_hooked * 1e3:8.2f} ms\n"
            f"  overhead         : {100.0 * overhead:8.2f} %",
            values={
                "stubbed_s": t_stubbed,
                "hooked_s": t_hooked,
                "disabled_overhead": max(overhead, 0.0),
            },
        )
        assert overhead <= self.OBSERVATORY_DISABLED_CEILING, (
            f"disabled telemetry hooks cost {overhead:+.1%} over no-op "
            f"stubs ({t_hooked * 1e3:.2f} ms vs {t_stubbed * 1e3:.2f} ms); "
            f"ceiling is {self.OBSERVATORY_DISABLED_CEILING:.0%}"
        )

    #: full-observatory enabled budget: tracer (spans + counters +
    #: histograms) plus a 20 Hz resource sampler, measured where the
    #: kernels dominate (1k chips) so per-corner span costs amortise the
    #: way they do in a real traced run
    OBSERVATORY_N_CHIPS = 1_000
    OBSERVATORY_ENABLED_CEILING = 0.10
    OBSERVATORY_ROUNDS = 7

    def test_observatory_enabled_overhead(self):
        """Tracing + RSS sampling together add < 10 % at kernel scale.

        Disabled and enabled rounds *alternate* and the gated statistic
        is the median of adjacent-pair ratios: a sweep at this scale runs
        long enough that machine drift (thermal, scheduler) between two
        sequential ``best_of`` blocks rivals the overhead being measured,
        so back-to-back pairing cancels the drift instead of charging it
        to the observatory.

        The emitted artefact carries the run's histogram summaries, so
        ``tools/bench_compare.py`` diffs the per-block latency quantiles
        (p50/p99) across checkouts alongside the wall-clock numbers.
        """
        design = aro_design()
        batch = make_batch_study(
            design, n_chips=self.OBSERVATORY_N_CHIPS, rng=SEED
        )
        years = list(DEFAULT_YEARS)

        _sweep_batched(batch, years)  # warmup outside any pair
        ratios = []
        t_dis = []
        t_ena = []
        tracer = None
        for _ in range(self.OBSERVATORY_ROUNDS):
            t_dis.append(best_of(
                lambda: _sweep_batched(batch, years), rounds=1, warmup=0
            ))
            tracer = telemetry.install(telemetry.Tracer())
            telemetry.install_sampler(
                telemetry.ResourceSampler(20.0, echo_interval_s=None)
            ).start()
            try:
                t_ena.append(best_of(
                    lambda: _sweep_batched(batch, years), rounds=1, warmup=0
                ))
                n_samples = len(telemetry.active_sampler().samples)
            finally:
                telemetry.uninstall_sampler()
                telemetry.uninstall()
            ratios.append(t_ena[-1] / t_dis[-1])
        t_disabled = min(t_dis)
        t_enabled = min(t_ena)
        overhead = sorted(ratios)[len(ratios) // 2] - 1.0
        histograms = tracer.histogram_summaries()
        emit(
            "observatory_overhead",
            f"E2 batched sweep, {self.OBSERVATORY_N_CHIPS} chips x "
            f"{design.n_ros} ROs, {len(years)} year points (aro-puf)\n"
            f"  observatory off (best): {t_disabled * 1e3:8.2f} ms\n"
            f"  tracer + 20 Hz sampler (best): {t_enabled * 1e3:8.2f} ms\n"
            f"  paired-median overhead: {100.0 * overhead:8.2f} %  "
            f"({len(ratios)} alternating pair(s), {n_samples} RSS "
            f"sample(s), {len(histograms)} histogram metric(s))",
            values={
                "disabled_s": t_disabled,
                "enabled_s": t_enabled,
                "enabled_overhead": max(overhead, 0.0),
            },
            histograms=histograms,
            roofline={
                "chips_years_per_s": chips_years_per_s(
                    self.OBSERVATORY_N_CHIPS, years, t_enabled
                ),
            },
        )
        assert "batch.block_s" in histograms, (
            "the traced sweep recorded no per-block latency histogram"
        )
        assert overhead <= self.OBSERVATORY_ENABLED_CEILING, (
            f"tracing + sampling cost {overhead:+.1%} over disabled "
            f"(paired median of {len(ratios)} alternating rounds; best "
            f"{t_enabled * 1e3:.2f} ms vs {t_disabled * 1e3:.2f} ms); "
            f"ceiling is {self.OBSERVATORY_ENABLED_CEILING:.0%}"
        )

    def test_events_bounded_count(self, tmp_path):
        """Even unthrottled in time, the lifetime cap bounds the file."""
        design = aro_design()
        batch = make_batch_study(design, n_chips=N_CHIPS, rng=SEED)
        years = list(DEFAULT_YEARS)
        cap = 20
        with telemetry.emitter_session(
            tmp_path / "events.jsonl", min_interval_s=0.0, max_events=cap
        ) as emitter:
            for _ in range(5):
                _sweep_batched(batch, years)
            assert emitter.n_events <= cap
            assert emitter.n_throttled == 0  # the cap drops, not the throttle
        lines = (tmp_path / "events.jsonl").read_text().splitlines()
        assert len(lines) <= cap


@pytest.mark.slow
class TestParallelScaling:
    """The ``--jobs`` scaling curve, with a >= 2x floor at 4 workers.

    Times the full E2-style story end-to-end — engine construction,
    fabrication, golden responses, the year sweep, pool teardown — at a
    population large enough (192 chips) for fabrication to dominate, so
    the measured ratio is the one a real ``repro run --jobs 4`` user sees
    (pool start-up and result pickling count *against* the parallel
    engine).  ``jobs=1`` goes through :func:`make_parallel_study` too,
    which returns the plain serial :class:`BatchStudy` — the honest
    baseline.  The whole curve is emitted so ``tools/bench_compare.py``
    tracks scaling shape, not just the gated endpoint.
    """

    N_CHIPS_PARALLEL = 192
    JOBS_CURVE = (1, 2, 4)
    PARALLEL_SPEEDUP_FLOOR = 2.0

    @staticmethod
    def _aging_sweep(study, years):
        goldens = study.responses()
        for t in years:
            study.responses(t_years=t)
        return goldens

    def test_parallel_scaling_curve(self):
        cores = os.cpu_count() or 1
        if cores < 4:
            pytest.skip(
                f"parallel speedup gate needs >= 4 CPU cores, box has {cores}"
            )
        design = aro_design()
        years = list(DEFAULT_YEARS)

        def run_at(jobs):
            def run():
                study = make_parallel_study(
                    design, self.N_CHIPS_PARALLEL, rng=SEED, jobs=jobs
                )
                try:
                    self._aging_sweep(study, years)
                finally:
                    study.close()

            return best_of(run, rounds=3, warmup=1)

        timings = {jobs: run_at(jobs) for jobs in self.JOBS_CURVE}
        speedups = {jobs: timings[1] / timings[jobs] for jobs in self.JOBS_CURVE}
        curve = "\n".join(
            f"  jobs={jobs}: {timings[jobs] * 1e3:8.2f} ms "
            f"({speedups[jobs]:5.2f} x)"
            for jobs in self.JOBS_CURVE
        )
        emit(
            "parallel_scaling",
            f"E2 aging sweep end-to-end, {self.N_CHIPS_PARALLEL} chips x "
            f"{design.n_ros} ROs, {len(years)} year points (aro-puf)\n"
            + curve,
            values={
                **{f"jobs{jobs}_s": timings[jobs] for jobs in self.JOBS_CURVE},
                **{
                    f"speedup_{jobs}": speedups[jobs]
                    for jobs in self.JOBS_CURVE
                    if jobs > 1
                },
            },
        )
        assert speedups[4] >= self.PARALLEL_SPEEDUP_FLOOR, (
            f"4-worker sweep only {speedups[4]:.2f}x over serial "
            f"({timings[1] * 1e3:.2f} ms vs {timings[4] * 1e3:.2f} ms); "
            f"need >= {self.PARALLEL_SPEEDUP_FLOOR}x"
        )

    def test_parallel_sweep_bit_identical(self):
        """The timed configuration agrees with serial bit-for-bit.

        Runs at a reduced population (the full 192-chip check is the
        tier-1 property test's job at small scale; this guards the exact
        benchmark configuration) and regardless of core count, so the
        identity holds even on boxes where the speedup gate skips.
        """
        design = aro_design()
        n_chips = 24
        serial = make_parallel_study(design, n_chips, rng=SEED, jobs=1)
        parallel = make_parallel_study(design, n_chips, rng=SEED, jobs=4)
        try:
            for t in (0.0, 10.0):
                assert np.array_equal(
                    serial.responses(t_years=t), parallel.responses(t_years=t)
                )
        finally:
            parallel.close()


#: a self-contained E2-style sweep run in a *fresh* interpreter: the
#: peak-RSS gate must see only the streaming path's own high-water mark,
#: not whatever the pytest process happened to allocate before it.  The
#: child prints one JSON line: wall time, chips/sec of response rows
#: produced, ``ru_maxrss`` in bytes and the 10-year mean flip fraction
#: (a sanity anchor: the streamed sweep still lands in the paper's band).
_STORE_SWEEP_SCRIPT = """\
import json, sys, time
from repro.analysis import DEFAULT_YEARS
from repro.core import aro_design
from repro.metrics.reliability import reliability
from repro.store import make_store_study
from repro.telemetry import peak_rss_bytes

n_chips, n_ros, block_size = (int(x) for x in sys.argv[1:4])
design = aro_design(n_ros=n_ros)
t0 = time.perf_counter()
with make_store_study(design, n_chips, block_size=block_size) as study:
    goldens = study.responses()
    flips = [
        reliability(goldens, study.responses(t_years=t)).mean_flip_fraction
        for t in DEFAULT_YEARS
    ]
elapsed = time.perf_counter() - t0
print(json.dumps({
    "elapsed_s": elapsed,
    "chips_per_s": n_chips * (len(DEFAULT_YEARS) + 1) / elapsed,
    "peak_rss_bytes": peak_rss_bytes(),
    "mean_flip_10y": flips[-1],
}))
"""


def _run_store_sweep_subprocess(n_chips, n_ros, block_size, timeout_s):
    out = subprocess.run(
        [sys.executable, "-c", _STORE_SWEEP_SCRIPT]
        + [str(n_chips), str(n_ros), str(block_size)],
        capture_output=True,
        text=True,
        timeout=timeout_s,
        env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
    )
    assert out.returncode == 0, (
        f"store sweep subprocess failed:\n{out.stderr[-2000:]}"
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


@pytest.mark.slow
class TestStoreOutOfCore:
    """``--store mmap``: bit-identity, bounded overhead, bounded RSS."""

    #: measured ~0.21 GB at this scale on the reference box; the dense
    #: path needs >1 GB here, so the ceiling separates the two regimes
    #: while absorbing allocator/platform noise
    RSS_N_CHIPS = 50_000
    RSS_N_ROS = 64
    RSS_BLOCK = 2_000
    RSS_CEILING_BYTES = 512 * 2**20
    #: reference box streams ~25k chip-rows/sec; the floor only catches a
    #: collapse (an accidental refabrication per year point, say), not
    #: slow CI hardware
    CHIPS_PER_S_FLOOR = 2_000.0

    #: overhead is measured where the kernels, not the store's fixed
    #: per-corner costs (spill files, block bookkeeping), dominate — the
    #: regime the flag exists for.  2k chips x 256 ROs is comfortably
    #: in-RAM-feasible (~40 MB/column) yet compute-bound.  The design
    #: target is < 15 %; the hard gate is looser because single-core CI
    #: boxes time both contenders noisily — the emitted artefact tracks
    #: the honest number for bench_compare.
    OVERHEAD_N_CHIPS = 2_000
    OVERHEAD_HARD_CEILING = 0.50

    def test_store_bit_identical_sweep(self):
        """Dense and streamed sweeps agree bit-for-bit at paper scale."""
        from repro.store import make_store_study

        design = aro_design()
        years = list(DEFAULT_YEARS)
        batch = make_batch_study(design, n_chips=N_CHIPS, rng=SEED)
        g_ram, r_ram = _sweep_batched(batch, years)
        with make_store_study(design, N_CHIPS, rng=SEED, block_size=7) as store:
            g_mm = store.responses()
            r_mm = [
                reliability(g_mm, store.responses(t_years=t)) for t in years
            ]
        assert np.array_equal(g_ram, g_mm)
        for a, b in zip(r_ram, r_mm):
            assert a.mean_flip_fraction == b.mean_flip_fraction
            assert np.array_equal(a.per_chip, b.per_chip)

    def test_store_overhead(self):
        """The streamed sweep stays near the dense one where both fit."""
        from repro.store import make_store_study

        design = aro_design()
        years = list(DEFAULT_YEARS)
        n_chips = self.OVERHEAD_N_CHIPS
        batch = make_batch_study(design, n_chips=n_chips, rng=SEED)
        t_ram = best_of(lambda: _sweep_batched(batch, years), rounds=5)

        with make_store_study(design, n_chips, rng=SEED) as store:

            def sweep_store():
                store.drop_cached_corners()
                goldens = store.responses()
                for t in years:
                    store.responses(t_years=t)
                return goldens

            t_mm = best_of(sweep_store, rounds=5)
        overhead = t_mm / t_ram - 1.0
        emit(
            "store_overhead",
            f"E2 aging sweep, {n_chips} chips x {design.n_ros} ROs, "
            f"{len(years)} year points (aro-puf)\n"
            f"  in-RAM engine : {t_ram * 1e3:8.2f} ms\n"
            f"  mmap store    : {t_mm * 1e3:8.2f} ms\n"
            f"  overhead      : {100.0 * overhead:8.2f} %",
            values={
                "ram_s": t_ram,
                "mmap_s": t_mm,
                "mmap_overhead": max(overhead, 0.0),
            },
        )
        assert overhead <= self.OVERHEAD_HARD_CEILING, (
            f"mmap sweep costs {overhead:+.1%} over the in-RAM engine "
            f"({t_mm * 1e3:.2f} ms vs {t_ram * 1e3:.2f} ms); "
            f"hard ceiling is {self.OVERHEAD_HARD_CEILING:.0%}"
        )

    def test_store_peak_rss_gate(self):
        """A 50k-chip E2 story fits the streaming-path memory ceiling."""
        stats = _run_store_sweep_subprocess(
            self.RSS_N_CHIPS, self.RSS_N_ROS, self.RSS_BLOCK, timeout_s=580
        )
        peak = stats["peak_rss_bytes"]
        rate = stats["chips_per_s"]
        emit(
            "store_peak_rss",
            f"out-of-core E2 sweep, {self.RSS_N_CHIPS} chips x "
            f"{self.RSS_N_ROS} ROs, block {self.RSS_BLOCK} (aro-puf)\n"
            f"  wall time : {stats['elapsed_s']:8.2f} s\n"
            f"  chip rows : {rate:8.0f} /s\n"
            f"  peak RSS  : {peak / 2**20:8.1f} MiB\n"
            f"  flip @10y : {100.0 * stats['mean_flip_10y']:8.2f} %",
            values={
                "elapsed_s": stats["elapsed_s"],
                "chips_per_s": rate,
            },
            memory={"peak_rss_bytes": float(peak)},
        )
        assert peak <= self.RSS_CEILING_BYTES, (
            f"streamed sweep peaked at {peak / 2**20:.0f} MiB, ceiling "
            f"{self.RSS_CEILING_BYTES / 2**20:.0f} MiB"
        )
        assert rate >= self.CHIPS_PER_S_FLOOR, (
            f"streamed sweep produced {rate:.0f} chip rows/sec, floor "
            f"{self.CHIPS_PER_S_FLOOR:.0f}"
        )

    #: the ISSUE's acceptance run: 1M chips x 256 ROs (128 response bits)
    #: in < 4 GB peak RSS.  Opt-in: needs ~65 GB scratch disk and tens of
    #: minutes of single-core time.
    MILLION_CEILING_BYTES = 4 * 2**30

    @pytest.mark.skipif(
        not os.environ.get("REPRO_BENCH_MILLION"),
        reason="set REPRO_BENCH_MILLION=1 to run the million-chip sweep",
    )
    def test_million_chip_sweep(self):
        stats = _run_store_sweep_subprocess(
            1_000_000, 256, 20_000, timeout_s=4 * 3600
        )
        peak = stats["peak_rss_bytes"]
        emit(
            "store_million_chips",
            f"out-of-core E2 sweep, 1,000,000 chips x 256 ROs (128 bits)\n"
            f"  wall time : {stats['elapsed_s']:8.1f} s\n"
            f"  chip rows : {stats['chips_per_s']:8.0f} /s\n"
            f"  peak RSS  : {peak / 2**30:8.2f} GiB\n"
            f"  flip @10y : {100.0 * stats['mean_flip_10y']:8.2f} %",
            values={
                "elapsed_s": stats["elapsed_s"],
                "chips_per_s": stats["chips_per_s"],
            },
            memory={"peak_rss_bytes": float(peak)},
        )
        assert peak <= self.MILLION_CEILING_BYTES, (
            f"million-chip sweep peaked at {peak / 2**30:.2f} GiB, "
            f"ceiling 4 GiB"
        )
