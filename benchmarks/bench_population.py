"""Population-batch engine vs per-chip loop (the PR's headline speedup).

Times the full E2-style aging sweep — golden responses plus reliability
at every default year point — at paper scale (50 chips x 256 ROs) twice:
once through the per-chip :class:`~repro.core.factory.Study` loop and
once through the batched :class:`~repro.core.population.BatchStudy`
engine.  Asserts the two paths agree bit-for-bit on every response and
reliability report, and that the batched engine is at least 10x faster.

The sweep timing uses best-of-N wall clock (min is the least noisy
statistic on shared boxes); the memos are cleared per round so every
round pays the full evaluation cost.

``TestTelemetryOverhead`` guards the observability budget: the batched
sweep with *no tracer installed* (the default, single-branch disabled
path) must stay within a few percent of itself with telemetry fully
enabled, and the headline speedup artefact records the work-done
counters (kernel blocks, memo traffic) so ``tools/bench_compare.py``
can diff work alongside wall time.
"""

import time

import numpy as np
import pytest

from _common import emit
from repro import telemetry
from repro.analysis import DEFAULT_YEARS
from repro.core import (
    aro_design,
    conventional_design,
    make_batch_study,
    make_study,
)
from repro.metrics.reliability import reliability

N_CHIPS = 50
SEED = 20140324
SPEEDUP_FLOOR = 10.0


def _sweep_per_chip(study, years):
    goldens = study.responses()
    return goldens, [
        reliability(goldens, study.responses(t_years=t)) for t in years
    ]


def _sweep_batched(batch, years):
    batch._freq_memo.clear()
    batch.aging._memo.clear()
    goldens = batch.responses()
    return goldens, [
        reliability(goldens, batch.responses(t_years=t)) for t in years
    ]


def _best_of(fn, rounds):
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


@pytest.mark.slow
class TestPopulationEngine:
    @pytest.fixture(scope="class", params=["ro-puf", "aro-puf"])
    def case(self, request):
        design = conventional_design() if request.param == "ro-puf" else aro_design()
        study = make_study(design, n_chips=N_CHIPS, rng=SEED)
        batch = make_batch_study(design, n_chips=N_CHIPS, rng=SEED)
        return request.param, design, study, batch

    def test_bit_identical_sweep(self, case):
        """Every golden response and reliability report matches exactly."""
        name, design, study, batch = case
        years = list(DEFAULT_YEARS)
        g_old, r_old = _sweep_per_chip(study, years)
        g_new, r_new = _sweep_batched(batch, years)
        assert np.array_equal(np.vstack(g_old), g_new)
        for a, b in zip(r_old, r_new):
            assert a.mean_flip_fraction == b.mean_flip_fraction
            assert np.array_equal(a.per_chip, b.per_chip)

    def test_speedup_floor(self, case):
        """The batched sweep is at least 10x faster than the per-chip loop."""
        name, design, study, batch = case
        years = list(DEFAULT_YEARS)
        # warm both paths (first batched call pays buffer page faults)
        _sweep_per_chip(study, years)
        _sweep_batched(batch, years)
        t_old = _best_of(lambda: _sweep_per_chip(study, years), rounds=5)
        t_new = _best_of(lambda: _sweep_batched(batch, years), rounds=15)
        speedup = t_old / t_new
        # one instrumented pass (outside the timing) snapshots the work
        # done, so the artefact records kernel traffic next to wall time
        with telemetry.session() as tracer:
            _sweep_batched(batch, years)
        emit(
            f"population_speedup_{name}",
            f"E2 aging sweep, {N_CHIPS} chips x {study.design.n_ros} ROs, "
            f"{len(years)} year points ({name})\n"
            f"  per-chip loop : {t_old * 1e3:8.2f} ms\n"
            f"  batched engine: {t_new * 1e3:8.2f} ms\n"
            f"  speedup       : {speedup:8.2f} x",
            values={
                "per_chip_s": t_old,
                "batched_s": t_new,
                "speedup": speedup,
            },
            counters=tracer.counters,
        )
        assert speedup >= SPEEDUP_FLOOR, (
            f"{name}: batched sweep only {speedup:.2f}x faster "
            f"({t_old * 1e3:.2f} ms vs {t_new * 1e3:.2f} ms), "
            f"need >= {SPEEDUP_FLOOR}x"
        )


@pytest.mark.slow
class TestTelemetryOverhead:
    """The disabled-tracer instrumentation must be (near) free.

    The instrumented call sites in the frequency/aging kernels pay one
    module-attribute load and one branch when no tracer is installed.
    This benchmark measures the E2 batched sweep with telemetry disabled
    versus fully enabled, emits both numbers, and asserts the *enabled*
    tax stays moderate — the disabled path's absolute cost is pinned by
    ``TestPopulationEngine.test_speedup_floor`` holding the >= 10x bar
    on the identical sweep.
    """

    #: generous bound: collection (spans + counters) may cost this much
    ENABLED_OVERHEAD_CEILING = 0.25

    def test_disabled_path_overhead(self):
        design = aro_design()
        batch = make_batch_study(design, n_chips=N_CHIPS, rng=SEED)
        years = list(DEFAULT_YEARS)
        _sweep_batched(batch, years)  # warm buffers and caches

        t_disabled = _best_of(lambda: _sweep_batched(batch, years), rounds=15)
        tracer = telemetry.install(telemetry.Tracer())
        try:
            t_enabled = _best_of(lambda: _sweep_batched(batch, years), rounds=15)
        finally:
            telemetry.uninstall()
        overhead = t_enabled / t_disabled - 1.0
        emit(
            "telemetry_overhead",
            f"E2 batched sweep, {N_CHIPS} chips x {design.n_ros} ROs, "
            f"{len(years)} year points (aro-puf)\n"
            f"  telemetry disabled: {t_disabled * 1e3:8.2f} ms\n"
            f"  telemetry enabled : {t_enabled * 1e3:8.2f} ms\n"
            f"  enabled overhead  : {100.0 * overhead:8.2f} %",
            values={
                "disabled_s": t_disabled,
                "enabled_s": t_enabled,
                "enabled_overhead": max(overhead, 0.0),
            },
        )
        assert overhead <= self.ENABLED_OVERHEAD_CEILING, (
            f"telemetry-enabled sweep costs {overhead:+.1%} over disabled "
            f"({t_enabled * 1e3:.2f} ms vs {t_disabled * 1e3:.2f} ms); "
            f"ceiling is {self.ENABLED_OVERHEAD_CEILING:.0%}"
        )

    #: the progress heartbeat budget from the observability PR: events
    #: enabled must stay within 2 % of the no-emitter sweep
    EVENTS_OVERHEAD_CEILING = 0.02

    def test_events_enabled_overhead(self, tmp_path):
        """A throttled emitter adds < 2 % to the E2 batched sweep."""
        design = aro_design()
        batch = make_batch_study(design, n_chips=N_CHIPS, rng=SEED)
        years = list(DEFAULT_YEARS)
        _sweep_batched(batch, years)  # warm buffers and caches

        t_disabled = _best_of(lambda: _sweep_batched(batch, years), rounds=15)
        emitter = telemetry.install_emitter(
            telemetry.ProgressEmitter(tmp_path / "events.jsonl")
        )
        try:
            t_enabled = _best_of(lambda: _sweep_batched(batch, years), rounds=15)
            n_events = emitter.n_events
        finally:
            telemetry.uninstall_emitter()
        overhead = t_enabled / t_disabled - 1.0
        emit(
            "events_overhead",
            f"E2 batched sweep, {N_CHIPS} chips x {design.n_ros} ROs, "
            f"{len(years)} year points (aro-puf)\n"
            f"  events disabled: {t_disabled * 1e3:8.2f} ms\n"
            f"  events enabled : {t_enabled * 1e3:8.2f} ms\n"
            f"  overhead       : {100.0 * overhead:8.2f} %  "
            f"({n_events} line(s) written)\n",
            values={
                "disabled_s": t_disabled,
                "enabled_s": t_enabled,
                "enabled_overhead": max(overhead, 0.0),
            },
        )
        assert overhead <= self.EVENTS_OVERHEAD_CEILING, (
            f"events-enabled sweep costs {overhead:+.1%} over disabled "
            f"({t_enabled * 1e3:.2f} ms vs {t_disabled * 1e3:.2f} ms); "
            f"ceiling is {self.EVENTS_OVERHEAD_CEILING:.0%}"
        )

    def test_events_bounded_count(self, tmp_path):
        """Even unthrottled in time, the lifetime cap bounds the file."""
        design = aro_design()
        batch = make_batch_study(design, n_chips=N_CHIPS, rng=SEED)
        years = list(DEFAULT_YEARS)
        cap = 20
        with telemetry.emitter_session(
            tmp_path / "events.jsonl", min_interval_s=0.0, max_events=cap
        ) as emitter:
            for _ in range(5):
                _sweep_batched(batch, years)
            assert emitter.n_events <= cap
            assert emitter.n_throttled == 0  # the cap drops, not the throttle
        lines = (tmp_path / "events.jsonl").read_text().splitlines()
        assert len(lines) <= cap
