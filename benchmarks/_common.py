"""Shared plumbing for the benchmark harness.

Each ``bench_*.py`` module regenerates one table or figure of the paper
(the experiment index lives in DESIGN.md §4).  The pattern:

* a module-scoped fixture runs the experiment once at paper scale,
* a ``test_table_*`` prints the paper-style rows **and writes them to**
  ``benchmarks/results/<name>.txt`` so the harness leaves artefacts even
  when pytest captures stdout,
* ``test_perf_*`` benchmarks the experiment's hot kernel with
  pytest-benchmark (small, representative, repeatable).

Run everything with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
