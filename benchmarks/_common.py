"""Shared plumbing for the benchmark harness.

Each ``bench_*.py`` module regenerates one table or figure of the paper
(the experiment index lives in DESIGN.md §4).  The pattern:

* a module-scoped fixture runs the experiment once at paper scale,
* a ``test_table_*`` prints the paper-style rows **and writes them to**
  ``benchmarks/results/<name>.txt`` so the harness leaves artefacts even
  when pytest captures stdout,
* ``test_perf_*`` benchmarks the experiment's hot kernel with
  pytest-benchmark (small, representative, repeatable).

Passing ``values`` to :func:`emit` additionally writes the headline
numbers to ``benchmarks/results/<name>.json`` so that result sets from
two checkouts can be diffed mechanically with ``tools/bench_compare.py``.
Every JSON artefact carries a :class:`repro.telemetry.RunManifest`
(provenance: package version, git SHA, numpy/platform) so a results
directory stays auditable long after the checkout is gone; passing
``counters`` (e.g. from a ``telemetry.session()`` around the measured
run) records the *work done* — kernel invocations, memo hit rates — next
to the timings, letting ``bench_compare`` explain a speed diff instead of
just flagging it.

Run everything with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time
from typing import Any, Callable, Dict, Mapping, Optional

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def best_of(fn: Callable[[], Any], rounds: int = 5, warmup: int = 1) -> float:
    """Best-of-``rounds`` wall-clock seconds for ``fn()``, after warm-up.

    The speedup gates compare two of these minima: min is the least noisy
    location statistic on shared CI boxes (it converges to the true cost
    as scheduling noise is strictly additive), and the ``warmup`` calls —
    excluded from timing — pay one-time costs (buffer page faults, pool
    start-up, import side effects) that would otherwise land on whichever
    contender runs first and skew the ratio.
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)

_manifest_cache: Optional[Dict[str, Any]] = None


def run_manifest() -> Dict[str, Any]:
    """The harness-wide provenance record (collected once per session)."""
    global _manifest_cache
    if _manifest_cache is None:
        from repro.telemetry import RunManifest

        _manifest_cache = RunManifest.collect(
            config={"harness": "benchmarks"}
        ).to_dict()
    return _manifest_cache


def _write_payload(
    name: str,
    values: Mapping[str, float],
    counters: Optional[Mapping[str, float]] = None,
    memory: Optional[Mapping[str, float]] = None,
    histograms: Optional[Mapping[str, Mapping[str, float]]] = None,
    roofline: Optional[Mapping[str, float]] = None,
) -> None:
    payload: Dict[str, Any] = {
        "name": name,
        "values": {k: float(v) for k, v in values.items()},
        "manifest": run_manifest(),
    }
    if counters:
        payload["counters"] = {k: float(v) for k, v in counters.items()}
    if memory:
        payload["memory"] = {k: float(v) for k, v in memory.items()}
    if histograms:
        payload["histograms"] = {
            name_: {k: float(v) for k, v in summary.items()}
            for name_, summary in histograms.items()
        }
    if roofline:
        payload["roofline"] = {k: float(v) for k, v in roofline.items()}
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    _append_perf_ledger(name, payload)


def _append_perf_ledger(name: str, payload: Mapping[str, Any]) -> None:
    """Opt-in longitudinal append: one perf-ledger line per bench artefact.

    Active only when ``REPRO_PERF_LEDGER`` names a ledger file (CI's
    perf-ledger job sets it; local runs opt in the same way) — the
    default bench run writes nothing extra.  A failed append warns and
    never fails the benchmark: the ledger observes runs, it must not be
    able to break them.
    """
    path = os.environ.get("REPRO_PERF_LEDGER")
    if not path:
        return
    try:
        from repro.telemetry import PerfLedger, entry_from_bench_payload

        PerfLedger(path).append(entry_from_bench_payload(name, payload))
    except Exception as exc:  # pragma: no cover - diagnostic path
        print(
            f"warning: perf-ledger append to {path} failed: {exc}",
            file=sys.stderr,
        )


def emit(
    name: str,
    text: str,
    values: Optional[Mapping[str, float]] = None,
    counters: Optional[Mapping[str, float]] = None,
    memory: Optional[Mapping[str, float]] = None,
    histograms: Optional[Mapping[str, Mapping[str, float]]] = None,
    roofline: Optional[Mapping[str, float]] = None,
) -> None:
    """Print a result table and persist it under benchmarks/results/.

    ``values`` is an optional flat mapping of headline metrics (timings in
    seconds, percentages, counts — any scalar a regression check should
    watch); when given it is written alongside the table as
    ``<name>.json`` for :mod:`tools.bench_compare`, together with the run
    manifest.  ``counters`` is an optional telemetry counter snapshot
    (work-done metrics), diffed informationally by ``bench_compare``
    rather than regression-gated.  ``memory`` is an optional mapping of
    memory metrics (``peak_rss_bytes``, chips/sec footprints from the
    out-of-core store gates); older artefacts without the section diff as
    ``n/a``, never as an error.  ``histograms`` is an optional mapping of
    per-metric latency summaries (``Tracer.histogram_summaries()``
    output); ``bench_compare`` diffs the p50/p99 quantiles
    informationally, with the same ``n/a`` tolerance.  ``roofline`` is
    an optional mapping of throughput metrics (``chips_years_per_s``
    style, bigger is better); ``bench_compare`` gates a *decrease* under
    ``--gate`` — the inverse of the ``values`` growth gate — and treats
    artefacts without the section as ``n/a``.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if values is not None:
        _write_payload(name, values, counters, memory, histograms, roofline)
    print(f"\n{text}\n")


def emit_benchmark_stats(name: str, benchmark) -> None:
    """Persist a pytest-benchmark fixture's timing stats as JSON.

    Call after the ``benchmark(...)`` run; records the statistics that
    matter for regression tracking (min is the least noisy on shared CI
    boxes, mean/stddev document the spread).
    """
    stats = benchmark.stats.stats
    RESULTS_DIR.mkdir(exist_ok=True)
    _write_payload(
        name,
        {
            "min_s": float(stats.min),
            "mean_s": float(stats.mean),
            "stddev_s": float(stats.stddev),
            "rounds": float(stats.rounds),
        },
    )
