"""Shared plumbing for the benchmark harness.

Each ``bench_*.py`` module regenerates one table or figure of the paper
(the experiment index lives in DESIGN.md §4).  The pattern:

* a module-scoped fixture runs the experiment once at paper scale,
* a ``test_table_*`` prints the paper-style rows **and writes them to**
  ``benchmarks/results/<name>.txt`` so the harness leaves artefacts even
  when pytest captures stdout,
* ``test_perf_*`` benchmarks the experiment's hot kernel with
  pytest-benchmark (small, representative, repeatable).

Passing ``values`` to :func:`emit` additionally writes the headline
numbers to ``benchmarks/results/<name>.json`` so that result sets from
two checkouts can be diffed mechanically with ``tools/bench_compare.py``.

Run everything with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json
import pathlib
from typing import Mapping, Optional

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(
    name: str,
    text: str,
    values: Optional[Mapping[str, float]] = None,
) -> None:
    """Print a result table and persist it under benchmarks/results/.

    ``values`` is an optional flat mapping of headline metrics (timings in
    seconds, percentages, counts — any scalar a regression check should
    watch); when given it is written alongside the table as
    ``<name>.json`` for :mod:`tools.bench_compare`.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if values is not None:
        payload = {"name": name, "values": {k: float(v) for k, v in values.items()}}
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    print(f"\n{text}\n")


def emit_benchmark_stats(name: str, benchmark) -> None:
    """Persist a pytest-benchmark fixture's timing stats as JSON.

    Call after the ``benchmark(...)`` run; records the statistics that
    matter for regression tracking (min is the least noisy on shared CI
    boxes, mean/stddev document the spread).
    """
    stats = benchmark.stats.stats
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "name": name,
        "values": {
            "min_s": float(stats.min),
            "mean_s": float(stats.mean),
            "stddev_s": float(stats.stddev),
            "rounds": float(stats.rounds),
        },
    }
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
