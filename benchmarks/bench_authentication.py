"""E10 (extension) — lifetime device authentication.

The abstract's first use case ("chip-specific identifiers") executed as a
protocol: CRP tables enrolled fresh, devices authenticated from aged
silicon.  The conventional RO-PUF's genuine-aged distance distribution
drifts into its (systematics-compressed) impostor distribution — by year
ten no threshold authenticates reliably (double-digit EER) — while the
ARO keeps the two populations fully separable.

The benchmarked kernel is one authentication round (challenge batch,
noisy response, distance decision).
"""

import numpy as np
import pytest

from _common import emit
from repro.analysis import ExperimentConfig, authentication_experiment
from repro.analysis.render import render_e10
from repro.core import conventional_design, make_study
from repro.protocol import Verifier


@pytest.fixture(scope="module")
def result():
    res = authentication_experiment(ExperimentConfig(n_chips=20))
    emit("e10_authentication", render_e10(res))
    return res


class TestTable:
    def test_fresh_silicon_always_authenticates(self, result):
        for name in result.frr:
            assert result.frr[name][0] == 0.0

    def test_aro_authenticates_for_life(self, result):
        assert all(rate == 0.0 for rate in result.frr["aro-puf"])

    def test_conventional_fails_in_the_field(self, result):
        assert result.frr["ro-puf"][-1] >= 0.1

    def test_aro_impostors_always_rejected(self, result):
        assert result.far["aro-puf"] == 0.0

    def test_conventional_eer_collapses(self, result):
        """By year 10 the conventional genuine distance (~0.21) crowds its
        systematics-compressed impostor distribution (~0.33): percent-level
        equal error rate, orders of magnitude above the ARO's."""
        conv_eer, _ = result.equal_error_rate("ro-puf", 10.0)
        aro_eer, _ = result.equal_error_rate("aro-puf", 10.0)
        assert conv_eer >= 0.04
        assert conv_eer > 10 * max(aro_eer, 1e-9) or aro_eer == 0.0

    def test_aro_stays_separable(self, result):
        eer, _ = result.equal_error_rate("aro-puf", 10.0)
        assert eer < 0.02

    def test_systematics_compress_impostor_distance(self, result):
        """The conventional impostor distance sits well below 0.5 — the
        same cross-chip correlation that depresses E3 uniqueness."""
        conv = np.mean(result.impostor_distances["ro-puf"])
        aro = np.mean(result.impostor_distances["aro-puf"])
        assert conv < aro - 0.1


class TestPerf:
    def test_perf_authentication_round(self, benchmark, result):
        study = make_study(conventional_design(n_ros=64), n_chips=1, rng=0)
        verifier = Verifier(threshold=0.25, batch_size=8)
        verifier.enroll(study.instances[0], n_challenges=4096, rng=1)

        def round_trip():
            return verifier.authenticate(0, study.instances[0], rng=2)

        # pedantic mode: each round consumes fresh challenges from the
        # finite table, so bound the round count explicitly
        outcome = benchmark.pedantic(round_trip, rounds=50, iterations=1)
        assert outcome.accepted
