"""E9 (extension) — 1-out-of-k masking vs the ARO circuit fix.

The strongest prior reliability technique for RO-PUFs picks, at enrolment,
the widest-margin pair out of each group of k oscillators (Suh & Devadas).
This bench quantifies what masking buys against *noise* (everything) and
against *aging* (only what k pays for), next to the ARO reference:
matching the ARO's 10-year flip rate takes roughly 1-of-8 masking — four
times the oscillators per bit, plus per-chip helper data.

The benchmarked kernel is the enrolment-time selection itself.
"""

import numpy as np
import pytest

from _common import emit
from repro.analysis import ExperimentConfig, masking_ablation
from repro.analysis.render import render_e9
from repro.core import select_stable_pairs


@pytest.fixture(scope="module")
def result():
    res = masking_ablation(ExperimentConfig(n_chips=25))
    emit("e9_ablation_masking", render_e9(res))
    return res


class TestTable:
    def _by_label(self, result):
        return {row.label: row for row in result.rows}

    def test_masking_margin_grows_with_k(self, result):
        margins = [
            row.mean_margin_percent
            for row in result.rows
            if row.label.startswith("ro-puf")
        ]
        assert margins == sorted(margins)

    def test_masking_kills_noise_flips(self, result):
        rows = self._by_label(result)
        assert rows["ro-puf / 1-of-8 masking"].noise_flips_percent < 0.2

    def test_masking_reduces_aging_flips_monotonically(self, result):
        aging = [
            row.aging_flips_percent
            for row in result.rows
            if row.label.startswith("ro-puf")
        ]
        assert aging == sorted(aging, reverse=True)

    def test_matching_aro_costs_about_four_x_oscillators(self, result):
        """1-of-4 is not enough; ~1-of-8 (8 ROs/bit vs the ARO's 2) is
        needed to reach the ARO's aging flip rate."""
        rows = self._by_label(result)
        aro = rows["aro-puf / neighbour (reference)"].aging_flips_percent
        assert rows["ro-puf / 1-of-4 masking"].aging_flips_percent > 1.5 * aro
        assert rows["ro-puf / 1-of-8 masking"].aging_flips_percent < 2.0 * aro

    def test_masking_sacrifices_bits(self, result):
        rows = self._by_label(result)
        assert rows["ro-puf / 1-of-16 masking"].n_bits < rows[
            "aro-puf / neighbour (reference)"
        ].n_bits / 4


class TestPerf:
    def test_perf_enrolment_selection(self, benchmark, result):
        rng = np.random.default_rng(0)
        freqs = 1e9 * (1 + 0.01 * rng.standard_normal(256))
        pairing = benchmark(select_stable_pairs, freqs, 8)
        assert pairing.n_bits(256) == 32
