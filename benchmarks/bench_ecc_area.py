"""E6 — PUF + ECC area for a 128-bit key (the paper's ~24x table).

For each error-margin policy, search the (repetition, BCH) design space
for the minimum-area key generator meeting a 1e-6 key-failure target and
compare the two PUFs.  The paper quotes a single ~24x reduction; the
ratio depends on how much margin the ECC is sized for, so the harness
prints the whole policy sweep — the paper's figure sits inside the
worst-case band (the mean-sized policy gives ~5x, worst-chip ~14x,
worst-chip-plus-corner ~35x).

The benchmarked kernel is one BCH(255,131,t=18) decode of a corrupted
word — the decoder whose silicon the area model costs out.
"""

import numpy as np
import pytest

from _common import emit
from repro.analysis import ecc_area_experiment
from repro.analysis.render import render_e6
from repro.ecc import BchCode, standard_codes

PAPER_RATIO = 24.0


@pytest.fixture(scope="module")
def palette():
    from repro.ecc import GolayCode

    # m <= 9 covers every BCH winner; the Golay code competes alongside
    return standard_codes(max_m=9, max_t=26) + [GolayCode()]


@pytest.fixture(scope="module")
def result(palette):
    res = ecc_area_experiment(bch_palette=palette)
    emit("e6_ecc_area", render_e6(res))
    return res


class TestTable:
    def test_every_policy_feasible_for_both(self, result):
        for row in result.rows:
            assert row.conv is not None, row.policy
            assert row.aro is not None, row.policy

    def test_ratio_grows_with_margin(self, result):
        ratios = [row.ratio for row in result.rows]
        assert ratios == sorted(ratios)

    def test_paper_ratio_inside_policy_band(self, result):
        """The abstract's ~24x must fall between the mean-sized and the
        worst-case-sized policies."""
        ratios = [row.ratio for row in result.rows]
        assert min(ratios) < PAPER_RATIO < max(ratios)

    def test_conventional_needs_order_of_magnitude_more_raw_bits(self, result):
        worst = result.rows[-1]
        assert worst.conv.raw_bits > 20 * worst.aro.raw_bits

    def test_aro_ecc_stays_light(self, result):
        """The ARO never needs a heavier decoder than the conventional."""
        for row in result.rows:
            assert row.aro.codec.code.inner.r <= row.conv.codec.code.inner.r


class TestPerf:
    def test_perf_bch_decode(self, benchmark, result):
        code = BchCode.design(8, 18)
        rng = np.random.default_rng(0)
        msg = rng.integers(0, 2, code.k).astype(np.uint8)
        cw = code.encode(msg)
        rx = cw.copy()
        rx[rng.choice(code.n, size=18, replace=False)] ^= 1

        corrected, n = benchmark(code.decode, rx)
        assert n == 18
        assert np.array_equal(corrected, cw)
