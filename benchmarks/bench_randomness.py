"""E4 — uniformity, bit-aliasing and the randomness battery (paper's
"unique, random keys" table).

Regenerates the response-quality statistics beyond uniqueness: per-chip
ones-fraction, per-bit aliasing across chips, and a NIST SP 800-22-style
battery over the population's concatenated responses.  The benchmarked
kernel is the full battery on a paper-scale bit sequence.
"""

import pytest

from _common import emit
from repro.analysis import ExperimentConfig, randomness_experiment
from repro.analysis.render import render_e4
from repro.metrics import randomness_battery


@pytest.fixture(scope="module")
def result():
    res = randomness_experiment(ExperimentConfig())
    emit("e4_randomness", render_e4(res))
    return res


class TestTable:
    def test_aro_uniformity_near_ideal(self, result):
        assert result.uniformity["aro-puf"].percent() == pytest.approx(50.0, abs=3.0)

    def test_conventional_uniformity_visibly_biased(self, result):
        """The systematic layout gradient skews conventional comparisons
        the same way on every chip; the bias shows up as a ones-fraction
        several points off 50 %."""
        conv = result.uniformity["ro-puf"].percent()
        assert 3.0 < abs(conv - 50.0) < 12.0

    def test_aro_battery_passes(self, result):
        assert result.battery["aro-puf"].all_passed()

    def test_conventional_battery_fails(self, result):
        """The flip side of the paper's "random keys" claim: conventional
        response material does not look random to NIST-style tests."""
        assert not result.battery["ro-puf"].all_passed()

    def test_conventional_loses_key_material(self, result):
        """The systematic bias costs min-entropy: the conventional 128-bit
        response carries tens of bits less extractable key material."""
        conv = result.entropy["ro-puf"]
        aro = result.entropy["aro-puf"]
        assert conv.total_min_entropy < aro.total_min_entropy - 15

    def test_aro_aliasing_tighter_than_conventional(self, result):
        """Aliasing spread is the systematic component's fingerprint."""
        assert (
            result.aliasing["aro-puf"].per_bit.std()
            < result.aliasing["ro-puf"].per_bit.std()
        )


class TestPerf:
    def test_perf_battery(self, benchmark, result):
        from repro.metrics import population_bits

        # reuse the experiment's actual ARO response material
        import numpy as np

        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, 6400)
        report = benchmark(randomness_battery, bits)
        assert len(report.p_values) == 7
