"""E12 (extension) — ring-length (stage-count) design-choice study.

Two findings worth the table:

* the **flip-rate gap is ring-length invariant** — mismatch margin and
  aging differential both shrink as 1/sqrt(stages), so the ratio that
  sets the flip probability cancels: the ARO advantage is the stress
  policy, not the 5-stage choice;
* the conventional design's **uniqueness degrades with ring length** —
  the systematic per-RO offset does not average over stages while the
  mismatch margin does, so q = sigma_sys/sigma_rand grows as
  sqrt(stages) and HD collapses; the ARO's symmetric layout is immune.

The benchmarked kernel is a population evaluation at the longest ring.
"""

import pytest

from _common import emit
from repro.analysis import ExperimentConfig, stage_ablation
from repro.analysis.render import render_e12
from repro.core import conventional_design, make_study

STAGES = (3, 5, 7, 9, 13)


@pytest.fixture(scope="module")
def result():
    return_value = stage_ablation(ExperimentConfig(n_chips=25), stage_counts=STAGES)
    emit("e12_ablation_stages", render_e12(return_value))
    return return_value


def by_key(result):
    return {(row.design, row.n_stages): row for row in result.rows}


class TestTable:
    def test_frequency_falls_with_ring_length(self, result):
        rows = by_key(result)
        freqs = [rows[("ro-puf", n)].frequency_ghz for n in STAGES]
        assert freqs == sorted(freqs, reverse=True)

    def test_cell_area_grows_linearly(self, result):
        rows = by_key(result)
        a5 = rows[("aro-puf", 5)].cell_area_um2
        a13 = rows[("aro-puf", 13)].cell_area_um2
        assert a13 / a5 == pytest.approx(13 / 5, rel=0.01)

    def test_flip_gap_is_ring_length_invariant(self, result):
        """At every length the ARO keeps a >= 3x flip advantage."""
        rows = by_key(result)
        for n in STAGES:
            conv = rows[("ro-puf", n)].flips_percent
            aro = rows[("aro-puf", n)].flips_percent
            assert conv > 3 * aro, f"N={n}"

    def test_aro_flips_stay_in_band(self, result):
        rows = by_key(result)
        for n in STAGES:
            assert 4.0 < rows[("aro-puf", n)].flips_percent < 12.0

    def test_conventional_uniqueness_degrades_with_length(self, result):
        rows = by_key(result)
        assert (
            rows[("ro-puf", 13)].uniqueness_percent
            < rows[("ro-puf", 3)].uniqueness_percent - 5.0
        )

    def test_aro_uniqueness_immune_to_length(self, result):
        rows = by_key(result)
        for n in STAGES:
            assert rows[("aro-puf", n)].uniqueness_percent == pytest.approx(
                50.0, abs=1.5
            )


class TestPerf:
    def test_perf_long_ring_population(self, benchmark, result):
        design = conventional_design(n_ros=64, n_stages=13)

        def fabricate_and_respond():
            study = make_study(design, n_chips=2, rng=0)
            return study.responses()

        responses = benchmark(fabricate_and_respond)
        assert len(responses) == 2
