"""E8 — ablation: layout systematics and pairing distance vs uniqueness.

Sweeps the systematic-variation magnitude for both layout disciplines
(the conventional compact layout soaks up the full systematic field; the
ARO's common-centroid interleaving cancels it) and contrasts neighbour
against maximally-distant pairing.  Together these isolate *where* the
conventional RO-PUF's ~45 % uniqueness deficit comes from.

The benchmarked kernel is one full chip fabrication (hierarchical
variation sampling), the Monte-Carlo engine under every experiment.
"""

import pytest

from _common import emit
from repro.analysis import ExperimentConfig, layout_ablation
from repro.analysis.render import render_e8
from repro.core import conventional_design


@pytest.fixture(scope="module")
def result():
    res = layout_ablation(ExperimentConfig(n_chips=25))
    emit("e8_ablation_layout", render_e8(res))
    return res


class TestTable:
    def test_no_systematics_means_ideal_uniqueness(self, result):
        """With the systematic field switched off both layouts sit at 50 %."""
        for series in result.systematic_series.values():
            assert series.y_at(0.0) == pytest.approx(50.0, abs=1.5)

    def test_conventional_uniqueness_collapses_with_systematics(self, result):
        conv = result.systematic_series["ro-puf"]
        assert conv.y_at(3.0) < conv.y_at(0.0) - 5.0

    def test_aro_layout_immunises(self, result):
        conv = result.systematic_series["ro-puf"]
        aro = result.systematic_series["aro-puf"]
        conv_drop = conv.y_at(0.0) - conv.y_at(3.0)
        aro_drop = aro.y_at(0.0) - aro.y_at(3.0)
        assert aro_drop < 0.25 * conv_drop

    def test_distant_pairing_hurts_conventional_most(self, result):
        rows = dict(result.pairing_rows)
        conv_penalty = rows["ro-puf / neighbour"] - rows["ro-puf / distant"]
        aro_penalty = rows["aro-puf / neighbour"] - rows["aro-puf / distant"]
        assert conv_penalty > aro_penalty - 1.0


class TestPerf:
    def test_perf_chip_fabrication(self, benchmark, result):
        model = conventional_design().variation_model()
        chip = benchmark(model.sample_chip, 0)
        assert chip.vth.shape == (256, 5, 2)
