"""E1 — RO frequency degradation vs years in the field (paper Fig.,
degradation curves).

Regenerates the mean fractional frequency-loss series for the
conventional RO-PUF and the ARO-PUF over a 10-year mission, the curve
behind the paper's aging discussion.  The benchmarked kernel is the
per-chip aging evaluation (threshold-shift computation + re-timing of
every oscillator), the inner loop of every aging experiment.
"""

import pytest

from _common import emit
from repro.analysis import DEFAULT_YEARS, ExperimentConfig, frequency_degradation
from repro.analysis.render import render_e1
from repro.core import conventional_design, make_batch_study


@pytest.fixture(scope="module")
def result():
    res = frequency_degradation(ExperimentConfig(), years=DEFAULT_YEARS)
    emit("e1_freq_degradation", render_e1(res))
    return res


class TestTable:
    def test_both_designs_degrade_monotonically(self, result):
        for series in result.series.values():
            assert series.y == sorted(series.y)

    def test_conventional_degrades_percent_scale(self, result):
        assert 1.0 < result.series["ro-puf"].y_at(10.0) < 6.0

    def test_aro_degrades_far_less(self, result):
        assert (
            result.series["aro-puf"].y_at(10.0)
            < 0.35 * result.series["ro-puf"].y_at(10.0)
        )


class TestPerf:
    def test_perf_population_aged_retiming(self, benchmark, result):
        """Hot kernel: age the whole 50-chip population 10 years and
        re-time all 12 800 oscillators in one batched pass (memos cleared
        per round so every round does the real work)."""
        study = make_batch_study(conventional_design(), n_chips=50, rng=0)

        def kernel():
            study._freq_memo.clear()
            study.aging._memo.clear()
            return study.frequencies(t_years=10.0)

        freqs = benchmark(kernel)
        assert freqs.shape == (50, 256)
