"""E1 — RO frequency degradation vs years in the field (paper Fig.,
degradation curves).

Regenerates the mean fractional frequency-loss series for the
conventional RO-PUF and the ARO-PUF over a 10-year mission, the curve
behind the paper's aging discussion.  The benchmarked kernel is the
per-chip aging evaluation (threshold-shift computation + re-timing of
every oscillator), the inner loop of every aging experiment.
"""

import pytest

from _common import emit
from repro.analysis import DEFAULT_YEARS, ExperimentConfig, frequency_degradation
from repro.analysis.render import render_e1
from repro.circuit import chip_frequencies
from repro.core import conventional_design, make_study


@pytest.fixture(scope="module")
def result():
    res = frequency_degradation(ExperimentConfig(), years=DEFAULT_YEARS)
    emit("e1_freq_degradation", render_e1(res))
    return res


class TestTable:
    def test_both_designs_degrade_monotonically(self, result):
        for series in result.series.values():
            assert series.y == sorted(series.y)

    def test_conventional_degrades_percent_scale(self, result):
        assert 1.0 < result.series["ro-puf"].y_at(10.0) < 6.0

    def test_aro_degrades_far_less(self, result):
        assert (
            result.series["aro-puf"].y_at(10.0)
            < 0.35 * result.series["ro-puf"].y_at(10.0)
        )


class TestPerf:
    def test_perf_aged_chip_retiming(self, benchmark, result):
        """Hot kernel: age one 256-RO chip 10 years and recompute every
        oscillator frequency."""
        study = make_study(conventional_design(), n_chips=1, rng=0)
        aging = study.agings[0]
        design = study.design

        def kernel():
            aged = aging.aged(10.0)
            return chip_frequencies(aged, design.tech)

        freqs = benchmark(kernel)
        assert freqs.shape == (256,)
