"""E7 — ablation: the idle-policy / activity-duty mechanism study.

Two sweeps that explain *why* the ARO-PUF works:

* flips vs evaluation duty — aging follows ``(duty * t)**n``, so parking
  the oscillators in recovery (duty -> ~0) is worth orders of magnitude;
* flips per idle policy — the same cells under parked-static,
  free-running, and recovery idling, isolating the design decision from
  the cell circuit.

The benchmarked kernel is the structural idle-state stress extraction
(netlist settle + pattern readout), the analysis that feeds every aging
run.
"""

import pytest

from _common import emit
from repro.analysis import ExperimentConfig, duty_ablation
from repro.analysis.render import render_e7
from repro.circuit import conventional_cell


@pytest.fixture(scope="module")
def result():
    res = duty_ablation(ExperimentConfig(n_chips=25))
    emit("e7_ablation_duty", render_e7(res))
    return res


class TestTable:
    def test_duty_leverage_is_monotone(self, result):
        assert result.duty_series.y == sorted(result.duty_series.y)

    def test_low_duty_approaches_zero_aging(self, result):
        assert result.duty_series.y[0] < 6.0

    def test_high_duty_approaches_conventional(self, result):
        """At percent-level duty the ARO loses most of its advantage."""
        rows = dict(result.policy_rows)
        assert result.duty_series.y[-1] > 0.5 * rows["ro-puf / parked static"]

    def test_recovery_beats_every_alternative(self, result):
        rows = dict(result.policy_rows)
        recovery = rows["aro-puf / recovery"]
        for label, value in rows.items():
            if label != "aro-puf / recovery":
                assert recovery < value, label

    def test_free_running_is_worst_case(self, result):
        """Free-running adds 50 % AC NBTI duty plus ten years of HCI."""
        rows = dict(result.policy_rows)
        assert rows["ro-puf / free running"] > rows["ro-puf / parked static"]

    def test_pattern_toggling_is_no_mitigation(self, result):
        """The firmware alternative to the ARO: periodically invert the
        parked pattern.  The t**(1/6) law discounts the halved duty by a
        mere 11 %, while the stress now scatters over every PMOS instead
        of two per ring — net effect: *more* differential aging, not
        less.  This is the ablation that justifies a circuit solution."""
        rows = dict(result.policy_rows)
        assert rows["ro-puf / parked toggling"] >= rows["ro-puf / parked static"] - 2.0
        assert rows["ro-puf / parked toggling"] > 3 * rows["aro-puf / recovery"]


class TestPerf:
    def test_perf_idle_stress_extraction(self, benchmark, result):
        cell = conventional_cell(5)
        pattern = benchmark(cell.idle_stress_pattern)
        assert pattern.shape == (5, 2)
