"""E3 — inter-chip Hamming distance (paper uniqueness table/figure).

Regenerates the uniqueness statistic and its histogram: the paper reports
**49.67 % for the ARO-PUF vs ~45 % for the conventional RO-PUF** (ideal
50 %); the conventional deficit comes from the systematic layout
component that the ARO's symmetric cell cancels.  The benchmarked kernel
is the all-pairs HD computation over the 50-chip population.
"""

import numpy as np
import pytest

from _common import emit
from repro.analysis import ExperimentConfig, uniqueness_experiment
from repro.analysis.render import render_e3
from repro.metrics import pairwise_fractional_hd

PAPER_CONV = 45.0
PAPER_ARO = 49.67


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig()


@pytest.fixture(scope="module")
def result(config):
    res = uniqueness_experiment(config)
    emit("e3_uniqueness", render_e3(res))
    return res


class TestTable:
    def test_conventional_band(self, result):
        assert result.reports["ro-puf"].percent() == pytest.approx(
            PAPER_CONV, abs=2.5
        )

    def test_aro_band(self, result):
        assert result.reports["aro-puf"].percent() == pytest.approx(
            PAPER_ARO, abs=1.5
        )

    def test_aro_strictly_better(self, result):
        assert abs(result.reports["aro-puf"].percent() - 50.0) < abs(
            result.reports["ro-puf"].percent() - 50.0
        )


class TestPerf:
    def test_perf_all_pairs_hd(self, benchmark, config, result):
        rng = np.random.default_rng(0)
        responses = rng.integers(0, 2, (config.n_chips, 128)).astype(np.uint8)
        dists = benchmark(pairwise_fractional_hd, responses)
        assert dists.shape == (config.n_chips * (config.n_chips - 1) // 2,)
