"""E2 — response bit flips vs years (paper headline figure).

Regenerates the bits-flipped-over-time series whose 10-year endpoints are
the abstract's headline: **32 % for the conventional RO-PUF vs 7.7 % for
the ARO-PUF**.  The benchmarked kernel is one full golden-response
evaluation of a 256-RO chip (frequencies + pairing + comparison).
"""

import pytest

from _common import emit
from repro.analysis import DEFAULT_YEARS, ExperimentConfig, aging_bitflips
from repro.analysis.render import render_e2
from repro.core import conventional_design, make_batch_study

PAPER_CONV_10Y = 32.0
PAPER_ARO_10Y = 7.7


@pytest.fixture(scope="module")
def result():
    res = aging_bitflips(ExperimentConfig(), years=DEFAULT_YEARS)
    emit("e2_bitflips_aging", render_e2(res))
    return res


class TestTable:
    def test_conventional_matches_paper_band(self, result):
        assert result.at_ten_years()["ro-puf"] == pytest.approx(
            PAPER_CONV_10Y, abs=4.0
        )

    def test_aro_matches_paper_band(self, result):
        assert result.at_ten_years()["aro-puf"] == pytest.approx(
            PAPER_ARO_10Y, abs=2.0
        )

    def test_flip_curves_monotone(self, result):
        for series in result.series.values():
            assert series.y == sorted(series.y)

    def test_improvement_factor_matches_paper_shape(self, result):
        """The paper's ~4.2x flip-rate improvement, within a loose band."""
        final = result.at_ten_years()
        assert 2.5 < final["ro-puf"] / final["aro-puf"] < 7.0


class TestPerf:
    def test_perf_population_aged_responses(self, benchmark, result):
        """Hot kernel: all 50 chips' aged golden responses in one batched
        pass (memos cleared per round so every round does the real work)."""
        study = make_batch_study(conventional_design(), n_chips=50, rng=0)

        def kernel():
            study._freq_memo.clear()
            study.aging._memo.clear()
            return study.responses(t_years=10.0)

        bits = benchmark(kernel)
        assert bits.shape == (50, 128)
