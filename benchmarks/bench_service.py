"""Fleet-service observatory: auth throughput, instrumentation budget, SLO gate.

The served verifier's lifetime hot path is ``auth`` — one helper-store
lookup, one fractional-Hamming distance, one threshold decision.  This
module holds the serving-layer budgets the observability PR promises:

* ``TestAuthThroughput`` — the in-process service must clear
  ``AUTH_FLOOR_PER_S`` authentications per second with no tracer
  installed (the deployment default).  The artefact records the RED
  latency histograms next to the throughput so ``tools/bench_compare.py``
  can diff tail latency alongside rate.
* ``TestInstrumentationBudget`` — with no :class:`AsyncTracer`
  installed, the per-request span machinery may cost one module-slot
  read and one isinstance: the measured difference against a stub with
  the hook removed must stay under 2 %.  The traced path is measured
  too (informational): request spans, per-request trace ids and lane
  parking do real work and carry a real price.
* ``TestSloGate`` — the declarative SLO spec must turn red when a
  latency regression is injected through the service's test hook, and
  stay green on the clean service; this is the bench-level mirror of
  ``repro loadgen --inject-latency-ms ... --slo-gate enforce``.

Run with::

    pytest benchmarks/bench_service.py
"""

import asyncio

import numpy as np
import pytest

from _common import best_of, emit
from repro import telemetry
from repro.service import DEFAULT_SLOS, FleetService, check_slos
from repro.telemetry import worst_status

N_CHIPS = 16
N_AUTHS = 5000
SEED = 20140324

#: the serving-layer headline gate: in-process, untraced auth rate
AUTH_FLOOR_PER_S = 10_000.0

#: the uninstalled span hook may cost one slot read + one isinstance
DISABLED_OVERHEAD_CEILING = 0.02


def _enrolled_service(**kwargs):
    """A fresh service with ``N_CHIPS`` chips enrolled from golden bits."""
    service = FleetService(seed=SEED, **kwargs)
    rng = np.random.default_rng(7)
    bits = {
        chip_id: rng.integers(0, 2, service.response_bits, dtype=np.uint8)
        for chip_id in range(N_CHIPS)
    }

    async def enroll_all():
        for chip_id, golden in bits.items():
            reply = await service.enroll(chip_id, [golden])
            assert reply["outcome"] == "ok"

    asyncio.run(enroll_all())
    return service, bits


def _auth_round(service, bits, n=N_AUTHS):
    """A callable driving ``n`` genuine auths through one event loop."""
    requests = [(i % N_CHIPS, bits[i % N_CHIPS]) for i in range(n)]

    async def hammer():
        for chip_id, response in requests:
            await service.auth(chip_id, response)

    return lambda: asyncio.run(hammer())


@pytest.mark.slow
class TestAuthThroughput:
    def test_auth_floor(self):
        assert telemetry.active() is None  # the deployment default
        service, bits = _enrolled_service()
        t = best_of(_auth_round(service, bits), rounds=7)
        per_s = N_AUTHS / t
        metrics = service.red.metrics()
        assert metrics["auth.availability"] == 1.0  # genuine fleet, all ok
        emit(
            "service_auth",
            f"in-process fleet service, {N_CHIPS} chips enrolled, "
            f"{N_AUTHS} genuine auths per round (untraced)\n"
            f"  best round : {t * 1e3:8.2f} ms\n"
            f"  throughput : {per_s:12,.0f} auth/s  "
            f"(floor {AUTH_FLOOR_PER_S:,.0f})\n"
            f"  p50 / p99  : {metrics['auth.p50_ms']:.4f} / "
            f"{metrics['auth.p99_ms']:.4f} ms",
            values={"wall_s": t},
            histograms=service.red.summaries(),
            roofline={"auth_per_s": per_s},
        )
        assert per_s >= AUTH_FLOOR_PER_S, (
            f"untraced auth path serves {per_s:,.0f} req/s; "
            f"floor is {AUTH_FLOOR_PER_S:,.0f}"
        )


@pytest.mark.slow
class TestInstrumentationBudget:
    def test_disabled_hook_share_of_a_request(self):
        """What the lean path pays for the hook is < 2 % of a request.

        The disabled-path preamble is one module-slot read and one
        isinstance; this measures exactly that snippet per call (tight
        loop, loop overhead subtracted) against the measured per-request
        cost of the untraced auth driver.  The true ratio is a fraction
        of a percent, so the gate stays stable even on boxes whose
        wall-clock noise makes an end-to-end A/B diff unreadable.
        """
        import repro.telemetry.tracer as _tracer_mod
        from repro.telemetry import AsyncTracer

        n = 200_000

        def hook_loop():
            for _ in range(n):
                tracer = _tracer_mod._active
                if isinstance(tracer, AsyncTracer):  # pragma: no cover
                    raise AssertionError("no tracer may be installed")

        def empty_loop():
            for _ in range(n):
                pass

        t_hook = best_of(hook_loop, rounds=9)
        t_empty = best_of(empty_loop, rounds=9)
        hook_per_call = max(t_hook - t_empty, 0.0) / n
        service, bits = _enrolled_service()
        request_s = best_of(_auth_round(service, bits), rounds=7) / N_AUTHS
        share = hook_per_call / request_s
        emit(
            "service_disabled_hook",
            f"uninstalled request hook (slot read + isinstance)\n"
            f"  hook per call   : {hook_per_call * 1e9:8.1f} ns\n"
            f"  request per call: {request_s * 1e6:8.2f} us\n"
            f"  hook share      : {100.0 * share:8.3f} %",
            values={
                "hook_ns": hook_per_call * 1e9,
                "request_us": request_s * 1e6,
                "hook_share": share,
            },
        )
        assert share <= DISABLED_OVERHEAD_CEILING, (
            f"disabled request hook costs {share:.2%} of an untraced "
            f"request ({hook_per_call * 1e9:.0f} ns of "
            f"{request_s * 1e6:.1f} us); ceiling is "
            f"{DISABLED_OVERHEAD_CEILING:.0%}"
        )

    #: interleaved hooked/stubbed round pairs; the median of the paired
    #: ratios is robust to sustained machine drift that best-of-N over
    #: two separate blocks mistakes for overhead
    N_PAIRS = 25

    #: loose end-to-end ceiling: wall-clock A/B on a shared box cannot
    #: resolve the sub-percent true effect, but it does catch the
    #: failure this guards against — span state built before the slot
    #: check — which costs tens of percent, not single digits
    DRIFT_CEILING = 0.10

    def test_disabled_tracer_overhead(self, monkeypatch):
        """End-to-end drift check: the real driver vs a hook-free stub.

        Baseline replaces ``_serve`` with a copy that skips the tracer
        slot read and isinstance, so the measured difference is exactly
        what the real disabled path does beyond being called.  If the
        driver ever starts building span state before checking the
        slot, this gate catches it.  Each measurement pair runs the
        hooked and stubbed drivers back to back (shared machine state);
        the reported overhead is the median of the paired ratios, which
        a single noisy round cannot move.
        """
        import statistics
        import time as _time

        assert telemetry.active() is None
        service, bits = _enrolled_service()
        hooked_round = _auth_round(service, bits)

        async def _serve_stub(self, endpoint, chip_id, impl):
            t0 = _time.perf_counter()
            outcome = "internal"
            try:
                if self.inject_latency_s > 0.0:
                    await asyncio.sleep(self.inject_latency_s)
                outcome, body = impl()
                return {"outcome": outcome, **body}
            finally:
                duration_s = _time.perf_counter() - t0
                self.red.observe(endpoint, outcome, duration_s)
                if self.audit is not None:
                    self.audit.append(
                        endpoint=endpoint,
                        outcome=outcome,
                        duration_ms=duration_s * 1e3,
                        chip_id=chip_id,
                        trace_id=None,
                    )

        real_serve = FleetService._serve
        ratios = []
        hooked_s = []
        stubbed_s = []
        with monkeypatch.context() as m:
            hooked_round()  # warm both drivers outside the timed pairs
            m.setattr(FleetService, "_serve", _serve_stub)
            hooked_round()
            for _ in range(self.N_PAIRS):
                m.setattr(FleetService, "_serve", real_serve)
                t0 = _time.perf_counter()
                hooked_round()
                t_hooked = _time.perf_counter() - t0
                m.setattr(FleetService, "_serve", _serve_stub)
                t0 = _time.perf_counter()
                hooked_round()
                t_stubbed = _time.perf_counter() - t0
                ratios.append(t_hooked / t_stubbed - 1.0)
                hooked_s.append(t_hooked)
                stubbed_s.append(t_stubbed)
        overhead = statistics.median(ratios)
        emit(
            "service_disabled_overhead",
            f"fleet-service auth driver, {N_AUTHS} auths per round, "
            f"{self.N_PAIRS} interleaved pairs\n"
            f"  hook stubbed out: {min(stubbed_s) * 1e3:8.2f} ms (best)\n"
            f"  hook disabled   : {min(hooked_s) * 1e3:8.2f} ms (best)\n"
            f"  median overhead : {100.0 * overhead:8.2f} %",
            values={
                "stubbed_s": min(stubbed_s),
                "hooked_s": min(hooked_s),
                "disabled_overhead": max(overhead, 0.0),
            },
        )
        assert overhead <= self.DRIFT_CEILING, (
            f"disabled request driver costs {overhead:+.1%} (median of "
            f"{self.N_PAIRS} paired rounds) over a hook-free stub; "
            f"drift ceiling is {self.DRIFT_CEILING:.0%}"
        )

    #: traced rounds are shorter: every request opens a span, stamps a
    #: trace id into the reply and parks a tree on a recycled lane
    N_TRACED = 500

    def test_traced_path_price_is_informational(self):
        """Measure (never gate) the fully-traced request driver.

        Request tracing is opt-in per run, so its price is recorded for
        ``bench_compare`` trendlines rather than gated; the test only
        asserts the traced replies actually carry trace ids and that
        sequential requests recycle a single export lane.
        """
        service, bits = _enrolled_service()
        t_untraced = best_of(
            _auth_round(service, bits, n=self.N_TRACED), rounds=9
        )
        tracer = telemetry.install(telemetry.AsyncTracer())
        try:
            t_traced = best_of(
                _auth_round(service, bits, n=self.N_TRACED), rounds=9
            )

            async def one():
                return await service.auth(0, bits[0])

            reply = asyncio.run(one())
        finally:
            telemetry.uninstall()
        assert reply["trace_id"] > 0
        assert set(tracer.remote_lanes) == {"req-0"}  # one recycled lane
        per_s = self.N_TRACED / t_traced
        emit(
            "service_traced",
            f"fleet-service auth driver, {self.N_TRACED} auths per round\n"
            f"  untraced : {t_untraced * 1e3:8.2f} ms\n"
            f"  traced   : {t_traced * 1e3:8.2f} ms "
            f"({per_s:,.0f} auth/s)\n"
            f"  price    : {t_traced / t_untraced:8.2f} x",
            values={
                "untraced_s": t_untraced,
                "traced_s": t_traced,
                "traced_auth_per_s": per_s,
            },
        )


class TestSloGate:
    def test_clean_service_passes_default_slos(self):
        service, bits = _enrolled_service()
        _auth_round(service, bits, n=64)()
        verdicts = check_slos(service.red.metrics(), DEFAULT_SLOS)
        assert worst_status(verdicts) == "pass"

    def test_injected_latency_turns_the_gate_red(self):
        """The SLO regression hook: +60 ms per request must fail the
        default auth-p99 objective (fail_at 50 ms)."""
        service, bits = _enrolled_service(inject_latency_s=0.06)
        _auth_round(service, bits, n=8)()
        verdicts = check_slos(service.red.metrics(), DEFAULT_SLOS)
        by_name = {v.slo.name: v.status for v in verdicts}
        assert by_name["auth-p99-latency"] == "fail"
        assert worst_status(verdicts) == "fail"
