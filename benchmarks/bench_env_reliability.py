"""E5 — intra-chip HD under temperature and supply corners (paper's
environmental-reliability figure).

Regenerates the flips-vs-corner series: golden responses enrolled with
majority voting at the nominal corner, single noisy regenerations at each
environmental corner.  The benchmarked kernel is one majority-voted noisy
evaluation (the readout datapath with counters and jitter).
"""

import pytest

from _common import emit
from repro.analysis import ExperimentConfig, environmental_reliability
from repro.analysis.render import render_e5
from repro.core import conventional_design, make_batch_study, voted_response


@pytest.fixture(scope="module")
def result():
    res = environmental_reliability(ExperimentConfig(n_chips=20))
    emit("e5_env_reliability", render_e5(res))
    return res


class TestTable:
    def test_nominal_corner_is_quiet(self, result):
        """Re-reading at the enrolment corner only sees jitter flips."""
        for series in result.temperature_series.values():
            assert series.y_at(25.0) < 3.0

    def test_extremes_flip_more_than_nominal(self, result):
        for series in result.temperature_series.values():
            assert series.y_at(85.0) >= series.y_at(25.0)
            assert series.y_at(-20.0) >= series.y_at(25.0)

    def test_corner_flips_stay_below_aging_flips(self, result):
        """Shape check: environmental flips (a few %) are the secondary
        effect; aging (E2) is the dominant one the paper addresses."""
        worst = max(
            max(s.y) for s in result.temperature_series.values()
        )
        assert worst < 15.0

    def test_voltage_sag_flips_bits(self, result):
        conv = result.voltage_series["ro-puf"]
        assert conv.y_at(0.9) >= conv.y_at(1.0)


class TestPerf:
    def test_perf_voted_noisy_evaluation(self, benchmark, result):
        """Hot kernel: a 5-vote noisy enrolment of the whole population
        through the chip-axis-aware readout datapath."""
        study = make_batch_study(conventional_design(), n_chips=50, rng=0)
        design = study.design
        pairs = design.pairing.pairs(design.n_ros)
        freqs = study.frequencies()
        bits = benchmark(
            lambda: voted_response(
                freqs, pairs, design.tech, design.readout, votes=5, rng=3
            )
        )
        assert bits.shape == (50, 128)
