#!/usr/bin/env python
"""Technology-scaling outlook: does the ARO advantage survive 45 nm?

The paper evaluates at 90 nm.  Scaled nodes have *more* device mismatch
(good for PUF entropy) but also lower supply headroom and, historically,
worse BTI variability — so it is worth asking whether the ARO-PUF's
margins move.  This study reruns the headline metrics on the 45 nm-like
card (`repro.transistor.ptm45`) next to the 90 nm baseline.

Run with::

    python examples/technology_scaling.py
"""

from repro import aro_design, conventional_design, make_study
from repro.analysis import format_table
from repro.metrics import reliability, uniqueness
from repro.transistor import ptm45, ptm90

N_CHIPS = 20
N_ROS = 256
YEARS = 10.0


def evaluate(tech) -> list:
    rows = []
    for factory in (conventional_design, aro_design):
        design = factory(n_ros=N_ROS, tech=tech)
        study = make_study(design, n_chips=N_CHIPS, rng=31)
        fresh = study.responses()
        aged = study.responses(t_years=YEARS)
        freq = study.instances[0].frequencies()
        rows.append(
            [
                tech.name,
                design.name,
                f"{freq.mean() / 1e9:.2f} GHz",
                f"{uniqueness(fresh).percent():.2f} %",
                f"{reliability(fresh, aged).percent():.2f} %",
            ]
        )
    return rows


def main() -> None:
    rows = evaluate(ptm90()) + evaluate(ptm45())
    print(
        format_table(
            ["node", "design", "mean freq", "inter-chip HD", "flips @10y"],
            rows,
            title=f"Technology scaling, {N_CHIPS} chips x {N_ROS} ROs",
        )
    )
    print(
        "\nReading: the 45 nm card's larger mismatch widens the process "
        "margin between paired oscillators, so the *same* aging hurts "
        "slightly less — but the conventional design stays unusable and "
        "the ARO's recovery gating transfers unchanged."
    )


if __name__ == "__main__":
    main()
