#!/usr/bin/env python
"""Device-key lifecycle: size the ECC, enrol at wafer test, regenerate aged.

The scenario the paper's introduction motivates: a device must carry a
128-bit cryptographic key for its whole life without storing it.  The
script

1. sizes a minimum-area key generator for each PUF design at its measured
   worst-case 10-year error rate (experiment E6's machinery),
2. enrols a small production lot (helper data is the only thing stored),
3. fast-forwards ten years of NBTI/HCI aging, and
4. regenerates every key from the aged silicon and checks it.

Run with::

    python examples/key_provisioning.py
"""

from repro import FuzzyExtractor, aro_design, conventional_design, make_study
from repro.analysis import format_table
from repro.ecc import standard_codes
from repro.keygen import KeyRecoveryError, best_design

KEY_BITS = 128
FAILURE_TARGET = 1e-6
LOT_SIZE = 6
YEARS = 10.0

#: worst-chip 10-year raw bit-error rates measured by experiment E2
WORST_CASE_ERROR = {"ro-puf": 0.41, "aro-puf": 0.125}


def provision_and_field_test(design_factory, p_design, palette):
    """Return (design point, keys recovered, lot size)."""
    point = best_design(
        p_design,
        design_factory(),
        key_bits=KEY_BITS,
        failure_target=FAILURE_TARGET,
        bch_palette=palette,
        repetitions=tuple(range(1, 640, 2)),
        max_raw_bits=5_000_000,
    )
    extractor = FuzzyExtractor(point.codec)

    design = design_factory(n_ros=point.n_ros)
    study = make_study(design, n_chips=LOT_SIZE, rng=7)

    vault = {}  # chip_id -> (helper, key) ; helper is the only NVM content
    for inst in study.instances:
        response = inst.golden_response()[: extractor.response_bits]
        helper, key = extractor.enroll(response, rng=inst.chip_id)
        vault[inst.chip_id] = (helper, key)

    recovered = 0
    for inst in study.aged_instances(YEARS):
        response = inst.golden_response()[: extractor.response_bits]
        helper, key = vault[inst.chip_id]
        try:
            if extractor.reproduce(response, helper) == key:
                recovered += 1
        except KeyRecoveryError:
            pass
    return point, recovered


def main() -> None:
    palette = standard_codes()
    rows = []
    points = {}
    for name, factory in (("ro-puf", conventional_design), ("aro-puf", aro_design)):
        point, recovered = provision_and_field_test(
            factory, WORST_CASE_ERROR[name], palette
        )
        points[name] = point
        rows.append(
            [
                name,
                str(point.codec),
                point.raw_bits,
                point.n_ros,
                f"{point.total_area / 1e3:.0f}e3 um^2",
                f"{recovered}/{LOT_SIZE}",
            ]
        )

    print(
        format_table(
            ["design", "key codec", "raw bits", "ROs", "PUF+ECC area", "keys @10y"],
            rows,
            title=(
                f"128-bit key generators sized for worst-case 10-year error "
                f"(P_fail <= {FAILURE_TARGET:g})"
            ),
        )
    )
    ratio = points["ro-puf"].total_area / points["aro-puf"].total_area
    print(
        f"\nARO-PUF area advantage at this margin policy: {ratio:.1f}x "
        "(the paper reports ~24x; see EXPERIMENTS.md E6 for the policy sweep)."
    )


if __name__ == "__main__":
    main()
