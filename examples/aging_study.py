#!/usr/bin/env python
"""Mission-profile sensitivity study: what actually drives PUF aging.

Sweeps the knobs a reliability engineer controls — silicon temperature,
how often the key is regenerated, and what the idle oscillators do — and
prints their effect on the 10-year bit-flip rate of both designs.

Run with::

    python examples/aging_study.py
"""

from repro import (
    IdlePolicy,
    MissionProfile,
    aro_design,
    conventional_design,
    make_batch_study,
)
from repro.analysis import format_table
from repro.environment import celsius
from repro.metrics import reliability

N_CHIPS = 15
N_ROS = 128
YEARS = 10.0


def flips(design, mission, idle_policy=None, seed=3) -> float:
    # the batched engine evaluates the whole population per call — with
    # 16 mission variants swept here, that's the difference between a
    # blink and a coffee break at full scale
    study = make_batch_study(
        design, N_CHIPS, mission=mission, idle_policy=idle_policy, rng=seed
    )
    return reliability(study.responses(), study.responses(t_years=YEARS)).percent()


def main() -> None:
    conv = conventional_design(n_ros=N_ROS)
    aro = aro_design(n_ros=N_ROS)

    # -- temperature: NBTI is Arrhenius-accelerated
    temp_rows = []
    for temp_c in (25, 45, 65, 85):
        mission = MissionProfile(temperature_k=celsius(temp_c))
        temp_rows.append(
            [f"{temp_c} C", f"{flips(conv, mission):.2f} %", f"{flips(aro, mission):.2f} %"]
        )
    print(
        format_table(
            ["silicon temp", "ro-puf flips @10y", "aro-puf flips @10y"],
            temp_rows,
            title="Temperature sensitivity (eval duty 2e-7)",
        )
    )

    # -- activity: the ARO only ages while it oscillates
    duty_rows = []
    for duty, label in (
        (2e-8, "1 key regen / day"),
        (2e-7, "~7 regens / day (default)"),
        (2e-5, "continuous challenge-response"),
        (2e-3, "pathological (0.2 % duty)"),
    ):
        mission = MissionProfile(eval_duty=duty)
        duty_rows.append([label, f"{duty:g}", f"{flips(aro, mission):.2f} %"])
    print()
    print(
        format_table(
            ["usage pattern", "eval duty", "aro-puf flips @10y"],
            duty_rows,
            title="ARO-PUF activity sensitivity (45 C)",
        )
    )

    # -- idle policy: the design decision the paper is about
    policy_rows = []
    mission = MissionProfile()
    for label, design, policy in (
        ("ro-puf, parked static (stock)", conv, None),
        ("ro-puf, free running", conv, IdlePolicy.FREE_RUNNING),
        ("aro-puf, recovery gating (stock)", aro, None),
        ("aro-puf, free running", aro, IdlePolicy.FREE_RUNNING),
    ):
        policy_rows.append([label, f"{flips(design, mission, policy):.2f} %"])
    print()
    print(
        format_table(
            ["idle policy", "flips @10y"],
            policy_rows,
            title="What the idle oscillators do decides everything",
        )
    )


if __name__ == "__main__":
    main()
