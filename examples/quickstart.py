#!/usr/bin/env python
"""Quickstart: fabricate both PUFs, measure quality, age them ten years.

Run with::

    python examples/quickstart.py

This walks the public API end to end in under a minute: Monte-Carlo
fabrication, golden responses, the paper's quality metrics, and the
aging comparison that motivates the ARO-PUF.
"""

from repro import aro_design, conventional_design, make_study
from repro.analysis import format_table
from repro.metrics import reliability, uniqueness, uniformity

N_CHIPS = 20
N_ROS = 256  # 128 response bits via neighbour pairing
YEARS = 10.0


def main() -> None:
    rows = []
    for factory in (conventional_design, aro_design):
        design = factory(n_ros=N_ROS)

        # fabricate a seeded Monte-Carlo population with aging trajectories
        study = make_study(design, n_chips=N_CHIPS, rng=42)

        # enrolment-time golden responses, one 128-bit response per chip
        fresh = study.responses()

        # the same chips after ten years in the field
        aged = study.responses(t_years=YEARS)

        uniq = uniqueness(fresh)
        unif = uniformity(fresh)
        flips = reliability(fresh, aged)
        freq = study.instances[0].frequencies()

        rows.append(
            [
                design.name,
                f"{freq.mean() / 1e9:.2f} GHz",
                f"{uniq.percent():.2f} %",
                f"{unif.percent():.1f} %",
                f"{flips.percent():.2f} %",
                f"{100 * flips.worst_flip_fraction:.2f} %",
            ]
        )

    print(
        format_table(
            [
                "design",
                "mean RO freq",
                "inter-chip HD",
                "uniformity",
                f"bit flips @ {YEARS:.0f}y",
                "worst chip",
            ],
            rows,
            title=f"RO-PUF vs ARO-PUF, {N_CHIPS} chips x {N_ROS} ROs (seeded)",
        )
    )
    print(
        "\nPaper anchors: conventional ~32 % flips / ~45 % HD, "
        "ARO 7.7 % flips / 49.67 % HD."
    )


if __name__ == "__main__":
    main()
