#!/usr/bin/env python
"""Gate-level view: park, launch, and measure the two oscillator cells.

Everything the Monte-Carlo experiments do runs on the vectorised analytic
timing model; this example drives the *structural* netlists through the
event-driven logic simulator instead, showing

* the parked logic state of each cell (where the conventional cell's DC
  NBTI stress comes from, and why the ARO cell has none),
* the enable/launch sequencing of the ARO cell, and
* oscillation-period measurement from simulated waveforms, cross-checked
  against the analytic model on the same device sample.

Run with::

    python examples/structural_simulation.py
"""

import numpy as np

from repro.analysis import format_table
from repro.circuit import (
    ENABLE,
    OSC_OUT,
    RECOVERY,
    EventSimulator,
    aro_cell,
    conventional_cell,
    measured_period,
    stage_input_nodes,
)
from repro.circuit.ring import LAUNCH
from repro.transistor import ptm90, transition_delay
from repro.variation import NMOS, PMOS, VariationModel


def show_parked_state(cell, inputs) -> None:
    net = cell.build()
    state = EventSimulator(net).settle(inputs)
    rows = []
    for stage, node in enumerate(stage_input_nodes(net)):
        level = int(state[node])
        stressed = "PMOS (NBTI!)" if level == 0 else "NMOS (weak PBTI)"
        rows.append([stage, node, level, stressed])
    print(
        format_table(
            ["stage", "input node", "parked level", "device under DC stress"],
            rows,
            title=f"{net.name}: parked state",
        )
    )


def main() -> None:
    conv = conventional_cell(5)
    aro = aro_cell(5)

    print("=== Parked (idle) states ===\n")
    show_parked_state(conv, {ENABLE: False})
    print()
    show_parked_state(aro, {ENABLE: False, LAUNCH: False, RECOVERY: True})

    print("\n=== ARO launch sequencing ===\n")
    net = aro_cell(5).build()
    sim = EventSimulator(net)
    parked = sim.settle({ENABLE: False, LAUNCH: False, RECOVERY: True})
    ready = sim.settle(
        {ENABLE: True, LAUNCH: False, RECOVERY: True}, initial=parked
    )
    print("ring muxes closed, launch mux still steering recovery:")
    print("  chain state:", {n: int(ready[n]) for n in sorted(ready) if n.startswith("n") or n == OSC_OUT})
    result = sim.run(
        {ENABLE: True, LAUNCH: True, RECOVERY: True}, t_end=3e-9, initial=ready
    )
    print(
        f"  launch raised: {result.waveforms[OSC_OUT].n_toggles} output "
        f"toggles in 3 ns -> oscillating"
    )

    print("\n=== Waveform dump ===\n")
    from repro.circuit import dump_vcd

    vcd_path = dump_vcd(result, "aro_bringup.vcd", nodes=[OSC_OUT, "m0", "n0"])
    print(f"wrote {vcd_path} — open in GTKWave to see the launch transient")

    print("\n=== Structural vs analytic timing on one sampled chip ===\n")
    tech = ptm90()
    chip = VariationModel(tech=tech, n_ros=4, n_stages=5).sample_chip(rng=1)
    rows = []
    for ro in range(chip.n_ros):
        t_fall = transition_delay(chip.vth[ro, :, NMOS], tech)
        t_rise = transition_delay(chip.vth[ro, :, PMOS], tech)
        delays = (0.5 * (t_rise + t_fall)).tolist()
        structural = measured_period(conv, delays)
        analytic = 2 * (delays[0] * conv.stage0_penalty + sum(delays[1:]))
        rows.append(
            [
                ro,
                f"{structural * 1e12:.2f} ps",
                f"{analytic * 1e12:.2f} ps",
                f"{1e-6 / structural:.1f} MHz",
            ]
        )
    print(
        format_table(
            ["RO", "event-sim period", "analytic period", "frequency"],
            rows,
            title="conventional cell, 4 ROs with real process variation",
        )
    )


if __name__ == "__main__":
    main()
