#!/usr/bin/env python
"""Device authentication over a product lifetime (and how it is attacked).

The abstract's first use case: the PUF as a chip-specific identifier.  A
verifier enrols a lot of chips, the chips ship, and the verifier later
authenticates them from aged silicon.  The script then switches sides and
mounts the sorting modeling attack on an eavesdropped CRP trace.

Run with::

    python examples/device_authentication.py
"""

import numpy as np

from repro import aro_design, conventional_design, make_study
from repro.analysis import format_table
from repro.protocol import Verifier, attack_curve, authentication_study

N_CHIPS = 12
N_ROS = 128
THRESHOLD = 0.25


def main() -> None:
    studies = {
        "ro-puf": make_study(conventional_design(n_ros=N_ROS), N_CHIPS, rng=17),
        "aro-puf": make_study(aro_design(n_ros=N_ROS), N_CHIPS, rng=17),
    }

    # -- lifetime authentication
    years = (0.0, 5.0, 10.0)
    res = authentication_study(
        studies, years=years, threshold=THRESHOLD, batch_size=16, n_challenges=80
    )
    rows = []
    for name in ("ro-puf", "aro-puf"):
        eer, thr = res.equal_error_rate(name, 10.0)
        rows.append(
            [
                name,
                " / ".join(f"{100 * r:.0f}%" for r in res.frr[name]),
                f"{100 * res.far[name]:.0f}%",
                f"{np.mean(res.genuine_distances[name][10.0]):.3f}",
                f"{np.mean(res.impostor_distances[name]):.3f}",
                f"{100 * eer:.1f}% @ {thr:.2f}",
            ]
        )
    print(
        format_table(
            [
                "design",
                f"FRR at {years} y",
                "FAR",
                "genuine dist @10y",
                "impostor dist",
                "best achievable EER",
            ],
            rows,
            title=f"Authentication over the mission (threshold {THRESHOLD})",
        )
    )

    # -- a single protocol round, shown concretely
    verifier = Verifier(threshold=THRESHOLD, batch_size=8)
    aro_study = studies["aro-puf"]
    verifier.enroll(aro_study.instances[0], n_challenges=32, rng=99)
    genuine = verifier.authenticate(
        0, aro_study.aged_instances(10.0)[0], rng=1
    )
    impostor = verifier.authenticate(0, aro_study.instances[1], rng=1)
    print(
        f"\nSingle rounds (ARO, aged 10y): genuine distance "
        f"{genuine.distance:.3f} -> {'ACCEPT' if genuine.accepted else 'REJECT'}; "
        f"impostor distance {impostor.distance:.3f} -> "
        f"{'ACCEPT' if impostor.accepted else 'REJECT'}"
    )

    # -- the attacker's view: eavesdropped CRPs compose transitively
    inst = studies["aro-puf"].instances[0]
    curve = attack_curve(inst, train_sizes=(1, 4, 16, 64), n_test=24, rng=3)
    attack_rows = [
        [n, f"{100 * acc:.1f} %", f"{100 * cov:.1f} %"] for n, acc, cov in curve
    ]
    print()
    print(
        format_table(
            ["eavesdropped CRPs", "prediction accuracy", "order knowledge"],
            attack_rows,
            title=(
                "Sorting attack on the same (ARO) chip — why responses must "
                "stay on-chip and challenges are never replayed"
            ),
        )
    )


if __name__ == "__main__":
    main()
