"""Persistence: save and load fabricated chip populations.

Large Monte-Carlo populations (the worst-case key-generation design point
fabricates hundreds of thousands of oscillators) are worth caching between
analysis sessions.  Chips serialise losslessly to ``.npz`` — threshold
arrays, positions, temperature-coefficient mismatch and identity — so a
reloaded population continues any experiment bit-for-bit (aging
prefactors are drawn by the :class:`~repro.aging.AgingSimulator` from the
caller's seed, exactly as for a freshly sampled population).
"""

from __future__ import annotations

import pathlib
from typing import List, Union

import numpy as np

from .variation.chip import Chip, ChipPopulation

PathLike = Union[str, pathlib.Path]

#: format marker stored in every archive (bump on layout changes)
FORMAT_VERSION = 1


def save_population(population: ChipPopulation, path: PathLike) -> None:
    """Serialise a population to a compressed ``.npz`` archive."""
    if len(population) == 0:
        raise ValueError("refusing to save an empty population")
    arrays = {
        "format_version": np.array([FORMAT_VERSION]),
        "n_chips": np.array([len(population)]),
    }
    for i, chip in enumerate(population):
        arrays[f"vth_{i}"] = chip.vth
        arrays[f"positions_{i}"] = chip.positions
        arrays[f"tc_scale_{i}"] = chip.tc_scale
        arrays[f"chip_id_{i}"] = np.array([chip.chip_id])
    np.savez_compressed(path, **arrays)


def load_population(path: PathLike) -> ChipPopulation:
    """Load a population previously stored with :func:`save_population`."""
    path = pathlib.Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    with np.load(path) as data:
        version = int(data["format_version"][0])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"archive format {version} not supported "
                f"(this build reads {FORMAT_VERSION})"
            )
        n_chips = int(data["n_chips"][0])
        chips: List[Chip] = []
        for i in range(n_chips):
            chips.append(
                Chip(
                    vth=data[f"vth_{i}"],
                    positions=data[f"positions_{i}"],
                    tc_scale=data[f"tc_scale_{i}"],
                    chip_id=int(data[f"chip_id_{i}"][0]),
                )
            )
    return ChipPopulation(chips=chips)


def save_chip(chip: Chip, path: PathLike) -> None:
    """Serialise a single chip (thin wrapper over the population format)."""
    save_population(ChipPopulation(chips=[chip]), path)


def load_chip(path: PathLike) -> Chip:
    """Load a single chip stored with :func:`save_chip`."""
    population = load_population(path)
    if len(population) != 1:
        raise ValueError(
            f"archive holds {len(population)} chips; use load_population"
        )
    return population[0]
