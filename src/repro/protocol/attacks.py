"""Modeling attacks on RO-PUF authentication: the sorting attack.

An RO-PUF's challenge-to-pair mapping is public (the challenge seeds a
permutation), so every disclosed response bit hands the attacker one
ground-truth comparison ``f_a > f_b``.  Comparisons compose: once the
attacker has observed enough CRPs to connect oscillators ``a`` and ``b``
through a chain of comparisons, the pair's response is predictable without
touching the device — the PUF's entropy is *at most* ``log2(n!)``, not
``2^challenge_bits``.

:func:`sorting_attack` implements the attack (transitive closure over the
observed comparison digraph) and :func:`attack_curve` measures prediction
accuracy versus the number of disclosed CRPs — experiment E11.  The point
it makes for this paper: the attack works *identically* against the
conventional RO-PUF and the ARO-PUF (aging resistance is orthogonal to
modeling resistance), which is why the key-generation mode — where
responses never leave the chip — is the deployment the area argument (E6)
is about, and why the authentication verifier (E10) must never reuse
challenges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import networkx as nx

from .._rng import RngLike, as_generator
from ..core.base import RoPufInstance
from ..core.pairing import RandomDisjointPairing
from .crp import CrpTable, harvest_crps


@dataclass(frozen=True)
class SortingAttackModel:
    """The attacker's knowledge: a digraph of inferred speed orderings.

    Edge ``u -> v`` means "oscillator ``v`` is faster than ``u``".
    """

    graph: nx.DiGraph
    n_ros: int

    @property
    def n_comparisons(self) -> int:
        """Directly observed comparisons (graph edges)."""
        return self.graph.number_of_edges()

    def known_order_fraction(self) -> float:
        """Fraction of all RO pairs whose order the model can derive."""
        closure = nx.transitive_closure(self.graph)
        decided = closure.number_of_edges()
        total = self.n_ros * (self.n_ros - 1) // 2
        return decided / total

    def predict_bit(self, a: int, b: int, rng: RngLike = None) -> Tuple[int, bool]:
        """Predict ``sign(f_a > f_b)``; returns ``(bit, was_derived)``.

        Unknown orderings fall back to a coin flip (``was_derived=False``).
        """
        if nx.has_path(self.graph, b, a):
            return 1, True
        if nx.has_path(self.graph, a, b):
            return 0, True
        gen = as_generator(rng)
        return int(gen.integers(0, 2)), False


def build_attack_model(table: CrpTable, n_ros: int) -> SortingAttackModel:
    """Digest disclosed CRPs into the comparison digraph."""
    pairing = RandomDisjointPairing()
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n_ros))
    for challenge, response in zip(table.challenges, table.responses):
        pairs = pairing.pairs(n_ros, int(challenge))
        for (a, b), bit in zip(pairs, response):
            if bit:  # f_a > f_b : b -> a
                graph.add_edge(int(b), int(a))
            else:
                graph.add_edge(int(a), int(b))
    return SortingAttackModel(graph=graph, n_ros=n_ros)


def sorting_attack(
    train: CrpTable,
    test: CrpTable,
    n_ros: int,
    rng: RngLike = None,
) -> float:
    """Train on disclosed CRPs, return bit-prediction accuracy on unseen ones."""
    model = build_attack_model(train, n_ros)
    pairing = RandomDisjointPairing()
    gen = as_generator(rng)
    correct = 0
    total = 0
    for challenge, response in zip(test.challenges, test.responses):
        pairs = pairing.pairs(n_ros, int(challenge))
        for (a, b), bit in zip(pairs, response):
            predicted, _ = model.predict_bit(int(a), int(b), rng=gen)
            correct += int(predicted == int(bit))
            total += 1
    return correct / total


def attack_curve(
    instance: RoPufInstance,
    train_sizes: Sequence[int] = (1, 2, 4, 8, 16, 32),
    n_test: int = 32,
    rng: RngLike = None,
) -> List[Tuple[int, float, float]]:
    """E11 series: (disclosed CRPs, prediction accuracy, order coverage).

    One harvested table is split so train/test challenges never overlap.
    """
    gen = as_generator(rng)
    max_train = max(train_sizes)
    table = harvest_crps(instance, max_train + n_test, rng=gen)
    rows = []
    for n_train in train_sizes:
        train = CrpTable(
            challenges=table.challenges[:n_train],
            responses=table.responses[:n_train],
            chip_id=table.chip_id,
        )
        test = CrpTable(
            challenges=table.challenges[max_train:],
            responses=table.responses[max_train:],
            chip_id=table.chip_id,
        )
        model = build_attack_model(train, instance.design.n_ros)
        accuracy = sorting_attack(train, test, instance.design.n_ros, rng=gen)
        rows.append((n_train, accuracy, model.known_order_fraction()))
    return rows
