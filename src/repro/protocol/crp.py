"""Challenge-response pair (CRP) harvesting.

The abstract's first use case for a PUF is the *chip-specific identifier*:
a verifier stores a table of challenge-response pairs per chip at
enrolment and later authenticates the device by replaying challenges.
This module produces those tables from any
:class:`~repro.core.base.RoPufInstance` using the challenge-seeded random
pairing (each challenge selects a fresh random disjoint matching of the
oscillators, which is how RO-PUFs expose a large challenge space).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._rng import RngLike, as_generator
from ..core.base import RoPufInstance
from ..core.pairing import RandomDisjointPairing
from ..environment.conditions import OperatingConditions


@dataclass(frozen=True)
class CrpTable:
    """A verifier-side table of challenges and enrolled responses."""

    challenges: np.ndarray
    responses: np.ndarray
    chip_id: int

    def __post_init__(self) -> None:
        ch = np.asarray(self.challenges, dtype=np.int64)
        rs = np.asarray(self.responses, dtype=np.uint8)
        if ch.ndim != 1:
            raise ValueError("challenges must be a 1-D integer array")
        if rs.ndim != 2 or rs.shape[0] != ch.shape[0]:
            raise ValueError(
                "responses must have shape (n_challenges, n_bits) matching "
                "the challenge count"
            )
        object.__setattr__(self, "challenges", ch)
        object.__setattr__(self, "responses", rs)

    @property
    def n_challenges(self) -> int:
        return int(self.challenges.size)

    @property
    def n_bits(self) -> int:
        return int(self.responses.shape[1])

    def lookup(self, challenge: int) -> np.ndarray:
        """Enrolled response for ``challenge`` (raises if never enrolled)."""
        idx = np.nonzero(self.challenges == challenge)[0]
        if idx.size == 0:
            raise KeyError(f"challenge {challenge} is not in the table")
        return self.responses[int(idx[0])]

    def split(self, n_train: int) -> "tuple[CrpTable, CrpTable]":
        """Split into (train, test) tables — used by the attack analysis."""
        if not 0 < n_train < self.n_challenges:
            raise ValueError(
                f"n_train must be in (0, {self.n_challenges}), got {n_train}"
            )
        return (
            CrpTable(
                challenges=self.challenges[:n_train],
                responses=self.responses[:n_train],
                chip_id=self.chip_id,
            ),
            CrpTable(
                challenges=self.challenges[n_train:],
                responses=self.responses[n_train:],
                chip_id=self.chip_id,
            ),
        )


def harvest_crps(
    instance: RoPufInstance,
    n_challenges: int,
    *,
    rng: RngLike = None,
    conditions: Optional[OperatingConditions] = None,
    noisy: bool = False,
    votes: int = 1,
) -> CrpTable:
    """Collect a CRP table from one chip.

    Challenges are drawn without replacement from the 31-bit challenge
    space; each seeds a :class:`~repro.core.pairing.RandomDisjointPairing`
    matching.  Enrolment normally uses the noiseless golden path
    (``noisy=False``); pass ``noisy=True`` with ``votes`` for a
    measurement-faithful enrolment.
    """
    if n_challenges < 1:
        raise ValueError("n_challenges must be positive")
    gen = as_generator(rng)
    challenges = gen.choice(2**31 - 1, size=n_challenges, replace=False)

    import dataclasses as _dc

    design = _dc.replace(instance.design, pairing=RandomDisjointPairing())
    inst = design.instantiate(instance.chip)
    responses = []
    for i, challenge in enumerate(challenges):
        responses.append(
            inst.evaluate(
                int(challenge),
                conditions=conditions,
                noisy=noisy,
                votes=votes if noisy else 1,
                rng=None if not noisy else gen,
            )
        )
    return CrpTable(
        challenges=challenges,
        responses=np.stack(responses),
        chip_id=instance.chip_id,
    )
