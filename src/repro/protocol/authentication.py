"""Threshold-based device authentication over a CRP table.

The standard lightweight PUF authentication protocol:

* **enrolment** — the verifier harvests a CRP table per chip in the
  secure facility and stores it;
* **authentication** — the verifier replays a batch of never-used
  challenges; the device answers from silicon; the verifier accepts when
  the fractional Hamming distance to the enrolled responses stays below a
  threshold.

The threshold must sit between the intra-chip distance (noise + aging
drift, grows over the mission — exactly what the ARO-PUF bounds) and the
inter-chip distance (~50 %).  :func:`authentication_study` measures both
error rates over a population and a mission, producing experiment E10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .._rng import RngLike, as_generator, spawn
from ..core.base import RoPufInstance
from ..core.factory import Study
from ..core.pairing import RandomDisjointPairing
from ..metrics.hamming import fractional_hd
from .crp import CrpTable, harvest_crps


@dataclass(frozen=True)
class AuthenticationResult:
    """Outcome of one authentication attempt."""

    accepted: bool
    distance: float
    threshold: float
    challenges_used: int


class Verifier:
    """Server-side authority holding enrolled CRP tables."""

    def __init__(self, threshold: float = 0.25, batch_size: int = 8):
        if not 0.0 < threshold < 0.5:
            raise ValueError("threshold must be in (0, 0.5)")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.threshold = threshold
        self.batch_size = batch_size
        self._tables: Dict[int, CrpTable] = {}
        self._cursor: Dict[int, int] = {}

    def enroll(self, instance: RoPufInstance, n_challenges: int = 64, rng: RngLike = None) -> None:
        """Harvest and store a chip's CRP table (one-time, secure phase)."""
        table = harvest_crps(instance, n_challenges, rng=rng)
        self._tables[instance.chip_id] = table
        self._cursor[instance.chip_id] = 0

    def enrolled_chips(self) -> List[int]:
        return sorted(self._tables)

    def remaining_challenges(self, chip_id: int) -> int:
        """Unused challenges left before the table is exhausted."""
        table = self._tables[chip_id]
        return table.n_challenges - self._cursor[chip_id]

    def authenticate(
        self, claimed_id: int, device: RoPufInstance, *, rng: RngLike = None
    ) -> AuthenticationResult:
        """Run one authentication round against the claimed identity.

        Challenges are consumed (never replayed) to deny an eavesdropper a
        replay dictionary; an exhausted table raises so the operator knows
        to re-enrol.
        """
        if claimed_id not in self._tables:
            raise KeyError(f"chip {claimed_id} was never enrolled")
        table = self._tables[claimed_id]
        cursor = self._cursor[claimed_id]
        if cursor + self.batch_size > table.n_challenges:
            raise RuntimeError(
                f"chip {claimed_id}'s CRP table is exhausted; re-enrol"
            )
        batch = table.challenges[cursor : cursor + self.batch_size]
        enrolled = table.responses[cursor : cursor + self.batch_size]
        self._cursor[claimed_id] = cursor + self.batch_size

        import dataclasses as _dc

        design = _dc.replace(device.design, pairing=RandomDisjointPairing())
        inst = design.instantiate(device.chip)
        gen = as_generator(rng)
        answers = np.stack(
            [
                inst.evaluate(int(c), noisy=True, rng=gen)
                for c in batch
            ]
        )
        distance = fractional_hd(enrolled.ravel(), answers.ravel())
        return AuthenticationResult(
            accepted=distance <= self.threshold,
            distance=distance,
            threshold=self.threshold,
            challenges_used=int(batch.size),
        )


@dataclass
class AuthenticationStudyResult:
    """E10: authentication error rates over the mission.

    Beyond the fixed-threshold FRR/FAR, the raw genuine and impostor
    distance samples are kept so the separability of the two populations
    can be judged directly (:meth:`equal_error_rate`).
    """

    years: List[float]
    frr: Dict[str, List[float]]  # design -> false-reject rate per year
    far: Dict[str, float]  # design -> false-accept rate (impostor chips)
    threshold: float
    genuine_distances: Dict[str, Dict[float, List[float]]]
    impostor_distances: Dict[str, List[float]]

    def equal_error_rate(self, design: str, year: float) -> Tuple[float, float]:
        """(EER, threshold) where FRR equals FAR for aged genuine chips.

        Sweeps the threshold over the pooled distance samples.  An EER
        near zero means the genuine-aged and impostor distributions are
        separable; a large EER means no threshold authenticates reliably.
        """
        genuine = np.asarray(self.genuine_distances[design][year])
        impostor = np.asarray(self.impostor_distances[design])
        candidates = np.unique(np.concatenate([genuine, impostor]))
        best = (1.0, 0.0)
        for thr in candidates:
            frr = float(np.mean(genuine > thr))
            far = float(np.mean(impostor <= thr))
            score = max(frr, far)
            if score < best[0]:
                best = (score, float(thr))
        return best

    def ledger_scalars(self) -> Dict[str, float]:
        """E10 headline scalars: end-of-mission FRR, FAR and EER."""
        out: Dict[str, float] = {}
        final_year = self.years[-1] if self.years else None
        for name, rates in self.frr.items():
            if rates:
                out[f"{name}.frr_at_final_year"] = rates[-1]
        for name, rate in self.far.items():
            out[f"{name}.far"] = rate
        if final_year is not None:
            for name in self.genuine_distances:
                eer, _ = self.equal_error_rate(name, final_year)
                out[f"{name}.eer_at_final_year"] = eer
        return out


def authentication_study(
    studies: Dict[str, Study],
    years: Sequence[float] = (0.0, 2.0, 5.0, 10.0),
    *,
    threshold: float = 0.25,
    batch_size: int = 16,
    n_challenges: int = 256,
    rng: RngLike = None,
) -> AuthenticationStudyResult:
    """Measure FRR-over-lifetime and impostor FAR for each design.

    For every chip: enrol fresh, then authenticate the *aged* silicon at
    each mission point (false reject when the genuine chip is refused).
    The false-accept rate pits every chip against every other chip's
    enrolment at t=0.
    """
    gen = as_generator(rng)
    frr: Dict[str, List[float]] = {}
    far: Dict[str, float] = {}
    genuine_distances: Dict[str, Dict[float, List[float]]] = {}
    impostor_distances: Dict[str, List[float]] = {}
    for name, study in studies.items():
        verifier = Verifier(threshold=threshold, batch_size=batch_size)
        enroll_rngs = spawn(gen, len(study.instances))
        for inst, child in zip(study.instances, enroll_rngs):
            verifier.enroll(inst, n_challenges=n_challenges, rng=child)

        rates = []
        genuine_distances[name] = {}
        for t in years:
            aged = study.aged_instances(t)
            rejects = 0
            dists = []
            for inst in aged:
                result = verifier.authenticate(inst.chip_id, inst, rng=gen)
                rejects += 0 if result.accepted else 1
                dists.append(result.distance)
            rates.append(rejects / len(aged))
            genuine_distances[name][t] = dists
        frr[name] = rates

        # impostor trials: chip j answers chip i's challenges (fresh)
        accepts = 0
        trials = 0
        imp_dists = []
        for claimed in study.instances:
            impostor = study.instances[
                (claimed.chip_id + 1) % len(study.instances)
            ]
            result = verifier.authenticate(claimed.chip_id, impostor, rng=gen)
            accepts += 1 if result.accepted else 0
            imp_dists.append(result.distance)
            trials += 1
        far[name] = accepts / trials
        impostor_distances[name] = imp_dists
    return AuthenticationStudyResult(
        years=list(years),
        frr=frr,
        far=far,
        threshold=threshold,
        genuine_distances=genuine_distances,
        impostor_distances=impostor_distances,
    )
