"""Protocol layer: CRP tables, device authentication, modeling attacks."""

from .attacks import (
    SortingAttackModel,
    attack_curve,
    build_attack_model,
    sorting_attack,
)
from .authentication import (
    AuthenticationResult,
    AuthenticationStudyResult,
    Verifier,
    authentication_study,
)
from .crp import CrpTable, harvest_crps

__all__ = [
    "AuthenticationResult",
    "AuthenticationStudyResult",
    "CrpTable",
    "SortingAttackModel",
    "Verifier",
    "attack_curve",
    "authentication_study",
    "build_attack_model",
    "harvest_crps",
    "sorting_attack",
]
