"""CSV export of experiment results (for external plotting tools).

The benchmark harness writes human-readable tables; this module writes
machine-readable CSVs with one row per data point, so the paper's figures
can be replotted with any toolchain.  Every exporter returns the list of
files it wrote.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Dict, List, Sequence, Union

from .experiments import (
    AreaResult,
    BitflipResult,
    DutyAblationResult,
    EnvironmentalResult,
    FrequencyDegradationResult,
    LayoutAblationResult,
    MaskingAblationResult,
    StageAblationResult,
    UniquenessResult,
)
from .sweep import Series

PathLike = Union[str, pathlib.Path]


def _write_csv(path: pathlib.Path, headers: Sequence[str], rows) -> pathlib.Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
    return path


def export_series(
    series_by_name: Dict[str, Series],
    path: PathLike,
    x_label: str = "x",
) -> pathlib.Path:
    """Write aligned series as one CSV (shared x column)."""
    items = list(series_by_name.items())
    if not items:
        raise ValueError("nothing to export")
    xs = items[0][1].x
    for name, series in items[1:]:
        if series.x != xs:
            raise ValueError(f"series {name!r} has a different x axis")
    headers = [x_label] + [name for name, _ in items]
    rows = [
        [x] + [series.y[i] for _, series in items]
        for i, x in enumerate(xs)
    ]
    return _write_csv(pathlib.Path(path), headers, rows)


def export_e1(res: FrequencyDegradationResult, directory: PathLike) -> List[pathlib.Path]:
    return [
        export_series(
            res.series, pathlib.Path(directory) / "e1_freq_degradation.csv", "years"
        )
    ]


def export_e2(res: BitflipResult, directory: PathLike) -> List[pathlib.Path]:
    return [
        export_series(
            res.series, pathlib.Path(directory) / "e2_bitflips.csv", "years"
        )
    ]


def export_e3(res: UniquenessResult, directory: PathLike) -> List[pathlib.Path]:
    directory = pathlib.Path(directory)
    files = []
    stats_rows = [
        [name, rep.mean, rep.std, rep.minimum, rep.maximum, rep.n_pairs]
        for name, rep in res.reports.items()
    ]
    files.append(
        _write_csv(
            directory / "e3_uniqueness_stats.csv",
            ["design", "mean_hd", "std", "min", "max", "n_pairs"],
            stats_rows,
        )
    )
    hist_rows = []
    for name, (centers, counts) in res.histograms.items():
        for c, n in zip(centers, counts):
            hist_rows.append([name, float(c), int(n)])
    files.append(
        _write_csv(
            directory / "e3_uniqueness_histogram.csv",
            ["design", "hd_bin_center", "pair_count"],
            hist_rows,
        )
    )
    return files


def export_e5(res: EnvironmentalResult, directory: PathLike) -> List[pathlib.Path]:
    directory = pathlib.Path(directory)
    return [
        export_series(
            res.temperature_series, directory / "e5_temperature.csv", "temp_c"
        ),
        export_series(res.voltage_series, directory / "e5_voltage.csv", "vdd_rel"),
    ]


def export_e6(res: AreaResult, directory: PathLike) -> List[pathlib.Path]:
    rows = []
    for row in res.rows:
        for name, point in (("ro-puf", row.conv), ("aro-puf", row.aro)):
            if point is None:
                rows.append([row.policy, name, "", "", "", "", ""])
                continue
            rows.append(
                [
                    row.policy,
                    name,
                    str(point.codec),
                    point.raw_bits,
                    point.n_ros,
                    point.puf_area,
                    point.ecc_area,
                ]
            )
    return [
        _write_csv(
            pathlib.Path(directory) / "e6_ecc_area.csv",
            [
                "policy",
                "design",
                "codec",
                "raw_bits",
                "n_ros",
                "puf_area_um2",
                "ecc_area_um2",
            ],
            rows,
        )
    ]


def export_e7(res: DutyAblationResult, directory: PathLike) -> List[pathlib.Path]:
    directory = pathlib.Path(directory)
    files = [
        export_series(
            {"aro-puf": res.duty_series}, directory / "e7_duty_sweep.csv", "eval_duty"
        )
    ]
    files.append(
        _write_csv(
            directory / "e7_policies.csv",
            ["policy", "flips_percent"],
            res.policy_rows,
        )
    )
    return files


def export_e8(res: LayoutAblationResult, directory: PathLike) -> List[pathlib.Path]:
    directory = pathlib.Path(directory)
    files = [
        export_series(
            res.systematic_series,
            directory / "e8_systematic_sweep.csv",
            "sigma_multiplier",
        )
    ]
    files.append(
        _write_csv(
            directory / "e8_pairing.csv",
            ["configuration", "hd_percent"],
            res.pairing_rows,
        )
    )
    return files


def export_e9(res: MaskingAblationResult, directory: PathLike) -> List[pathlib.Path]:
    rows = [
        [
            row.label,
            row.ros_per_bit,
            row.n_bits,
            row.mean_margin_percent,
            row.noise_flips_percent,
            row.aging_flips_percent,
        ]
        for row in res.rows
    ]
    return [
        _write_csv(
            pathlib.Path(directory) / "e9_masking.csv",
            [
                "configuration",
                "ros_per_bit",
                "n_bits",
                "margin_percent",
                "noise_flips_percent",
                "aging_flips_percent",
            ],
            rows,
        )
    ]


def export_e12(res: StageAblationResult, directory: PathLike) -> List[pathlib.Path]:
    rows = [
        [
            row.design,
            row.n_stages,
            row.frequency_ghz,
            row.uniqueness_percent,
            row.flips_percent,
            row.cell_area_um2,
        ]
        for row in res.rows
    ]
    return [
        _write_csv(
            pathlib.Path(directory) / "e12_stages.csv",
            [
                "design",
                "n_stages",
                "frequency_ghz",
                "uniqueness_percent",
                "flips_percent",
                "cell_area_um2",
            ],
            rows,
        )
    ]
