"""Paper-style text rendering for each experiment's result object.

One ``render_*`` function per experiment (E1 .. E8), shared by the
benchmark harness and the command-line runner so the tables look the same
everywhere.  Paper reference numbers are embedded in the titles where the
abstract pins them.
"""

from __future__ import annotations

from .experiments import (
    AreaResult,
    BitflipResult,
    DutyAblationResult,
    EnvironmentalResult,
    FrequencyDegradationResult,
    LayoutAblationResult,
    MaskingAblationResult,
    RandomnessResult,
    UniquenessResult,
)
from .tables import format_series, format_table

#: anchors from the paper's abstract
PAPER = {
    "conv_flips_10y": 32.0,
    "aro_flips_10y": 7.7,
    "conv_hd": 45.0,
    "aro_hd": 49.67,
    "area_ratio": 24.0,
}


def render_e1(res: FrequencyDegradationResult) -> str:
    return format_series(
        [res.series["ro-puf"], res.series["aro-puf"]],
        x_label="years",
        y_label="mean freq loss %",
        title=(
            "E1: RO frequency degradation vs field years "
            f"(fresh: {res.fresh_frequency_ghz['ro-puf']:.2f} GHz conv / "
            f"{res.fresh_frequency_ghz['aro-puf']:.2f} GHz aro)"
        ),
    )


def render_e2(res: BitflipResult) -> str:
    final = res.at_ten_years()
    return format_series(
        [res.series["ro-puf"], res.series["aro-puf"]],
        x_label="years",
        y_label="bits flipped %",
        title=(
            "E2: response bit flips vs field years — 10y endpoints: "
            f"conv {final['ro-puf']:.2f} % (paper {PAPER['conv_flips_10y']} %), "
            f"aro {final['aro-puf']:.2f} % (paper {PAPER['aro_flips_10y']} %)"
        ),
    )


def render_e3(res: UniquenessResult) -> str:
    rows = []
    for name, paper in (("ro-puf", PAPER["conv_hd"]), ("aro-puf", PAPER["aro_hd"])):
        rep = res.reports[name]
        rows.append(
            [
                name,
                f"{rep.percent():.2f}",
                f"{paper:.2f}",
                f"{100 * rep.std:.2f}",
                f"{100 * rep.minimum:.2f}",
                f"{100 * rep.maximum:.2f}",
                rep.n_pairs,
            ]
        )
    text = format_table(
        ["design", "mean HD %", "paper %", "std %", "min %", "max %", "chip pairs"],
        rows,
        title="E3: inter-chip Hamming distance (ideal 50 %)",
    )
    hist_rows = []
    centers, conv_counts = res.histograms["ro-puf"]
    _, aro_counts = res.histograms["aro-puf"]
    for c, cc, ac in zip(centers, conv_counts, aro_counts):
        if cc or ac:
            hist_rows.append([f"{c:.2f}", int(cc), int(ac)])
    return (
        text
        + "\n\n"
        + format_table(
            ["HD bin", "ro-puf pairs", "aro-puf pairs"],
            hist_rows,
            title="E3 (cont.): HD distribution histogram",
        )
    )


def render_e4(res: RandomnessResult) -> str:
    rows = []
    for name in ("ro-puf", "aro-puf"):
        rows.append(
            [
                name,
                f"{res.uniformity[name].percent():.2f}",
                f"{100 * res.uniformity[name].std:.2f}",
                f"{res.aliasing[name].percent():.2f}",
                f"{100 * res.aliasing[name].worst_bias:.1f}",
            ]
        )
    text = format_table(
        [
            "design",
            "uniformity % (ideal 50)",
            "std %",
            "bit-aliasing % (ideal 50)",
            "worst bias pp",
        ],
        rows,
        title="E4: response balance across the chip population",
    )
    entropy_rows = [
        [
            name,
            f"{res.entropy[name].shannon_per_bit:.3f}",
            f"{res.entropy[name].min_entropy_per_bit:.3f}",
            f"{res.entropy[name].total_min_entropy:.1f}",
        ]
        for name in ("ro-puf", "aro-puf")
    ]
    text += "\n\n" + format_table(
        ["design", "Shannon/bit", "min-entropy/bit", "total min-entropy (bits)"],
        entropy_rows,
        title="E4 (cont.): key-material entropy (ideal 1.0 per bit)",
    )
    battery_rows = [
        [
            test_name,
            f"{res.battery['ro-puf'].p_values[test_name]:.4f}",
            f"{res.battery['aro-puf'].p_values[test_name]:.4f}",
        ]
        for test_name in res.battery["ro-puf"].p_values
    ]
    return (
        text
        + "\n\n"
        + format_table(
            ["NIST-style test", "ro-puf p-value", "aro-puf p-value"],
            battery_rows,
            title="E4 (cont.): randomness battery (pass: p >= 0.01)",
        )
    )


def render_e5(res: EnvironmentalResult) -> str:
    text = format_series(
        [res.temperature_series["ro-puf"], res.temperature_series["aro-puf"]],
        x_label="temp C",
        y_label="flips %",
        title="E5: intra-chip HD vs temperature (golden at 25 C, nominal Vdd)",
    )
    return (
        text
        + "\n\n"
        + format_series(
            [res.voltage_series["ro-puf"], res.voltage_series["aro-puf"]],
            x_label="Vdd / nominal",
            y_label="flips %",
            title="E5 (cont.): intra-chip HD vs supply voltage (golden at nominal)",
        )
    )


def render_e6(res: AreaResult) -> str:
    rows = []
    for row in res.rows:
        for name, point in (("ro-puf", row.conv), ("aro-puf", row.aro)):
            if point is None:
                rows.append([row.policy, name, "infeasible", "-", "-", "-", "-"])
                continue
            rows.append(
                [
                    row.policy,
                    name,
                    str(point.codec),
                    point.raw_bits,
                    point.n_ros,
                    f"{point.total_area / 1e3:.0f}",
                    f"{row.ratio:.1f}x" if name == "aro-puf" and row.ratio else "",
                ]
            )
    return format_table(
        [
            "margin policy",
            "design",
            "key codec",
            "raw bits",
            "ROs",
            "area (1e3 um^2)",
            "conv/aro",
        ],
        rows,
        title=(
            f"E6: minimum-area {res.key_bits}-bit key generator, "
            f"P_fail <= {res.failure_target:g} "
            f"(paper: ~{PAPER['area_ratio']:.0f}x reduction)"
        ),
    )


def render_e7(res: DutyAblationResult) -> str:
    duty_rows = [
        [f"{x:.0e}", f"{y:.2f}"]
        for x, y in zip(res.duty_series.x, res.duty_series.y)
    ]
    text = format_table(
        ["eval duty", "aro-puf flips @10y %"],
        duty_rows,
        title="E7: ARO-PUF 10-year flips vs evaluation duty",
    )
    policy_rows = [[label, f"{value:.2f}"] for label, value in res.policy_rows]
    return (
        text
        + "\n\n"
        + format_table(
            ["cell / idle policy", "flips @10y %"],
            policy_rows,
            title="E7 (cont.): idle-policy ablation (same mission otherwise)",
        )
    )


def render_e8(res: LayoutAblationResult) -> str:
    conv = res.systematic_series["ro-puf"]
    aro = res.systematic_series["aro-puf"]
    rows = [
        [f"{mult:.1f}x", f"{cy:.2f}", f"{ay:.2f}"]
        for mult, cy, ay in zip(conv.x, conv.y, aro.y)
    ]
    text = format_table(
        ["systematic sigma", "ro-puf HD %", "aro-puf HD %"],
        rows,
        title="E8: inter-chip HD vs systematic-variation strength (ideal 50 %)",
    )
    pairing_rows = [[label, f"{val:.2f}"] for label, val in res.pairing_rows]
    return (
        text
        + "\n\n"
        + format_table(
            ["design / pairing", "inter-chip HD %"],
            pairing_rows,
            title="E8 (cont.): pairing-distance ablation at nominal sigma",
        )
    )


def render_e9(res: MaskingAblationResult) -> str:
    rows = [
        [
            row.label,
            f"{row.ros_per_bit:.0f}",
            row.n_bits,
            f"{row.mean_margin_percent:.2f}",
            f"{row.noise_flips_percent:.2f}",
            f"{row.aging_flips_percent:.2f}",
        ]
        for row in res.rows
    ]
    return format_table(
        [
            "configuration",
            "ROs/bit",
            "bits",
            "enrol margin %",
            "noise flips %",
            f"aging flips @{res.t_years:.0f}y %",
        ],
        rows,
        title=(
            "E9 (extension): 1-out-of-k masking vs the ARO circuit fix — "
            "masking buys reliability with k oscillators per bit and "
            "helper-data leakage; the ARO gets there at 2 ROs/bit"
        ),
    )


def render_e10(res) -> str:
    """Render the authentication study (E10)."""
    rows = []
    for name in sorted(res.frr):
        for year, rate in zip(res.years, res.frr[name]):
            import numpy as _np

            genuine = float(_np.mean(res.genuine_distances[name][year]))
            rows.append(
                [name, f"{year:.0f}", f"{genuine:.3f}", f"{100 * rate:.1f}"]
            )
    text = format_table(
        ["design", "year", "mean genuine distance", f"FRR % @ thr={res.threshold}"],
        rows,
        title="E10 (extension): device authentication over the mission",
    )
    import numpy as _np

    summary = []
    last_year = res.years[-1]
    for name in sorted(res.frr):
        eer, thr = res.equal_error_rate(name, last_year)
        summary.append(
            [
                name,
                f"{float(_np.mean(res.impostor_distances[name])):.3f}",
                f"{100 * res.far[name]:.1f}",
                f"{100 * eer:.1f}",
                f"{thr:.3f}",
            ]
        )
    return (
        text
        + "\n\n"
        + format_table(
            [
                "design",
                "mean impostor distance",
                f"FAR % @ thr={res.threshold}",
                f"EER % @ {last_year:.0f}y",
                "EER threshold",
            ],
            summary,
            title=(
                "E10 (cont.): separability of genuine-aged vs impostor — an "
                "EER near 0 means a working threshold exists"
            ),
        )
    )


def render_e11(res) -> str:
    """Render the sorting-attack curve (E11)."""
    sizes = [n for n, _, _ in next(iter(res.rows.values()))]
    table_rows = []
    for i, n in enumerate(sizes):
        row = [n]
        for name in sorted(res.rows):
            _, acc, cov = res.rows[name][i]
            row.extend([f"{100 * acc:.1f}", f"{100 * cov:.1f}"])
        table_rows.append(row)
    headers = ["disclosed CRPs"]
    for name in sorted(res.rows):
        headers.extend([f"{name} acc %", f"{name} order %"])
    return format_table(
        headers,
        table_rows,
        title=(
            "E11 (extension): sorting modeling attack — response-bit "
            "prediction accuracy vs disclosed CRPs (both designs fall "
            "equally; keep responses on-chip)"
        ),
    )


def render_e12(res) -> str:
    """Render the stage-count ablation (E12)."""
    rows = [
        [
            row.design,
            row.n_stages,
            f"{row.frequency_ghz:.2f}",
            f"{row.uniqueness_percent:.2f}",
            f"{row.flips_percent:.2f}",
            f"{row.cell_area_um2:.1f}",
        ]
        for row in res.rows
    ]
    return format_table(
        [
            "design",
            "stages",
            "freq (GHz)",
            "inter-chip HD %",
            f"flips @{res.t_years:.0f}y %",
            "cell area (um^2)",
        ],
        rows,
        title=(
            "E12 (extension): ring-length design choice — the flip-rate "
            "gap is stage-count invariant (sqrt-law cancellation); length "
            "buys lower frequency at linear area"
        ),
    )


def render_e13(res) -> str:
    """Render margin forensics (E13): summary plus worst-margin exemplars.

    Delegates to :mod:`repro.forensics.report` (imported lazily there to
    keep the forensics package clear of the analysis layer at import
    time) and appends chip 0's thinnest-margin bit table per design.
    """
    from ..forensics.report import render_bit_table, render_forensics_summary

    parts = [render_forensics_summary(res.reports)]
    for rep in res.reports.values():
        parts.append("")
        parts.append(render_bit_table(rep, chip=0, top=8))
    return "\n".join(parts)
