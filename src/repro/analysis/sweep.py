"""Small sweep/aggregation utilities shared by the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

import numpy as np

#: the time axis used by the paper-style aging studies (years in field)
DEFAULT_YEARS = (0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0)


@dataclass
class Series:
    """One named (x, y) series with optional spread, ready for tabulation."""

    name: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)
    spread: List[float] = field(default_factory=list)

    def add(self, x: float, y: float, spread: float = 0.0) -> None:
        self.x.append(float(x))
        self.y.append(float(y))
        self.spread.append(float(spread))

    def as_rows(self) -> List[tuple]:
        return list(zip(self.x, self.y, self.spread))

    def y_at(self, x: float) -> float:
        """The y value at a given x (exact match required)."""
        for xi, yi in zip(self.x, self.y):
            if xi == x:
                return yi
        raise KeyError(f"series {self.name!r} has no point at x={x}")


def sweep(
    values: Sequence,
    fn: Callable[[object], float],
    name: str = "sweep",
) -> Series:
    """Evaluate ``fn`` over ``values`` into a :class:`Series`."""
    series = Series(name=name)
    for v in values:
        series.add(float(v), float(fn(v)))
    return series


def geometric_spacing(lo: float, hi: float, steps: int) -> np.ndarray:
    """Log-spaced sweep values (duty factors, error targets, ...)."""
    if lo <= 0 or hi <= 0:
        raise ValueError("geometric spacing needs positive endpoints")
    if steps < 2:
        raise ValueError("need at least two steps")
    return np.geomspace(lo, hi, steps)
