"""One-shot report generation: every experiment into a single Markdown file.

``python -m repro.cli report`` (or :func:`generate_report`) reruns the
requested experiments at the requested Monte-Carlo scale and writes a
self-contained Markdown report: a summary table against the paper's
anchors followed by every regenerated table.  This is the artefact to
attach to a reproduction claim.
"""

from __future__ import annotations

import pathlib
from typing import List, Optional, Sequence, Union

from . import experiments as exp

PathLike = Union[str, pathlib.Path]

#: default experiment set for a report (all of them)
ALL_EXPERIMENTS = (
    "e1",
    "e2",
    "e3",
    "e4",
    "e5",
    "e6",
    "e7",
    "e8",
    "e9",
    "e10",
    "e11",
    "e12",
    "e13",
)


def _anchor_summary(config: exp.ExperimentConfig) -> str:
    """The abstract's four anchors, measured fresh at the report's scale."""
    flips = exp.aging_bitflips(config, years=(10.0,))
    uniq = exp.uniqueness_experiment(config)
    final = {name: s.y_at(10.0) for name, s in flips.series.items()}
    lines = [
        "| Anchor | Paper | Measured |",
        "|--------|-------|----------|",
        f"| conventional bits flipped @ 10 y | 32 % | {final['ro-puf']:.2f} % |",
        f"| ARO bits flipped @ 10 y | 7.7 % | {final['aro-puf']:.2f} % |",
        f"| conventional inter-chip HD | ~45 % | {uniq.reports['ro-puf'].percent():.2f} % |",
        f"| ARO inter-chip HD | 49.67 % | {uniq.reports['aro-puf'].percent():.2f} % |",
    ]
    return "\n".join(lines)


def generate_report(
    config: Optional[exp.ExperimentConfig] = None,
    experiments: Sequence[str] = ALL_EXPERIMENTS,
    path: Optional[PathLike] = None,
    ledger=None,
    manifest=None,
) -> str:
    """Run the selected experiments and return (and optionally write) the
    Markdown report.

    When a :class:`~repro.telemetry.RunLedger` is passed, every
    experiment's headline scalars are appended to it (sharing
    ``manifest``, collected once by the caller) — one report run becomes
    one longitudinal data point per experiment.
    """
    from ..cli import EXPERIMENTS as RUNNERS

    config = config or exp.ExperimentConfig()
    unknown = [e for e in experiments if e not in RUNNERS]
    if unknown:
        raise ValueError(f"unknown experiments: {unknown}")

    sections: List[str] = [
        "# ARO-PUF reproduction report",
        "",
        f"Monte-Carlo scale: {config.n_chips} chips x {config.n_ros} ROs, "
        f"seed {config.seed}.",
        "",
        "## Paper anchors",
        "",
        _anchor_summary(config),
    ]
    for key in experiments:
        spec = RUNNERS[key]
        result = spec.run(config)
        if ledger is not None:
            ledger.record(key, result.ledger_scalars(), manifest)
        sections.append("")
        sections.append(f"## {key.upper()} — {spec.description}")
        sections.append("")
        sections.append("```")
        sections.append(spec.render(result))
        sections.append("```")
    text = "\n".join(sections) + "\n"
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text
