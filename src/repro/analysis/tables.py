"""Plain-text table/series rendering for the benchmark harness.

The benches print paper-style rows; these helpers keep the formatting in
one place (fixed-width ASCII so output diffs cleanly run to run).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .sweep import Series


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render rows as a fixed-width ASCII table."""
    str_rows: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    series: Sequence[Series],
    x_label: str = "x",
    y_label: str = "y",
    title: Optional[str] = None,
) -> str:
    """Render one or more aligned series as a table (shared x column)."""
    if not series:
        raise ValueError("need at least one series")
    xs = series[0].x
    for s in series[1:]:
        if s.x != xs:
            raise ValueError(
                f"series {s.name!r} has a different x axis than {series[0].name!r}"
            )
    headers = [x_label] + [f"{s.name} ({y_label})" for s in series]
    rows = [
        [x] + [s.y[i] for s in series]
        for i, x in enumerate(xs)
    ]
    return format_table(headers, rows, title=title)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) >= 1e5 or abs(cell) < 1e-3):
            return f"{cell:.3e}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)
