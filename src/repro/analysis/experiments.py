"""The paper's evaluation, experiment by experiment (E1 .. E8).

Each function regenerates the data behind one table or figure of the
paper's evaluation section (DESIGN.md §4 maps IDs to paper artefacts) and
returns a structured result object; the ``benchmarks/`` modules are thin
wrappers that call these and print the rows, and EXPERIMENTS.md records
paper-vs-measured numbers.

Everything is seeded: the same config reproduces the same tables.
"""

from __future__ import annotations

import functools
import re
from contextlib import closing
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import telemetry
from .._rng import DEFAULT_SEED
from ..aging.schedule import IdlePolicy, MissionProfile
from ..core.aro_puf import aro_design
from ..core.base import PufDesign
from ..core.factory import Study, make_study
from ..core.pairing import DistantPairing, NeighborPairing
from ..core.population import BatchStudy, make_batch_study
from ..core.readout import compare_pairs, voted_response
from ..core.ro_puf import conventional_design
from ..core.selection import select_stable_pairs, selection_margins
from ..environment.conditions import OperatingConditions, celsius
from ..forensics.capture import (
    DEFAULT_FORENSICS_YEARS,
    DEFAULT_HORIZON,
    DesignForensics,
    capture_forensics,
)
from ..forensics.forecast import K_DEFAULT
from ..keygen.design import KeygenDesignPoint, search_design_space
from ..metrics.aliasing import AliasingReport, bit_aliasing
from ..metrics.randomness import RandomnessReport, population_bits, randomness_battery
from ..metrics.reliability import ReliabilityReport, reliability
from ..metrics.uniformity import UniformityReport, uniformity
from ..metrics.uniqueness import UniquenessReport, hd_histogram, uniqueness
from .sweep import DEFAULT_YEARS, Series

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..parallel import ParallelBatchStudy


def _slug(label: str) -> str:
    """Ledger-safe scalar key fragment from a human row label.

    ``"ro-puf / parked static"`` -> ``"ro-puf.parked_static"``: the
    design name keeps its dash (it is the namespace the anchor registry
    addresses), everything after the slash becomes one snake_case token.
    Keys must stay *stable across PRs* — the ledger correlates runs by
    exact key — so renames here are format changes, not refactors.
    """
    tokens = []
    for part in label.split("/"):
        token = re.sub(r"[^a-z0-9\-]+", "_", part.strip().lower()).strip("_")
        if token:
            tokens.append(token)
    return ".".join(tokens)


def _staged(name: str):
    """Wrap an experiment entry point in a telemetry span.

    Disabled-tracer cost is one branch per experiment call; with a tracer
    installed every experiment shows up as one top-level stage in the
    ``--trace`` tree, with the engine's fabrication/kernel spans nested
    beneath it.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            sp = telemetry.start_span(name)
            try:
                return fn(*args, **kwargs)
            finally:
                telemetry.end_span(sp)

        return wrapper

    return decorate


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared Monte-Carlo setup for the evaluation suite.

    The defaults mirror the paper's scale: a 50-chip population of 256
    five-stage oscillators (128 response bits via neighbour pairing) on
    the 90 nm card, with the standard 10-year consumer mission.

    ``jobs`` shards the batched engine's chip axis over that many worker
    processes (``jobs=1`` stays in-process).  ``store`` selects the
    population backing: ``"ram"`` (default) is the dense in-RAM engine
    and the bit-identity reference; ``"mmap"`` streams the population
    through the out-of-core :mod:`repro.store` segments with bounded
    RSS, ``block_size`` chips at a time, under ``store_dir`` (a temp
    directory when unset).  All four knobs change wall-clock and memory
    only: every experiment that goes through :meth:`batch_study_for`
    (E1, E2, E3, E5, E13) returns bit-identical numbers for any worker
    count, store backing or block size, so none of them is part of the
    result-defining config the ledger and cache key digest.

    ``dtype`` is different: it selects the kernel arithmetic tier
    (``"float64"`` default, ``"float32"`` opt-in) and *is*
    result-defining — float32 frequencies differ at ~1e-7 relative, so
    the tier stays in the config digest, and the CLI only lets float32
    gate anchors after :func:`repro.kernel.validate.validate_response_identity`
    has proven bit identity at the run's scale.  RAM engines only
    (``store="mmap"`` is float64 by construction).
    """

    n_chips: int = 50
    n_ros: int = 256
    n_stages: int = 5
    seed: int = DEFAULT_SEED
    mission: MissionProfile = field(default_factory=MissionProfile)
    jobs: int = 1
    store: str = "ram"
    block_size: Optional[int] = None
    store_dir: Optional[str] = None
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.store not in ("ram", "mmap"):
            raise ValueError(
                f"store must be 'ram' or 'mmap', got {self.store!r}"
            )
        if self.block_size is not None and self.block_size < 1:
            raise ValueError(
                f"block_size must be >= 1, got {self.block_size}"
            )
        if self.dtype not in ("float64", "float32"):
            raise ValueError(
                f"dtype must be 'float64' or 'float32', got {self.dtype!r}"
            )
        if self.store == "mmap" and self.dtype != "float64":
            raise ValueError("store='mmap' supports dtype='float64' only")

    def designs(self) -> Dict[str, PufDesign]:
        """The two contenders, keyed by their registry names."""
        return {
            "ro-puf": conventional_design(self.n_ros, self.n_stages),
            "aro-puf": aro_design(self.n_ros, self.n_stages),
        }

    def study_for(self, design: PufDesign) -> Study:
        """Fabricate + prepare aging for one design (seeded)."""
        return make_study(
            design, self.n_chips, mission=self.mission, rng=self.seed
        )

    def batch_study_for(
        self, design: PufDesign
    ) -> Union[BatchStudy, "ParallelBatchStudy"]:
        """Batched counterpart of :meth:`study_for` (same seed, same
        silicon: responses are bit-identical to the per-chip path).

        With ``jobs > 1`` the study is the chip-sharded parallel engine;
        with ``store="mmap"`` it is out-of-core (the serial
        :class:`~repro.store.study.StoreStudy`, or the parallel engine
        with workers attached to one shared store).  Callers should
        ``closing(...)`` the returned study so worker pools and owned
        store directories are released promptly (the dense serial
        engine's ``close`` is a no-op, so the pattern is
        engine-agnostic).
        """
        if self.jobs > 1 or self.store == "mmap":
            from ..parallel import make_parallel_study

            return make_parallel_study(
                design,
                self.n_chips,
                mission=self.mission,
                rng=self.seed,
                jobs=self.jobs,
                store=self.store,
                block_size=self.block_size,
                store_dir=self.store_dir,
                dtype=self.dtype,
            )
        return make_batch_study(
            design,
            self.n_chips,
            mission=self.mission,
            rng=self.seed,
            dtype=self.dtype,
            block_size=self.block_size,
        )


# ----------------------------------------------------------------------
# E1 — RO frequency degradation over time
# ----------------------------------------------------------------------


@dataclass
class FrequencyDegradationResult:
    """Mean fractional RO frequency loss versus years in the field."""

    years: List[float]
    series: Dict[str, Series]
    fresh_frequency_ghz: Dict[str, float]

    def ledger_scalars(self) -> Dict[str, float]:
        """E1 headline scalars for the run ledger."""
        out: Dict[str, float] = {}
        for name, freq in self.fresh_frequency_ghz.items():
            out[f"{name}.fresh_frequency_ghz"] = freq
        for name, s in self.series.items():
            if 10.0 in s.x:
                out[f"{name}.degradation_at_10y_pct"] = s.y_at(10.0)
        return out


@_staged("experiment.e1")
def frequency_degradation(
    config: Optional[ExperimentConfig] = None,
    years: Sequence[float] = DEFAULT_YEARS,
) -> FrequencyDegradationResult:
    """E1: how much each design's oscillators slow down over the mission."""
    config = config or ExperimentConfig()
    series: Dict[str, Series] = {}
    fresh: Dict[str, float] = {}
    for name, design in config.designs().items():
        with closing(config.batch_study_for(design)) as study:
            f0 = study.frequencies()
            fresh[name] = float(f0.mean() / 1e9)
            s = Series(name=name)
            for t in years:
                ft = study.frequencies(t_years=t)
                loss = (f0 - ft) / f0
                s.add(t, 100.0 * float(loss.mean()), 100.0 * float(loss.std()))
            series[name] = s
    return FrequencyDegradationResult(
        years=list(years), series=series, fresh_frequency_ghz=fresh
    )


# ----------------------------------------------------------------------
# E2 — response bit flips versus years (the 32 % / 7.7 % figure)
# ----------------------------------------------------------------------


@dataclass
class BitflipResult:
    """Percentage of response bits flipped (vs the fresh golden response)."""

    years: List[float]
    series: Dict[str, Series]
    final_reports: Dict[str, ReliabilityReport]

    def at_ten_years(self) -> Dict[str, float]:
        """The abstract's headline numbers: mean flip % at 10 years."""
        return {name: s.y_at(10.0) for name, s in self.series.items() if 10.0 in s.x}

    def ledger_scalars(self) -> Dict[str, float]:
        """E2 headline scalars — the ledger's most anchor-laden entry."""
        out: Dict[str, float] = {}
        final = self.at_ten_years()
        for name, flips in final.items():
            out[f"{name}.flips_at_10y_pct"] = flips
        for name, report in self.final_reports.items():
            if report is not None:
                out[f"{name}.worst_chip_flips_pct"] = (
                    100.0 * report.worst_flip_fraction
                )
        conv, aro = final.get("ro-puf"), final.get("aro-puf")
        if conv is not None and aro:
            out["improvement_factor_10y"] = conv / aro
        return out


@_staged("experiment.e2")
def aging_bitflips(
    config: Optional[ExperimentConfig] = None,
    years: Sequence[float] = DEFAULT_YEARS,
) -> BitflipResult:
    """E2: aged-response bit flips for both designs over the mission."""
    config = config or ExperimentConfig()
    series: Dict[str, Series] = {}
    finals: Dict[str, ReliabilityReport] = {}
    for name, design in config.designs().items():
        with closing(config.batch_study_for(design)) as study:
            goldens = study.responses()
            s = Series(name=name)
            last_report = None
            for t in years:
                aged = study.responses(t_years=t)
                report = reliability(goldens, aged)
                s.add(t, report.percent(), 100.0 * report.std_flip_fraction)
                last_report = report
            series[name] = s
            finals[name] = last_report
    return BitflipResult(years=list(years), series=series, final_reports=finals)


# ----------------------------------------------------------------------
# E3 — uniqueness (inter-chip HD distribution)
# ----------------------------------------------------------------------


@dataclass
class UniquenessResult:
    """Inter-chip HD statistics and histograms for both designs."""

    reports: Dict[str, UniquenessReport]
    histograms: Dict[str, Tuple[np.ndarray, np.ndarray]]

    def ledger_scalars(self) -> Dict[str, float]:
        """E3 headline scalars for the run ledger."""
        out: Dict[str, float] = {}
        for name, report in self.reports.items():
            out[f"{name}.uniqueness_pct"] = report.percent()
            out[f"{name}.uniqueness_std_pct"] = 100.0 * report.std
        return out


@_staged("experiment.e3")
def uniqueness_experiment(
    config: Optional[ExperimentConfig] = None, bins: int = 25
) -> UniquenessResult:
    """E3: the 49.67 % vs ~45 % inter-chip Hamming distance comparison."""
    config = config or ExperimentConfig()
    reports: Dict[str, UniquenessReport] = {}
    histograms: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for name, design in config.designs().items():
        with closing(config.batch_study_for(design)) as study:
            goldens = study.responses()
        reports[name] = uniqueness(goldens)
        histograms[name] = hd_histogram(goldens, bins=bins)
    return UniquenessResult(reports=reports, histograms=histograms)


# ----------------------------------------------------------------------
# E4 — uniformity, bit-aliasing and the randomness battery
# ----------------------------------------------------------------------


@dataclass
class RandomnessResult:
    """Response-quality statistics beyond uniqueness."""

    uniformity: Dict[str, UniformityReport]
    aliasing: Dict[str, AliasingReport]
    battery: Dict[str, RandomnessReport]
    entropy: Dict[str, "EntropyReport"]

    def ledger_scalars(self) -> Dict[str, float]:
        """E4 headline scalars for the run ledger."""
        out: Dict[str, float] = {}
        for name, report in self.uniformity.items():
            out[f"{name}.uniformity_pct"] = report.percent()
        for name, report in self.aliasing.items():
            out[f"{name}.aliasing_worst_bias"] = report.worst_bias
        for name, report in self.entropy.items():
            out[f"{name}.min_entropy_per_bit"] = report.min_entropy_per_bit
        for name, report in self.battery.items():
            passed = report.passed()
            out[f"{name}.randomness_pass_fraction"] = sum(
                passed.values()
            ) / len(passed)
        return out


@_staged("experiment.e4")
def randomness_experiment(
    config: Optional[ExperimentConfig] = None,
) -> RandomnessResult:
    """E4: are the keys balanced, statistically random, and entropy-rich?"""
    from ..metrics.entropy import EntropyReport, response_entropy

    config = config or ExperimentConfig()
    unif: Dict[str, UniformityReport] = {}
    alias: Dict[str, AliasingReport] = {}
    battery: Dict[str, RandomnessReport] = {}
    entropy: Dict[str, EntropyReport] = {}
    for name, design in config.designs().items():
        study = config.study_for(design)
        goldens = study.responses()
        unif[name] = uniformity(goldens)
        alias[name] = bit_aliasing(goldens)
        battery[name] = randomness_battery(population_bits(goldens))
        entropy[name] = response_entropy(goldens)
    return RandomnessResult(
        uniformity=unif, aliasing=alias, battery=battery, entropy=entropy
    )


# ----------------------------------------------------------------------
# E5 — environmental reliability (temperature / supply corners)
# ----------------------------------------------------------------------


@dataclass
class EnvironmentalResult:
    """Intra-chip HD versus temperature and versus supply voltage."""

    temperature_series: Dict[str, Series]
    voltage_series: Dict[str, Series]

    def ledger_scalars(self) -> Dict[str, float]:
        """E5 headline scalars: the worst corner of each sweep axis."""
        out: Dict[str, float] = {}
        for name, s in self.temperature_series.items():
            if s.y:
                out[f"{name}.worst_temp_corner_flips_pct"] = max(s.y)
        for name, s in self.voltage_series.items():
            if s.y:
                out[f"{name}.worst_vdd_corner_flips_pct"] = max(s.y)
        return out


@_staged("experiment.e5")
def environmental_reliability(
    config: Optional[ExperimentConfig] = None,
    temperatures_c: Sequence[float] = (-20.0, 0.0, 25.0, 45.0, 65.0, 85.0),
    vdd_rel: Sequence[float] = (0.90, 0.95, 1.00, 1.05, 1.10),
    votes: int = 5,
) -> EnvironmentalResult:
    """E5: flips against the nominal golden response at environmental
    corners (fresh silicon; aging is E2's job).

    Golden responses are enrolled with majority voting at the nominal
    corner; regeneration is a single noisy evaluation at each corner.

    The expensive part — re-timing every oscillator of every chip at
    every corner — runs through the batched engine (one frequency tensor
    per corner); only the cheap counter-noise draws stay per chip, with
    the same per-chip seeds as the per-instance path.
    """
    config = config or ExperimentConfig()
    temp_series: Dict[str, Series] = {}
    volt_series: Dict[str, Series] = {}
    for name, design in config.designs().items():
        with closing(config.batch_study_for(design)) as study:
            pairs = design.pairing.pairs(design.n_ros)
            f_nominal = study.frequencies()
            goldens = [
                voted_response(
                    f_nominal[i],
                    pairs,
                    design.tech,
                    design.readout,
                    votes=votes,
                    rng=config.seed + i,
                )
                for i in range(study.n_chips)
            ]

            def corner_report(cond: OperatingConditions, seed_base: int):
                f_corner = study.frequencies(conditions=cond)
                observed = [
                    compare_pairs(
                        f_corner[i],
                        pairs,
                        design.tech,
                        design.readout,
                        noisy=True,
                        rng=seed_base + i,
                    )
                    for i in range(study.n_chips)
                ]
                return reliability(goldens, observed)

            s_t = Series(name=name)
            for idx, temp_c in enumerate(temperatures_c):
                cond = OperatingConditions(temperature_k=celsius(temp_c))
                report = corner_report(cond, config.seed + 1000 + 100 * idx)
                s_t.add(temp_c, report.percent(), 100.0 * report.std_flip_fraction)
            temp_series[name] = s_t

            s_v = Series(name=name)
            for idx, rel in enumerate(vdd_rel):
                cond = OperatingConditions(vdd=design.tech.vdd * rel)
                report = corner_report(cond, config.seed + 5000 + 100 * idx)
                s_v.add(rel, report.percent(), 100.0 * report.std_flip_fraction)
            volt_series[name] = s_v
    return EnvironmentalResult(
        temperature_series=temp_series, voltage_series=volt_series
    )


# ----------------------------------------------------------------------
# E6 — ECC + PUF area for a 128-bit key (the ~24x figure)
# ----------------------------------------------------------------------


@dataclass
class AreaRow:
    """One margin policy's outcome for both designs."""

    policy: str
    p_conv: float
    p_aro: float
    conv: Optional[KeygenDesignPoint]
    aro: Optional[KeygenDesignPoint]

    @property
    def ratio(self) -> Optional[float]:
        if self.conv is None or self.aro is None:
            return None
        return self.conv.total_area / self.aro.total_area


@dataclass
class AreaResult:
    """E6 rows, one per error-margin policy."""

    key_bits: int
    failure_target: float
    rows: List[AreaRow]

    def ledger_scalars(self) -> Dict[str, float]:
        """E6 headline scalars: area ratios and ECC decode-failure rates.

        The decode-failure rate is the analytic key-failure probability
        of each design's minimum-area point at the worst-case margin
        policy (the policy behind the paper's ~24x figure).
        """
        out: Dict[str, float] = {}
        for row in self.rows:
            slug = _slug(row.policy)
            if row.ratio is not None:
                out[f"area_ratio.{slug}"] = row.ratio
        if self.rows:
            worst = self.rows[-1]
            if worst.conv is not None:
                out["ro-puf.decode_failure_worst_case"] = worst.conv.key_failure
            if worst.aro is not None:
                out["aro-puf.decode_failure_worst_case"] = worst.aro.key_failure
        return out


#: repetition palette wide enough to reach the conventional PUF's
#: worst-case corner (it needs three-digit repetition factors there)
WIDE_REPETITIONS = tuple(list(range(1, 160, 2)) + list(range(161, 640, 10)))


@_staged("experiment.e6")
def ecc_area_experiment(
    policies: Sequence[Tuple[str, float, float]] = (
        ("mean 10-year aging", 0.32, 0.077),
        ("worst chip, 10 years", 0.41, 0.125),
        ("worst chip + env corner", 0.45, 0.16),
    ),
    *,
    key_bits: int = 128,
    failure_target: float = 1.0e-6,
    bch_palette=None,
) -> AreaResult:
    """E6: minimum-area 128-bit key generators under margin policies.

    Each policy fixes the raw bit-error probability the ECC must survive
    (conventional, ARO); the defaults are the measured E2/E5 figures.  The
    paper's single ~24x number corresponds to sizing for the worst case —
    the bench prints all three policies so the dependence is explicit.
    """
    from ..ecc.bch import standard_codes
    from ..ecc.golay import GolayCode

    palette = (
        bch_palette
        if bch_palette is not None
        else standard_codes() + [GolayCode()]
    )
    rows: List[AreaRow] = []
    for label, p_conv, p_aro in policies:
        conv_pts = search_design_space(
            p_conv,
            conventional_design(),
            key_bits=key_bits,
            failure_target=failure_target,
            repetitions=WIDE_REPETITIONS,
            bch_palette=palette,
            max_raw_bits=5_000_000,
        )
        aro_pts = search_design_space(
            p_aro,
            aro_design(),
            key_bits=key_bits,
            failure_target=failure_target,
            repetitions=WIDE_REPETITIONS,
            bch_palette=palette,
            max_raw_bits=5_000_000,
        )
        rows.append(
            AreaRow(
                policy=label,
                p_conv=p_conv,
                p_aro=p_aro,
                conv=conv_pts[0] if conv_pts else None,
                aro=aro_pts[0] if aro_pts else None,
            )
        )
    return AreaResult(key_bits=key_bits, failure_target=failure_target, rows=rows)


# ----------------------------------------------------------------------
# E7 — ablation: why the ARO works (idle duty / idle policy)
# ----------------------------------------------------------------------


@dataclass
class DutyAblationResult:
    """10-year flip rate versus evaluation duty and idle policy."""

    duty_series: Series
    policy_rows: List[Tuple[str, float]]

    def ledger_scalars(self) -> Dict[str, float]:
        """E7 headline scalars: 10-year flips per idle policy."""
        return {
            f"{_slug(label)}.flips_pct": flips
            for label, flips in self.policy_rows
        }


@_staged("experiment.e7")
def duty_ablation(
    config: Optional[ExperimentConfig] = None,
    duties: Sequence[float] = (1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2),
    t_years: float = 10.0,
) -> DutyAblationResult:
    """E7: sweep the ARO's activity duty, and compare idle policies.

    The duty sweep shows the ``duty**n`` leverage the recovery gating
    exploits; the policy rows pin each cell to its alternatives
    (conventional parked-static, conventional free-running, ARO recovery).
    """
    config = config or ExperimentConfig()
    duty_series = Series(name="aro-puf flips vs eval duty")
    base = aro_design(config.n_ros, config.n_stages)
    for duty in duties:
        mission = MissionProfile(
            eval_duty=duty, temperature_k=config.mission.temperature_k
        )
        study = make_study(base, config.n_chips, mission=mission, rng=config.seed)
        goldens = study.responses()
        aged = study.responses(t_years=t_years)
        duty_series.add(duty, reliability(goldens, aged).percent())

    policy_rows: List[Tuple[str, float]] = []
    conv = conventional_design(config.n_ros, config.n_stages)
    cases = [
        ("ro-puf / parked static", conv, IdlePolicy.PARKED_STATIC),
        ("ro-puf / parked toggling", conv, IdlePolicy.PARKED_TOGGLING),
        ("ro-puf / free running", conv, IdlePolicy.FREE_RUNNING),
        ("aro-puf / recovery", base, IdlePolicy.RECOVERY),
        ("aro-puf / free running", base, IdlePolicy.FREE_RUNNING),
    ]
    for label, design, policy in cases:
        study = make_study(
            design,
            config.n_chips,
            mission=config.mission,
            idle_policy=policy,
            rng=config.seed,
        )
        goldens = study.responses()
        aged = study.responses(t_years=t_years)
        policy_rows.append((label, reliability(goldens, aged).percent()))
    return DutyAblationResult(duty_series=duty_series, policy_rows=policy_rows)


# ----------------------------------------------------------------------
# E8 — ablation: layout symmetrisation and pairing distance
# ----------------------------------------------------------------------


@dataclass
class LayoutAblationResult:
    """Uniqueness versus systematic-variation strength and pairing."""

    systematic_series: Dict[str, Series]
    pairing_rows: List[Tuple[str, float]]

    def ledger_scalars(self) -> Dict[str, float]:
        """E8 headline scalars: uniqueness per pairing and at nominal
        systematic-variation strength (multiplier 1.0)."""
        out: Dict[str, float] = {}
        for label, uniq in self.pairing_rows:
            out[f"{_slug(label)}.uniqueness_pct"] = uniq
        for name, s in self.systematic_series.items():
            if 1.0 in s.x:
                out[f"{name}.uniqueness_at_nominal_sys_pct"] = s.y_at(1.0)
        return out


@_staged("experiment.e8")
def layout_ablation(
    config: Optional[ExperimentConfig] = None,
    sys_multipliers: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 3.0),
) -> LayoutAblationResult:
    """E8: how the systematic layout component depresses uniqueness.

    Sweeps the systematic sigma for both layout styles (the ARO's symmetric
    cell should stay flat near 50 %), then contrasts neighbour versus
    maximally distant pairing at the nominal sigma.
    """
    import dataclasses as _dc

    config = config or ExperimentConfig()
    systematic_series: Dict[str, Series] = {}
    base_designs = config.designs()
    for name, design in base_designs.items():
        s = Series(name=name)
        for mult in sys_multipliers:
            var = _dc.replace(
                design.tech.variation,
                sigma_systematic=design.tech.variation.sigma_systematic * mult,
            )
            tech = design.tech.replace(variation=var)
            scaled = _dc.replace(design, tech=tech)
            study = make_study(
                scaled, config.n_chips, mission=config.mission, rng=config.seed
            )
            s.add(mult, uniqueness(study.responses()).percent())
        systematic_series[name] = s

    pairing_rows: List[Tuple[str, float]] = []
    for name, design in base_designs.items():
        for pairing, pname in (
            (NeighborPairing(), "neighbour"),
            (DistantPairing(), "distant"),
        ):
            d = _dc.replace(design, pairing=pairing)
            study = make_study(
                d, config.n_chips, mission=config.mission, rng=config.seed
            )
            pairing_rows.append(
                (f"{name} / {pname}", uniqueness(study.responses()).percent())
            )
    return LayoutAblationResult(
        systematic_series=systematic_series, pairing_rows=pairing_rows
    )


# ----------------------------------------------------------------------
# E9 — extension: 1-out-of-k masking versus the ARO approach
# ----------------------------------------------------------------------


@dataclass
class MaskingRow:
    """One masking configuration's outcome."""

    label: str
    ros_per_bit: float
    n_bits: int
    mean_margin_percent: float
    noise_flips_percent: float
    aging_flips_percent: float


@dataclass
class MaskingAblationResult:
    """E9 rows: enrolment-time masking vs the ARO's circuit fix."""

    rows: List[MaskingRow]
    t_years: float

    def ledger_scalars(self) -> Dict[str, float]:
        """E9 headline scalars: aging/noise flips per masking config."""
        out: Dict[str, float] = {}
        for row in self.rows:
            slug = _slug(row.label)
            out[f"{slug}.aging_flips_pct"] = row.aging_flips_percent
            out[f"{slug}.noise_flips_pct"] = row.noise_flips_percent
        return out


@_staged("experiment.e9")
def masking_ablation(
    config: Optional[ExperimentConfig] = None,
    ks: Sequence[int] = (2, 4, 8, 16),
    t_years: float = 10.0,
) -> MaskingAblationResult:
    """E9: does 1-out-of-k pair selection rescue the conventional RO-PUF?

    For each group size ``k`` the conventional chips are enrolled with the
    classic widest-margin-pair selection; the table reports the margin the
    selection buys, how completely it suppresses *measurement-noise* flips
    (single noisy re-read at the enrolment corner), and how much of the
    *aging* flip rate survives after ``t_years``.  The ARO-PUF with plain
    neighbour pairing is the reference row.

    The punchline the ablation exists for: masking's margin is static
    while the aging differential grows without bound, and every masked bit
    costs ``k`` oscillators — the circuit-level fix dominates it.
    """
    import dataclasses as _dc

    config = config or ExperimentConfig()
    rows: List[MaskingRow] = []

    conv = conventional_design(config.n_ros, config.n_stages)
    study = make_study(conv, config.n_chips, mission=config.mission, rng=config.seed)

    for k in ks:
        margins = []
        noise_flips = []
        aging_flips = []
        for idx, (inst, aging) in enumerate(zip(study.instances, study.agings)):
            freqs = inst.frequencies()
            pairing = select_stable_pairs(freqs, k)
            margins.append(float(selection_margins(freqs, pairing).mean()))
            masked = _dc.replace(inst.design, pairing=pairing)
            fresh_inst = masked.instantiate(inst.chip)
            golden = fresh_inst.golden_response()
            noisy = fresh_inst.evaluate(noisy=True, rng=config.seed + idx)
            aged = masked.instantiate(aging.aged(t_years)).golden_response()
            n_bits = golden.size
            noise_flips.append(float(np.count_nonzero(golden != noisy)) / n_bits)
            aging_flips.append(float(np.count_nonzero(golden != aged)) / n_bits)
        rows.append(
            MaskingRow(
                label=f"ro-puf / 1-of-{k} masking" if k > 2 else "ro-puf / neighbour (k=2)",
                ros_per_bit=float(k),
                n_bits=config.n_ros // k,
                mean_margin_percent=100.0 * float(np.mean(margins)),
                noise_flips_percent=100.0 * float(np.mean(noise_flips)),
                aging_flips_percent=100.0 * float(np.mean(aging_flips)),
            )
        )

    # the ARO reference: plain neighbour pairing, no helper-data selection
    aro = aro_design(config.n_ros, config.n_stages)
    aro_study = make_study(
        aro, config.n_chips, mission=config.mission, rng=config.seed
    )
    goldens = aro_study.responses()
    aged = aro_study.responses(t_years=t_years)
    noise = [
        inst.evaluate(noisy=True, rng=config.seed + 500 + i)
        for i, inst in enumerate(aro_study.instances)
    ]
    freqs0 = aro_study.instances[0].frequencies()
    neighbour_margin = 100.0 * float(
        np.abs(freqs0[0::2][: len(freqs0) // 2] - freqs0[1::2][: len(freqs0) // 2]).mean()
        / freqs0.mean()
    )
    from ..metrics.reliability import reliability as _rel

    rows.append(
        MaskingRow(
            label="aro-puf / neighbour (reference)",
            ros_per_bit=2.0,
            n_bits=aro.n_bits,
            mean_margin_percent=neighbour_margin,
            noise_flips_percent=_rel(goldens, noise).percent(),
            aging_flips_percent=_rel(goldens, aged).percent(),
        )
    )
    return MaskingAblationResult(rows=rows, t_years=t_years)


# ----------------------------------------------------------------------
# E10 — extension: lifetime device authentication
# ----------------------------------------------------------------------


@_staged("experiment.e10")
def authentication_experiment(
    config: Optional[ExperimentConfig] = None,
    years: Sequence[float] = (0.0, 2.0, 5.0, 10.0),
    threshold: float = 0.25,
):
    """E10: CRP authentication error rates over the mission.

    Enrols every chip fresh, authenticates the aged silicon at each
    mission point against the stored tables, and pits impostor chips
    against each other's tables.  Returns the
    :class:`repro.protocol.AuthenticationStudyResult`, including the
    equal-error-rate analysis that shows whether *any* threshold still
    separates genuine-aged from impostor at end of life.
    """
    from ..protocol.authentication import authentication_study

    config = config or ExperimentConfig()
    studies = {
        name: config.study_for(design)
        for name, design in config.designs().items()
    }
    batch = 16
    n_challenges = batch * (len(years) + 1)
    return authentication_study(
        studies,
        years=years,
        threshold=threshold,
        batch_size=batch,
        n_challenges=n_challenges,
        rng=config.seed,
    )


# ----------------------------------------------------------------------
# E11 — extension: sorting modeling attack on exposed CRPs
# ----------------------------------------------------------------------


@dataclass
class AttackResult:
    """E11 rows: prediction accuracy vs disclosed CRPs, per design."""

    rows: Dict[str, List[Tuple[int, float, float]]]
    n_ros: int

    def ledger_scalars(self) -> Dict[str, float]:
        """E11 headline scalars: attack accuracy at max disclosed CRPs."""
        out: Dict[str, float] = {}
        for name, series in self.rows.items():
            if series:
                n_train, accuracy, coverage = series[-1]
                out[f"{name}.attack_accuracy_at_{n_train}_crps"] = accuracy
                out[f"{name}.attack_order_coverage"] = coverage
        return out


@_staged("experiment.e11")
def attack_experiment(
    config: Optional[ExperimentConfig] = None,
    train_sizes: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    n_test: int = 32,
) -> AttackResult:
    """E11: how fast the sorting attack learns each PUF's responses.

    Aging resistance is orthogonal to modeling resistance: both designs
    fall at the same rate, which is why the key-generation mode (responses
    never exposed) carries the paper's security story.
    """
    from ..protocol.attacks import attack_curve

    config = config or ExperimentConfig()
    rows: Dict[str, List[Tuple[int, float, float]]] = {}
    for name, design in config.designs().items():
        inst = design.sample_instances(1, rng=config.seed)[0]
        rows[name] = attack_curve(
            inst, train_sizes=train_sizes, n_test=n_test, rng=config.seed
        )
    return AttackResult(rows=rows, n_ros=config.n_ros)


# ----------------------------------------------------------------------
# E12 — extension: ring-length (stage-count) design choice
# ----------------------------------------------------------------------


@dataclass
class StageRow:
    """One (design, stage count) evaluation."""

    design: str
    n_stages: int
    frequency_ghz: float
    uniqueness_percent: float
    flips_percent: float
    cell_area_um2: float


@dataclass
class StageAblationResult:
    """E12 rows across ring lengths."""

    rows: List[StageRow]
    t_years: float

    def ledger_scalars(self) -> Dict[str, float]:
        """E12 headline scalars: the paper's 5-stage design point."""
        out: Dict[str, float] = {}
        for row in self.rows:
            if row.n_stages == 5:
                out[f"{row.design}.flips_at_5_stages_pct"] = row.flips_percent
                out[f"{row.design}.uniqueness_at_5_stages_pct"] = (
                    row.uniqueness_percent
                )
        return out


@_staged("experiment.e12")
def stage_ablation(
    config: Optional[ExperimentConfig] = None,
    stage_counts: Sequence[int] = (3, 5, 7, 9, 13),
    t_years: float = 10.0,
) -> StageAblationResult:
    """E12: does the choice of ring length change the paper's story?

    Longer rings average device mismatch over more stages, shrinking both
    the process margin and the aging differential by the same sqrt-law —
    the flip rate is nearly ring-length invariant, so the ARO's advantage
    is a property of the stress policy, not of the 5-stage choice.  What
    ring length *does* buy is lower frequency (easier counters) at linear
    area cost.
    """
    config = config or ExperimentConfig()
    rows: List[StageRow] = []
    for n_stages in stage_counts:
        for name, factory in (
            ("ro-puf", conventional_design),
            ("aro-puf", aro_design),
        ):
            design = factory(config.n_ros, n_stages)
            study = make_study(
                design, config.n_chips, mission=config.mission, rng=config.seed
            )
            fresh = study.responses()
            aged = study.responses(t_years=t_years)
            freq = float(study.instances[0].frequencies().mean() / 1e9)
            rows.append(
                StageRow(
                    design=name,
                    n_stages=n_stages,
                    frequency_ghz=freq,
                    uniqueness_percent=uniqueness(fresh).percent(),
                    flips_percent=reliability(fresh, aged).percent(),
                    cell_area_um2=design.cell.cell_area(design.tech),
                )
            )
    return StageAblationResult(rows=rows, t_years=t_years)


# ----------------------------------------------------------------------
# E13 — margin forensics (per-bit provenance of the 32 % / 7.7 % story)
# ----------------------------------------------------------------------


@dataclass
class MarginForensicsResult:
    """E13: per-bit margin provenance for both designs.

    Carries the full :class:`~repro.forensics.DesignForensics` records
    (margins per year, mechanism-attributed shifts, forecast masks); the
    ledger sees the headline distribution and forecast-quality scalars.
    """

    reports: Dict[str, DesignForensics]
    t_horizon: float
    k: float

    def ledger_scalars(self) -> Dict[str, float]:
        """E13 headline scalars: margin percentiles + forecast quality.

        ``<design>.forecast_recall`` is the anchors layer's warn-band
        metric (recall >= 0.8 of actual 10-year flips); ``flipped_pct``
        must agree with E2's 10-year flip figures — same seed, same
        silicon — which ties the forensics view back to the headline
        experiment.
        """
        out: Dict[str, float] = {}
        for name, rep in self.reports.items():
            fresh = rep.summary(0.0)
            out[f"{name}.margin_p5_pct"] = 100.0 * fresh.percentile(5)
            out[f"{name}.margin_p50_pct"] = 100.0 * fresh.percentile(50)
            out[f"{name}.drift_rms_pct"] = 100.0 * rep.forecast.drift_scale
            out[f"{name}.at_risk_pct"] = 100.0 * rep.forecast.at_risk_fraction
            out[f"{name}.flipped_pct"] = 100.0 * rep.flipped_fraction
            out[f"{name}.forecast_recall"] = rep.outcome.recall
            out[f"{name}.forecast_precision"] = rep.outcome.precision
        return out


@_staged("experiment.e13")
def margin_forensics(
    config: Optional[ExperimentConfig] = None,
    years: Sequence[float] = DEFAULT_FORENSICS_YEARS,
    t_horizon: float = DEFAULT_HORIZON,
    k: float = K_DEFAULT,
) -> MarginForensicsResult:
    """E13: which bits flip, and which mechanism ate their margins?

    Runs both designs through the forensics capture: signed comparison
    margins per (chip, bit, year), NBTI-vs-HCI attribution of the margin
    shift at the horizon, and the enrolment-time at-risk forecast scored
    against the actual flips.  The paper's population-average claim
    (32 % vs 7.7 % at 10 years) decomposes here into *which* comparisons
    started life on a knife edge and whose margin the stress policy
    preserved.  (ISSUE 5 numbered this experiment E9; E9 was already the
    masking ablation, so the registry continues at E13.)
    """
    config = config or ExperimentConfig()
    reports: Dict[str, DesignForensics] = {}
    for name, design in config.designs().items():
        with closing(config.batch_study_for(design)) as study:
            reports[name] = capture_forensics(
                study,
                design_label=name,
                years=years,
                t_horizon=t_horizon,
                k=k,
            )
    return MarginForensicsResult(
        reports=reports, t_horizon=float(t_horizon), k=float(k)
    )
