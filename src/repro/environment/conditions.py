"""Operating conditions: the (temperature, supply) point of an evaluation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..transistor.technology import T_REF_K, TechnologyCard


def celsius(temp_c: float) -> float:
    """Convert degrees Celsius to kelvin."""
    return temp_c + 273.15


@dataclass(frozen=True)
class OperatingConditions:
    """One environmental corner at which the PUF is evaluated.

    ``vdd = None`` means "nominal for the technology"; temperatures are in
    kelvin (use :func:`celsius` for readable construction).
    """

    temperature_k: float = T_REF_K
    vdd: Optional[float] = None

    def __post_init__(self) -> None:
        if self.temperature_k <= 0:
            raise ValueError("temperature_k must be positive kelvin")
        if self.vdd is not None and self.vdd <= 0:
            raise ValueError("vdd must be positive")

    def effective_vdd(self, tech: TechnologyCard) -> float:
        """Supply voltage to use with ``tech`` at this corner."""
        return tech.vdd if self.vdd is None else self.vdd

    @classmethod
    def nominal(cls) -> "OperatingConditions":
        """Room temperature, nominal supply — the enrolment corner."""
        return cls()

    def describe(self) -> str:
        """Human-readable corner label, e.g. ``'85.0C/1.08V'``."""
        v = "nom" if self.vdd is None else f"{self.vdd:.2f}V"
        return f"{self.temperature_k - 273.15:.1f}C/{v}"


def temperature_sweep(low_c: float = -20.0, high_c: float = 85.0, steps: int = 8):
    """Evenly spaced temperature corners at nominal supply."""
    if steps < 2:
        raise ValueError("need at least two steps for a sweep")
    span = (high_c - low_c) / (steps - 1)
    return [OperatingConditions(temperature_k=celsius(low_c + i * span)) for i in range(steps)]


def voltage_sweep(tech: TechnologyCard, rel_low: float = 0.9, rel_high: float = 1.1, steps: int = 5):
    """Evenly spaced supply corners at room temperature."""
    if steps < 2:
        raise ValueError("need at least two steps for a sweep")
    span = (rel_high - rel_low) / (steps - 1)
    return [
        OperatingConditions(vdd=tech.vdd * (rel_low + i * span)) for i in range(steps)
    ]
