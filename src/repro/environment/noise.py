"""Evaluation noise: per-measurement frequency jitter and counter quantisation.

Within one counting window an RO's measured count deviates from its mean
for two reasons:

* **jitter** — supply and thermal noise modulate the period; across a full
  window this integrates to a Gaussian relative frequency error with sigma
  ``TechnologyCard.eval_jitter``;
* **quantisation** — the counter truncates to whole edges, a uniform
  ``[-1, 0]``-count error (negligible for the windows the paper uses, but
  modelled so short-window studies behave correctly).

Golden (enrolment) responses are conventionally taken as the majority over
repeated evaluations; :func:`majority_vote` implements that.
"""

from __future__ import annotations

import numpy as np

from .._rng import RngLike, as_generator
from ..transistor.technology import TechnologyCard


def noisy_counts(
    frequencies: np.ndarray,
    window_s: float,
    tech: TechnologyCard,
    rng: RngLike = None,
    *,
    quantize: bool = True,
) -> np.ndarray:
    """Simulated counter readings for one measurement window.

    Parameters
    ----------
    frequencies:
        True mean oscillation frequencies (hertz), any shape.
    window_s:
        Counting window length in seconds.

    Returns
    -------
    Float array of counts (kept float so fractional analysis is possible
    when ``quantize=False``).
    """
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    freqs = np.asarray(frequencies, dtype=float)
    if np.any(freqs <= 0):
        raise ValueError("frequencies must be positive")
    gen = as_generator(rng)
    jitter = 1.0 + tech.eval_jitter * gen.standard_normal(freqs.shape)
    counts = freqs * jitter * window_s
    if quantize:
        counts = np.floor(counts)
    return counts


def noisy_frequencies(
    frequencies: np.ndarray,
    tech: TechnologyCard,
    rng: RngLike = None,
) -> np.ndarray:
    """Frequencies with one evaluation's worth of jitter applied."""
    freqs = np.asarray(frequencies, dtype=float)
    gen = as_generator(rng)
    return freqs * (1.0 + tech.eval_jitter * gen.standard_normal(freqs.shape))


def majority_vote(responses: np.ndarray) -> np.ndarray:
    """Bitwise majority over repeated response evaluations.

    ``responses`` has shape ``(n_repeats, n_bits)`` with 0/1 entries —
    or ``(n_repeats, ..., n_bits)`` for batched (chip-axis) responses;
    the result is the per-bit majority over the first axis (ties broken
    towards 1, so use an odd repeat count for unambiguous enrolment).
    """
    responses = np.asarray(responses)
    if responses.ndim < 2:
        raise ValueError("responses must have shape (n_repeats, ..., n_bits)")
    if responses.size == 0:
        raise ValueError("responses is empty")
    return (responses.mean(axis=0) >= 0.5).astype(np.uint8)
