"""Environmental layer: operating corners and evaluation noise."""

from .conditions import (
    OperatingConditions,
    celsius,
    temperature_sweep,
    voltage_sweep,
)
from .noise import majority_vote, noisy_counts, noisy_frequencies

__all__ = [
    "OperatingConditions",
    "celsius",
    "majority_vote",
    "noisy_counts",
    "noisy_frequencies",
    "temperature_sweep",
    "voltage_sweep",
]
