"""``repro monitor``: render a live (or post-hoc) view of an events file.

The progress emitter writes a throttled JSONL heartbeat; this module is
its reader.  :func:`parse_events` folds event lines (any mix of
``progress``, lifecycle and sampler ``sample`` records, malformed lines
skipped) into a :class:`MonitorState`; :func:`render_monitor` turns the
state into the terminal dashboard: per-stage progress bars with a
rolling rate and ETA, the currently open span, and an RSS sparkline
from the sampler echoes.

Both halves are pure (lines in, text out) so the dashboard is testable
without threads, files or timing; the CLI's ``monitor`` subcommand owns
the tail-and-redraw loop around them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .history import sparkline

#: (elapsed_s, done) pairs kept per stage for the rolling rate
RATE_WINDOW = 8


@dataclass
class StageProgress:
    """Latest knowledge about one progress stage."""

    name: str
    done: int = 0
    total: Optional[int] = None
    eta_s: Optional[float] = None
    first_elapsed_s: float = 0.0
    last_elapsed_s: float = 0.0
    history: List[Tuple[float, int]] = field(default_factory=list)

    @property
    def rate(self) -> Optional[float]:
        """Rolling items/sec over the last :data:`RATE_WINDOW` events."""
        if len(self.history) < 2:
            return None
        (t0, d0), (t1, d1) = self.history[0], self.history[-1]
        if t1 <= t0:
            return None
        return (d1 - d0) / (t1 - t0)

    @property
    def fraction(self) -> Optional[float]:
        if not self.total:
            return None
        return min(1.0, self.done / self.total)


@dataclass
class MonitorState:
    """Everything the dashboard knows after folding an events file."""

    stages: Dict[str, StageProgress] = field(default_factory=dict)
    runs_started: int = 0
    runs_ended: int = 0
    command: Optional[str] = None
    experiment: Optional[Any] = None
    current_span: Optional[str] = None
    rss_series: List[float] = field(default_factory=list)
    last_rss_bytes: Optional[float] = None
    lag_series: List[float] = field(default_factory=list)
    last_loop_lag_ms: Optional[float] = None
    elapsed_s: float = 0.0
    n_events: int = 0
    n_skipped: int = 0

    @property
    def running(self) -> bool:
        return self.runs_started > self.runs_ended


def parse_events(
    lines: Sequence[str], state: Optional[MonitorState] = None
) -> MonitorState:
    """Fold event lines into ``state`` (a fresh one by default).

    Incremental by design: the CLI's follow mode keeps one state and
    feeds only the newly appended lines of each tail round.
    """
    state = state or MonitorState()
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            state.n_skipped += 1
            continue
        if not isinstance(record, dict) or "event" not in record:
            state.n_skipped += 1
            continue
        state.n_events += 1
        elapsed = record.get("elapsed_s")
        if isinstance(elapsed, (int, float)):
            state.elapsed_s = max(state.elapsed_s, float(elapsed))
        kind = record["event"]
        if kind == "progress":
            _fold_progress(state, record)
        elif kind == "sample":
            _fold_sample(state, record)
        elif kind == "run.start":
            state.runs_started += 1
            state.command = record.get("command") or state.command
            if record.get("experiment") is not None:
                state.experiment = record.get("experiment")
        elif kind == "run.end":
            state.runs_ended += 1
        # unknown lifecycle kinds (cache.hit, ...) still count as events
    return state


def _fold_progress(state: MonitorState, record: Dict[str, Any]) -> None:
    stage_name = record.get("stage")
    if not isinstance(stage_name, str):
        state.n_skipped += 1
        return
    stage = state.stages.get(stage_name)
    elapsed = float(record.get("elapsed_s") or 0.0)
    if stage is None:
        stage = state.stages[stage_name] = StageProgress(
            stage_name, first_elapsed_s=elapsed
        )
    done = record.get("done")
    if isinstance(done, int):
        if done < stage.done:
            # the stage restarted (next corner of a sweep): reset the
            # rolling window so the rate reflects the current pass
            stage.history.clear()
        stage.done = done
        stage.history.append((elapsed, done))
        del stage.history[:-RATE_WINDOW]
    total = record.get("total")
    if isinstance(total, int):
        stage.total = total
    eta = record.get("eta_s")
    stage.eta_s = float(eta) if isinstance(eta, (int, float)) else None
    stage.last_elapsed_s = elapsed


def _fold_sample(state: MonitorState, record: Dict[str, Any]) -> None:
    rss = record.get("rss_bytes")
    if isinstance(rss, (int, float)):
        state.last_rss_bytes = float(rss)
        state.rss_series.append(float(rss))
        del state.rss_series[:-120]  # one dashboard row's worth
    span = record.get("span")
    if isinstance(span, str):
        state.current_span = span
    # the event-loop-lag probe (serving runs) echoes through the sampler
    # as a flattened probe field; fold it like the RSS series
    lag = record.get("loop_lag_ms")
    if isinstance(lag, (int, float)):
        state.last_loop_lag_ms = float(lag)
        state.lag_series.append(float(lag))
        del state.lag_series[:-120]


def _bar(fraction: Optional[float], width: int = 24) -> str:
    if fraction is None:
        return "·" * width
    filled = int(round(fraction * width))
    return "█" * filled + "·" * (width - filled)


def _fmt_rss(n_bytes: float) -> str:
    if n_bytes >= 1 << 30:
        return f"{n_bytes / (1 << 30):.2f} GiB"
    return f"{n_bytes / (1 << 20):.0f} MiB"


def render_monitor(state: MonitorState, spark_width: int = 40) -> str:
    """The terminal dashboard for one folded state."""
    if state.n_events == 0:
        return "(no events yet)"
    status = "running" if state.running else "finished"
    head = f"run: {state.command or '?'}"
    if state.experiment is not None:
        head += f" {state.experiment}"
    head += f"  [{status}]  t={state.elapsed_s:.1f}s  events={state.n_events}"
    if state.n_skipped:
        head += f" (+{state.n_skipped} skipped)"
    lines = [head]
    if state.current_span:
        lines.append(f"span: {state.current_span}")
    if state.stages:
        width = max(len(name) for name in state.stages)
        for name in sorted(state.stages):
            stage = state.stages[name]
            row = f"{name:<{width}}  [{_bar(stage.fraction)}]"
            if stage.total:
                row += f" {stage.done}/{stage.total}"
            else:
                row += f" {stage.done}"
            rate = stage.rate
            if rate is not None:
                row += f"  {rate:,.0f}/s"
            if stage.eta_s is not None:
                row += f"  eta {stage.eta_s:.1f}s"
            lines.append(row)
    if state.rss_series:
        series = state.rss_series[-spark_width:]
        lines.append(
            f"rss : {sparkline(series)}  now {_fmt_rss(series[-1])}  "
            f"peak {_fmt_rss(max(state.rss_series))}"
        )
    if state.lag_series:
        series = state.lag_series[-spark_width:]
        lines.append(
            f"lag : {sparkline(series)}  now {series[-1]:.2f} ms  "
            f"peak {max(state.lag_series):.2f} ms"
        )
    return "\n".join(lines)
