"""Async request tracing: contextvar-propagated spans and request lanes.

The synchronous :class:`~repro.telemetry.tracer.Tracer` keeps its active
span on an instance list — correct for one linear flow of control, wrong
the moment an asyncio server interleaves requests: two concurrent
handlers would push onto one shared stack and each would close the
other's spans.  :class:`AsyncTracer` replaces the list with a
:mod:`contextvars` slot, which the event loop snapshots per task:

* within one coroutine, spans nest across ``await`` boundaries exactly
  like the sync tracer (the contextvar survives suspension points);
* ``asyncio.create_task`` / ``asyncio.gather`` copy the caller's
  context, so fanned-out subtasks *inherit* the current span as their
  parent but mutate only their own copy — no cross-request leakage, and
  a child task's forgotten span can never corrupt a sibling's stack.

:meth:`AsyncTracer.request` is the serving entry point: it opens a root
span carrying a fresh per-request **trace id**, detached from whatever
ambient span the accept loop was under, and on completion parks the
finished tree on a **request lane** (``req-<k>``) via the tracer's
``remote_lanes`` — the same mechanism parallel worker shards use — so
the Chrome/Perfetto export renders concurrent requests as parallel
worker-style timeline rows with correct re-nesting inside each.  Lanes
are recycled lowest-free-first, so the lane count equals the peak
request concurrency, not the request count.

:class:`EventLoopLagProbe` closes the loop-health gap: a cooperative
coroutine that sleeps on a fixed interval and records how late the loop
woke it (scheduler delay — the single best proxy for "the loop is
saturated").  It registers with the resource sampler's module-level
probe registry, so an active ``--sample-rss`` thread turns the lag into
a counter track next to RSS with zero hooks on any request path.

Everything here is single-loop by design: the tracer mutates its trees
only from event-loop context (the sampler thread merely *reads*
:attr:`active_span` for sample attribution).
"""

from __future__ import annotations

import contextvars
import heapq
import time
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional, Tuple

from . import tracer as _tracer_mod
from .sampler import register_probe, unregister_probe
from .tracer import Span, Tracer

#: the context-local (tracer, span) pair.  One module-level ContextVar —
#: never per-instance — because contexts outlive tracers; entries are
#: tagged with their owning tracer and ignored by any other, so a stale
#: value from a discarded test tracer cannot pollute a fresh one.
_CURRENT: "contextvars.ContextVar[Optional[Tuple[AsyncTracer, Span]]]" = (
    contextvars.ContextVar("repro_async_span", default=None)
)


def current_trace_id() -> Optional[int]:
    """The trace id of the request the calling context is serving.

    Walks from the context-local span to its root and returns the root's
    ``trace_id`` attribute; ``None`` outside any request (or when the
    installed tracer is not an :class:`AsyncTracer`).  Survives ``await``
    and task fan-out because the underlying slot is a contextvar.
    """
    entry = _CURRENT.get()
    if entry is None or entry[0] is not _tracer_mod._active:
        return None
    span: Optional[Span] = entry[1]
    while span is not None:
        trace_id = span.attrs.get("trace_id")
        if trace_id is not None:
            return int(trace_id)
        span = span.parent
    return None


class AsyncTracer(Tracer):
    """A :class:`Tracer` whose active-span state is context-local.

    Drop-in for the installed-tracer slot: the module-level single-branch
    helpers (``telemetry.start_span`` / ``end_span`` / ``span``) dispatch
    to the overrides below, so every existing instrumentation site
    becomes task-safe the moment an ``AsyncTracer`` is installed.  The
    disabled path is untouched — no contextvar is read unless a tracer
    is installed.

    Parameters
    ----------
    memory:
        As for :class:`Tracer`.  Note that tracemalloc peaks are
        process-global; under interleaved requests a span's peak may
        include a neighbour's allocations, so memory profiling of an
        async run is indicative, not attributable.
    lane_prefix:
        Label prefix for request lanes in the Chrome-trace export.
    """

    def __init__(self, *, memory: bool = False, lane_prefix: str = "req"):
        super().__init__(memory=memory)
        self.lane_prefix = lane_prefix
        self._open: "set[Span]" = set()
        self._last_started: Optional[Span] = None
        self._free_lanes: List[int] = []
        self._n_lanes = 0
        self._trace_seq = 0

    # ---- contextvar span stack ----------------------------------------

    def start_span(self, name: str, **attrs: Any) -> Span:
        """Open a span as a child of the *context-local* active span."""
        span = Span(name, attrs or None)
        entry = _CURRENT.get()
        parent = entry[1] if entry is not None and entry[0] is self else None
        if parent is not None:
            span.parent = parent
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._open.add(span)
        self._last_started = span
        _CURRENT.set((self, span))
        if self.memory:
            import tracemalloc

            tracemalloc.reset_peak()
            span._mem_start_bytes = tracemalloc.get_traced_memory()[0]
        span.start_ns = time.perf_counter_ns()
        return span

    def end_span(self, span: Span) -> Span:
        """Close ``span`` (and any forgotten descendants still open in
        the calling context), then re-activate its parent *in this
        context only* — sibling tasks are untouched."""
        end_ns = time.perf_counter_ns()
        if span.end_ns is not None:
            raise ValueError(f"span {span.name!r} already ended")
        if span not in self._open:
            raise ValueError(f"span {span.name!r} is not open on this tracer")
        entry = _CURRENT.get()
        current = entry[1] if entry is not None and entry[0] is self else None
        # unwind the context-local parent chain down to (excluding) span,
        # closing descendants an exception path forgot to end
        node = current
        chain: List[Span] = []
        while node is not None and node is not span:
            chain.append(node)
            node = node.parent
        if node is span:
            for forgotten in chain:
                if forgotten.end_ns is None:
                    forgotten.end_ns = end_ns
                    self._finish_memory(forgotten)
                self._open.discard(forgotten)
        span.end_ns = end_ns
        self._finish_memory(span)
        self._open.discard(span)
        _CURRENT.set((self, span.parent) if span.parent is not None else None)
        return span

    def _finish_memory(self, span: Span) -> None:
        if not self.memory:
            return
        import tracemalloc

        _current, peak = tracemalloc.get_traced_memory()
        base = span._mem_start_bytes or 0
        span.mem_peak_bytes = max(0, peak - base)

    @property
    def active_span(self) -> Optional[Span]:
        """The calling context's open span — or, read from another
        thread (the resource sampler), the most recently started span
        still open anywhere, which is the right attribution for a
        sample taken while the loop serves requests."""
        entry = _CURRENT.get()
        if entry is not None and entry[0] is self and entry[1] is not None:
            return entry[1]
        last = self._last_started
        if last is not None and last.end_ns is None:
            return last
        return None

    # ---- per-request tracing ------------------------------------------

    def next_trace_id(self) -> int:
        """Allocate the next per-request trace id (monotone from 1)."""
        self._trace_seq += 1
        return self._trace_seq

    @contextmanager
    def request(self, endpoint: str, **attrs: Any) -> Iterator[Span]:
        """Trace one request: a fresh root span with its own trace id.

        The span is detached from any ambient span (the accept loop's
        ``serve`` span must not adopt every request as a child), given a
        ``trace_id``/``endpoint`` pair, and — once finished — moved off
        the coordinator roots onto a recycled request lane so the
        exported timeline shows concurrency instead of a pile-up.
        """
        trace_id = self.next_trace_id()
        if self._free_lanes:
            lane = heapq.heappop(self._free_lanes)
        else:
            lane = self._n_lanes
            self._n_lanes += 1
        token = _CURRENT.set(None)  # detach: requests are roots
        span = self.start_span(
            f"request.{endpoint}", trace_id=trace_id, endpoint=endpoint, **attrs
        )
        try:
            yield span
        except BaseException:
            span.error = True
            raise
        finally:
            if span.end_ns is None:
                self.end_span(span)
            _CURRENT.reset(token)
            try:
                self.roots.remove(span)
            except ValueError:  # pragma: no cover - already moved
                pass
            self.add_remote_lane(f"{self.lane_prefix}-{lane}", [span])
            heapq.heappush(self._free_lanes, lane)

    # ---- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """End every still-open span and release tracemalloc if owned."""
        end_ns = time.perf_counter_ns()
        for span in list(self._open):
            if span.end_ns is None:
                span.end_ns = end_ns
        self._open.clear()
        if self._owns_tracemalloc:
            import tracemalloc

            tracemalloc.stop()
            self._owns_tracemalloc = False


class EventLoopLagProbe:
    """Event-loop scheduling delay as a sampler probe.

    A cooperative coroutine sleeps ``interval_s`` and measures how much
    *later* than requested the loop woke it; that excess is the time the
    loop spent unable to schedule ready callbacks — the canonical
    saturation signal for an asyncio service.  The most recent lag (ms)
    is exposed through :func:`~repro.telemetry.sampler.register_probe`
    under ``name``, so an active :class:`ResourceSampler` records it as
    a time series (and the Chrome export as a counter track) without the
    probe knowing whether anyone is listening.

    Use as an async context manager around the serving block::

        async with EventLoopLagProbe() as probe:
            await run_loadgen(...)
        print(probe.max_lag_ms)
    """

    def __init__(self, interval_s: float = 0.02, name: str = "loop_lag_ms"):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = float(interval_s)
        self.name = name
        self.lag_ms = 0.0
        self.max_lag_ms = 0.0
        self.n_ticks = 0
        self._task: Optional[Any] = None

    async def _run(self) -> None:
        import asyncio

        while True:
            t0 = time.perf_counter()
            await asyncio.sleep(self.interval_s)
            lag_s = (time.perf_counter() - t0) - self.interval_s
            self.lag_ms = max(0.0, lag_s * 1e3)
            self.max_lag_ms = max(self.max_lag_ms, self.lag_ms)
            self.n_ticks += 1

    def start(self) -> "EventLoopLagProbe":
        """Register the probe and start its loop task (idempotent)."""
        import asyncio

        if self._task is None:
            register_probe(self.name, lambda: self.lag_ms)
            self._task = asyncio.get_running_loop().create_task(self._run())
        return self

    async def stop(self) -> None:
        """Cancel the loop task and unregister the probe (idempotent)."""
        import asyncio

        task, self._task = self._task, None
        if task is None:
            return
        unregister_probe(self.name)
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass

    async def __aenter__(self) -> "EventLoopLagProbe":
        return self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()
