"""Paper anchors: the abstract's numbers as a declarative, checkable registry.

The source abstract pins this reproduction to a handful of quantitative
claims — 32 % of conventional RO-PUF response bits flip after ten years
of aging versus 7.7 % for the ARO-PUF, and the ARO's inter-chip Hamming
distance is 49.67 % (conventional ~45 %).  Refactors of the aging and
population kernels can bend these numbers *silently*: every individual
run still looks plausible, only the comparison against the paper (or
against last month's ledger) exposes the drift.

:data:`PAPER_ANCHORS` declares each claim once — metric key, paper
value, a *pass* tolerance and a *fail* tolerance — and
:func:`check_anchors` turns any flat scalar mapping (one run's merged
ledger scalars) into per-anchor verdicts:

* ``pass``  — within ``tol_pass`` of the paper value;
* ``warn``  — outside pass but within ``tol_fail`` (expected for
  scale-sensitive statistics at reduced Monte-Carlo scale, see each
  anchor's note);
* ``fail``  — outside ``tol_fail``: the reproduction no longer supports
  the paper's claim;
* ``missing`` — the ledger never recorded the metric.

Consumed by ``repro check-anchors`` (runs the anchor experiments fresh)
and ``tools/check_anchors.py`` (gates CI on an existing ledger).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from .ledger import LedgerEntry

#: status values ordered from best to worst (worst_status uses the order)
STATUS_ORDER = ("pass", "warn", "fail")


@dataclass(frozen=True)
class Anchor:
    """One quantitative claim of the paper, with tolerance bands."""

    name: str
    #: flattened ledger metric key: ``<experiment id>.<scalar key>``
    metric: str
    paper_value: float
    #: absolute deviation still counting as a reproduction match
    tol_pass: float
    #: absolute deviation beyond which the claim is contradicted
    tol_fail: float
    unit: str = "%"
    #: which experiment produces the metric (for actionable messages)
    experiment: str = ""
    note: str = ""

    def __post_init__(self):
        if self.tol_pass <= 0 or self.tol_fail <= 0:
            raise ValueError(f"anchor {self.name!r}: tolerances must be positive")
        if self.tol_fail < self.tol_pass:
            raise ValueError(
                f"anchor {self.name!r}: tol_fail must be >= tol_pass"
            )

    def judge(self, measured: float) -> str:
        """pass / warn / fail for one measured value."""
        deviation = abs(measured - self.paper_value)
        if deviation <= self.tol_pass:
            return "pass"
        if deviation <= self.tol_fail:
            return "warn"
        return "fail"


@dataclass(frozen=True)
class AnchorVerdict:
    """One anchor's outcome against one run's scalars."""

    anchor: Anchor
    measured: Optional[float]
    status: str

    @property
    def deviation(self) -> Optional[float]:
        if self.measured is None:
            return None
        return self.measured - self.anchor.paper_value


#: The registry.  Tolerances are set from the measured spread of the
#: seeded reference config (50 chips x 256 ROs, see EXPERIMENTS.md) and
#: from the reduced-scale sweeps CI runs; scale-sensitive statistics get
#: a wide warn band and a note saying why.
PAPER_ANCHORS: Sequence[Anchor] = (
    Anchor(
        name="conventional-flips-10y",
        metric="e2.ro-puf.flips_at_10y_pct",
        paper_value=32.0,
        tol_pass=4.0,
        tol_fail=8.0,
        experiment="e2",
        note="abstract: 32% of conventional RO-PUF bits flip after 10 years",
    ),
    Anchor(
        name="aro-flips-10y",
        metric="e2.aro-puf.flips_at_10y_pct",
        paper_value=7.7,
        tol_pass=2.5,
        tol_fail=5.0,
        experiment="e2",
        note="abstract: 7.7% of ARO-PUF bits flip after 10 years",
    ),
    Anchor(
        name="aging-improvement-10y",
        metric="e2.improvement_factor_10y",
        paper_value=4.16,
        tol_pass=1.5,
        tol_fail=2.6,
        unit="x",
        experiment="e2",
        note="derived: 32/7.7 ~ 4.2x fewer flips for the ARO design",
    ),
    Anchor(
        name="conventional-uniqueness",
        metric="e3.ro-puf.uniqueness_pct",
        paper_value=45.0,
        tol_pass=2.5,
        tol_fail=8.0,
        experiment="e3",
        note=(
            "abstract: ~45% inter-chip HD; scale-sensitive (systematic "
            "layout averaging needs >=25 chips x 128 ROs, warn below)"
        ),
    ),
    Anchor(
        name="aro-uniqueness",
        metric="e3.aro-puf.uniqueness_pct",
        paper_value=49.67,
        tol_pass=2.0,
        tol_fail=5.0,
        experiment="e3",
        note="abstract: 49.67% inter-chip HD for the ARO-PUF",
    ),
    Anchor(
        name="aro-uniformity",
        metric="e4.aro-puf.uniformity_pct",
        paper_value=50.0,
        tol_pass=4.0,
        tol_fail=10.0,
        experiment="e4",
        note="ideal balanced response; the ARO's symmetric cell should hold it",
    ),
    # Forecast-quality warn bands (not paper numbers): the enrolment-time
    # at-risk forecast must keep catching the bits that actually flip by
    # 10 years.  Encoded against an ideal of 1.0 with a one-sided band —
    # recall cannot exceed 1 — so >=0.8 passes, >=0.65 warns, below fails.
    Anchor(
        name="conventional-forecast-recall",
        metric="e13.ro-puf.forecast_recall",
        paper_value=1.0,
        tol_pass=0.2,
        tol_fail=0.35,
        experiment="e13",
        note=(
            "gate (ours, not the paper's): enrolment margin forecast catches "
            ">=80% of actual 10-year flips on the seeded run"
        ),
    ),
    Anchor(
        name="aro-forecast-recall",
        metric="e13.aro-puf.forecast_recall",
        paper_value=1.0,
        tol_pass=0.2,
        tol_fail=0.35,
        experiment="e13",
        note=(
            "gate (ours, not the paper's): enrolment margin forecast catches "
            ">=80% of actual 10-year flips on the seeded run"
        ),
    ),
)

#: experiments a fresh anchor check has to run (the registry's sources)
ANCHOR_EXPERIMENTS = tuple(
    dict.fromkeys(a.experiment for a in PAPER_ANCHORS if a.experiment)
)


def latest_scalars(entries: Sequence[LedgerEntry]) -> Dict[str, float]:
    """Merge ledger entries into one flat ``{"<exp>.<key>": value}`` map.

    Entries are applied in file order, so the *latest* recording of each
    metric wins — checking a ledger checks the most recent run of each
    experiment, which is what a CI gate wants.
    """
    merged: Dict[str, float] = {}
    for entry in entries:
        for key, value in entry.scalars.items():
            merged[f"{entry.experiment}.{key}"] = value
    return merged


def check_anchors(
    scalars: Mapping[str, float],
    anchors: Sequence[Anchor] = PAPER_ANCHORS,
) -> List[AnchorVerdict]:
    """Judge every anchor against a flat scalar mapping."""
    verdicts = []
    for anchor in anchors:
        measured = scalars.get(anchor.metric)
        if measured is None:
            verdicts.append(AnchorVerdict(anchor, None, "missing"))
        else:
            verdicts.append(
                AnchorVerdict(anchor, float(measured), anchor.judge(measured))
            )
    return verdicts


def worst_status(
    verdicts: Sequence[AnchorVerdict], *, missing_is_fail: bool = False
) -> str:
    """The most severe status across verdicts (``pass`` when empty)."""
    worst = "pass"
    for v in verdicts:
        status = v.status
        if status == "missing":
            if not missing_is_fail:
                continue
            status = "fail"
        if STATUS_ORDER.index(status) > STATUS_ORDER.index(worst):
            worst = status
    return worst


_STATUS_MARK = {"pass": "ok  ", "warn": "WARN", "fail": "FAIL", "missing": "----"}


def render_verdicts(verdicts: Sequence[AnchorVerdict]) -> str:
    """Aligned terminal table: one row per anchor."""
    if not verdicts:
        return "(no anchors checked)"
    rows = []
    for v in verdicts:
        a = v.anchor
        measured = "     --" if v.measured is None else f"{v.measured:7.2f}"
        dev = "" if v.deviation is None else f"  ({v.deviation:+.2f} {a.unit})"
        rows.append(
            f"{_STATUS_MARK[v.status]}  {a.name:<26} "
            f"paper {a.paper_value:7.2f} {a.unit:<2} "
            f"measured {measured}{dev}"
        )
    return "\n".join(rows)
