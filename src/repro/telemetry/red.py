"""RED metrics: request Rate, Error taxonomy, Duration per endpoint.

The serving layer's vital signs, named after the RED method (rate /
errors / duration) the SRE literature prescribes for request-driven
services.  One :class:`RedMetrics` instance aggregates, per endpoint:

* **rate** — a monotone request counter plus the wall-clock window it
  accumulated over, so ``requests / elapsed`` is an honest sustained
  rate rather than an instantaneous one;
* **errors** — a taxonomy counter per error class (``unknown_chip``,
  ``bad_request``, ``key_recovery``, ``internal``, ...).  A *rejected*
  authentication is deliberately **not** an error: refusing an impostor
  is the service doing its job, and folding rejections into availability
  would let an attack masquerade as an outage;
* **duration** — one streaming :class:`~repro.telemetry.histogram.Histogram`
  per ``endpoint × outcome`` (milliseconds), so "p99 of successful
  auths" and "p99 of failures" never blur into one meaningless mix.

The class is plain bookkeeping — dict increments and one O(1) histogram
observe per request, no locks (the asyncio service mutates it from one
loop) and no knowledge of the tracer.  :meth:`publish` folds the state
into an installed tracer so ``--metrics-out`` / manifests / the perf
ledger see the service's distributions through the existing pipeline,
and :meth:`metrics` flattens everything into the scalar map the SLO
spec (:mod:`repro.service.slo`) judges.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable, Dict, Optional, Tuple

from .histogram import Histogram

#: format version of the serialised RED section, bumped on layout changes
RED_FORMAT = 1

#: outcomes that are *not* errors: the request was served correctly,
#: whatever the verdict.  Everything else is an error class.
NON_ERROR_OUTCOMES = ("ok", "rejected")

#: the error taxonomy the service emits (open set — unknown classes
#: still count, these are the documented ones)
ERROR_CLASSES = ("bad_request", "unknown_chip", "key_recovery", "internal")

#: tail quantiles the SLO layer gates, beyond the standard summary set
SLO_QUANTILES = (("p50", 0.50), ("p99", 0.99), ("p999", 0.999))


class RedMetrics:
    """Per-endpoint RED aggregation for one service lifetime."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self.t0 = clock()
        #: endpoint -> total requests (any outcome)
        self.requests: Dict[str, int] = {}
        #: endpoint -> {error class -> count}
        self.errors: Dict[str, Dict[str, int]] = {}
        #: (endpoint, outcome) -> duration histogram in milliseconds
        self.durations: Dict[Tuple[str, str], Histogram] = {}

    # ---- recording -----------------------------------------------------

    def observe(self, endpoint: str, outcome: str, duration_s: float) -> None:
        """Fold one finished request in (the only hot-path entry point)."""
        self.requests[endpoint] = self.requests.get(endpoint, 0) + 1
        if outcome not in NON_ERROR_OUTCOMES:
            per = self.errors.setdefault(endpoint, {})
            per[outcome] = per.get(outcome, 0) + 1
        key = (endpoint, outcome)
        hist = self.durations.get(key)
        if hist is None:
            hist = self.durations[key] = Histogram()
        hist.observe(duration_s * 1e3)

    # ---- queries ---------------------------------------------------------

    def elapsed_s(self) -> float:
        return max(self._clock() - self.t0, 0.0)

    def total_requests(self) -> int:
        return sum(self.requests.values())

    def total_errors(self) -> int:
        return sum(sum(per.values()) for per in self.errors.values())

    def error_count(self, endpoint: str) -> int:
        return sum(self.errors.get(endpoint, {}).values())

    def availability(self, endpoint: str) -> float:
        """Fraction of requests served without error (1.0 when idle)."""
        n = self.requests.get(endpoint, 0)
        if n == 0:
            return 1.0
        return 1.0 - self.error_count(endpoint) / n

    def rate_per_s(self, endpoint: str) -> float:
        elapsed = self.elapsed_s()
        if elapsed <= 0.0:
            return 0.0
        return self.requests.get(endpoint, 0) / elapsed

    def endpoint_histogram(
        self, endpoint: str, outcome: Optional[str] = "ok"
    ) -> Histogram:
        """The duration histogram for ``endpoint`` (``outcome=None``
        merges every outcome into one fresh histogram)."""
        if outcome is not None:
            return self.durations.get((endpoint, outcome)) or Histogram()
        merged = Histogram()
        for (ep, _oc), hist in self.durations.items():
            if ep == endpoint:
                merged.merge(hist)
        return merged

    def metrics(self) -> Dict[str, float]:
        """The flat, SLO-gateable scalar map.

        Keys: ``<endpoint>.requests`` / ``.rate_per_s`` /
        ``.availability`` / ``.error_rate``, plus ``.p50_ms`` / ``.p99_ms``
        / ``.p999_ms`` of the *successful* (``ok``) durations — latency
        objectives are promises about served requests, and an error fast-
        path must not be allowed to flatter the tail.  Non-finite values
        (no successes yet) are dropped, so an SLO sees them as missing.
        """
        out: Dict[str, float] = {}
        for endpoint in sorted(self.requests):
            n = self.requests[endpoint]
            out[f"{endpoint}.requests"] = float(n)
            out[f"{endpoint}.rate_per_s"] = self.rate_per_s(endpoint)
            out[f"{endpoint}.availability"] = self.availability(endpoint)
            out[f"{endpoint}.error_rate"] = (
                self.error_count(endpoint) / n if n else 0.0
            )
            ok_hist = self.endpoint_histogram(endpoint, "ok")
            for name, value in ok_hist.quantiles(SLO_QUANTILES).items():
                if isinstance(value, float) and not math.isfinite(value):
                    continue
                out[f"{endpoint}.{name}_ms"] = float(value)
        return out

    # ---- export ----------------------------------------------------------

    @staticmethod
    def site(endpoint: str, outcome: str) -> str:
        """The histogram-registry key one duration series publishes as."""
        return f"service.{endpoint}.{outcome}.ms"

    def summaries(self) -> Dict[str, Dict[str, float]]:
        """Per-site summaries in the shape ``benchmarks._common.emit``
        and :func:`entry_from_bench_payload` ingest (p50/p99 tracked)."""
        return {
            self.site(ep, oc): hist.summary()
            for (ep, oc), hist in sorted(self.durations.items())
        }

    def to_dict(self) -> Dict[str, Any]:
        """The JSON ``red`` section of a service payload.

        Full histogram bucket states (not summaries) ride along so a
        reader can recompute any quantile — the same
        full-state-over-digest choice METRICS_FORMAT 3 made.
        """
        endpoints: Dict[str, Any] = {}
        for endpoint in sorted(self.requests):
            outcomes = {
                oc: hist.count
                for (ep, oc), hist in sorted(self.durations.items())
                if ep == endpoint
            }
            endpoints[endpoint] = {
                "requests": self.requests[endpoint],
                "rate_per_s": self.rate_per_s(endpoint),
                "availability": self.availability(endpoint),
                "errors": dict(sorted(self.errors.get(endpoint, {}).items())),
                "outcomes": outcomes,
            }
        return {
            "format": RED_FORMAT,
            "elapsed_s": self.elapsed_s(),
            "endpoints": endpoints,
            "durations_ms": {
                self.site(ep, oc): hist.to_dict()
                for (ep, oc), hist in sorted(self.durations.items())
            },
        }

    def publish(self, tracer: Any) -> None:
        """Fold counters + duration histograms into ``tracer``.

        Counter names mirror the flat metric keys under a ``service.``
        prefix; histograms merge under their :meth:`site` keys, so the
        existing exports (``--metrics-out``, manifest summaries, ledger
        flattening) carry the service's distributions unchanged.
        """
        for endpoint, n in sorted(self.requests.items()):
            tracer.count(f"service.{endpoint}.requests", float(n))
            for cls, c in sorted(self.errors.get(endpoint, {}).items()):
                tracer.count(f"service.{endpoint}.errors.{cls}", float(c))
        for (ep, oc), hist in sorted(self.durations.items()):
            tracer.merge_histogram(self.site(ep, oc), hist)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RedMetrics requests={self.total_requests()} "
            f"errors={self.total_errors()} endpoints={sorted(self.requests)}>"
        )
