"""Ledger history: per-metric trends, sparklines and drift detection.

A ledger is only useful if someone reads it.  ``repro history`` renders
every metric the ledger has accumulated as one row: a terminal sparkline
over the recorded values (file order == chronological order for an
append-only file), the latest value, and its delta against a *rolling
baseline* — the mean of the preceding ``window`` values.  A latest value
that moved more than ``threshold`` (relative) away from its own baseline
is flagged as drift.

Drift flags are deliberately two-sided and informational: the ledger
does not know whether a metric is better when smaller (flip rates) or
when closer to a constant (uniqueness ~50 %), so it reports *movement*
and leaves the judgement to the anchor registry
(:mod:`repro.telemetry.anchors`), which does know.

Two baselining disciplines are available.  The default is the original
rolling *mean* with a fixed relative threshold — cheap, but one outlier
run both pollutes the baseline and fires the flag.  ``robust=True``
switches to the median+MAD change-point detector
(:mod:`repro.telemetry.changepoint`): the baseline becomes the trailing
median, the flag fires only beyond the metric's own measured noise, and
short series stay in warm-up instead of flagging on two data points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from . import changepoint
from .ledger import LedgerEntry

#: eighths-block ramp used for terminal sparklines
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A unicode sparkline over ``values`` (min .. max scaled)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        # a flat series renders mid-scale rather than all-minimum
        return SPARK_BLOCKS[3] * len(values)
    span = hi - lo
    top = len(SPARK_BLOCKS) - 1
    return "".join(
        SPARK_BLOCKS[min(top, int((v - lo) / span * len(SPARK_BLOCKS)))]
        for v in values
    )


@dataclass(frozen=True)
class TrendRow:
    """One metric's longitudinal summary across ledger entries."""

    metric: str
    values: Tuple[float, ...]
    latest: float
    baseline: Optional[float]  # rolling mean (or robust median) baseline
    change: Optional[float]  # (latest - baseline) / |baseline|
    drift: bool
    #: robust-mode detector status ("warmup" | "stable" | "up" | "down");
    #: None on rows produced by the classic rolling-mean discipline
    verdict: Optional[str] = None

    @property
    def n_runs(self) -> int:
        return len(self.values)


def metric_series(
    entries: Sequence[LedgerEntry],
) -> Dict[str, List[float]]:
    """``{"<exp>.<key>": [v0, v1, ...]}`` in entry (chronological) order."""
    series: Dict[str, List[float]] = {}
    for entry in entries:
        for key, value in entry.scalars.items():
            series.setdefault(f"{entry.experiment}.{key}", []).append(value)
    return series


def _baseline(values: Sequence[float], window: int) -> Optional[float]:
    """Mean of the up-to-``window`` values preceding the latest one."""
    prior = values[:-1]
    if not prior:
        return None
    tail = prior[-window:]
    return sum(tail) / len(tail)


def history_rows(
    entries: Sequence[LedgerEntry],
    *,
    metrics: Optional[Sequence[str]] = None,
    window: int = 5,
    threshold: float = 0.10,
    last: Optional[int] = None,
    robust: bool = False,
) -> List[TrendRow]:
    """Build trend rows for every (selected) metric in the ledger.

    ``metrics`` filters by substring match (so ``--metric e2`` selects
    every E2 scalar); ``last`` truncates each series to its newest N
    points before baselining.  ``robust`` swaps the rolling-mean drift
    flag for the median+MAD change-point verdict (``threshold`` then
    serves as the detector's relative floor).
    """
    if window < 1:
        raise ValueError("window must be positive")
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    rows: List[TrendRow] = []
    for metric, values in sorted(metric_series(entries).items()):
        if metrics and not any(m in metric for m in metrics):
            continue
        if last is not None:
            values = values[-last:]
        if not values:
            continue
        latest = values[-1]
        if robust:
            point = changepoint.detect(
                metric,
                values,
                window=max(window, 2),
                min_history=min(changepoint.MIN_HISTORY, max(window, 2)),
                min_rel=threshold,
            )
            rows.append(
                TrendRow(
                    metric=metric,
                    values=tuple(values),
                    latest=latest,
                    baseline=point.median,
                    change=point.change,
                    drift=point.moved,
                    verdict=point.status,
                )
            )
            continue
        baseline = _baseline(values, window)
        change: Optional[float] = None
        drift = False
        if baseline is not None:
            if baseline == 0.0:
                change = 0.0 if latest == 0.0 else float("inf")
            else:
                change = (latest - baseline) / abs(baseline)
            drift = abs(change) > threshold
        rows.append(
            TrendRow(
                metric=metric,
                values=tuple(values),
                latest=latest,
                baseline=baseline,
                change=change,
                drift=drift,
            )
        )
    return rows


def render_history(
    entries: Sequence[LedgerEntry],
    *,
    metrics: Optional[Sequence[str]] = None,
    window: int = 5,
    threshold: float = 0.10,
    last: Optional[int] = None,
    robust: bool = False,
) -> str:
    """The ``repro history`` terminal view."""
    if not entries:
        return "(empty ledger)"
    rows = history_rows(
        entries,
        metrics=metrics,
        window=window,
        threshold=threshold,
        last=last,
        robust=robust,
    )
    if not rows:
        return "(no matching metrics in ledger)"

    run_keys = list(dict.fromkeys(e.run_key() for e in entries))
    experiments = sorted({e.experiment for e in entries})
    stamps = [e.created_utc() for e in entries if e.created_utc()]
    header = [
        f"ledger: {len(entries)} entries, {len(run_keys)} run key(s), "
        f"experiments: {', '.join(experiments)}"
    ]
    if stamps:
        header.append(f"span  : {min(stamps)} .. {max(stamps)}")

    width = max(len(r.metric) for r in rows)
    spark_w = max(len(r.values) for r in rows)
    lines = []
    flagged = 0
    for r in rows:
        spark = sparkline(r.values).rjust(spark_w)
        base = "       --" if r.baseline is None else f"{r.baseline:9.4g}"
        delta = ""
        if r.change is not None:
            label = "median" if robust else "baseline"
            delta = f"  {r.change:+7.1%} vs {label}[{min(window, r.n_runs - 1)}]"
        flag = ""
        if r.verdict == "warmup":
            flag = "  (warmup)"
        elif r.drift:
            flag = "  << drift"
            flagged += 1
        lines.append(
            f"{r.metric:<{width}}  {spark}  latest {r.latest:9.4g}  "
            f"base {base}{delta}{flag}"
        )
    if robust:
        footer = (
            f"{flagged} metric(s) moved beyond their median+MAD noise band"
            if flagged
            else "no movement beyond the median+MAD noise band"
        )
    else:
        footer = (
            f"{flagged} metric(s) drifted beyond {threshold:.0%} of their "
            f"rolling baseline"
            if flagged
            else f"no drift beyond {threshold:.0%} of the rolling baseline"
        )
    return "\n".join(header + [""] + lines + ["", footer])
