"""Chrome ``trace_event`` export: open a run in Perfetto as a timeline.

The terminal span tree answers "where did the time go" in aggregate;
this module serialises the same tracer into the Chrome trace-event JSON
format (https://ui.perfetto.dev, ``chrome://tracing``) so a parallel
sweep becomes a *timeline*: one lane for the coordinator, one lane per
worker shard, spans as nestable slices, and — when a resource sampler
ran — RSS and store-materialisation curves as counter tracks.

Layout decisions:

* one process (``pid`` 1, named after the run) with one thread lane per
  execution stream: ``tid`` 0 is the coordinator, worker lanes get
  ``tid`` 1.. in sorted label order, named by their lane label
  (``worker-0``, ...) via ``thread_name`` metadata events;
* spans are complete ("ph": "X") events — timestamps are microseconds
  relative to the tracer's construction handshake (``perf0_ns``), so
  the timeline starts near zero; worker spans were already re-based
  onto the coordinator's perf clock when the lane was folded in
  (:meth:`~repro.telemetry.tracer.Tracer.add_remote_lane`);
* a span that raised carries ``"error": true`` in its args and the
  ``cat`` ``"error"`` so Perfetto can colour/query it;
* synthetic spans (the coordinator's per-shard *summary* spans, marked
  ``synthetic`` in their attrs) are skipped — their timings are
  duplicates of the real worker lanes and they carry no clock-valid
  timestamps;
* sampler ticks become counter ("ph": "C") events: ``rss_mb`` plus one
  counter track per registered probe.

The output is the ``{"traceEvents": [...]}`` object form, which both
viewers accept and which leaves room for ``displayTimeUnit``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Union

from .tracer import Span, Tracer, _jsonable

PathLike = Union[str, pathlib.Path]

#: pid used for every lane — one run, one (virtual) process
TRACE_PID = 1

#: tid of the coordinator's lane
MAIN_TID = 0


def _span_events(
    span: Span, tid: int, epoch_ns: int, events: List[Dict[str, Any]]
) -> None:
    if span.attrs.get("synthetic"):
        return  # summary duplicate of a real remote lane; not clock-valid
    end_ns = span.end_ns if span.end_ns is not None else span.start_ns
    args = {k: _jsonable(v) for k, v in span.attrs.items()}
    if span.error:
        args["error"] = True
    event: Dict[str, Any] = {
        "name": span.name,
        "ph": "X",
        "cat": "error" if span.error else "span",
        "ts": (span.start_ns - epoch_ns) / 1e3,
        "dur": max(0.0, (end_ns - span.start_ns) / 1e3),
        "pid": TRACE_PID,
        "tid": tid,
    }
    if args:
        event["args"] = args
    events.append(event)
    for child in span.children:
        _span_events(child, tid, epoch_ns, events)


def _metadata(name: str, tid: int, label: str) -> Dict[str, Any]:
    return {
        "name": name,
        "ph": "M",
        "pid": TRACE_PID,
        "tid": tid,
        "args": {"name": label},
    }


def _lane_sort_key(label: str) -> "tuple":
    """Natural lane ordering: ``req-2`` before ``req-10``.

    Worker and request lanes are ``<prefix>-<index>`` labels; a plain
    lexicographic sort interleaves them past ten lanes, which scrambles
    the Perfetto row order exactly when concurrency is high enough for
    the order to matter.  Labels without a numeric tail keep their
    lexicographic position.
    """
    prefix, sep, tail = label.rpartition("-")
    if sep and tail.isdigit():
        return (prefix, 1, int(tail), label)
    return (label, 0, 0, label)


def chrome_trace_events(
    tracer: Tracer, sampler: Optional[Any] = None
) -> List[Dict[str, Any]]:
    """The flat ``traceEvents`` list for ``tracer`` (+ optional sampler).

    ``sampler`` is a :class:`~repro.telemetry.sampler.ResourceSampler`
    (or anything with a ``samples`` list of tick dicts); its time series
    become counter tracks on the coordinator lane.
    """
    epoch_ns = tracer.perf0_ns
    events: List[Dict[str, Any]] = [
        _metadata("process_name", MAIN_TID, "repro run"),
        _metadata("thread_name", MAIN_TID, "coordinator"),
    ]
    for root in tracer.roots:
        _span_events(root, MAIN_TID, epoch_ns, events)
    lane_order = sorted(tracer.remote_lanes, key=_lane_sort_key)
    for tid, label in enumerate(lane_order, start=1):
        events.append(_metadata("thread_name", tid, label))
        for root in tracer.remote_lanes[label]:
            _span_events(root, tid, epoch_ns, events)
    if sampler is not None:
        for sample in getattr(sampler, "samples", []):
            ts = (sample["t_ns"] - epoch_ns) / 1e3
            rss = sample.get("rss_bytes")
            if rss is not None:
                events.append(
                    {
                        "name": "rss_mb",
                        "ph": "C",
                        "ts": ts,
                        "pid": TRACE_PID,
                        "tid": MAIN_TID,
                        "args": {"rss_mb": rss / 2**20},
                    }
                )
            for key, value in (sample.get("probes") or {}).items():
                events.append(
                    {
                        "name": key,
                        "ph": "C",
                        "ts": ts,
                        "pid": TRACE_PID,
                        "tid": MAIN_TID,
                        "args": {key: value},
                    }
                )
    return events


def chrome_trace_dict(
    tracer: Tracer, sampler: Optional[Any] = None
) -> Dict[str, Any]:
    """The complete ``--trace-out`` payload (object form)."""
    return {
        "traceEvents": chrome_trace_events(tracer, sampler),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(
    path: PathLike, tracer: Tracer, sampler: Optional[Any] = None
) -> pathlib.Path:
    """Write the trace-event JSON to ``path`` and return it."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = chrome_trace_dict(tracer, sampler)
    path.write_text(json.dumps(payload) + "\n")
    return path
