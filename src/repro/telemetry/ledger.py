"""The run ledger: an append-only JSONL record of headline scalars.

PR-to-PR drift in the numbers that define this reproduction — the
abstract's 32 % / 7.7 % ten-year flip rates, the 49.67 % inter-chip HD —
is invisible to a single run: every individual result looks plausible.
Longitudinal PUF studies make the same point about silicon (reliability
claims only hold up under repeated measurement over time); this module
applies that discipline to the codebase itself.

Every experiment invocation appends one :class:`LedgerEntry` — the
experiment id, its flat scalar dict
(:meth:`~repro.analysis.experiments.BitflipResult.ledger_scalars` and
friends), and the full :class:`~repro.telemetry.manifest.RunManifest` —
to a JSONL file.  The manifest keys the entry: two entries with the same
git SHA, seed and config digest are the same measurement; entries across
SHAs are the longitudinal series that ``repro history`` renders and
``repro check-anchors`` / ``tools/check_anchors.py`` gate on.

JSONL (one JSON object per line) is the storage format on purpose:
appends are atomic-enough under CI concurrency, a truncated final line
(killed run) costs one entry rather than the file, and the ledger stays
greppable and diffable forever.
"""

from __future__ import annotations

import hashlib
import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

from .manifest import RunManifest, package_version, validate_manifest

PathLike = Union[str, pathlib.Path]

#: format version of one ledger line, bumped on layout changes
LEDGER_FORMAT = 1


def _clean_scalars(scalars: Mapping[str, Any]) -> Dict[str, float]:
    """Keep the finite numeric scalars (the only thing trends can use)."""
    clean: Dict[str, float] = {}
    for key, value in scalars.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        value = float(value)
        if math.isfinite(value):
            clean[str(key)] = value
    return clean


@dataclass(frozen=True)
class LedgerEntry:
    """One experiment run's headline scalars plus full provenance."""

    experiment: str
    scalars: Dict[str, float]
    manifest: Dict[str, Any]
    version: str = field(default_factory=package_version)
    format: int = LEDGER_FORMAT

    def __post_init__(self):
        if not self.experiment:
            raise ValueError("experiment id must be non-empty")
        object.__setattr__(self, "scalars", _clean_scalars(self.scalars))

    @classmethod
    def collect(
        cls,
        experiment: str,
        scalars: Mapping[str, Any],
        manifest: Optional[RunManifest] = None,
    ) -> "LedgerEntry":
        """Build an entry, collecting a fresh manifest when none is given."""
        if manifest is None:
            manifest = RunManifest.collect()
        return cls(
            experiment=experiment,
            scalars=dict(scalars),
            manifest=manifest.to_dict(),
        )

    def run_key(self) -> str:
        """The measurement identity: ``<git sha>:<seed>:<config digest>``.

        Two entries sharing a run key were produced by the same code,
        the same RNG seed and the same experiment configuration — any
        scalar difference between them is nondeterminism, not drift.
        """
        sha = self.manifest.get("git_sha") or "nogit"
        seed = self.manifest.get("seed")
        config = self.manifest.get("config") or {}
        digest = hashlib.sha256(
            json.dumps(config, sort_keys=True, default=str).encode()
        ).hexdigest()[:8]
        return f"{str(sha)[:12]}:{seed}:{digest}"

    def created_utc(self) -> str:
        return str(self.manifest.get("created_utc", ""))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": self.format,
            "experiment": self.experiment,
            "scalars": dict(sorted(self.scalars.items())),
            "manifest": self.manifest,
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LedgerEntry":
        """Rebuild (and validate) an entry from its JSON form."""
        if not isinstance(data, Mapping):
            raise ValueError("ledger entry must be a JSON object")
        experiment = data.get("experiment")
        if not isinstance(experiment, str) or not experiment:
            raise ValueError("ledger entry has no experiment id")
        scalars = data.get("scalars")
        if not isinstance(scalars, Mapping):
            raise ValueError(f"entry {experiment!r} has no scalars mapping")
        manifest = data.get("manifest")
        if not isinstance(manifest, Mapping):
            raise ValueError(f"entry {experiment!r} has no manifest")
        validate_manifest(dict(manifest))
        return cls(
            experiment=experiment,
            scalars=dict(scalars),
            manifest=dict(manifest),
            version=str(data.get("version", "")),
            format=int(data.get("format", LEDGER_FORMAT)),
        )


class RunLedger:
    """An append-only JSONL ledger file of :class:`LedgerEntry` lines."""

    def __init__(self, path: PathLike):
        self.path = pathlib.Path(path)

    def append(self, entry: LedgerEntry) -> None:
        """Append one entry (creating parent directories as needed)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as fh:
            fh.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")

    def record(
        self,
        experiment: str,
        scalars: Mapping[str, Any],
        manifest: Optional[RunManifest] = None,
    ) -> LedgerEntry:
        """Collect-and-append convenience; returns the appended entry."""
        entry = LedgerEntry.collect(experiment, scalars, manifest)
        self.append(entry)
        return entry

    def entries(self, strict: bool = False) -> List[LedgerEntry]:
        """All parseable entries in file order.

        Malformed lines (a truncated tail from a killed run, stray
        garbage) are skipped unless ``strict``; an absent file is an
        empty ledger, not an error.
        """
        if not self.path.exists():
            return []
        out: List[LedgerEntry] = []
        for lineno, line in enumerate(
            self.path.read_text().splitlines(), start=1
        ):
            line = line.strip()
            if not line:
                continue
            try:
                out.append(LedgerEntry.from_dict(json.loads(line)))
            except (json.JSONDecodeError, ValueError) as exc:
                if strict:
                    raise ValueError(
                        f"{self.path}:{lineno}: bad ledger line: {exc}"
                    ) from exc
        return out

    def __iter__(self) -> Iterator[LedgerEntry]:
        return iter(self.entries())

    def __len__(self) -> int:
        return len(self.entries())
