"""Static perf report: one self-contained HTML file, zero dependencies.

``repro perf report --html`` renders the perf ledger (and optionally a
trace artefact) into a single file that opens anywhere — no JS
frameworks, no external assets, sparklines as inline SVG polylines.
One file per report on purpose: the artefact gets attached to CI runs
and mailed around, so it must survive without its neighbours.
"""

from __future__ import annotations

import datetime
import html
import pathlib
from typing import Dict, List, Optional, Sequence, Union

from . import changepoint
from .manifest import host_fingerprint, package_version, platform_triple
from .profile import Lanes, aggregate, critical_path

PathLike = Union[str, pathlib.Path]

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 64rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
th, td { text-align: left; padding: 0.3rem 0.6rem;
         border-bottom: 1px solid #e0e0e8; }
th { background: #f4f4f8; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.regress { color: #c0392b; font-weight: 600; }
.improve { color: #1e8449; font-weight: 600; }
.warmup, .stable, .shift { color: #707080; }
svg.spark { vertical-align: middle; }
footer { margin-top: 3rem; font-size: 0.75rem; color: #707080; }
"""


def _spark_svg(values: Sequence[float], width: int = 120, height: int = 24) -> str:
    """An inline SVG polyline sparkline over ``values``."""
    if not values:
        return ""
    if len(values) == 1:
        values = list(values) * 2
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    pad = 2
    n = len(values)
    points = " ".join(
        f"{pad + i * (width - 2 * pad) / (n - 1):.1f},"
        f"{height - pad - (v - lo) / span * (height - 2 * pad):.1f}"
        for i, v in enumerate(values)
    )
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline points="{points}" fill="none" '
        f'stroke="#3456a0" stroke-width="1.5"/></svg>'
    )


def _fmt(value: Optional[float]) -> str:
    return "–" if value is None else f"{value:.4g}"


def _trend_section(
    series: Dict[str, List[float]], window: int
) -> List[str]:
    parts = ["<h2>Perf-ledger trends</h2>"]
    if not series:
        parts.append("<p>(empty perf ledger)</p>")
        return parts
    parts.append(
        "<table><tr><th>metric</th><th>trend</th>"
        '<th class="num">runs</th><th class="num">latest</th>'
        '<th class="num">median</th><th class="num">change</th>'
        "<th>verdict</th></tr>"
    )
    for metric, values in sorted(series.items()):
        point = changepoint.detect(metric, values, window=window)
        verdict = changepoint.classify(
            point, changepoint.metric_orientation(metric)
        )
        change = "–" if point.change is None else f"{point.change:+.1%}"
        parts.append(
            f"<tr><td>{html.escape(metric)}</td>"
            f"<td>{_spark_svg(values)}</td>"
            f'<td class="num">{len(values)}</td>'
            f'<td class="num">{_fmt(point.latest)}</td>'
            f'<td class="num">{_fmt(point.median)}</td>'
            f'<td class="num">{change}</td>'
            f'<td class="{html.escape(verdict)}">{html.escape(verdict)}</td>'
            "</tr>"
        )
    parts.append("</table>")
    return parts


def _attribution_section(lanes: Lanes, top: int = 20) -> List[str]:
    parts = ["<h2>Self-time attribution</h2>"]
    rows = aggregate(lanes)
    if not rows:
        parts.append("<p>(no spans in trace)</p>")
        return parts
    parts.append(
        "<table><tr><th>label</th>"
        '<th class="num">self (s)</th><th class="num">total (s)</th>'
        '<th class="num">calls</th></tr>'
    )
    for row in rows[:top]:
        parts.append(
            f"<tr><td>{html.escape(row.label)}</td>"
            f'<td class="num">{row.self_s:.3f}</td>'
            f'<td class="num">{row.total_s:.3f}</td>'
            f'<td class="num">{row.calls}</td></tr>'
        )
    parts.append("</table>")
    segments = critical_path(lanes)
    if segments:
        total_ns = sum(s.duration_ns for s in segments) or 1
        parts.append(
            f"<h2>Critical path ({total_ns / 1e9:.3f} s covered)</h2>"
        )
        parts.append(
            "<table><tr><th>lane</th><th>label</th>"
            '<th class="num">duration (s)</th><th class="num">share</th></tr>'
        )
        for seg in segments:
            parts.append(
                f"<tr><td>{html.escape(seg.lane)}</td>"
                f"<td>{html.escape(seg.label)}</td>"
                f'<td class="num">{seg.duration_s:.3f}</td>'
                f'<td class="num">'
                f"{100.0 * seg.duration_ns / total_ns:.1f}%</td></tr>"
            )
        parts.append("</table>")
    return parts


def render_perf_report(
    series: Dict[str, List[float]],
    *,
    window: int = changepoint.DEFAULT_WINDOW,
    lanes: Optional[Lanes] = None,
) -> str:
    """The complete report as an HTML string."""
    created = datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds"
    )
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        "<title>repro perf report</title>",
        f"<style>{_STYLE}</style></head><body>",
        "<h1>repro performance report</h1>",
        f"<p>generated {html.escape(created)} · "
        f"repro {html.escape(package_version())} · "
        f"{html.escape(platform_triple())} · "
        f"host {html.escape(host_fingerprint())}</p>",
    ]
    parts.extend(_trend_section(series, window))
    if lanes is not None:
        parts.extend(_attribution_section(lanes))
    parts.append(
        "<footer>verdicts: median+MAD change-point detection "
        f"(window {window}, warm-up {changepoint.MIN_HISTORY} runs); "
        "see docs/observability.md</footer>"
    )
    parts.append("</body></html>")
    return "\n".join(parts)


def write_perf_report(
    path: PathLike,
    series: Dict[str, List[float]],
    *,
    window: int = changepoint.DEFAULT_WINDOW,
    lanes: Optional[Lanes] = None,
) -> pathlib.Path:
    """Write the report to ``path`` and return it."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_perf_report(series, window=window, lanes=lanes))
    return path
