"""Robust change-point detection for longitudinal performance series.

The naive drift flag in :mod:`repro.telemetry.history` compares the
latest value against a *rolling mean* — one outlier run (a cold cache, a
noisy CI neighbour) both pollutes the baseline and fires the flag.
Statistic-based RO-PUF analysis (Wilde et al., arXiv 1910.07068) makes
the general point that monitoring claims only hold up under robust
statistics; this module applies it to the repo's own performance data.

**Noise model** (the documented contract the verdicts rest on):

* A benchmark sample is ``true cost + noise`` where the noise is
  dominated by *additive, non-negative* scheduling/thermal interference
  — which is why the benchmark harness records best-of-N minima
  (:func:`benchmarks._common.best_of`) and the enabled-overhead gate
  uses the alternating paired-median discipline
  (``bench_population.py::test_observatory_enabled_overhead``).  Even
  those minima jitter run-to-run.
* The rolling baseline is therefore the **median** of the trailing
  ``window`` runs, and the scale estimate is the **MAD** (median
  absolute deviation, scaled by 1.4826 for consistency with a normal
  sigma): both tolerate up to half the window being outliers, so one
  anomalous ledger entry can neither hide a regression nor fake one.
* A verdict fires only when the latest value moves beyond
  ``max(z * 1.4826 * MAD, min_rel * |median|)`` — the MAD term adapts
  to each metric's own measured noise, the relative floor keeps a
  dead-quiet series (MAD == 0 after identical repeats) from flagging
  microscopic drift, and ``z`` defaults high (4) because a perf gate
  that cries wolf gets deleted.
* **Warm-up**: with fewer than ``min_history`` prior runs the detector
  returns ``warmup`` and never fires — a 3-run ledger has no noise
  estimate worth trusting, so it cannot gate.

Verdicts are two-sided: movement is classified ``up`` or ``down``, and
:func:`classify` turns movement into ``regress``/``improve`` given the
metric's orientation (:func:`metric_orientation` knows the repo's
conventions: ``*_s`` timings regress upward, ``throughput`` regresses
downward, experiment scalars have no universal direction and never
gate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import median
from typing import Optional, Sequence

#: MAD-to-sigma consistency constant for normally distributed noise
MAD_CONSISTENCY = 1.4826

#: prior runs required before the detector may fire at all
MIN_HISTORY = 5

#: default trailing-window length the baseline is computed over
DEFAULT_WINDOW = 10

#: default robust z-score a movement must exceed
DEFAULT_Z = 4.0

#: default relative floor (vs |median|) a movement must also exceed
DEFAULT_MIN_REL = 0.05


@dataclass(frozen=True)
class ChangePoint:
    """One metric's verdict against its own robust rolling baseline."""

    metric: str
    latest: float
    n_history: int  # prior runs available (before windowing)
    status: str  # "warmup" | "stable" | "up" | "down"
    median: Optional[float] = None  # trailing-window median baseline
    mad: Optional[float] = None  # raw median absolute deviation
    sigma: Optional[float] = None  # MAD_CONSISTENCY * mad
    threshold: Optional[float] = None  # the absolute band half-width used
    change: Optional[float] = None  # (latest - median) / |median|
    z: Optional[float] = None  # (latest - median) / sigma, inf if sigma 0

    @property
    def moved(self) -> bool:
        return self.status in ("up", "down")


def detect(
    metric: str,
    values: Sequence[float],
    *,
    window: int = DEFAULT_WINDOW,
    min_history: int = MIN_HISTORY,
    z: float = DEFAULT_Z,
    min_rel: float = DEFAULT_MIN_REL,
) -> ChangePoint:
    """Judge the latest of ``values`` against its trailing-window baseline.

    ``values`` is one metric's full series in chronological order; the
    last element is the candidate, everything before it is history.
    """
    if not values:
        raise ValueError("detect() needs at least one value")
    if window < 2:
        raise ValueError("window must be >= 2")
    if min_history < 2:
        raise ValueError("min_history must be >= 2 (one run is not history)")
    latest = float(values[-1])
    history = [float(v) for v in values[:-1]][-window:]
    n_history = len(values) - 1
    if len(history) < min_history:
        return ChangePoint(
            metric=metric, latest=latest, n_history=n_history, status="warmup"
        )
    base = median(history)
    mad = median(abs(v - base) for v in history)
    sigma = MAD_CONSISTENCY * mad
    threshold = max(z * sigma, min_rel * abs(base))
    delta = latest - base
    if base != 0.0:
        change: Optional[float] = delta / abs(base)
    else:
        change = 0.0 if delta == 0.0 else math.inf
    z_score: Optional[float]
    if sigma > 0.0:
        z_score = delta / sigma
    else:
        z_score = 0.0 if delta == 0.0 else math.copysign(math.inf, delta)
    if threshold > 0.0:
        status = "stable" if abs(delta) <= threshold else (
            "up" if delta > 0 else "down"
        )
    else:
        # a perfectly flat zero baseline: any movement at all is movement
        status = "stable" if delta == 0.0 else ("up" if delta > 0 else "down")
    return ChangePoint(
        metric=metric,
        latest=latest,
        n_history=n_history,
        status=status,
        median=base,
        mad=mad,
        sigma=sigma,
        threshold=threshold,
        change=change,
        z=z_score,
    )


def metric_orientation(name: str) -> Optional[bool]:
    """``True`` if bigger is better, ``False`` if smaller, ``None`` unknown.

    Encodes the repo's naming conventions: wall times (``*_s``), latency
    quantiles (``.p50``/``.p95``/``.p99``/``mean``/``max`` of a
    histogram site), overheads and RSS footprints are better when
    smaller; throughputs (``chips_per_s``, ``chips_years_per_s``,
    ``throughput``) and ``speedup*`` ratios are better when bigger.
    Anything else — experiment scalars like flip percentages, whose
    "better" is the anchor registry's call — returns ``None`` and must
    not be gated here.
    """
    leaf = name.rsplit(":", 1)[-1]
    key = leaf.rsplit(".", 1)[-1].lower()
    if key in ("p50", "p95", "p99") and "." in leaf:
        return False
    if key in ("p50_ms", "p95_ms", "p99_ms", "p999_ms"):
        # the service layer's flat latency quantiles (service.auth.p99_ms)
        return False
    if "chips_per_s" in leaf or "chips_years_per_s" in leaf:
        return True
    if "throughput" in leaf or leaf.startswith("speedup") or "speedup_" in leaf:
        return True
    if key.endswith("per_s"):
        # rate metrics (auth_per_s, requests_per_s, rate_per_s): bigger
        # is better — checked before the *_s wall-time rule, which would
        # otherwise misread the suffix as a duration
        return True
    if key.endswith("_s") or key.endswith("_ns") or key in ("wall_s",):
        return False
    if "overhead" in key or "rss" in key:
        return False
    return None


def classify(point: ChangePoint, higher_is_better: Optional[bool]) -> str:
    """Map a movement verdict onto ``regress``/``improve``.

    Returns one of ``warmup``, ``stable``, ``regress``, ``improve`` or —
    when the orientation is unknown — ``shift`` (reported, never gated).
    """
    if not point.moved:
        return point.status
    if higher_is_better is None:
        return "shift"
    worse_direction = "down" if higher_is_better else "up"
    return "regress" if point.status == worse_direction else "improve"
