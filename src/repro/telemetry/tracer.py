"""Process-local tracer: nestable spans, typed counters and gauges.

The design goal is a *near-zero-cost disabled path*: when no tracer is
installed (the default), every instrumentation site in the library pays a
single module-attribute load plus one ``is None`` branch — no allocation,
no clock read, no dictionary update.  The hot-path idiom is::

    from .. import telemetry

    sp = telemetry.start_span("batch.frequencies", corner="nominal")
    try:
        ...  # the instrumented work
    finally:
        telemetry.end_span(sp)

    telemetry.count("batch.corner_memo_hits")

``start_span`` returns ``None`` when disabled and ``end_span(None)`` /
``count`` return immediately, so the instrumented code never changes
shape between the two modes.  For code that prefers ``with`` blocks (cold
paths, experiment stages) the installed :class:`Tracer` also provides a
:meth:`Tracer.span` context manager.

Spans record wall time via :func:`time.perf_counter_ns`; a tracer created
with ``memory=True`` additionally samples :mod:`tracemalloc` (traced peak
per span) and the process peak RSS, for memory profiles of the population
kernels.  Counters are monotonically accumulated floats; gauges keep the
last written value.  Everything lives on the tracer instance — there is
no global mutable state beyond the single "installed tracer" slot — so
tests can create, install and discard tracers freely.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One timed (and optionally memory-profiled) region of a trace.

    Spans form a tree: every span started while another is active becomes
    a child of that active span.  Timing uses ``perf_counter_ns`` so the
    clock is monotonic and immune to wall-clock adjustments.
    """

    __slots__ = (
        "name",
        "attrs",
        "parent",
        "children",
        "start_ns",
        "end_ns",
        "error",
        "mem_peak_bytes",
        "_mem_start_bytes",
    )

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attrs: Dict[str, Any] = attrs or {}
        self.parent: Optional["Span"] = None
        self.children: List["Span"] = []
        self.start_ns: int = 0
        self.end_ns: Optional[int] = None
        self.error: bool = False
        self.mem_peak_bytes: Optional[int] = None
        self._mem_start_bytes: Optional[int] = None

    @property
    def duration_ns(self) -> int:
        """Elapsed nanoseconds (to *now* if the span is still open)."""
        end = self.end_ns if self.end_ns is not None else time.perf_counter_ns()
        return end - self.start_ns

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation of this span and its subtree."""
        d: Dict[str, Any] = {
            "name": self.name,
            "duration_ns": self.duration_ns,
        }
        if self.attrs:
            d["attrs"] = {k: _jsonable(v) for k, v in self.attrs.items()}
        if self.error:
            d["error"] = True
        if self.mem_peak_bytes is not None:
            d["mem_peak_bytes"] = self.mem_peak_bytes
        if self.children:
            d["children"] = [c.to_dict() for c in self.children]
        return d

    def to_timed_dict(self) -> Dict[str, Any]:
        """Like :meth:`to_dict` but with absolute ``start_ns``/``end_ns``.

        This is the wire form a parallel worker ships its span forest in:
        timestamps stay on the worker's ``perf_counter_ns`` clock, and
        the coordinator re-bases them via the clock-offset handshake when
        rebuilding with :meth:`from_timed_dict`.
        """
        d: Dict[str, Any] = {
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns if self.end_ns is not None else self.start_ns,
        }
        if self.attrs:
            d["attrs"] = {k: _jsonable(v) for k, v in self.attrs.items()}
        if self.error:
            d["error"] = True
        if self.children:
            d["children"] = [c.to_timed_dict() for c in self.children]
        return d

    @classmethod
    def from_timed_dict(
        cls, data: Dict[str, Any], offset_ns: int = 0
    ) -> "Span":
        """Rebuild a :meth:`to_timed_dict` span, shifting every timestamp
        by ``offset_ns`` (the worker-to-coordinator clock alignment)."""
        span = cls(str(data["name"]), dict(data.get("attrs") or {}) or None)
        span.start_ns = int(data["start_ns"]) + offset_ns
        span.end_ns = int(data["end_ns"]) + offset_ns
        span.error = bool(data.get("error", False))
        for child_data in data.get("children", []):
            child = cls.from_timed_dict(child_data, offset_ns)
            child.parent = span
            span.children.append(child)
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end_ns is None else f"{self.duration_s * 1e3:.3f} ms"
        return f"<Span {self.name!r} {state} children={len(self.children)}>"


def _jsonable(value: Any) -> Any:
    """Coerce a span attribute to a JSON-serialisable scalar."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalars
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return str(value)


class Tracer:
    """Collects spans, counters and gauges for one run.

    Parameters
    ----------
    memory:
        When true, spans additionally record their :mod:`tracemalloc`
        peak (the tracer starts/stops tracemalloc around its lifetime if
        it was not already running).  Costs ~2-4x on allocation-heavy
        code, so it is opt-in (the CLI's ``--profile``).
    """

    def __init__(self, *, memory: bool = False):
        self.memory = memory
        self.roots: List[Span] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, "Histogram"] = {}
        #: re-based span forests from other processes, keyed by lane
        #: label (``worker-<k>``) — rendered as extra timeline lanes by
        #: the Chrome-trace export, never by the terminal tree
        self.remote_lanes: Dict[str, List[Span]] = {}
        # the coordinator half of the clock-alignment handshake: one
        # (wall, perf) pair read back-to-back.  A worker ships its own
        # pair; the wall clocks are the common reference that converts
        # the worker's perf timestamps onto this tracer's perf timeline.
        self.wall0_ns, self.perf0_ns = clock_handshake()
        self._stack: List[Span] = []
        self._owns_tracemalloc = False
        if memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._owns_tracemalloc = True

    # ---- spans -------------------------------------------------------

    def start_span(self, name: str, **attrs: Any) -> Span:
        """Open a span as a child of the currently active span."""
        span = Span(name, attrs or None)
        if self._stack:
            span.parent = self._stack[-1]
            span.parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        if self.memory:
            import tracemalloc

            tracemalloc.reset_peak()
            span._mem_start_bytes = tracemalloc.get_traced_memory()[0]
        span.start_ns = time.perf_counter_ns()
        return span

    def end_span(self, span: Span) -> Span:
        """Close ``span`` (and any forgotten descendants still open)."""
        end_ns = time.perf_counter_ns()
        if span.end_ns is not None:
            raise ValueError(f"span {span.name!r} already ended")
        if span not in self._stack:
            raise ValueError(f"span {span.name!r} is not on the active stack")
        # unwind to (and including) the span — tolerates a child the
        # instrumented code forgot to close on an exception path
        while self._stack:
            top = self._stack.pop()
            top.end_ns = end_ns
            if self.memory:
                import tracemalloc

                current, peak = tracemalloc.get_traced_memory()
                base = top._mem_start_bytes or 0
                top.mem_peak_bytes = max(0, peak - base)
            if top is span:
                break
        return span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """``with tracer.span("stage"):`` convenience wrapper.

        A raising body still closes the span; the span is kept in the
        tree with its ``error`` flag raised, so a failed stage shows up
        in the terminal tree and the Chrome-trace export instead of
        silently vanishing from the timeline.
        """
        sp = self.start_span(name, **attrs)
        try:
            yield sp
        except BaseException:
            sp.error = True
            raise
        finally:
            self.end_span(sp)

    @property
    def active_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # ---- counters / gauges -------------------------------------------

    def count(self, name: str, value: float = 1.0) -> None:
        """Accumulate ``value`` onto counter ``name`` (monotone)."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Record the most recent value of gauge ``name``."""
        self.gauges[name] = float(value)

    # ---- histograms --------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Fold one sample into histogram ``name`` (created on first use)."""
        hist = self.histograms.get(name)
        if hist is None:
            from .histogram import Histogram

            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def merge_histogram(self, name: str, other) -> None:
        """Fold a histogram (or its :meth:`~Histogram.to_dict` form) in.

        How the parallel coordinator absorbs worker distributions: the
        fixed shared bucket layout makes the merge exact up to bucket
        resolution, so merged quantiles match a serial run's for any
        worker count.
        """
        from .histogram import Histogram

        if isinstance(other, dict):
            other = Histogram.from_dict(other)
        hist = self.histograms.get(name)
        if hist is None:
            self.histograms[name] = other
        else:
            hist.merge(other)

    def histogram_summaries(self) -> Dict[str, Dict[str, float]]:
        """``{name: {count, mean, min, max, p50, p95, p99}}``, sorted."""
        from .histogram import summarise

        return summarise(self.histograms)

    # ---- remote lanes ------------------------------------------------

    def add_remote_lane(self, label: str, spans: List[Span]) -> None:
        """Append another process's (re-based) span roots to lane
        ``label``; repeated evaluation rounds accumulate on one lane."""
        self.remote_lanes.setdefault(label, []).extend(spans)

    # ---- lifecycle ---------------------------------------------------

    def close(self) -> None:
        """End any still-open spans and release tracemalloc if owned."""
        while self._stack:
            self.end_span(self._stack[-1])
        if self._owns_tracemalloc:
            import tracemalloc

            tracemalloc.stop()
            self._owns_tracemalloc = False

    def peak_rss_kb(self) -> Optional[float]:
        """Process peak RSS in KiB (``ru_maxrss``), if the platform has it."""
        peak = peak_rss_bytes()
        return None if peak is None else peak / 1024.0


def clock_handshake() -> "tuple[int, int]":
    """One ``(wall_ns, perf_ns)`` pair, read back-to-back.

    The worker clock-alignment contract: ``perf_counter_ns`` is the
    trace clock (monotonic, high resolution) but each process's counter
    has an arbitrary epoch, so cross-process spans cannot be compared
    raw.  Every party records this pair once; for a worker pair
    ``(Ww, Pw)`` and a coordinator pair ``(Wc, Pc)`` the offset

        ``(Ww - Pw) - (Wc - Pc)``

    converts any worker perf timestamp onto the coordinator's perf
    timeline, with error bounded by the wall-clock read skew (sub-µs —
    invisible at span granularity).
    """
    return time.time_ns(), time.perf_counter_ns()


def _rusage_peak_bytes(platform_name: Optional[str] = None) -> Optional[int]:
    """Peak RSS from ``getrusage`` in bytes, or ``None`` without POSIX.

    ``ru_maxrss`` is reported in KiB on Linux (and most BSDs) but in
    *bytes* on macOS — ``man getrusage`` on each.  ``platform_name``
    overrides ``sys.platform`` so the unit conversion is unit-testable
    from any host.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if peak <= 0:
        return None
    import sys

    if (platform_name or sys.platform) == "darwin":
        return int(peak)
    return int(peak) * 1024


def peak_rss_bytes(
    proc_status: str = "/proc/self/status",
    platform_name: Optional[str] = None,
) -> Optional[int]:
    """This process's peak RSS in bytes, if the platform exposes it.

    The module-level form of :meth:`Tracer.peak_rss_kb` — callable with no
    tracer installed, which is how the CLI samples the high-water mark of
    an out-of-core (``--store mmap``) run for its manifest and ledger.

    On Linux the ``VmHWM`` line of ``/proc/self/status`` is preferred
    over ``ru_maxrss``: the kernel does not reset ``ru_maxrss`` across
    ``vfork``+``exec`` (how CPython's subprocess spawns children), so a
    child launched from a large parent inherits the *parent's* high-water
    mark there, while ``VmHWM`` belongs to this process's own address
    space.  On macOS (and anywhere else without ``/proc``) the fallback
    is :func:`_rusage_peak_bytes` — ``ru_maxrss`` with the
    platform-correct unit (bytes on darwin, KiB elsewhere) — so
    manifests stay populated off-Linux instead of silently reading
    nothing.  ``proc_status``/``platform_name`` exist for tests, which
    exercise the fallback from a Linux host.
    """
    try:
        with open(proc_status) as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return _rusage_peak_bytes(platform_name)


# ----------------------------------------------------------------------
# the installed-tracer slot and the single-branch hot-path API
# ----------------------------------------------------------------------

#: the one process-local tracer, or None (disabled).  Instrumentation
#: sites read this through the helpers below; tests and the CLI install
#: and remove tracers via install()/uninstall()/session().
_active: Optional[Tracer] = None


def active() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when telemetry is disabled."""
    return _active


def install(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-local tracer (returns it)."""
    global _active
    if _active is not None:
        raise RuntimeError("a tracer is already installed; uninstall() first")
    _active = tracer
    return tracer


def uninstall() -> Optional[Tracer]:
    """Remove and return the installed tracer (no-op when disabled)."""
    global _active
    tracer, _active = _active, None
    if tracer is not None:
        tracer.close()
    return tracer


@contextmanager
def session(*, memory: bool = False) -> Iterator[Tracer]:
    """Install a fresh :class:`Tracer` for the duration of a block."""
    tracer = install(Tracer(memory=memory))
    try:
        yield tracer
    finally:
        uninstall()


def start_span(name: str, **attrs: Any) -> Optional[Span]:
    """Open a span on the installed tracer; ``None`` when disabled.

    The disabled path is one global load and one branch — cheap enough
    for per-grid-point call sites (not per-element ones).
    """
    t = _active
    if t is None:
        return None
    return t.start_span(name, **attrs)


def end_span(span: Optional[Span]) -> None:
    """Close a span from :func:`start_span` (no-op for ``None``)."""
    if span is None:
        return
    t = _active
    if t is not None:
        t.end_span(span)


def count(name: str, value: float = 1.0) -> None:
    """Accumulate onto a counter of the installed tracer (no-op when
    disabled)."""
    t = _active
    if t is not None:
        t.count(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the installed tracer (no-op when disabled)."""
    t = _active
    if t is not None:
        t.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Fold a sample into a histogram of the installed tracer.

    The distribution sibling of :func:`count`: one attribute load and
    one branch when disabled, so per-block kernel latencies can report
    through it without a measurable disabled-path cost.
    """
    t = _active
    if t is not None:
        t.observe(name, value)


def enabled() -> bool:
    """True when a tracer is installed."""
    return _active is not None


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Optional[Span]]:
    """``with telemetry.span("stage"):`` — traced when enabled, a plain
    no-op context otherwise.  For cold call sites; the hot paths use the
    start/end pair to keep the disabled cost to a single branch."""
    sp = start_span(name, **attrs)
    try:
        yield sp
    except BaseException:
        if sp is not None:
            sp.error = True
        raise
    finally:
        end_span(sp)
