"""Trace export: span trees for humans, spans+counters+manifest for tools.

Two consumers, two formats:

* :func:`render_span_tree` — the ``--trace`` terminal view: an indented
  tree with per-span wall time, share of the parent, and the hottest
  attributes (and peak traced memory under ``--profile``);
* :func:`trace_to_dict` / :func:`write_metrics` — the ``--metrics-out``
  artefact: one JSON object holding the nested spans, the counter and
  gauge maps, and the :class:`~repro.telemetry.manifest.RunManifest`,
  validated by the same schema CI's smoke step checks.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Union

from .manifest import RunManifest, package_version
from .tracer import Span, Tracer

PathLike = Union[str, pathlib.Path]

#: format version of the --metrics-out payload, bumped on layout changes
#: (2: top-level ``version`` string alongside the manifest, so payloads
#: remain attributable even when filtered down to one section; 3: adds
#: the ``histograms`` section — full mergeable bucket state per metric —
#: and, when a resource sampler ran, ``resource_samples``)
METRICS_FORMAT = 3


def _fmt_duration(ns: int) -> str:
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:8.3f} s "
    if ns >= 1_000_000:
        return f"{ns / 1e6:8.3f} ms"
    return f"{ns / 1e3:8.3f} us"


def _fmt_bytes(n: int) -> str:
    if n >= 1 << 20:
        return f"{n / (1 << 20):.1f} MiB"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.1f} KiB"
    return f"{n} B"


def _render_span(
    span: Span, lines: List[str], indent: int, parent_ns: Optional[int]
) -> None:
    dur = span.duration_ns
    share = ""
    if parent_ns:
        share = f" ({100.0 * dur / parent_ns:5.1f}%)"
    attrs = ""
    if span.attrs:
        inner = ", ".join(f"{k}={v}" for k, v in span.attrs.items())
        attrs = f"  [{inner}]"
    mem = ""
    if span.mem_peak_bytes is not None:
        mem = f"  peak={_fmt_bytes(span.mem_peak_bytes)}"
    lines.append(
        f"{_fmt_duration(dur)}{share:>9}  {'  ' * indent}{span.name}{attrs}{mem}"
    )
    for child in span.children:
        _render_span(child, lines, indent + 1, dur)


def render_span_tree(tracer: Tracer) -> str:
    """The indented per-span wall-time tree ``--trace`` prints."""
    lines: List[str] = []
    for root in tracer.roots:
        _render_span(root, lines, 0, None)
    if not lines:
        return "(no spans recorded)"
    return "\n".join(lines)


def render_counters(tracer: Tracer) -> str:
    """Counters and gauges as aligned ``name  value`` rows."""
    rows = [(k, v, "counter") for k, v in sorted(tracer.counters.items())]
    rows += [(k, v, "gauge") for k, v in sorted(tracer.gauges.items())]
    if not rows:
        return "(no counters recorded)"
    width = max(len(name) for name, _, _ in rows)
    return "\n".join(
        f"{name:<{width}}  {value:>14g}  ({kind})" for name, value, kind in rows
    )


def render_histograms(tracer: Tracer) -> str:
    """Histogram summaries as aligned quantile rows (the ``--trace``
    terminal view's distribution table)."""
    summaries = tracer.histogram_summaries()
    if not summaries:
        return "(no histograms recorded)"
    width = max(len(name) for name in summaries)
    header = (
        f"{'name':<{width}}  {'count':>8}  {'p50':>10}  {'p95':>10}  "
        f"{'p99':>10}  {'max':>10}"
    )
    rows = [header]
    for name, summary in summaries.items():
        rows.append(
            f"{name:<{width}}  {summary['count']:>8.0f}  "
            f"{summary['p50']:>10.3g}  {summary['p95']:>10.3g}  "
            f"{summary['p99']:>10.3g}  {summary['max']:>10.3g}"
        )
    return "\n".join(rows)


def trace_to_dict(
    tracer: Tracer,
    manifest: Optional[RunManifest] = None,
    sampler: Optional[Any] = None,
) -> Dict[str, Any]:
    """The complete ``--metrics-out`` payload as a JSON-ready dict."""
    payload: Dict[str, Any] = {
        "format": METRICS_FORMAT,
        "version": package_version(),
        "spans": [root.to_dict() for root in tracer.roots],
        "counters": dict(sorted(tracer.counters.items())),
        "gauges": dict(sorted(tracer.gauges.items())),
        "histograms": {
            name: tracer.histograms[name].to_dict()
            for name in sorted(tracer.histograms)
        },
    }
    rss = tracer.peak_rss_kb()
    if rss is not None:
        payload["peak_rss_kb"] = rss
    if sampler is not None:
        payload["resource_samples"] = sampler.to_dicts(tracer.perf0_ns)
    if manifest is not None:
        payload["manifest"] = manifest.to_dict()
    return payload


def write_metrics(
    path: PathLike,
    tracer: Tracer,
    manifest: Optional[RunManifest] = None,
    sampler: Optional[Any] = None,
) -> pathlib.Path:
    """Write the spans+counters+manifest artefact to ``path`` (JSON)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = trace_to_dict(tracer, manifest, sampler)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
