"""Time-resolved resource sampling: RSS (and store state) as a curve.

``peak_rss_bytes`` reduces a whole run to one high-water number — good
for a gate, useless for understanding *when* memory moved.  The
:class:`ResourceSampler` is an opt-in background thread (the CLI's
``--sample-rss HZ``) that, on a fixed cadence, records

* the process's current ``VmRSS`` (from ``/proc/self/status``; falls
  back to the ``ru_maxrss`` high-water mark off-Linux, which is still
  monotone-informative),
* the name of the innermost open span of the installed tracer — each
  sample is *attributed* to the stage that was running,
* every registered **probe**: a named zero-argument callable returning
  a float.  The population store registers its materialised-block count
  here, so an out-of-core sweep's fault-in behaviour becomes a curve
  next to its RSS.

Samples are plain dicts kept in memory, bounded by ``max_samples`` via
stride doubling (when full, every other sample is dropped and the
cadence halves — the series keeps its full time extent at decaying
resolution, like a flight recorder).  They surface in the
``--metrics-out`` payload (``resource_samples``) and as counter tracks
in the Chrome-trace export; when a progress emitter is installed the
sampler also echoes a throttled ``sample`` event line (at most one per
``echo_interval_s``) so ``repro monitor`` can render a live RSS
sparkline from the events file alone.

The sampler mirrors the tracer's single-slot install discipline
(:func:`install_sampler` / :func:`uninstall_sampler`); with no sampler
installed nothing in the library changes behaviour — there are no
sampler hooks on any hot path, the thread *reads* shared state on its
own clock.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from . import events as _events_mod
from . import tracer as _tracer_mod
from .tracer import _rusage_peak_bytes

#: registered probes: name -> zero-arg callable returning a number.
#: Module-level (not per-sampler) so long-lived objects (stores) can
#: register at construction without knowing whether sampling is on.
_probes: Dict[str, Callable[[], float]] = {}


def register_probe(name: str, fn: Callable[[], float]) -> None:
    """Expose ``fn()`` as probe ``name`` on every sampler tick.

    Re-registering a name replaces the previous probe (last wins): the
    common case is a store re-attached at the same root.
    """
    _probes[name] = fn


def unregister_probe(name: str) -> None:
    """Remove probe ``name`` (no-op when absent)."""
    _probes.pop(name, None)


def current_rss_bytes(proc_status: str = "/proc/self/status") -> Optional[int]:
    """The process's *current* resident set in bytes, or a fallback.

    Linux: the ``VmRSS`` line of ``/proc/self/status``.  Elsewhere:
    ``ru_maxrss`` (the high-water mark — monotone, so the curve still
    shows growth, documented in the README's observability section).
    """
    try:
        with open(proc_status) as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return _rusage_peak_bytes()


class ResourceSampler:
    """Background thread sampling RSS + probes on a fixed cadence.

    Parameters
    ----------
    hz:
        Target sampling rate (ticks per second, > 0).
    max_samples:
        In-memory bound; on overflow the series is decimated 2:1 and the
        recording stride doubles, so memory stays bounded for any run
        length while the full time extent is preserved.
    echo_interval_s:
        Minimum spacing of ``sample`` event lines echoed through an
        installed progress emitter (the live feed ``repro monitor``
        tails); ``None`` disables echoing.
    """

    def __init__(
        self,
        hz: float = 4.0,
        *,
        max_samples: int = 4096,
        echo_interval_s: Optional[float] = 1.0,
    ):
        if not hz > 0.0:
            raise ValueError(f"hz must be positive, got {hz}")
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        self.hz = float(hz)
        self.interval_s = 1.0 / float(hz)
        self.max_samples = int(max_samples)
        self.echo_interval_s = echo_interval_s
        self.samples: List[Dict[str, Any]] = []
        self.n_ticks = 0
        self._stride = 1
        self._last_echo: Optional[float] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ---- one tick ----------------------------------------------------

    def sample_once(self) -> Dict[str, Any]:
        """Take one sample now (also the unit-testable tick body)."""
        tracer = _tracer_mod._active
        span = tracer.active_span if tracer is not None else None
        sample: Dict[str, Any] = {
            "t_ns": time.perf_counter_ns(),
            "rss_bytes": current_rss_bytes(),
            "span": span.name if span is not None else None,
        }
        probes: Dict[str, float] = {}
        for name, fn in list(_probes.items()):
            try:
                probes[name] = float(fn())
            except Exception:
                continue  # a dying probe must not kill the sampler
        if probes:
            sample["probes"] = probes
        self.n_ticks += 1
        if (self.n_ticks - 1) % self._stride == 0:
            self.samples.append(sample)
            if len(self.samples) >= self.max_samples:
                del self.samples[::2]
                self._stride *= 2
        self._echo(sample)
        return sample

    def _echo(self, sample: Dict[str, Any]) -> None:
        if self.echo_interval_s is None:
            return
        emitter = _events_mod._emitter
        if emitter is None:
            return
        now = time.monotonic()
        if (
            self._last_echo is not None
            and now - self._last_echo < self.echo_interval_s
        ):
            return
        self._last_echo = now
        try:
            emitter.lifecycle(
                "sample",
                rss_bytes=sample["rss_bytes"],
                span=sample["span"],
                **(sample.get("probes") or {}),
            )
        except Exception:
            pass  # a raising heartbeat must not kill the sampler thread

    # ---- thread lifecycle --------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_once()

    def start(self) -> "ResourceSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread (idempotent); takes one final sample so even
        a sub-interval run records a non-empty series."""
        thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self.sample_once()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ---- export ------------------------------------------------------

    def to_dicts(self, epoch_ns: Optional[int] = None) -> List[Dict[str, Any]]:
        """JSON-ready samples with timestamps relative to ``epoch_ns``
        (a tracer's ``perf0_ns``; defaults to the first sample)."""
        if not self.samples:
            return []
        if epoch_ns is None:
            epoch_ns = self.samples[0]["t_ns"]
        out = []
        for sample in self.samples:
            d: Dict[str, Any] = {
                "t_s": round((sample["t_ns"] - epoch_ns) / 1e9, 6),
                "rss_bytes": sample["rss_bytes"],
                "span": sample["span"],
            }
            if sample.get("probes"):
                d["probes"] = dict(sample["probes"])
            out.append(d)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResourceSampler hz={self.hz} samples={len(self.samples)} "
            f"stride={self._stride}>"
        )


# ----------------------------------------------------------------------
# the installed-sampler slot (mirrors the tracer/emitter discipline)
# ----------------------------------------------------------------------

_sampler: Optional[ResourceSampler] = None


def active_sampler() -> Optional[ResourceSampler]:
    """The installed sampler, or ``None`` when sampling is off."""
    return _sampler


def install_sampler(sampler: ResourceSampler) -> ResourceSampler:
    """Install (without starting) ``sampler`` as the process sampler."""
    global _sampler
    if _sampler is not None:
        raise RuntimeError("a sampler is already installed; uninstall first")
    _sampler = sampler
    return sampler


def uninstall_sampler() -> Optional[ResourceSampler]:
    """Stop, remove and return the installed sampler (no-op when off)."""
    global _sampler
    sampler, _sampler = _sampler, None
    if sampler is not None:
        sampler.stop()
    return sampler


@contextmanager
def sampler_session(hz: float = 4.0, **kwargs: Any) -> Iterator[ResourceSampler]:
    """Install and run a fresh sampler for the duration of a block."""
    sampler = install_sampler(ResourceSampler(hz, **kwargs))
    sampler.start()
    try:
        yield sampler
    finally:
        uninstall_sampler()
