"""Streaming log-bucket histograms: the registry's distribution metric.

Counters answer "how much work", gauges "what is it now"; neither can
answer "what is p99" — the primitive a latency SLO (the ROADMAP's fleet
service) gates on.  :class:`Histogram` is the missing third metric type:
a fixed-layout, log-spaced bucket histogram that

* streams — :meth:`observe` is O(1), no sample retention, so it can sit
  on per-block kernel call sites;
* merges — two histograms with the same layout combine by summing
  bucket counts, which is how the parallel engine folds worker
  distributions into the coordinator's without approximation error
  beyond the shared bucket resolution;
* answers quantiles with a *documented* bucket-relative error bound.

Bucket layout (the contract, shared by every process that merges):
bucket ``i`` covers ``[GROWTH**i, GROWTH**(i+1))`` with
``GROWTH = 2**(1/9)`` (~8.01 % per bucket, ~9 buckets per octave).  A
quantile query returns the geometric midpoint ``GROWTH**(i+0.5)`` of the
selected bucket, clamped into the exact observed ``[min, max]``; the
worst-case relative error is therefore ``sqrt(GROWTH) - 1`` ~= 3.9 %,
inside the advertised <= 5 % bound.  Values <= 0 (a zero-duration clock
read) land in a dedicated underflow bucket and report as ``min``.
Count, sum, min and max are tracked exactly, so ``count``/``mean``/
``max`` (and any ``q >= 1`` query) carry no bucketing error at all.

The layout is *fixed*, not adaptive: mergeability across processes (and
across artefacts written weeks apart by ``bench_compare``-diffed runs)
is worth more than per-run bucket tuning.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Sequence

#: fixed bucket growth factor: 2**(1/9) puts 9 buckets per octave and
#: bounds the quantile midpoint error at sqrt(GROWTH)-1 ~= 3.93 % < 5 %
GROWTH = 2.0 ** (1.0 / 9.0)

#: worst-case relative error of a bucketed quantile (documented bound)
QUANTILE_RELATIVE_ERROR = math.sqrt(GROWTH) - 1.0

_INV_LOG_GROWTH = 1.0 / math.log(GROWTH)

#: quantiles every summary reports, in ``summary()`` key order
SUMMARY_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


class Histogram:
    """One streaming distribution: log-spaced buckets + exact extremes.

    Instances are cheap (one dict, five scalars) and are created lazily
    by :meth:`Tracer.observe <repro.telemetry.tracer.Tracer.observe>`;
    they hold no reference to the tracer, so a merged or deserialised
    histogram is a plain value object.
    """

    __slots__ = ("buckets", "count", "total", "min", "max", "n_zero")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.n_zero = 0  # underflow: values <= 0

    # ---- recording ---------------------------------------------------

    def observe(self, value: float) -> None:
        """Fold one sample in (O(1): one log, one dict update)."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.n_zero += 1
            return
        idx = math.floor(math.log(value) * _INV_LOG_GROWTH)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    def observe_many(self, values: Sequence[float]) -> None:
        for value in values:
            self.observe(value)

    # ---- queries -----------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1) within the bucket error bound.

        ``q >= 1`` returns the exact maximum, ``q <= 0`` the exact
        minimum; interior quantiles return the geometric midpoint of the
        covering bucket, clamped into ``[min, max]``.
        """
        if self.count == 0:
            return math.nan
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        target = q * self.count
        seen = self.n_zero
        if seen >= target and self.n_zero:
            return self.min
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if seen >= target:
                mid = GROWTH ** (idx + 0.5)
                return min(max(mid, self.min), self.max)
        return self.max  # pragma: no cover - counts always sum to count

    def summary(self) -> Dict[str, float]:
        """The flat scalar digest manifests, ledgers and benches carry."""
        out: Dict[str, float] = {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
        }
        for name, q in SUMMARY_QUANTILES:
            out[name] = self.quantile(q)
        return out

    def quantiles(
        self, pairs: Sequence["tuple[str, float]"]
    ) -> Dict[str, float]:
        """Named quantiles beyond the fixed summary set.

        The SLO layer gates tail quantiles (p999) that
        :data:`SUMMARY_QUANTILES` deliberately omits from every summary;
        this queries them on demand: ``h.quantiles((("p999", 0.999),))``.
        """
        return {name: self.quantile(q) for name, q in pairs}

    # ---- merge / serialise -------------------------------------------

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram in place (returns self).

        Exact for count/sum/min/max; bucket counts add because every
        histogram shares the one fixed layout — the property the
        cross-worker quantile guarantee rests on.
        """
        self.count += other.count
        self.total += other.total
        self.n_zero += other.n_zero
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        return self

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready state; ``from_dict`` round-trips it exactly."""
        return {
            "growth": GROWTH,
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "zero": self.n_zero,
            "buckets": {str(idx): n for idx, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        growth = data.get("growth")
        if growth is None or abs(growth - GROWTH) > 1e-12:
            raise ValueError(
                f"histogram bucket layout mismatch: growth {growth!r} != "
                f"{GROWTH!r} (merging different layouts would silently "
                "corrupt quantiles)"
            )
        hist = cls()
        hist.count = int(data["count"])
        hist.total = float(data["sum"])
        hist.n_zero = int(data.get("zero", 0))
        hist.min = math.inf if data.get("min") is None else float(data["min"])
        hist.max = -math.inf if data.get("max") is None else float(data["max"])
        hist.buckets = {
            int(idx): int(n) for idx, n in (data.get("buckets") or {}).items()
        }
        return hist

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.count:
            return "<Histogram empty>"
        return (
            f"<Histogram n={self.count} p50={self.quantile(0.5):.3g} "
            f"p99={self.quantile(0.99):.3g} max={self.max:.3g}>"
        )


def summarise(histograms: Dict[str, "Histogram"]) -> Dict[str, Dict[str, float]]:
    """``{name: summary}`` over a histogram registry, sorted by name."""
    return {name: histograms[name].summary() for name in sorted(histograms)}


def flatten_summaries(
    histograms: Dict[str, "Histogram"], quantiles: Optional[Sequence[str]] = None
) -> Dict[str, float]:
    """Ledger-ready flat scalars: ``{"<name>.p99": value, ...}``.

    Non-finite values (an empty histogram's mean) are dropped rather than
    written — the ledger's own writer would silently discard them, and a
    missing key is the documented way "no data" manifests there.
    """
    flat: Dict[str, float] = {}
    for name, summary in summarise(histograms).items():
        for key, value in summary.items():
            if quantiles is not None and key not in quantiles:
                continue
            if isinstance(value, float) and not math.isfinite(value):
                continue
            flat[f"{name}.{key}"] = float(value)
    return flat
