"""repro.telemetry — tracing, metrics, manifests, ledger and heartbeats.

A zero-dependency observability stack for the Monte-Carlo engine, in two
layers:

**In-run** (one process, one invocation):

* :class:`Tracer` / :class:`Span` — nestable wall-time (and optional
  memory) spans with typed counters and gauges;
* :class:`RunManifest` — the provenance tuple (seed, config, package
  version, git SHA, numpy/platform versions) attached to every artefact;
* :class:`ProgressEmitter` / :func:`progress` — throttled JSONL
  heartbeats (stage, items done, ETA) from the batched kernels, the
  CLI's ``--events PATH``;
* :func:`render_span_tree` / :func:`write_metrics` — terminal and JSON
  exports, consumed by ``--trace`` / ``--metrics-out``;
* :class:`Histogram` / :func:`observe` — streaming log-bucket latency
  distributions (p50/p95/p99 within a documented <= 5 % bucket error),
  mergeable across parallel workers;
* :func:`write_chrome_trace` — Chrome ``trace_event`` export
  (``--trace-out``): the run as a Perfetto timeline, one lane per
  worker shard, aligned by a perf-counter clock handshake;
* :class:`ResourceSampler` — opt-in background RSS/probe sampling
  (``--sample-rss HZ``), each tick attributed to the open span;
* :func:`parse_events` / :func:`render_monitor` — the ``repro monitor``
  dashboard over an events JSONL, live or post-hoc.

**Across runs** (the longitudinal layer):

* :class:`RunLedger` / :class:`LedgerEntry` — an append-only JSONL
  ledger of every experiment's headline scalars, keyed by the manifest
  (``--ledger PATH``);
* :data:`PAPER_ANCHORS` / :func:`check_anchors` — the paper abstract's
  quantitative claims as a declarative registry with pass/warn/fail
  tolerance bands (``repro check-anchors``, ``tools/check_anchors.py``);
* :func:`render_history` — per-metric trends over a ledger with
  sparklines and rolling-baseline drift detection (``repro history``).

The library is instrumented through the module-level single-branch API
(:func:`start_span` / :func:`end_span` / :func:`count` / :func:`gauge` /
:func:`progress`): with no tracer or emitter installed these are one
attribute load and one branch, so the instrumented kernels stay within
the <2 % overhead budget measured by ``benchmarks/bench_population.py``.
Enable collection with::

    from repro import telemetry

    with telemetry.session() as tracer:
        study.responses(t_years=10.0)
        print(telemetry.render_span_tree(tracer))
        print(tracer.counters)
"""

from .manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    git_sha,
    package_version,
    validate_manifest,
)
from .tracer import (
    Span,
    Tracer,
    active,
    clock_handshake,
    count,
    enabled,
    end_span,
    gauge,
    install,
    observe,
    peak_rss_bytes,
    session,
    span,
    start_span,
    uninstall,
)
from .histogram import (
    GROWTH,
    QUANTILE_RELATIVE_ERROR,
    Histogram,
    flatten_summaries,
    summarise,
)
from .export import (
    METRICS_FORMAT,
    render_counters,
    render_histograms,
    render_span_tree,
    trace_to_dict,
    write_metrics,
)
from .chrome import (
    MAIN_TID,
    TRACE_PID,
    chrome_trace_dict,
    chrome_trace_events,
    write_chrome_trace,
)
from .sampler import (
    ResourceSampler,
    active_sampler,
    current_rss_bytes,
    install_sampler,
    register_probe,
    sampler_session,
    uninstall_sampler,
    unregister_probe,
)
from .monitor import MonitorState, StageProgress, parse_events, render_monitor
from .events import (
    EVENTS_FORMAT,
    ProgressEmitter,
    active_emitter,
    emitter_session,
    install_emitter,
    progress,
    uninstall_emitter,
)
from .ledger import LEDGER_FORMAT, LedgerEntry, RunLedger
from .anchors import (
    ANCHOR_EXPERIMENTS,
    Anchor,
    AnchorVerdict,
    PAPER_ANCHORS,
    check_anchors,
    latest_scalars,
    render_verdicts,
    worst_status,
)
from .history import TrendRow, history_rows, render_history, sparkline

__all__ = [
    "ANCHOR_EXPERIMENTS",
    "Anchor",
    "AnchorVerdict",
    "EVENTS_FORMAT",
    "GROWTH",
    "Histogram",
    "LEDGER_FORMAT",
    "LedgerEntry",
    "MANIFEST_SCHEMA",
    "METRICS_FORMAT",
    "MonitorState",
    "PAPER_ANCHORS",
    "ProgressEmitter",
    "QUANTILE_RELATIVE_ERROR",
    "ResourceSampler",
    "RunLedger",
    "RunManifest",
    "Span",
    "StageProgress",
    "Tracer",
    "TrendRow",
    "active",
    "active_emitter",
    "active_sampler",
    "check_anchors",
    "MAIN_TID",
    "TRACE_PID",
    "chrome_trace_dict",
    "chrome_trace_events",
    "clock_handshake",
    "count",
    "current_rss_bytes",
    "emitter_session",
    "enabled",
    "end_span",
    "flatten_summaries",
    "gauge",
    "git_sha",
    "history_rows",
    "install",
    "install_emitter",
    "install_sampler",
    "latest_scalars",
    "observe",
    "package_version",
    "parse_events",
    "peak_rss_bytes",
    "progress",
    "register_probe",
    "render_counters",
    "render_histograms",
    "render_history",
    "render_monitor",
    "render_span_tree",
    "render_verdicts",
    "sampler_session",
    "session",
    "span",
    "sparkline",
    "start_span",
    "summarise",
    "trace_to_dict",
    "uninstall",
    "uninstall_emitter",
    "uninstall_sampler",
    "unregister_probe",
    "validate_manifest",
    "worst_status",
    "write_chrome_trace",
    "write_metrics",
]
