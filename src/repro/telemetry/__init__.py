"""repro.telemetry — tracing spans, kernel metrics and run manifests.

A zero-dependency observability layer for the Monte-Carlo engine:

* :class:`Tracer` / :class:`Span` — nestable wall-time (and optional
  memory) spans with typed counters and gauges;
* :class:`RunManifest` — the provenance tuple (seed, config, package
  version, git SHA, numpy/platform versions) attached to every artefact;
* :func:`render_span_tree` / :func:`write_metrics` — terminal and JSON
  exports, consumed by the CLI's ``--trace`` / ``--metrics-out`` flags
  and the benchmark harness.

The library is instrumented through the module-level single-branch API
(:func:`start_span` / :func:`end_span` / :func:`count` / :func:`gauge`):
with no tracer installed these are one attribute load and one branch, so
the instrumented kernels stay within the <2 % overhead budget measured
by ``benchmarks/bench_population.py``.  Enable collection with::

    from repro import telemetry

    with telemetry.session() as tracer:
        study.responses(t_years=10.0)
        print(telemetry.render_span_tree(tracer))
        print(tracer.counters)
"""

from .manifest import MANIFEST_SCHEMA, RunManifest, git_sha, validate_manifest
from .tracer import (
    Span,
    Tracer,
    active,
    count,
    enabled,
    end_span,
    gauge,
    install,
    session,
    span,
    start_span,
    uninstall,
)
from .export import (
    METRICS_FORMAT,
    render_counters,
    render_span_tree,
    trace_to_dict,
    write_metrics,
)

__all__ = [
    "MANIFEST_SCHEMA",
    "METRICS_FORMAT",
    "RunManifest",
    "Span",
    "Tracer",
    "active",
    "count",
    "enabled",
    "end_span",
    "gauge",
    "git_sha",
    "install",
    "render_counters",
    "render_span_tree",
    "session",
    "span",
    "start_span",
    "trace_to_dict",
    "uninstall",
    "validate_manifest",
    "write_metrics",
]
