"""repro.telemetry — tracing, metrics, manifests, ledger and heartbeats.

A zero-dependency observability stack for the Monte-Carlo engine, in two
layers:

**In-run** (one process, one invocation):

* :class:`Tracer` / :class:`Span` — nestable wall-time (and optional
  memory) spans with typed counters and gauges;
* :class:`RunManifest` — the provenance tuple (seed, config, package
  version, git SHA, numpy/platform versions) attached to every artefact;
* :class:`ProgressEmitter` / :func:`progress` — throttled JSONL
  heartbeats (stage, items done, ETA) from the batched kernels, the
  CLI's ``--events PATH``;
* :func:`render_span_tree` / :func:`write_metrics` — terminal and JSON
  exports, consumed by ``--trace`` / ``--metrics-out``.

**Across runs** (the longitudinal layer):

* :class:`RunLedger` / :class:`LedgerEntry` — an append-only JSONL
  ledger of every experiment's headline scalars, keyed by the manifest
  (``--ledger PATH``);
* :data:`PAPER_ANCHORS` / :func:`check_anchors` — the paper abstract's
  quantitative claims as a declarative registry with pass/warn/fail
  tolerance bands (``repro check-anchors``, ``tools/check_anchors.py``);
* :func:`render_history` — per-metric trends over a ledger with
  sparklines and rolling-baseline drift detection (``repro history``).

The library is instrumented through the module-level single-branch API
(:func:`start_span` / :func:`end_span` / :func:`count` / :func:`gauge` /
:func:`progress`): with no tracer or emitter installed these are one
attribute load and one branch, so the instrumented kernels stay within
the <2 % overhead budget measured by ``benchmarks/bench_population.py``.
Enable collection with::

    from repro import telemetry

    with telemetry.session() as tracer:
        study.responses(t_years=10.0)
        print(telemetry.render_span_tree(tracer))
        print(tracer.counters)
"""

from .manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    git_sha,
    package_version,
    validate_manifest,
)
from .tracer import (
    Span,
    Tracer,
    active,
    count,
    enabled,
    end_span,
    gauge,
    install,
    peak_rss_bytes,
    session,
    span,
    start_span,
    uninstall,
)
from .export import (
    METRICS_FORMAT,
    render_counters,
    render_span_tree,
    trace_to_dict,
    write_metrics,
)
from .events import (
    EVENTS_FORMAT,
    ProgressEmitter,
    active_emitter,
    emitter_session,
    install_emitter,
    progress,
    uninstall_emitter,
)
from .ledger import LEDGER_FORMAT, LedgerEntry, RunLedger
from .anchors import (
    ANCHOR_EXPERIMENTS,
    Anchor,
    AnchorVerdict,
    PAPER_ANCHORS,
    check_anchors,
    latest_scalars,
    render_verdicts,
    worst_status,
)
from .history import TrendRow, history_rows, render_history, sparkline

__all__ = [
    "ANCHOR_EXPERIMENTS",
    "Anchor",
    "AnchorVerdict",
    "EVENTS_FORMAT",
    "LEDGER_FORMAT",
    "LedgerEntry",
    "MANIFEST_SCHEMA",
    "METRICS_FORMAT",
    "PAPER_ANCHORS",
    "ProgressEmitter",
    "RunLedger",
    "RunManifest",
    "Span",
    "Tracer",
    "TrendRow",
    "active",
    "active_emitter",
    "check_anchors",
    "count",
    "emitter_session",
    "enabled",
    "end_span",
    "gauge",
    "git_sha",
    "history_rows",
    "install",
    "install_emitter",
    "latest_scalars",
    "package_version",
    "peak_rss_bytes",
    "progress",
    "render_counters",
    "render_history",
    "render_span_tree",
    "render_verdicts",
    "session",
    "span",
    "sparkline",
    "start_span",
    "trace_to_dict",
    "uninstall",
    "uninstall_emitter",
    "validate_manifest",
    "worst_status",
    "write_metrics",
]
