"""repro.telemetry — tracing, metrics, manifests, ledger and heartbeats.

A zero-dependency observability stack for the Monte-Carlo engine, in two
layers:

**In-run** (one process, one invocation):

* :class:`Tracer` / :class:`Span` — nestable wall-time (and optional
  memory) spans with typed counters and gauges;
* :class:`RunManifest` — the provenance tuple (seed, config, package
  version, git SHA, numpy/platform versions) attached to every artefact;
* :class:`ProgressEmitter` / :func:`progress` — throttled JSONL
  heartbeats (stage, items done, ETA) from the batched kernels, the
  CLI's ``--events PATH``;
* :func:`render_span_tree` / :func:`write_metrics` — terminal and JSON
  exports, consumed by ``--trace`` / ``--metrics-out``;
* :class:`Histogram` / :func:`observe` — streaming log-bucket latency
  distributions (p50/p95/p99 within a documented <= 5 % bucket error),
  mergeable across parallel workers;
* :func:`write_chrome_trace` — Chrome ``trace_event`` export
  (``--trace-out``): the run as a Perfetto timeline, one lane per
  worker shard, aligned by a perf-counter clock handshake;
* :class:`ResourceSampler` — opt-in background RSS/probe sampling
  (``--sample-rss HZ``), each tick attributed to the open span;
* :func:`parse_events` / :func:`render_monitor` — the ``repro monitor``
  dashboard over an events JSONL, live or post-hoc;
* :class:`AsyncTracer` / :func:`current_trace_id` — contextvar-based
  span propagation for asyncio serving: per-request trace ids that
  survive ``await`` and task fan-out, finished requests parked on
  Chrome-trace lanes (``repro serve`` / ``repro loadgen``);
* :class:`RedMetrics` — per-endpoint rate / error-taxonomy / duration
  aggregation for the fleet service, flattened into the scalar map the
  SLO spec (:mod:`repro.service.slo`) gates;
* :class:`EventLoopLagProbe` — event-loop scheduling delay as a sampler
  probe (a counter track next to RSS when serving).

**Across runs** (the longitudinal layer):

* :class:`RunLedger` / :class:`LedgerEntry` — an append-only JSONL
  ledger of every experiment's headline scalars, keyed by the manifest
  (``--ledger PATH``);
* :data:`PAPER_ANCHORS` / :func:`check_anchors` — the paper abstract's
  quantitative claims as a declarative registry with pass/warn/fail
  tolerance bands (``repro check-anchors``, ``tools/check_anchors.py``);
* :func:`render_history` — per-metric trends over a ledger with
  sparklines and rolling-baseline drift detection (``repro history``);
* :class:`PerfLedger` / :class:`PerfEntry` — the *performance*
  counterpart: every benchmark run's throughput / wall / RSS / p50/p99,
  keyed ``git_sha:host-fingerprint:bench-id`` (``repro perf``,
  ``REPRO_PERF_LEDGER``);
* :func:`detect` / :func:`classify` — median+MAD change-point verdicts
  with a documented noise model and warm-up (``repro perf gate``,
  ``repro history --robust``);
* :func:`aggregate` / :func:`critical_path` / :func:`collapsed_stacks`
  — span-forest attribution: self-time tables, the wall-clock-bounding
  span chain across lanes, and flamegraph.pl/speedscope collapsed
  stacks (``repro perf flame``).

The library is instrumented through the module-level single-branch API
(:func:`start_span` / :func:`end_span` / :func:`count` / :func:`gauge` /
:func:`progress`): with no tracer or emitter installed these are one
attribute load and one branch, so the instrumented kernels stay within
the <2 % overhead budget measured by ``benchmarks/bench_population.py``.
Enable collection with::

    from repro import telemetry

    with telemetry.session() as tracer:
        study.responses(t_years=10.0)
        print(telemetry.render_span_tree(tracer))
        print(tracer.counters)
"""

from .manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    execution_fields,
    git_sha,
    host_fingerprint,
    package_version,
    platform_triple,
    validate_manifest,
)
from .tracer import (
    Span,
    Tracer,
    active,
    clock_handshake,
    count,
    enabled,
    end_span,
    gauge,
    install,
    observe,
    peak_rss_bytes,
    session,
    span,
    start_span,
    uninstall,
)
from .histogram import (
    GROWTH,
    QUANTILE_RELATIVE_ERROR,
    Histogram,
    flatten_summaries,
    summarise,
)
from .export import (
    METRICS_FORMAT,
    render_counters,
    render_histograms,
    render_span_tree,
    trace_to_dict,
    write_metrics,
)
from .chrome import (
    MAIN_TID,
    TRACE_PID,
    chrome_trace_dict,
    chrome_trace_events,
    write_chrome_trace,
)
from .sampler import (
    ResourceSampler,
    active_sampler,
    current_rss_bytes,
    install_sampler,
    register_probe,
    sampler_session,
    uninstall_sampler,
    unregister_probe,
)
from .asynctrace import AsyncTracer, EventLoopLagProbe, current_trace_id
from .red import (
    ERROR_CLASSES,
    NON_ERROR_OUTCOMES,
    RED_FORMAT,
    SLO_QUANTILES,
    RedMetrics,
)
from .monitor import MonitorState, StageProgress, parse_events, render_monitor
from .events import (
    EVENTS_FORMAT,
    ProgressEmitter,
    active_emitter,
    emitter_session,
    install_emitter,
    progress,
    uninstall_emitter,
)
from .ledger import LEDGER_FORMAT, LedgerEntry, RunLedger
from .anchors import (
    ANCHOR_EXPERIMENTS,
    Anchor,
    AnchorVerdict,
    PAPER_ANCHORS,
    check_anchors,
    latest_scalars,
    render_verdicts,
    worst_status,
)
from .history import TrendRow, history_rows, render_history, sparkline
from .changepoint import (
    ChangePoint,
    MAD_CONSISTENCY,
    MIN_HISTORY,
    classify,
    detect,
    metric_orientation,
)
from .perfledger import (
    PERF_LEDGER_ENV,
    PERF_LEDGER_FORMAT,
    PerfEntry,
    PerfLedger,
    entry_from_bench_payload,
    entry_from_metrics_payload,
)
from .report import render_perf_report, write_perf_report
from .profile import (
    PathSegment,
    ProfileRow,
    aggregate,
    collapsed_stacks,
    critical_path,
    lanes_from_chrome_trace,
    lanes_from_tracer,
    render_collapsed,
    render_critical_path,
    render_profile,
    write_collapsed,
)

__all__ = [
    "ANCHOR_EXPERIMENTS",
    "Anchor",
    "AnchorVerdict",
    "AsyncTracer",
    "ChangePoint",
    "ERROR_CLASSES",
    "EventLoopLagProbe",
    "EVENTS_FORMAT",
    "GROWTH",
    "Histogram",
    "LEDGER_FORMAT",
    "LedgerEntry",
    "MAD_CONSISTENCY",
    "MANIFEST_SCHEMA",
    "METRICS_FORMAT",
    "MIN_HISTORY",
    "MonitorState",
    "NON_ERROR_OUTCOMES",
    "PAPER_ANCHORS",
    "PERF_LEDGER_ENV",
    "PERF_LEDGER_FORMAT",
    "PathSegment",
    "PerfEntry",
    "PerfLedger",
    "ProfileRow",
    "ProgressEmitter",
    "QUANTILE_RELATIVE_ERROR",
    "RED_FORMAT",
    "RedMetrics",
    "ResourceSampler",
    "RunLedger",
    "RunManifest",
    "SLO_QUANTILES",
    "Span",
    "StageProgress",
    "Tracer",
    "TrendRow",
    "active",
    "aggregate",
    "active_emitter",
    "active_sampler",
    "check_anchors",
    "MAIN_TID",
    "TRACE_PID",
    "chrome_trace_dict",
    "chrome_trace_events",
    "classify",
    "clock_handshake",
    "collapsed_stacks",
    "count",
    "critical_path",
    "current_rss_bytes",
    "current_trace_id",
    "detect",
    "emitter_session",
    "enabled",
    "end_span",
    "entry_from_bench_payload",
    "entry_from_metrics_payload",
    "execution_fields",
    "flatten_summaries",
    "gauge",
    "git_sha",
    "history_rows",
    "host_fingerprint",
    "install",
    "lanes_from_chrome_trace",
    "lanes_from_tracer",
    "install_emitter",
    "install_sampler",
    "latest_scalars",
    "metric_orientation",
    "observe",
    "package_version",
    "parse_events",
    "peak_rss_bytes",
    "platform_triple",
    "progress",
    "register_probe",
    "render_collapsed",
    "render_counters",
    "render_critical_path",
    "render_histograms",
    "render_history",
    "render_monitor",
    "render_perf_report",
    "render_profile",
    "render_span_tree",
    "render_verdicts",
    "sampler_session",
    "session",
    "span",
    "sparkline",
    "start_span",
    "summarise",
    "trace_to_dict",
    "uninstall",
    "uninstall_emitter",
    "uninstall_sampler",
    "unregister_probe",
    "validate_manifest",
    "worst_status",
    "write_chrome_trace",
    "write_collapsed",
    "write_metrics",
    "write_perf_report",
]
