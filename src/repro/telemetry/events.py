"""Progress events: a throttled JSONL heartbeat for long-running sweeps.

A paper-scale Monte-Carlo sweep can run for minutes with nothing on the
terminal and nothing on disk until the final tables land.  This module
gives the batched engines a *heartbeat*: a :class:`ProgressEmitter`
appends small structured events (stage, items done, ETA) to a JSONL file
that an operator — or a CI watchdog — can ``tail -f`` while the run is
in flight.

Design constraints, in order:

1. **Disabled must be free.**  The hot loops in
   :mod:`repro.core.population` and :mod:`repro.aging.simulator` call
   :func:`progress` unconditionally; with no emitter installed that is
   one module-attribute load and one ``is None`` branch — the same
   single-branch idiom as the tracer's :func:`~repro.telemetry.count`.
2. **Enabled must be throttled.**  Events are rate-limited by wall time
   (``min_interval_s``, default 250 ms) and hard-capped per emitter
   lifetime (``max_events``), so even a pathological million-block sweep
   writes a bounded number of lines and the enabled overhead on the E2
   sweep stays under the telemetry budget
   (``benchmarks/bench_population.py::TestTelemetryOverhead``).
3. **Events must be self-describing.**  Every line carries the stage
   name, elapsed seconds since the emitter opened, and — when the call
   site reports ``done``/``total`` — a linear-extrapolation ETA for the
   stage, so a heartbeat line is useful without the rest of the file.

The emitter is installed process-locally (one slot, mirroring the
tracer) via :func:`install_emitter` / :func:`uninstall_emitter` /
:func:`emitter_session`; the CLI's ``--events PATH`` flag wires it
around a run.
"""

from __future__ import annotations

import json
import pathlib
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Union

PathLike = Union[str, pathlib.Path]

#: format version of one event line, bumped on layout changes
EVENTS_FORMAT = 1


class ProgressEmitter:
    """Appends throttled progress events to a JSONL file.

    Parameters
    ----------
    path:
        Destination JSONL file; parent directories are created, and the
        file is opened in append mode so several runs can share one
        heartbeat log.
    min_interval_s:
        Minimum wall time between written events (lifecycle events
        bypass the interval but still count against ``max_events``).
    max_events:
        Hard cap on lines written over the emitter's lifetime — the
        bound that keeps a runaway loop from filling a disk.
    max_bytes:
        Optional size cap for long-lived runs (a server left serving for
        days): when the *file* would grow past it, the current file is
        rotated to ``<name>.1`` (replacing any previous rotation) and a
        fresh file is started — disk usage stays bounded by roughly
        ``2 * max_bytes`` however long the emitter lives.  Minimum 1024;
        ``None`` (the default) never rotates.
    clock:
        Injectable monotonic clock (tests pin it to fake time).
    """

    def __init__(
        self,
        path: PathLike,
        *,
        min_interval_s: float = 0.25,
        max_events: int = 1000,
        max_bytes: Optional[int] = None,
        clock=time.monotonic,
    ):
        if min_interval_s < 0:
            raise ValueError("min_interval_s must be non-negative")
        if max_events < 1:
            raise ValueError("max_events must be positive")
        if max_bytes is not None and max_bytes < 1024:
            raise ValueError("max_bytes must be >= 1024 (or None)")
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.min_interval_s = float(min_interval_s)
        self.max_events = int(max_events)
        self.max_bytes = int(max_bytes) if max_bytes is not None else None
        self._clock = clock
        self._fh = open(self.path, "a")
        self._bytes = self._fh.tell()  # append mode: current file size
        self._t0 = clock()
        self._last_write: Optional[float] = None
        self._stage_first_seen: Dict[str, float] = {}
        self.n_events = 0
        self.n_throttled = 0
        self.n_rotations = 0

    # ---- emission ----------------------------------------------------

    def emit(
        self,
        stage: str,
        done: Optional[int] = None,
        total: Optional[int] = None,
        *,
        force: bool = False,
        **fields: Any,
    ) -> bool:
        """Record one progress event; returns True when a line was written.

        Calls beyond the rate limit (or the lifetime cap) are dropped —
        the caller never needs to care whether the heartbeat fired.
        """
        if self._fh is None or self.n_events >= self.max_events:
            return False
        now = self._clock()
        # stage start is tracked on every call (cheap dict hit), so the
        # ETA of the first *written* event already reflects real progress
        start = self._stage_first_seen.setdefault(stage, now)
        if (
            not force
            and self._last_write is not None
            and (now - self._last_write) < self.min_interval_s
        ):
            self.n_throttled += 1
            return False
        record: Dict[str, Any] = {
            "format": EVENTS_FORMAT,
            "event": "progress",
            "stage": stage,
            "elapsed_s": round(now - self._t0, 6),
        }
        if done is not None:
            record["done"] = int(done)
        if total is not None:
            record["total"] = int(total)
        if done and total and 0 < done <= total:
            stage_elapsed = now - start
            if done < total and stage_elapsed > 0:
                record["eta_s"] = round(stage_elapsed * (total - done) / done, 6)
        record.update(fields)
        self._write(record)
        self._last_write = now
        return True

    def lifecycle(self, event: str, **fields: Any) -> bool:
        """Write an unthrottled lifecycle marker (``run.start`` etc.).

        Bypasses the rate limit — a run's start/end must always land —
        but still counts against (and respects) ``max_events``.
        """
        if self._fh is None or self.n_events >= self.max_events:
            return False
        record: Dict[str, Any] = {
            "format": EVENTS_FORMAT,
            "event": event,
            "elapsed_s": round(self._clock() - self._t0, 6),
        }
        record.update(fields)
        self._write(record)
        self._last_write = self._clock()
        return True

    def _write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        if (
            self.max_bytes is not None
            and self._bytes > 0
            and self._bytes + len(line) > self.max_bytes
        ):
            self._rotate()
        self._fh.write(line)
        self._fh.flush()  # heartbeats must be visible to `tail -f` now
        self._bytes += len(line)
        self.n_events += 1

    def _rotate(self) -> None:
        """Move the full file aside to ``<name>.1`` and start fresh.

        A single backup generation keeps the implementation atomic
        (one ``rename``) and the disk bound tight; readers following the
        live file (``repro monitor --follow``) detect the shrink-with-
        sibling and restart from the new file's head.
        """
        self._fh.close()
        self._fh = None  # a failed rotation must not look half-open
        self.path.replace(self.path.with_name(self.path.name + ".1"))
        self._fh = open(self.path, "a")
        self._bytes = 0
        self.n_rotations += 1

    # ---- lifecycle ---------------------------------------------------

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    @property
    def closed(self) -> bool:
        return self._fh is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ProgressEmitter {str(self.path)!r} events={self.n_events}"
            f"/{self.max_events}>"
        )


# ----------------------------------------------------------------------
# the installed-emitter slot and the single-branch hot-path API
# ----------------------------------------------------------------------

#: the one process-local emitter, or None (disabled) — mirrors the
#: tracer's installed slot so instrumented loops pay one branch when off
_emitter: Optional[ProgressEmitter] = None


def active_emitter() -> Optional[ProgressEmitter]:
    """The installed emitter, or ``None`` when heartbeats are disabled."""
    return _emitter


def install_emitter(emitter: ProgressEmitter) -> ProgressEmitter:
    """Install ``emitter`` as the process-local emitter (returns it)."""
    global _emitter
    if _emitter is not None:
        raise RuntimeError("an emitter is already installed; uninstall first")
    _emitter = emitter
    return emitter


def uninstall_emitter() -> Optional[ProgressEmitter]:
    """Remove, close and return the installed emitter (no-op when off)."""
    global _emitter
    emitter, _emitter = _emitter, None
    if emitter is not None:
        emitter.close()
    return emitter


@contextmanager
def emitter_session(
    path: PathLike, **kwargs: Any
) -> Iterator[ProgressEmitter]:
    """Install a fresh :class:`ProgressEmitter` for the duration of a block."""
    emitter = install_emitter(ProgressEmitter(path, **kwargs))
    try:
        yield emitter
    finally:
        uninstall_emitter()


def progress(
    stage: str, done: Optional[int] = None, total: Optional[int] = None
) -> None:
    """Heartbeat from a hot loop; a single branch when disabled.

    Call sites report monotone progress (``done`` of ``total`` items for
    the stage); the installed emitter throttles and formats.  Cheap
    enough for per-block call sites (not per-element ones).
    """
    e = _emitter
    if e is None:
        return
    e.emit(stage, done, total)
