"""Run manifests: the provenance record attached to every experiment run.

Long-horizon PUF measurement campaigns are only auditable when every
artefact says exactly how it was produced.  :class:`RunManifest` captures
the full reproducibility tuple — RNG seed, experiment configuration,
package version, git commit, numpy version, python/platform — in one
JSON-serialisable object that the CLI writes next to its metrics and the
benchmark harness embeds in every ``benchmarks/results/*.json`` artefact.

Only the standard library is used (the git SHA comes from one
``git rev-parse`` subprocess with a short timeout and falls back to
``None`` outside a checkout), so collecting a manifest never makes a run
fail.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import os
import pathlib
import platform
import subprocess
import sys
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

#: JSON-schema-style description of a serialised manifest.  Kept as plain
#: data (not a jsonschema dependency) and enforced by
#: :func:`validate_manifest`, which CI's smoke step runs against the
#: CLI's ``--metrics-out`` artefact.
MANIFEST_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "created_utc",
        "seed",
        "config",
        "package",
        "package_version",
        "git_sha",
        "numpy_version",
        "python_version",
        "platform",
        "argv",
    ],
    "properties": {
        "created_utc": {"type": "string"},
        "seed": {"type": ["integer", "null"]},
        "config": {"type": "object"},
        "package": {"type": "string"},
        "package_version": {"type": "string"},
        "git_sha": {"type": ["string", "null"]},
        "numpy_version": {"type": ["string", "null"]},
        "python_version": {"type": "string"},
        "platform": {"type": "string"},
        "argv": {"type": "array"},
        # optional how-it-ran fields (absent on older manifests): worker
        # count, result-cache usage and population-store execution mode.
        # Deliberately OUTSIDE "config" so the ledger's config digest —
        # which keys comparable measurements — is unchanged by
        # parallelism, caching or out-of-core execution.
        "jobs": {"type": ["integer", "null"]},
        "cache": {"type": ["object", "null"]},
        "store": {"type": ["string", "null"]},
        "block_size": {"type": ["integer", "null"]},
        "peak_rss_bytes": {"type": ["integer", "null"]},
        # histogram summaries ({name: {count, mean, p50, p95, p99, max}})
        # captured when a tracer with histogram metrics was installed.
        # Also outside "config": a distribution digest describes how the
        # run behaved, never what it measured.
        "histograms": {"type": ["object", "null"]},
        # performance-relevant machine identity ({"platform_triple",
        # "numpy_version", "cpu_count", "host_fingerprint"}) — the perf
        # ledger keys comparable timings on the fingerprint, so only
        # fields that change the numbers belong here (never hostname:
        # CI runners are interchangeable within a generation).
        "execution": {"type": ["object", "null"]},
    },
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "null": lambda v: v is None,
}


def package_version() -> str:
    """The installed package version, with a source-tree fallback.

    Prefers importlib metadata (what ``pip`` actually installed, the
    number that makes ledger entries comparable across installs) and
    falls back to the source tree's ``repro.__version__`` when the
    package is run uninstalled (``PYTHONPATH=src``).
    """
    try:
        import importlib.metadata as _metadata

        return _metadata.version("repro")
    except Exception:
        from .. import __version__

        return __version__


def _numpy_version() -> Optional[str]:
    try:
        import numpy

        return numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep
        return None


def platform_triple() -> str:
    """A compact machine/OS/interpreter triple, e.g. ``x86_64-linux-cpython3.11``.

    Deliberately coarser than :func:`platform.platform`: kernel patch
    levels and distro strings churn without moving benchmark numbers,
    so they stay out of the perf ledger's host identity.
    """
    machine = platform.machine() or "unknown"
    system = (platform.system() or "unknown").lower()
    impl = (platform.python_implementation() or "python").lower()
    major, minor = sys.version_info[:2]
    return f"{machine}-{system}-{impl}{major}.{minor}"


def host_fingerprint() -> str:
    """A stable 12-hex-digit digest of performance-relevant host identity.

    Hashes the platform triple, numpy version and CPU count — and
    nothing else.  Hostname is excluded on purpose: interchangeable CI
    runners must share a fingerprint or the longitudinal perf series
    fragments into single-run histories that can never leave warm-up.
    """
    parts = [
        platform_triple(),
        _numpy_version() or "no-numpy",
        str(os.cpu_count() or 0),
    ]
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:12]


def execution_fields() -> Dict[str, Any]:
    """The manifest's optional ``execution`` block, freshly collected."""
    return {
        "platform_triple": platform_triple(),
        "numpy_version": _numpy_version(),
        "cpu_count": os.cpu_count(),
        "host_fingerprint": host_fingerprint(),
    }


def git_sha(repo_dir: Optional[pathlib.Path] = None) -> Optional[str]:
    """The current checkout's commit SHA, or ``None`` when unavailable."""
    if repo_dir is None:
        repo_dir = pathlib.Path(__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    sha = out.stdout.strip()
    return sha or None


@dataclass(frozen=True)
class RunManifest:
    """Everything needed to re-run (or audit) one experiment run."""

    created_utc: str
    seed: Optional[int]
    config: Dict[str, Any] = field(default_factory=dict)
    package: str = "repro"
    package_version: str = ""
    git_sha: Optional[str] = None
    numpy_version: Optional[str] = None
    python_version: str = ""
    platform: str = ""
    argv: list = field(default_factory=list)
    #: worker-process count the run used (None = not recorded / serial)
    jobs: Optional[int] = None
    #: result-cache usage summary ({"dir": ..., "hits": [...], "misses":
    #: [...]}), or None when no cache directory was given
    cache: Optional[Dict[str, Any]] = None
    #: population-store execution mode ("ram" or "mmap"), or None when
    #: not recorded (older manifests, non-population commands)
    store: Optional[str] = None
    #: store fabrication block size in chips (None = store default / ram)
    block_size: Optional[int] = None
    #: process peak RSS in bytes sampled at run end (None = not sampled)
    peak_rss_bytes: Optional[int] = None
    #: histogram summaries from the run's tracer (None = no histograms)
    histograms: Optional[Dict[str, Any]] = None
    #: performance-relevant machine identity (:func:`execution_fields`);
    #: None only on manifests predating the perf observatory
    execution: Optional[Dict[str, Any]] = None

    @classmethod
    def collect(
        cls,
        seed: Optional[int] = None,
        config: Optional[Dict[str, Any]] = None,
        argv: Optional[list] = None,
        jobs: Optional[int] = None,
        cache: Optional[Dict[str, Any]] = None,
        store: Optional[str] = None,
        block_size: Optional[int] = None,
        peak_rss_bytes: Optional[int] = None,
        histograms: Optional[Dict[str, Any]] = None,
    ) -> "RunManifest":
        """Capture the current process's provenance tuple.

        ``config`` is any JSON-ready mapping describing the run (the CLI
        passes its resolved argument namespace; benchmarks pass their
        scale constants).
        """
        numpy_version = _numpy_version()
        return cls(
            created_utc=datetime.datetime.now(datetime.timezone.utc).isoformat(),
            seed=None if seed is None else int(seed),
            config=dict(config or {}),
            package="repro",
            package_version=package_version(),
            git_sha=git_sha(),
            numpy_version=numpy_version,
            python_version=sys.version.split()[0],
            platform=platform.platform(),
            argv=list(sys.argv if argv is None else argv),
            jobs=None if jobs is None else int(jobs),
            cache=None if cache is None else dict(cache),
            store=None if store is None else str(store),
            block_size=None if block_size is None else int(block_size),
            peak_rss_bytes=None if peak_rss_bytes is None else int(peak_rss_bytes),
            histograms=None if histograms is None else dict(histograms),
            execution=execution_fields(),
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        """Rebuild a manifest from its :meth:`to_dict` form (validated)."""
        validate_manifest(data)
        kwargs = {k: data[k] for k in MANIFEST_SCHEMA["required"]}
        for key in (
            "jobs",
            "cache",
            "store",
            "block_size",
            "peak_rss_bytes",
            "histograms",
            "execution",
        ):
            if key in data:
                kwargs[key] = data[key]
        return cls(**kwargs)


def validate_manifest(data: Any) -> None:
    """Check ``data`` against :data:`MANIFEST_SCHEMA`.

    Raises :class:`ValueError` naming every violation at once, so a CI
    failure message is actionable in one read.
    """
    problems = []
    if not isinstance(data, dict):
        raise ValueError(f"manifest must be a JSON object, got {type(data).__name__}")
    for key in MANIFEST_SCHEMA["required"]:
        if key not in data:
            problems.append(f"missing required field {key!r}")
    for key, spec in MANIFEST_SCHEMA["properties"].items():
        if key not in data:
            continue
        allowed = spec["type"]
        if isinstance(allowed, str):
            allowed = [allowed]
        if not any(_TYPE_CHECKS[t](data[key]) for t in allowed):
            problems.append(
                f"field {key!r} has type {type(data[key]).__name__}, "
                f"expected {' | '.join(allowed)}"
            )
    if problems:
        raise ValueError("invalid manifest: " + "; ".join(problems))
