"""Span-forest attribution: self time, critical path, collapsed stacks.

The span tree says what ran; a perf investigation needs three sharper
answers this module computes from the same forests:

* :func:`aggregate` — *where did the time go*: per-label call count,
  total (inclusive) time and **self time** (a span's duration minus its
  children's), summed across every lane.  Self time is what a flame
  graph colours and what an optimisation actually removes — a parent
  whose children account for all its duration has nothing to optimise
  locally.
* :func:`critical_path` — *what bounded the wall clock*: a backward
  sweep across all lanes (coordinator ``tid`` 0 plus every worker lane,
  already rebased onto one clock by the ``clock_handshake()`` offset
  when the lane was folded in) picking, at each instant, the deepest
  active span.  The result is a segment list whose durations sum to the
  covered wall time — the only spans whose speedup can shorten the run.
* :func:`collapsed_stacks` — the ``semicolon;joined;stack weight``
  format flamegraph.pl and speedscope ingest, weighted by self time in
  integer microseconds.

Lanes come from a live tracer (:func:`lanes_from_tracer`) or are
rebuilt from a ``--trace-out`` Chrome trace-event artefact
(:func:`lanes_from_chrome_trace`) — the latter re-nests flat ``"X"``
slices by containment per ``tid``, so ``repro perf flame`` works on any
previously written trace file without re-running the sweep.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .tracer import Span, Tracer

PathLike = Union[str, pathlib.Path]

#: lane name used for the coordinator's own roots
COORDINATOR_LANE = "coordinator"

Lanes = Dict[str, List[Span]]


def lanes_from_tracer(tracer: Tracer) -> Lanes:
    """The tracer's forests as ``{lane label: roots}``.

    The coordinator's synthetic per-shard summary spans (marked
    ``synthetic`` in their attrs) are dropped — their timings duplicate
    the real worker lanes, exactly as the Chrome exporter does.
    """
    lanes: Lanes = {
        COORDINATOR_LANE: [
            root for root in tracer.roots if not root.attrs.get("synthetic")
        ]
    }
    for label in sorted(tracer.remote_lanes):
        lanes[label] = list(tracer.remote_lanes[label])
    return lanes


def lanes_from_chrome_trace(payload: Mapping[str, Any]) -> Lanes:
    """Rebuild span forests from a Chrome trace-event artefact.

    Accepts the ``{"traceEvents": [...]}`` object form ``--trace-out``
    writes (or a bare event list).  Slices are re-nested by containment
    within each ``tid``: after sorting by (start, -duration), a slice's
    parent is the innermost still-open slice that contains it.  Lane
    names come from ``thread_name`` metadata events, falling back to
    ``tid-<n>``.  Counter and metadata events carry no duration and are
    ignored.
    """
    if isinstance(payload, Mapping):
        events = payload.get("traceEvents", [])
    else:
        events = payload
    if not isinstance(events, list):
        raise ValueError("chrome trace has no traceEvents list")
    names: Dict[int, str] = {}
    slices: Dict[int, List[Tuple[int, int, str, Dict[str, Any]]]] = {}
    for event in events:
        if not isinstance(event, Mapping):
            continue
        ph = event.get("ph")
        tid = int(event.get("tid", 0))
        if ph == "M":
            if event.get("name") == "thread_name":
                label = (event.get("args") or {}).get("name")
                if isinstance(label, str) and label:
                    names[tid] = label
            continue
        if ph != "X":
            continue
        try:
            start_ns = int(round(float(event.get("ts", 0.0)) * 1e3))
            dur_ns = int(round(float(event.get("dur", 0.0)) * 1e3))
        except (TypeError, ValueError):
            continue
        name = str(event.get("name", "?"))
        attrs = dict(event.get("args") or {})
        slices.setdefault(tid, []).append((start_ns, dur_ns, name, attrs))
    lanes: Lanes = {}
    for tid in sorted(slices):
        label = names.get(tid, f"tid-{tid}")
        roots: List[Span] = []
        stack: List[Span] = []
        # widest-first at equal starts, so parents precede their children
        for start_ns, dur_ns, name, attrs in sorted(
            slices[tid], key=lambda s: (s[0], -s[1])
        ):
            span = Span(name, attrs or None)
            span.start_ns = start_ns
            span.end_ns = start_ns + max(0, dur_ns)
            while stack and stack[-1].end_ns < span.end_ns:
                stack.pop()
            while stack and not (
                stack[-1].start_ns <= span.start_ns
                and span.end_ns <= stack[-1].end_ns
            ):
                stack.pop()
            if stack:
                span.parent = stack[-1]
                stack[-1].children.append(span)
            else:
                roots.append(span)
            stack.append(span)
        lanes[label] = roots
    return lanes


# ---- self-time aggregation -----------------------------------------------


@dataclass(frozen=True)
class ProfileRow:
    """One span label's aggregate across every lane."""

    label: str
    calls: int
    total_ns: int  # inclusive: sum of span durations
    self_ns: int  # exclusive: total minus children, clamped at zero

    @property
    def total_s(self) -> float:
        return self.total_ns / 1e9

    @property
    def self_s(self) -> float:
        return self.self_ns / 1e9


def _span_dur_ns(span: Span) -> int:
    end = span.end_ns if span.end_ns is not None else span.start_ns
    return max(0, end - span.start_ns)


def _accumulate(
    span: Span, acc: Dict[str, List[int]]
) -> None:
    dur = _span_dur_ns(span)
    child_ns = sum(_span_dur_ns(c) for c in span.children)
    row = acc.setdefault(span.name, [0, 0, 0])
    row[0] += 1
    row[1] += dur
    # overlapping/async children could exceed the parent; self time is
    # clamped so a table never shows negative attribution
    row[2] += max(0, dur - child_ns)
    for child in span.children:
        _accumulate(child, acc)


def aggregate(lanes: Lanes) -> List[ProfileRow]:
    """Per-label rows, sorted by self time (descending), then label."""
    acc: Dict[str, List[int]] = {}
    for roots in lanes.values():
        for root in roots:
            _accumulate(root, acc)
    rows = [
        ProfileRow(label=label, calls=c, total_ns=t, self_ns=s)
        for label, (c, t, s) in acc.items()
    ]
    rows.sort(key=lambda r: (-r.self_ns, r.label))
    return rows


def render_profile(rows: Sequence[ProfileRow], limit: int = 0) -> str:
    """The aligned self/total/calls table ``repro perf`` prints."""
    if not rows:
        return "(no spans recorded)"
    if limit > 0:
        rows = rows[:limit]
    width = max(len(r.label) for r in rows)
    lines = [
        f"{'label':<{width}}  {'self':>10}  {'total':>10}  {'calls':>7}"
    ]
    for r in rows:
        lines.append(
            f"{r.label:<{width}}  {r.self_s:>9.3f}s  {r.total_s:>9.3f}s  "
            f"{r.calls:>7d}"
        )
    return "\n".join(lines)


# ---- critical path -------------------------------------------------------


@dataclass(frozen=True)
class PathSegment:
    """One stretch of the critical path: a span bounding the wall clock."""

    lane: str
    label: str
    start_ns: int
    end_ns: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9


def _flatten(
    span: Span, lane: str, depth: int, out: List[Tuple[int, int, int, str, str]]
) -> None:
    out.append((span.start_ns, span.start_ns + _span_dur_ns(span), depth, lane, span.name))
    for child in span.children:
        _flatten(child, lane, depth + 1, out)


def critical_path(lanes: Lanes) -> List[PathSegment]:
    """The chain of spans that bounded the wall clock, earliest first.

    Boundary sweep: between every pair of adjacent span start/end
    timestamps (across all lanes, already on one rebased clock), the
    critical path is the *deepest, latest-starting* span active in that
    interval — the most specific description of what the run was doing.
    Adjacent intervals attributed to the same span merge into one
    segment; intervals where nothing ran (a scheduling gap between
    shards) are simply absent, so segment durations sum to exactly the
    busy wall time and every segment names work whose speedup would
    have shortened the run.
    """
    spans: List[Tuple[int, int, int, str, str]] = []
    for lane, roots in lanes.items():
        for root in roots:
            _flatten(root, lane, 0, spans)
    spans = [s for s in spans if s[1] > s[0]]
    if not spans:
        return []
    bounds = sorted({t for start, end, _, _, _ in spans for t in (start, end)})
    segments: List[PathSegment] = []
    for t0, t1 in zip(bounds, bounds[1:]):
        active = [s for s in spans if s[0] <= t0 and s[1] >= t1]
        if not active:
            continue
        _start, _end, _depth, lane, name = max(
            active, key=lambda s: (s[2], s[0])
        )
        last = segments[-1] if segments else None
        if (
            last is not None
            and last.end_ns == t0
            and last.lane == lane
            and last.label == name
        ):
            segments[-1] = PathSegment(
                lane=lane, label=name, start_ns=last.start_ns, end_ns=t1
            )
        else:
            segments.append(
                PathSegment(lane=lane, label=name, start_ns=t0, end_ns=t1)
            )
    return segments


def render_critical_path(segments: Sequence[PathSegment]) -> str:
    """The critical-path table: one row per segment, earliest first."""
    if not segments:
        return "(no critical path: no timed spans)"
    total_ns = sum(s.duration_ns for s in segments)
    width = max(len(f"{s.lane}:{s.label}") for s in segments)
    lines = [f"critical path ({total_ns / 1e9:.3f}s covered):"]
    for s in segments:
        share = 100.0 * s.duration_ns / total_ns if total_ns else 0.0
        lines.append(
            f"  {f'{s.lane}:{s.label}':<{width}}  {s.duration_s:>9.3f}s  "
            f"({share:5.1f}%)"
        )
    return "\n".join(lines)


# ---- collapsed stacks ----------------------------------------------------


def _collapse(
    span: Span, lane: str, frames: List[str], acc: Dict[str, int]
) -> None:
    frames.append(span.name.replace(";", ","))
    self_ns = _span_dur_ns(span) - sum(_span_dur_ns(c) for c in span.children)
    if self_ns > 0:
        stack = ";".join([lane] + frames)
        # weight is integer microseconds; genuinely positive self time
        # never rounds to a dropped zero-weight line
        acc[stack] = acc.get(stack, 0) + max(1, round(self_ns / 1e3))
    for child in span.children:
        _collapse(child, lane, frames, acc)
    frames.pop()


def collapsed_stacks(lanes: Lanes) -> Dict[str, int]:
    """``{"lane;parent;child": self-time µs}`` over every lane.

    The flamegraph.pl / speedscope input format: one line per unique
    stack, weight = self time in integer microseconds.  Lane labels are
    the root frame, so coordinator and worker time stay separable in
    the flame graph.  Semicolons inside span names are mapped to commas
    (the format reserves ``;`` as the frame separator).
    """
    acc: Dict[str, int] = {}
    for lane, roots in lanes.items():
        safe_lane = lane.replace(";", ",")
        for root in roots:
            _collapse(root, safe_lane, [], acc)
    return acc


def render_collapsed(stacks: Mapping[str, int]) -> str:
    """Collapsed stacks as the canonical ``stack weight`` text lines."""
    return "\n".join(
        f"{stack} {weight}" for stack, weight in sorted(stacks.items())
    )


def write_collapsed(path: PathLike, stacks: Mapping[str, int]) -> pathlib.Path:
    """Write collapsed stacks to ``path`` (one ``stack weight`` per line)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = render_collapsed(stacks)
    path.write_text(text + "\n" if text else "")
    return path
