"""The perf ledger: an append-only JSONL record of benchmark runs.

:mod:`repro.telemetry.ledger` made the *physics* longitudinal — every
experiment's headline scalars keyed by provenance.  This module does the
same for *performance*: every benchmark run appends one
:class:`PerfEntry` recording throughput (chips x years simulated per
second), wall time, peak RSS and the p50/p99 of every instrumented
histogram site, keyed ``git_sha:host-fingerprint:bench-id``.

The key's host component is :func:`~repro.telemetry.manifest.host_fingerprint`
— a digest of the platform triple, numpy version and CPU count, not the
hostname — so interchangeable CI runners contribute to one longitudinal
series per benchmark while a laptop and a CI box never get compared.

Two ingest paths cover both artefact shapes the repo produces:

* :func:`entry_from_bench_payload` — a ``benchmarks/results/*.json``
  payload (values / counters / memory / histograms sections), the shape
  :func:`benchmarks._common.emit` writes.  ``benchmarks/_common.py``
  calls this automatically when ``REPRO_PERF_LEDGER`` names a ledger
  file, so every bench run appends without per-bench changes.
* :func:`entry_from_metrics_payload` — a CLI ``--metrics-out``
  METRICS_FORMAT-3 payload: wall time from the root spans, peak RSS
  from ``peak_rss_kb``, and p50/p99 recomputed from the full histogram
  bucket states via :meth:`Histogram.from_dict`.

Like the run ledger, storage is JSONL on purpose: appends are
atomic-enough under CI concurrency, a truncated tail costs one entry,
and malformed lines are skipped unless ``strict`` — a perf gate must
never crash on the artefact it is guarding.
"""

from __future__ import annotations

import datetime
import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

from .histogram import Histogram
from .ledger import _clean_scalars
from .manifest import (
    execution_fields,
    git_sha,
    host_fingerprint,
    package_version,
)

PathLike = Union[str, pathlib.Path]

#: format version of one perf-ledger line, bumped on layout changes
PERF_LEDGER_FORMAT = 1

#: environment variable naming the ledger file the benchmark harness
#: appends to (opt-in: unset means no perf-ledger writes at all)
PERF_LEDGER_ENV = "REPRO_PERF_LEDGER"

#: the histogram quantiles a perf entry records per instrumented site
ENTRY_QUANTILES = (("p50", 0.50), ("p99", 0.99))


@dataclass(frozen=True)
class PerfEntry:
    """One benchmark run's performance record plus host identity."""

    bench: str
    values: Dict[str, float]  # throughput / wall / rss scalars
    quantiles: Dict[str, float] = field(default_factory=dict)  # site.p50/.p99
    git_sha: Optional[str] = None
    host: str = ""
    created_utc: str = ""
    execution: Dict[str, Any] = field(default_factory=dict)
    version: str = field(default_factory=package_version)
    format: int = PERF_LEDGER_FORMAT

    def __post_init__(self):
        if not self.bench:
            raise ValueError("bench id must be non-empty")
        object.__setattr__(self, "values", _clean_scalars(self.values))
        object.__setattr__(self, "quantiles", _clean_scalars(self.quantiles))

    @classmethod
    def collect(
        cls,
        bench: str,
        values: Mapping[str, Any],
        quantiles: Optional[Mapping[str, Any]] = None,
    ) -> "PerfEntry":
        """Build an entry stamped with the current host and checkout."""
        return cls(
            bench=bench,
            values=dict(values),
            quantiles=dict(quantiles or {}),
            git_sha=git_sha(),
            host=host_fingerprint(),
            created_utc=datetime.datetime.now(
                datetime.timezone.utc
            ).isoformat(),
            execution=execution_fields(),
        )

    def run_key(self) -> str:
        """The comparability key: ``<git sha>:<host fingerprint>:<bench>``.

        Entries sharing a run key are repeats of the same measurement;
        entries differing only in SHA are the longitudinal series the
        change-point detector judges.
        """
        sha = (self.git_sha or "nogit")[:12]
        return f"{sha}:{self.host or 'nohost'}:{self.bench}"

    def metrics(self) -> Dict[str, float]:
        """All gateable numbers: scalars plus flattened quantiles."""
        out = dict(self.values)
        out.update(self.quantiles)
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": self.format,
            "bench": self.bench,
            "values": dict(sorted(self.values.items())),
            "quantiles": dict(sorted(self.quantiles.items())),
            "git_sha": self.git_sha,
            "host": self.host,
            "created_utc": self.created_utc,
            "execution": self.execution,
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PerfEntry":
        """Rebuild (and validate) an entry from its JSON form."""
        if not isinstance(data, Mapping):
            raise ValueError("perf entry must be a JSON object")
        bench = data.get("bench")
        if not isinstance(bench, str) or not bench:
            raise ValueError("perf entry has no bench id")
        values = data.get("values")
        if not isinstance(values, Mapping):
            raise ValueError(f"perf entry {bench!r} has no values mapping")
        quantiles = data.get("quantiles")
        if quantiles is None:
            quantiles = {}
        if not isinstance(quantiles, Mapping):
            raise ValueError(f"perf entry {bench!r} has bad quantiles")
        sha = data.get("git_sha")
        if sha is not None and not isinstance(sha, str):
            raise ValueError(f"perf entry {bench!r} has bad git_sha")
        execution = data.get("execution") or {}
        if not isinstance(execution, Mapping):
            raise ValueError(f"perf entry {bench!r} has bad execution block")
        return cls(
            bench=bench,
            values=dict(values),
            quantiles=dict(quantiles),
            git_sha=sha,
            host=str(data.get("host", "")),
            created_utc=str(data.get("created_utc", "")),
            execution=dict(execution),
            version=str(data.get("version", "")),
            format=int(data.get("format", PERF_LEDGER_FORMAT)),
        )


class PerfLedger:
    """An append-only JSONL ledger file of :class:`PerfEntry` lines."""

    def __init__(self, path: PathLike):
        self.path = pathlib.Path(path)

    def append(self, entry: PerfEntry) -> None:
        """Append one entry (creating parent directories as needed)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as fh:
            fh.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")

    def record(
        self,
        bench: str,
        values: Mapping[str, Any],
        quantiles: Optional[Mapping[str, Any]] = None,
    ) -> PerfEntry:
        """Collect-and-append convenience; returns the appended entry."""
        entry = PerfEntry.collect(bench, values, quantiles)
        self.append(entry)
        return entry

    def entries(self, strict: bool = False) -> List[PerfEntry]:
        """All parseable entries in file order.

        Malformed lines (a truncated tail from a killed bench, stray
        garbage) are skipped unless ``strict``; an absent file is an
        empty ledger, not an error.
        """
        if not self.path.exists():
            return []
        out: List[PerfEntry] = []
        for lineno, line in enumerate(
            self.path.read_text().splitlines(), start=1
        ):
            line = line.strip()
            if not line:
                continue
            try:
                out.append(PerfEntry.from_dict(json.loads(line)))
            except (json.JSONDecodeError, ValueError) as exc:
                if strict:
                    raise ValueError(
                        f"{self.path}:{lineno}: bad perf-ledger line: {exc}"
                    ) from exc
        return out

    def __iter__(self) -> Iterator[PerfEntry]:
        return iter(self.entries())

    def __len__(self) -> int:
        return len(self.entries())


def _histogram_quantiles(summaries: Mapping[str, Any]) -> Dict[str, float]:
    """Flatten ``{site: {p50, p99, ...}}`` summaries to ``site.p50`` keys."""
    out: Dict[str, float] = {}
    for site, summary in summaries.items():
        if not isinstance(summary, Mapping):
            continue
        for label, _q in ENTRY_QUANTILES:
            value = summary.get(label)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                value = float(value)
                if math.isfinite(value):
                    out[f"{site}.{label}"] = value
    return out


def entry_from_bench_payload(
    name: str, payload: Mapping[str, Any]
) -> PerfEntry:
    """A :class:`PerfEntry` from one ``benchmarks/results/*.json`` payload.

    Takes every finite scalar from the ``values`` section, peak RSS from
    the ``memory`` section, throughput metrics from the ``roofline``
    section (``chips_years_per_s`` keys — the changepoint detector knows
    their bigger-is-better direction by name), p50/p99 per site from
    the ``histograms`` summaries, and — for serving artefacts (``repro
    loadgen --out``) — the flat RED/SLO scalars of the ``service``
    section under a ``service.`` prefix, so availability and endpoint
    tail latency join the longitudinal series ``repro perf history``
    renders.  Whatever subset the artefact emitted; absent sections
    cost nothing.
    """
    values: Dict[str, Any] = dict(payload.get("values") or {})
    roofline = payload.get("roofline")
    if isinstance(roofline, Mapping):
        for key, value in roofline.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                values.setdefault(key, float(value))
    service = payload.get("service")
    if isinstance(service, Mapping):
        metrics = service.get("metrics")
        if isinstance(metrics, Mapping):
            for key, value in metrics.items():
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    values.setdefault(f"service.{key}", float(value))
    memory = payload.get("memory")
    if isinstance(memory, Mapping):
        rss = memory.get("peak_rss_bytes")
        if isinstance(rss, (int, float)) and not isinstance(rss, bool):
            values.setdefault("peak_rss_bytes", float(rss))
    histograms = payload.get("histograms")
    quantiles = (
        _histogram_quantiles(histograms)
        if isinstance(histograms, Mapping)
        else {}
    )
    return PerfEntry.collect(name, values, quantiles)


def entry_from_metrics_payload(
    bench: str, payload: Mapping[str, Any]
) -> PerfEntry:
    """A :class:`PerfEntry` from a CLI ``--metrics-out`` payload.

    METRICS_FORMAT-3 payloads carry *full histogram bucket states*, so
    p50/p99 are recomputed here via :meth:`Histogram.from_dict` rather
    than trusted from any pre-flattened summary.  Wall time is the sum
    of root-span durations; peak RSS comes from ``peak_rss_kb``.
    """
    values: Dict[str, float] = {}
    spans = payload.get("spans")
    if isinstance(spans, list):
        wall_ns = 0.0
        for root in spans:
            if isinstance(root, Mapping):
                dur = root.get("duration_ns")
                if isinstance(dur, (int, float)) and not isinstance(dur, bool):
                    wall_ns += float(dur)
        if wall_ns > 0:
            values["wall_s"] = wall_ns / 1e9
    rss_kb = payload.get("peak_rss_kb")
    if isinstance(rss_kb, (int, float)) and not isinstance(rss_kb, bool):
        values["peak_rss_bytes"] = float(rss_kb) * 1024.0
    quantiles: Dict[str, float] = {}
    histograms = payload.get("histograms")
    if isinstance(histograms, Mapping):
        for site, state in histograms.items():
            if not isinstance(state, Mapping):
                continue
            try:
                hist = Histogram.from_dict(dict(state))
            except (ValueError, TypeError, KeyError):
                continue
            if hist.count == 0:
                continue
            for label, q in ENTRY_QUANTILES:
                quantiles[f"{site}.{label}"] = hist.quantile(q)
    return PerfEntry.collect(bench, values, quantiles)


def metric_series(
    entries: List[PerfEntry], host: Optional[str] = None
) -> Dict[str, List[float]]:
    """Chronological per-metric series, ``{"bench:metric": [...]}``.

    ``host`` filters to one fingerprint; by default series mix hosts
    only when the ledger does — callers gating CI should pass the
    current :func:`~repro.telemetry.manifest.host_fingerprint` so a
    laptop append can never fire a CI gate.
    """
    series: Dict[str, List[float]] = {}
    for entry in entries:
        if host is not None and entry.host != host:
            continue
        for key, value in entry.metrics().items():
            series.setdefault(f"{entry.bench}:{key}", []).append(value)
    return series
