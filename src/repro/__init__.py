"""repro — ARO-PUF: an aging-resistant ring-oscillator PUF, reproduced.

A simulation framework for ring-oscillator physically unclonable functions
(RO-PUFs) with first-class transistor aging, reproducing Rahman, Forte,
Fahrny & Tehranipoor, *"ARO-PUF: An aging-resistant ring oscillator PUF
design"*, DATE 2014.

Quick start::

    from repro import aro_design, conventional_design, make_study
    from repro.metrics import uniqueness, reliability

    study = make_study(aro_design(n_ros=256), n_chips=20, rng=42)
    fresh = study.responses()
    aged = study.responses(t_years=10.0)
    print(uniqueness(fresh).percent(), reliability(fresh, aged).percent())

Package map (bottom-up):

* :mod:`repro.transistor` — technology cards, alpha-power-law devices
* :mod:`repro.variation` — process-variation Monte-Carlo (the entropy)
* :mod:`repro.circuit` — RO netlists, event simulation, analytic timing
* :mod:`repro.aging` — NBTI / PBTI / HCI and mission profiles
* :mod:`repro.environment` — temperature / supply corners, readout noise
* :mod:`repro.core` — the conventional RO-PUF and the ARO-PUF
* :mod:`repro.metrics` — uniqueness, reliability, randomness batteries
* :mod:`repro.ecc` — GF(2^m), BCH, repetition codes, area models
* :mod:`repro.keygen` — fuzzy extractor and key-generator design space
* :mod:`repro.protocol` — CRP authentication and modeling-attack analysis
* :mod:`repro.analysis` — the paper's evaluation suite (E1 .. E11)
* :mod:`repro.telemetry` — tracing spans, kernel counters, run manifests
"""

from . import telemetry
from ._rng import DEFAULT_SEED, as_generator, spawn
from .aging import AgingSimulator, IdlePolicy, MissionProfile
from .analysis import ExperimentConfig
from .core import (
    BatchStudy,
    PopulationView,
    PufDesign,
    RoPufInstance,
    Study,
    aro_design,
    conventional_design,
    design_by_name,
    make_batch_study,
    make_study,
)
from .environment import OperatingConditions, celsius
from .keygen import FuzzyExtractor, best_design
from .transistor import TechnologyCard, get_technology, ptm45, ptm90
from .variation import Chip, ChipPopulation, LayoutStyle, VariationModel

__version__ = "1.0.0"

__all__ = [
    "AgingSimulator",
    "BatchStudy",
    "Chip",
    "ChipPopulation",
    "DEFAULT_SEED",
    "ExperimentConfig",
    "FuzzyExtractor",
    "IdlePolicy",
    "LayoutStyle",
    "MissionProfile",
    "OperatingConditions",
    "PopulationView",
    "PufDesign",
    "RoPufInstance",
    "Study",
    "TechnologyCard",
    "VariationModel",
    "__version__",
    "aro_design",
    "as_generator",
    "best_design",
    "celsius",
    "conventional_design",
    "design_by_name",
    "get_technology",
    "make_batch_study",
    "make_study",
    "ptm45",
    "ptm90",
    "spawn",
    "telemetry",
]
