"""Out-of-core population evaluation over a :class:`PopulationStore`.

:class:`StoreStudy` is the memory-bounded counterpart of
:class:`~repro.core.population.BatchStudy`: the same design / mission
bundle and the same batched API (``frequencies`` / ``responses`` /
``mechanism_frequencies`` / ``margin_histogram``), but the population
lives in the store's mmap segments instead of RAM tensors.  Evaluation
walks the store block by block — materialising each block on first
touch, streaming it through the *shared* per-block kernel
(:func:`~repro.core.population.frequency_block_kernel`), then dropping
its pages from the resident set — so peak RSS is a handful of
block-sized work buffers regardless of population size.

Bit-identity with the in-RAM path holds by construction:

* the store fabricates from the same spawn keys with the same draw
  order, so the column bytes equal the in-RAM tensors;
* the kernel is the same function :class:`BatchStudy` calls, block
  boundaries only change *where* the identical elementwise chain is
  split;
* the aging subtraction uses the same factored grouping as
  :meth:`~repro.aging.simulator.PopulationAging.subtract_delta_into`
  (coefficient x duty-power, then the scalar time power), with the
  saturation clip applied unconditionally — a no-op below the cap, so
  skipping vs applying it can never change a byte.

Corner results (the frequency memo) optionally **spill to disk**
through the content-addressed :class:`repro.parallel.cache.ResultCache`
array API instead of living in RAM; evicted corners delete their
segment, bounding disk by the memo depth rather than the year grid.
"""

from __future__ import annotations

import pathlib
import tempfile
import time
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from .. import telemetry
from .._rng import RngLike
from ..aging.schedule import IdlePolicy, MissionProfile
from ..aging.simulator import AgingSimulator
from ..core.base import PufDesign
from ..core.population import (
    BatchStudy,
    _stage_weights,
    batch_frequencies_from_overdrive,
    frequency_block_kernel,
)
from ..core.readout import compare_pairs
from ..kernel.fused import (
    OVERDRIVE_ERROR,
    MarginHistogramSink,
    ResponseBlockSink,
)
from ..environment.conditions import OperatingConditions
from ..forensics import hook as _forensics_hook
from ..parallel.cache import ResultCache, cache_key
from ..transistor.technology import T_REF_K
from ..variation.chip import NMOS, PMOS
from .store import (
    COLUMNS,
    PopulationStore,
    flush_rows,
    release_rows,
    remove_store,
)


class StoreStudy:
    """A population evaluated block-streamed from mmap segments.

    ``row_start`` / ``row_stop`` restrict the study to a chip-row window
    of the store — the parallel engine's workers each take one window
    over the *shared* segments, so a shard never re-fabricates or
    pickles a tensor.  All result arrays are indexed relative to the
    window (row 0 is chip ``row_start``).
    """

    #: corners kept in the in-RAM frequency memo (mirrors BatchStudy)
    MEMO_SIZE = 32
    #: corners kept on disk when spilling — each costs a population-sized
    #: segment, so the memo is shallow and eviction deletes the bytes
    SPILL_MEMO_SIZE = 4
    #: resident-set budget (bytes) above which the study streams: column
    #: and result pages are flushed and madvise(DONTNEED)-released after
    #: every block.  Windows that fit the budget skip the release (the
    #: refaults would cost more than the pages) and run at in-RAM speed.
    RESIDENT_BUDGET_BYTES = 256 * 2**20

    def __init__(
        self,
        design: PufDesign,
        store: PopulationStore,
        *,
        mission: MissionProfile,
        idle_policy: Optional[IdlePolicy] = None,
        row_start: int = 0,
        row_stop: Optional[int] = None,
        spill: Optional[ResultCache] = None,
        own_root: Optional[pathlib.Path] = None,
    ):
        if design.n_ros != store.design.n_ros or design.n_stages != store.design.n_stages:
            raise ValueError(
                f"store geometry ({store.design.n_ros} ROs x "
                f"{store.design.n_stages} stages) does not match the design "
                f"({design.n_ros} x {design.n_stages})"
            )
        row_stop = store.n_chips if row_stop is None else int(row_stop)
        if not 0 <= row_start < row_stop <= store.n_chips:
            raise ValueError(
                f"row window [{row_start}, {row_stop}) outside the store's "
                f"0..{store.n_chips}"
            )
        self.design = design
        self.store = store
        self.mission = mission
        self._rows = (int(row_start), row_stop)
        self._spill = spill
        self._own_root = own_root
        # (t, cond[, mechanism]) -> (read-only array, spill key or None)
        self._freq_memo: "OrderedDict[tuple, Tuple[np.ndarray, Optional[str]]]" = (
            OrderedDict()
        )
        self._od_buf: Optional[np.ndarray] = None
        self._scratch_buf: Optional[np.ndarray] = None
        self._closed = False

        # Page-release policy.  madvise(DONTNEED) after every block is
        # what bounds RSS at million-chip scale, but every released page
        # is a refault on the next corner — pure overhead when the whole
        # row window would have fit in RAM anyway.  Stream (flush +
        # release aggressively) only when this window's worst-case
        # resident bytes (all columns plus one frequency corner) exceed
        # the budget; below it, the page cache is left alone and the
        # sweep runs at in-RAM speed.  Numerics are unaffected either
        # way — madvise on a MAP_SHARED file mapping never loses data.
        # At most 4 columns are resident in any one pass (vth, tc_scale,
        # bti_dir, hci_dir — the raw *_coeff pair only backs the
        # mechanism path, which reads one of them at a time).
        per_chip = design.n_ros * design.n_stages * 2 * 8
        window_bytes = self.n_chips * (per_chip * 4 + design.n_ros * 8)
        self._streaming = window_bytes > self.RESIDENT_BUDGET_BYTES

        # Time-independent aging stress tensors for the mechanism path,
        # laid out exactly as PopulationAging.__init__ does (same
        # expressions on the same (1, 1, n_stages, 2) arrays) so the
        # delta_components grouping matches the in-RAM path byte for
        # byte.  The golden-frequency path needs no factors here: the
        # store's bti_dir/hci_dir columns carry them pre-folded.
        simulator = AgingSimulator(
            design.tech, design.cell, mission, idle_policy=idle_policy
        )
        stress = simulator.stress
        n_stages = stress.n_stages
        duty = np.empty((1, 1, n_stages, 2))
        duty[0, 0, :, PMOS] = stress.nbti_duty[:, PMOS]
        duty[0, 0, :, NMOS] = stress.pbti_duty[:, NMOS]
        tpy = np.empty((1, 1, n_stages, 2))
        tpy[0, 0, :, PMOS] = stress.transitions_per_year[:, PMOS]
        tpy[0, 0, :, NMOS] = stress.transitions_per_year[:, NMOS]
        self._duty = duty
        self._tpy = tpy

    # ---- geometry ----------------------------------------------------

    @property
    def n_chips(self) -> int:
        return self._rows[1] - self._rows[0]

    @property
    def n_bits(self) -> int:
        return self.design.n_bits

    @property
    def memo_size(self) -> int:
        return self.SPILL_MEMO_SIZE if self._spilling else self.MEMO_SIZE

    @property
    def _spilling(self) -> bool:
        # Corners go to disk only when the window actually streams: a
        # window under the resident budget keeps RAM-sized corners in a
        # deep in-RAM memo instead of paying file create/commit/reopen
        # per corner.
        return self._spill is not None and self._streaming

    # ---- memoisation / spill -----------------------------------------

    def _spill_key(self, key: tuple) -> str:
        t, cond = key[0], key[1]
        config = {
            "store": self.store.content_key,
            "rows": list(self._rows),
            "t_years": t,
            "temperature_k": cond.temperature_k,
            "vdd": cond.vdd,
            "mechanism": key[2] if len(key) > 2 else None,
            "pairing": repr(self.design.pairing),
            "readout": repr(self.design.readout),
        }
        return cache_key("store.frequencies", config)

    def _lookup(self, key: tuple) -> Optional[np.ndarray]:
        entry = self._freq_memo.get(key)
        if entry is not None:
            self._freq_memo.move_to_end(key)
            telemetry.count("store.corner_memo_hits")
            return entry[0]
        if self._spill is not None:
            # a corner spilled by an earlier run against a persistent
            # store directory is as good as a memo hit
            spill_key = self._spill_key(key)
            arr = self._spill.open_array(spill_key)
            if arr is not None:
                telemetry.count("store.corner_memo_hits")
                self._memoise(key, arr, spill_key)
                return arr
        return None

    def _memoise(
        self, key: tuple, freqs: np.ndarray, spill_key: Optional[str]
    ) -> np.ndarray:
        if not isinstance(freqs, np.memmap):
            freqs.flags.writeable = False
        self._freq_memo[key] = (freqs, spill_key)
        while len(self._freq_memo) > self.memo_size:
            _, (old, old_key) = self._freq_memo.popitem(last=False)
            del old
            if old_key is not None and self._spill is not None:
                self._spill.discard_array(old_key)
                telemetry.count("store.spill_evictions")
        return freqs

    def _alloc_result(self, key: tuple) -> Tuple[np.ndarray, Optional[str]]:
        shape = (self.n_chips, self.design.n_ros)
        if not self._spilling:
            return np.empty(shape), None
        spill_key = self._spill_key(key)
        telemetry.count("store.spill_writes")
        return self._spill.create_array(spill_key, shape), spill_key

    def _seal_result(
        self, out: np.ndarray, spill_key: Optional[str], meta: Dict[str, object]
    ) -> np.ndarray:
        """Publish a computed corner: commit + reopen read-only if spilled."""
        if spill_key is None:
            return out
        out.flush()
        del out
        assert self._spill is not None
        self._spill.commit_array(spill_key, meta=meta)
        sealed = self._spill.open_array(spill_key)
        if sealed is None:  # pragma: no cover - disk-level failure
            raise RuntimeError("spilled corner vanished between commit and reopen")
        return sealed

    def _release_result(self, freqs: np.ndarray) -> None:
        """Drop a spilled corner's pages from RSS after a full pass."""
        if self._streaming and isinstance(freqs, np.memmap):
            release_rows(freqs, 0, freqs.shape[0])

    def drop_cached_corners(self) -> None:
        """Forget every memoised corner, discarding spilled files too.

        Benchmarks call this between rounds so every sweep pays the full
        streaming cost (a cleared memo alone would satisfy the next
        lookup from the spill directory).  A persistent store loses only
        its cached corners — never its fabricated columns.
        """
        while self._freq_memo:
            _, (arr, spill_key) = self._freq_memo.popitem(last=False)
            del arr
            if spill_key is not None and self._spill is not None:
                self._spill.discard_array(spill_key)

    # ---- work buffers ------------------------------------------------

    def _kernel_block(self) -> int:
        per_chip = self.design.n_ros * self.design.n_stages * 2
        block = max(1, BatchStudy._BLOCK_ELEMS // per_chip)
        return max(1, min(self.n_chips, self.store.block_size, block))

    def _work_buffers(self) -> tuple:
        if self._od_buf is None:
            shape = (
                self._kernel_block(),
                self.design.n_ros,
                self.design.n_stages,
                2,
            )
            self._od_buf = np.empty(shape)
            self._scratch_buf = np.empty(shape)
        return self._od_buf, self._scratch_buf

    def _store_blocks(self):
        """Store-block-aligned ``[lo, hi)`` row ranges covering the window."""
        r0, r1 = self._rows
        bs = self.store.block_size
        lo = r0
        while lo < r1:
            hi = min(r1, (lo // bs + 1) * bs)
            yield lo, hi
            lo = hi

    # ---- batched evaluation ------------------------------------------

    def frequencies(
        self,
        t_years: float = 0.0,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """True mean frequency of every oscillator of every chip (hertz).

        Shape ``(n_chips, n_ros)``, bit-identical to
        :meth:`BatchStudy.frequencies` over the same rows.  Spill mode
        returns a read-only memmap of the on-disk corner segment.
        """
        cond = conditions or OperatingConditions.nominal()
        t = float(t_years)
        key = (t, cond)
        cached = self._lookup(key)
        if cached is not None:
            return cached
        return self._corner(key, t, cond)

    def _corner(
        self, key: tuple, t: float, cond: OperatingConditions, sinks: tuple = ()
    ) -> np.ndarray:
        """Compute, seal and memoise one frequency corner (memo miss path).

        ``sinks`` ride along into the streaming compute so derived
        quantities (bits, histogram counts) are taken from each block
        while its pages are still resident, instead of re-faulting the
        whole corner segment in a second pass.
        """
        telemetry.count("store.corner_memo_misses")
        if sinks:
            telemetry.count("store.fused_passes")
        sp = telemetry.start_span(
            "store.frequencies",
            t_years=t,
            temperature_k=cond.temperature_k,
            n_chips=self.n_chips,
            n_ros=self.design.n_ros,
        )
        out, spill_key = self._alloc_result(key)
        try:
            self._compute_frequencies(t, cond, out, sinks)
        except Exception:
            if spill_key is not None and self._spill is not None:
                del out
                self._spill.discard_array(spill_key)
            telemetry.end_span(sp)
            raise
        freqs = self._seal_result(
            out, spill_key, {"t_years": t, "temperature_k": cond.temperature_k}
        )
        telemetry.end_span(sp)
        tr = telemetry.active()
        if tr is not None and sp is not None:
            tr.observe("store.corner_s", sp.duration_ns / 1e9)
        return self._memoise(key, freqs, spill_key)

    def _compute_frequencies(
        self,
        t: float,
        cond: OperatingConditions,
        out: np.ndarray,
        sinks: tuple = (),
    ) -> None:
        tech = self.design.tech
        vdd = cond.effective_vdd(tech)
        delta_temp = cond.temperature_k - T_REF_K
        weights = _stage_weights(
            tech,
            self.design.n_stages,
            vdd=vdd,
            temperature_k=cond.temperature_k,
            stage0_penalty=self.design.cell.stage0_penalty,
            c_load_factor=self.design.cell.c_load_factor,
        )
        w_flat = np.ascontiguousarray(weights.reshape(-1))
        neg_alpha = -tech.alpha

        cols = ["vth"]
        if delta_temp != 0.0:
            cols.append("tc_scale")
        if t > 0.0:
            cols += ["bti_dir", "hci_dir"]
        vth_col = self.store.column("vth")
        tc_col = self.store.column("tc_scale") if delta_temp != 0.0 else None
        bti_col = self.store.column("bti_dir") if t > 0.0 else None
        hci_col = self.store.column("hci_dir") if t > 0.0 else None
        bti_t = t ** tech.nbti.n
        hci_t = t ** tech.hci.m
        cap_bti = tech.nbti.max_shift
        cap_hci = tech.hci.max_shift

        od_buf, scratch_buf = self._work_buffers()
        kb = od_buf.shape[0]
        r0, r1 = self._rows
        n_blocks = -(-self.n_chips // kb)
        telemetry.count("store.kernel_blocks", n_blocks)
        # one tracer lookup per corner; block clock reads only when tracing
        tr = telemetry.active()
        with np.errstate(invalid="ignore", divide="ignore"):
            for blo, bhi in self._store_blocks():
                self.store.ensure_rows(blo, bhi, cols)
                for lo in range(blo, bhi, kb):
                    hi = min(lo + kb, bhi)
                    m = hi - lo
                    if tr is not None:
                        _blk0 = time.perf_counter_ns()
                    if t > 0.0:
                        # same factored grouping as subtract_delta_into:
                        # (coeff * duty**n) * t**n, clip, subtract — the
                        # duty**n fold is baked into the *_dir columns at
                        # fabrication, and the clip applied
                        # unconditionally (idempotent below the cap, so
                        # bitwise equal to the skip branch)
                        def subtract(od, scratch, lo=lo, hi=hi):
                            np.multiply(bti_col[lo:hi], bti_t, out=scratch)
                            np.minimum(scratch, cap_bti, out=scratch)
                            od -= scratch
                            np.multiply(hci_col[lo:hi], hci_t, out=scratch)
                            np.minimum(scratch, cap_hci, out=scratch)
                            od -= scratch
                    else:
                        subtract = None
                    out_rows = out[lo - r0 : hi - r0]
                    frequency_block_kernel(
                        od_buf[:m],
                        scratch_buf[:m],
                        vth_col[lo:hi],
                        vdd=vdd,
                        neg_alpha=neg_alpha,
                        w_flat=w_flat,
                        period_out=out_rows,
                        tc_rows=tc_col[lo:hi] if tc_col is not None else None,
                        tc_coeff=tech.vth_tc * delta_temp,
                        subtract_aging=subtract,
                    )
                    if not np.isfinite(out_rows).all():
                        raise ValueError(OVERDRIVE_ERROR)
                    np.reciprocal(out_rows, out=out_rows)
                    if tr is not None:
                        tr.observe(
                            "store.block_s",
                            (time.perf_counter_ns() - _blk0) / 1e9,
                        )
                # sinks consume the store block's fresh frequency rows in
                # one call — coarse enough to amortise their per-call
                # dispatch, and necessarily before the streaming release
                # below evicts the pages they read
                for sink in sinks:
                    sink(blo - r0, bhi - r0, out[blo - r0 : bhi - r0])
                # pages of this store block (inputs and, when spilling,
                # the freshly written output rows) leave the resident set
                if self._streaming:
                    self.store.release(cols, blo, bhi)
                    if isinstance(out, np.memmap):
                        flush_rows(out, blo - r0, bhi - r0)
                        release_rows(out, blo - r0, bhi - r0)
                telemetry.progress("store.frequencies", bhi - r0, self.n_chips)

    def responses(
        self,
        challenge: Optional[int] = None,
        t_years: float = 0.0,
        *,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """Golden responses of every chip at ``t_years``.

        Shape ``(n_chips, n_bits)`` uint8, bit-identical to the in-RAM
        path — comparisons are elementwise, so chunking over a memmap
        changes nothing.

        On a corner-memo miss the bits are emitted by the streaming
        compute itself (fused: no second pass re-faulting the corner
        segment); on a hit they are chunk-compared from the cached
        corner.  Identical comparison either way.
        """
        telemetry.count("store.response_passes")
        cond = conditions or OperatingConditions.nominal()
        t = float(t_years)
        pairs = self.design.pairing.pairs(self.design.n_ros, challenge)
        key = (t, cond)
        freqs = self._lookup(key)
        if freqs is not None:
            n = self.n_chips
            bits = np.empty((n, pairs.shape[0]), dtype=np.uint8)
            step = self._kernel_block()
            for lo in range(0, n, step):
                hi = min(lo + step, n)
                bits[lo:hi] = compare_pairs(
                    freqs[lo:hi], pairs, self.design.tech, self.design.readout
                )
        else:
            bits = np.empty(
                (self.n_chips, pairs.shape[0]), dtype=np.uint8
            )
            sink = ResponseBlockSink(
                pairs, self.design.tech, self.design.readout, bits
            )
            freqs = self._corner(key, t, cond, sinks=(sink,))
        # forensics hook, mirroring ParallelBatchStudy: only touch the
        # full frequency array when a collector is actually installed
        if _forensics_hook.active_collector() is not None:
            _forensics_hook.record_response_margins(freqs, pairs, t, cond)
        self._release_result(freqs)
        return bits

    def mechanism_frequencies(
        self,
        t_years: float,
        mechanism: str,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """Counterfactual frequencies with one aging mechanism active.

        Matches :meth:`BatchStudy.mechanism_frequencies` bit for bit:
        the exact :meth:`~repro.aging.simulator.PopulationAging.delta_components`
        grouping (``coeff * (duty * t)**n``), the unconditional-but-
        idempotent clip, and the same
        :func:`batch_frequencies_from_overdrive` tail per block.
        """
        if mechanism not in ("bti", "hci"):
            raise ValueError(f"mechanism must be 'bti' or 'hci', got {mechanism!r}")
        cond = conditions or OperatingConditions.nominal()
        t = float(t_years)
        if t < 0:
            raise ValueError("t_years must be non-negative")
        key = (t, cond, mechanism)
        cached = self._lookup(key)
        if cached is not None:
            return cached
        telemetry.count("store.mechanism_passes")
        tech = self.design.tech
        vdd = cond.effective_vdd(tech)
        delta_temp = cond.temperature_k - T_REF_K
        weights = _stage_weights(
            tech,
            self.design.n_stages,
            vdd=vdd,
            temperature_k=cond.temperature_k,
            stage0_penalty=self.design.cell.stage0_penalty,
            c_load_factor=self.design.cell.c_load_factor,
        )
        cols = ["vth"]
        if delta_temp != 0.0:
            cols.append("tc_scale")
        coeff_name = "bti_coeff" if mechanism == "bti" else "hci_coeff"
        if t > 0.0:
            cols.append(coeff_name)
        vth_col = self.store.column("vth")
        tc_col = self.store.column("tc_scale") if delta_temp != 0.0 else None
        coeff_col = self.store.column(coeff_name) if t > 0.0 else None
        if mechanism == "bti":
            pow_mech = np.power(self._duty * t, tech.nbti.n)
            cap = tech.nbti.max_shift
        else:
            pow_mech = np.power(
                (self._tpy * t) / tech.hci.ref_transitions, tech.hci.m
            )
            cap = tech.hci.max_shift

        out, spill_key = self._alloc_result(key)
        r0, r1 = self._rows
        od_buf, scratch_buf = self._work_buffers()
        kb = od_buf.shape[0]
        with telemetry.span(
            "store.mechanism_frequencies",
            t_years=t,
            mechanism=mechanism,
            n_chips=self.n_chips,
        ):
            for blo, bhi in self._store_blocks():
                self.store.ensure_rows(blo, bhi, cols)
                for lo in range(blo, bhi, kb):
                    hi = min(lo + kb, bhi)
                    m = hi - lo
                    od = od_buf[:m]
                    scratch = scratch_buf[:m]
                    np.subtract(vdd, vth_col[lo:hi], out=od)
                    if tc_col is not None:
                        np.multiply(
                            tc_col[lo:hi], tech.vth_tc * delta_temp, out=scratch
                        )
                        od -= scratch
                    if coeff_col is not None:
                        np.multiply(coeff_col[lo:hi], pow_mech, out=scratch)
                        np.minimum(scratch, cap, out=scratch)
                        od -= scratch
                    out[lo - r0 : hi - r0] = batch_frequencies_from_overdrive(
                        od, tech, weights
                    )
                if self._streaming:
                    self.store.release(cols, blo, bhi)
                    if isinstance(out, np.memmap):
                        flush_rows(out, blo - r0, bhi - r0)
                        release_rows(out, blo - r0, bhi - r0)
        freqs = self._seal_result(
            out,
            spill_key,
            {
                "t_years": t,
                "temperature_k": cond.temperature_k,
                "mechanism": mechanism,
            },
        )
        return self._memoise(key, freqs, spill_key)

    def margin_histogram(
        self,
        edges: np.ndarray,
        challenge: Optional[int] = None,
        t_years: float = 0.0,
        *,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """Histogram counts of the signed response margins (int64).

        Accumulated block by block; binning is per-element and counts
        merge by addition, so the result equals the one-shot in-RAM
        histogram exactly.  On a corner-memo miss the counts come out of
        the streaming compute itself via a
        :class:`~repro.kernel.fused.MarginHistogramSink`; on a hit the
        cached corner is chunk-binned.
        """
        from ..metrics.margins import margin_histogram, relative_margins

        cond = conditions or OperatingConditions.nominal()
        t = float(t_years)
        pairs = self.design.pairing.pairs(self.design.n_ros, challenge)
        key = (t, cond)
        freqs = self._lookup(key)
        if freqs is not None:
            counts = np.zeros(len(edges) - 1, dtype=np.int64)
            n = self.n_chips
            step = self._kernel_block()
            for lo in range(0, n, step):
                hi = min(lo + step, n)
                counts += margin_histogram(
                    relative_margins(freqs[lo:hi], pairs), edges
                )
        else:
            sink = MarginHistogramSink(pairs, edges)
            freqs = self._corner(key, t, cond, sinks=(sink,))
            counts = sink.counts
        self._release_result(freqs)
        return counts

    # ---- lifecycle ---------------------------------------------------

    def close(self) -> None:
        """Release mappings; delete the store root if this study owns it."""
        if self._closed:
            return
        self._closed = True
        self._freq_memo.clear()
        self._od_buf = self._scratch_buf = None
        self.store.close()
        if self._own_root is not None:
            remove_store(self._own_root)

    def __enter__(self) -> "StoreStudy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


def make_store_study(
    design: PufDesign,
    n_chips: int,
    *,
    mission: Optional[MissionProfile] = None,
    idle_policy: Optional[IdlePolicy] = None,
    rng: RngLike = None,
    block_size: Optional[int] = None,
    store_dir: Optional[str] = None,
) -> StoreStudy:
    """Out-of-core drop-in for :func:`~repro.core.population.make_batch_study`.

    Consumes the RNG identically (one ``spawn(rng, 2)`` then one
    full-population key draw per child), so the same seed yields the
    same silicon: responses are bit-identical to the in-RAM path.

    Without ``store_dir`` the segments live in a temp directory owned by
    the study and removed on :meth:`StoreStudy.close`; with it they
    persist (and a store already there is adopted when the content key
    matches), which makes repeated million-chip sweeps incremental.
    """
    mission = mission or MissionProfile()
    own_root: Optional[pathlib.Path] = None
    if store_dir is None:
        root = pathlib.Path(tempfile.mkdtemp(prefix="repro-store-"))
        own_root = root
    else:
        root = pathlib.Path(store_dir)
    with telemetry.span(
        "fabricate.store_study", n_chips=n_chips, n_ros=design.n_ros
    ):
        store = PopulationStore.create(
            root,
            design,
            n_chips,
            mission=mission,
            idle_policy=idle_policy,
            rng=rng,
            block_size=block_size,
        )
    spill = ResultCache(root / "spill")
    return StoreStudy(
        design,
        store,
        mission=mission,
        idle_policy=idle_policy,
        spill=spill,
        own_root=own_root,
    )
