"""Memory-mapped columnar population store (out-of-core fabrication).

A :class:`PopulationStore` is the on-disk form of what
:class:`~repro.core.population.PopulationView` plus
:class:`~repro.aging.simulator.PopulationAging` hold in RAM: one
``.npy``-backed mmap segment per population column —

* ``vth`` — threshold tensor, ``(n_chips, n_ros, n_stages, 2)`` volts;
* ``tc_scale`` — temperature-coefficient mismatch, same shape;
* ``bti_coeff`` / ``hci_coeff`` — the *folded* aging coefficient
  tensors of :class:`~repro.aging.simulator.PopulationAging` (prefactor
  x Arrhenius x polarity factor), same shape;
* ``bti_dir`` / ``hci_dir`` — the coefficients further folded with the
  mission's duty/transition powers (``PopulationAging``'s ``_bti_dir`` /
  ``_hci_dir``), the form the hot frequency path multiplies by a scalar
  of ``t`` — stored so a sweep pays the folding once at fabrication,
  exactly like the in-RAM engine, instead of once per corner

— fabricated lazily, block-by-block, from the
:func:`repro._rng.spawn_keys` discipline.  The full population's
fabrication and aging key lists are derived **once** at creation and
persisted next to the segments, so materialising chips ``[lo, hi)``
later (in any process, in any order) replays exactly the child streams
a serial :func:`~repro.core.population.make_batch_study` would have
consumed for those rows: every materialised byte is independent of
which blocks were touched before it.

Column segments are created *sparse* at final size and a per-column
block bitmap (``<col>.flags.npy``) records which blocks hold real
bytes; the flag for a block is raised only after its rows are written
and flushed, so readers in other processes never observe half-written
blocks as materialised (re-fabricating a block concurrently writes the
same bytes — the race is benign by determinism).  Columns that an
evaluation never reads (``tc_scale`` at nominal temperature, the aging
coefficients at ``t = 0``) are never fabricated and never cost disk.

The store deliberately knows nothing about frequencies or responses —
that is :class:`~repro.store.study.StoreStudy` — and holds no RNG
state: identity lives in ``meta.json`` (a content key digesting the
design/mission fingerprint and the key lists), which is what lets the
parallel engine's workers attach to the coordinator's segments by path
instead of receiving tensors.
"""

from __future__ import annotations

import hashlib
import json
import mmap as _mmaplib
import os
import pathlib
import shutil
import time
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from .. import telemetry
from .._rng import RngLike, as_generator, spawn, spawn_keys
from ..telemetry import sampler as _sampler_mod
from ..aging import hci, nbti
from ..aging.schedule import IdlePolicy, MissionProfile
from ..aging.simulator import AgingSimulator
from ..core.base import PufDesign
from ..variation.chip import NMOS, PMOS

PathLike = Union[str, pathlib.Path]

#: layout version of the on-disk store, bumped on format changes
STORE_FORMAT = 1

#: columns fabricated from the *fabrication* key of a chip
FAB_COLUMNS = ("vth", "tc_scale")
#: columns fabricated from the *aging* key of a chip.  The ``_coeff``
#: pair keeps the exact grouping the mechanism-attribution path needs;
#: the ``_dir`` pair is the same data pre-multiplied by the mission's
#: duty/transition powers for the hot frequency path.  An evaluation
#: materialises only the pair it reads, so a plain aging sweep never
#: pays disk for the raw coefficients (nor vice versa).
AGING_COLUMNS = ("bti_coeff", "hci_coeff", "bti_dir", "hci_dir")
#: every column, in canonical order
COLUMNS = FAB_COLUMNS + AGING_COLUMNS

#: default block granularity in per-column tensor elements (~16 MiB of
#: float64 per column block at the paper's 256-RO geometry): big enough
#: to amortise the per-block Python overhead, small enough that a
#: handful of in-flight blocks stays far below the RSS budget
DEFAULT_BLOCK_ELEMS = 2_000_000

_GRAN = _mmaplib.ALLOCATIONGRANULARITY


def default_block_size(n_ros: int, n_stages: int) -> int:
    """Chips per block for the default ~16 MiB column-block budget."""
    per_chip = int(n_ros) * int(n_stages) * 2
    return max(1, DEFAULT_BLOCK_ELEMS // per_chip)


def _design_fingerprint(
    design: PufDesign,
    mission: MissionProfile,
    idle_policy: Optional[IdlePolicy],
    n_chips: int,
) -> Dict[str, object]:
    """The JSON-stable identity of what the store's bytes depend on.

    Everything that changes a stored value must appear here; knobs that
    only change how fast the values are produced (block size, jobs) must
    not.  ``CellDescriptor`` is fingerprinted field-by-field because its
    ``_builder`` callable repr carries a memory address; pairing and
    readout are *excluded* — they shape responses, not the stored
    process/aging columns.
    """
    cell = design.cell
    return {
        "format": STORE_FORMAT,
        "design": {
            "name": design.name,
            "n_ros": design.n_ros,
            "n_stages": design.n_stages,
            "tech": repr(design.tech),
            "layout": str(design.layout),
            "cell": {
                "kind": str(cell.kind),
                "n_stages": cell.n_stages,
                "stage0_penalty": cell.stage0_penalty,
                "c_load_factor": cell.c_load_factor,
                "idle_inputs": sorted(cell.idle_inputs.items()),
                "active_inputs": sorted(cell.active_inputs.items()),
            },
        },
        "mission": repr(mission),
        "idle_policy": str(idle_policy),
        "n_chips": int(n_chips),
    }


def _content_key(fingerprint: Dict[str, object], keys_digest: str) -> str:
    blob = json.dumps(
        {"fingerprint": fingerprint, "keys_sha256": keys_digest},
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def _keys_digest(fab_keys: np.ndarray, aging_keys: np.ndarray) -> str:
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(fab_keys).tobytes())
    digest.update(np.ascontiguousarray(aging_keys).tobytes())
    return digest.hexdigest()


def _row_byte_span(mm: np.memmap, lo: int, hi: int) -> Tuple[int, int]:
    """Page-aligned ``(start, length)`` of rows ``[lo, hi)`` inside the
    underlying ``mmap`` buffer (which starts at the granularity-aligned
    file offset below the array data)."""
    row_nbytes = mm.strides[0]
    data0 = mm.offset % _GRAN
    start = data0 + lo * row_nbytes
    stop = data0 + hi * row_nbytes
    aligned_start = (start // _GRAN) * _GRAN
    aligned_stop = min(-(-stop // _GRAN) * _GRAN, len(mm._mmap))
    return aligned_start, max(0, aligned_stop - aligned_start)


def flush_rows(mm: np.memmap, lo: int, hi: int) -> None:
    """msync rows ``[lo, hi)`` of a writable memmap to the file."""
    start, length = _row_byte_span(mm, lo, hi)
    if length:
        mm._mmap.flush(start, length)


def release_rows(mm: np.memmap, lo: int, hi: int) -> None:
    """Drop rows ``[lo, hi)`` from the process's resident set.

    ``MADV_DONTNEED`` on a shared file mapping unmaps the PTEs without
    touching the page cache, so the data stays warm for re-reads while
    the pages stop counting against this process's RSS — the mechanism
    that keeps a million-chip sweep under the memory gate.  No-op where
    the platform lacks ``madvise`` (the sweep still works, just with the
    OS deciding eviction).
    """
    if not hasattr(_mmaplib, "MADV_DONTNEED"):  # pragma: no cover
        return
    start, length = _row_byte_span(mm, lo, hi)
    if length:
        try:
            mm._mmap.madvise(_mmaplib.MADV_DONTNEED, start, length)
        except (AttributeError, OSError):  # pragma: no cover - best effort
            pass


class PopulationStore:
    """Columnar, block-lazily-fabricated population segments on disk.

    Construct through :meth:`create` (derives and persists the key
    lists; reuses a matching existing store in place) or :meth:`attach`
    (maps an existing store after verifying its identity against the
    supplied design/mission).  All processes attached to one root see
    one coherent population: segments are shared file mappings and the
    block bitmaps are only raised after a flush.
    """

    def __init__(
        self,
        root: PathLike,
        *,
        design: PufDesign,
        mission: MissionProfile,
        idle_policy: Optional[IdlePolicy],
        n_chips: int,
        block_size: int,
        fab_keys: np.ndarray,
        aging_keys: np.ndarray,
        content_key: str,
    ):
        self.root = pathlib.Path(root)
        self.design = design
        self.mission = mission
        self.idle_policy = idle_policy
        self.n_chips = int(n_chips)
        self.block_size = int(block_size)
        self.n_blocks = -(-self.n_chips // self.block_size)
        self.content_key = content_key
        self._fab_keys = fab_keys
        self._aging_keys = aging_keys
        self._model = design.variation_model()
        self._k_t = nbti.temperature_acceleration(
            mission.temperature_k, design.tech.nbti
        )
        # Mission-folded duty/transition powers for the ``_dir`` columns,
        # built with the same expressions, on the same (1, 1, s, 2)
        # layout, as PopulationAging.__init__ builds ``_bti_dir`` /
        # ``_hci_dir`` — the stored products are bit-identical to the
        # in-RAM tensors.
        simulator = AgingSimulator(
            design.tech, design.cell, mission, idle_policy=idle_policy
        )
        stress = simulator.stress
        n_stages = stress.n_stages
        duty = np.empty((1, 1, n_stages, 2))
        duty[0, 0, :, PMOS] = stress.nbti_duty[:, PMOS]
        duty[0, 0, :, NMOS] = stress.pbti_duty[:, NMOS]
        tpy = np.empty((1, 1, n_stages, 2))
        tpy[0, 0, :, PMOS] = stress.transitions_per_year[:, PMOS]
        tpy[0, 0, :, NMOS] = stress.transitions_per_year[:, NMOS]
        self._duty_pow = duty ** design.tech.nbti.n
        self._tpy_pow = (
            tpy / design.tech.hci.ref_transitions
        ) ** design.tech.hci.m
        self._cols: Dict[str, np.memmap] = {}
        self._flags: Dict[str, np.memmap] = {}
        self._closed = False
        # Expose the fabrication bitmap to the resource sampler: with
        # --sample-rss an out-of-core sweep's fault-in behaviour becomes
        # a counter track next to the RSS curve.  Registration is
        # unconditional (the registry is a dict write); the probe only
        # runs while a sampler thread is ticking.
        self._probe_name = f"store.materialised_blocks:{self.root.name}"
        _sampler_mod.register_probe(self._probe_name, self._count_materialised)

    def _count_materialised(self) -> float:
        """Total materialised (column, block) segments right now."""
        if self._closed:
            return 0.0
        return float(
            sum(np.count_nonzero(self._flag_map(c)) for c in COLUMNS)
        )

    # ---- construction ------------------------------------------------

    @classmethod
    def create(
        cls,
        root: PathLike,
        design: PufDesign,
        n_chips: int,
        *,
        mission: Optional[MissionProfile] = None,
        idle_policy: Optional[IdlePolicy] = None,
        rng: RngLike = None,
        keys: Optional[Tuple[Sequence[int], Sequence[int]]] = None,
        block_size: Optional[int] = None,
    ) -> "PopulationStore":
        """Create (or adopt) the store for one population at ``root``.

        Consumes ``rng`` exactly like
        :func:`~repro.core.population.make_batch_study` — ``fab_rng,
        aging_rng = spawn(rng, 2)``, then one full-population
        :func:`~repro._rng.spawn_keys` draw from each — unless ``keys``
        supplies pre-derived ``(fab_keys, aging_keys)`` (the parallel
        engine already holds them).  If ``root`` contains a store with
        the same content key it is adopted as-is, keeping its segments,
        bitmaps and block size; a mismatching store is an error, never
        silently overwritten.
        """
        if n_chips <= 0:
            raise ValueError("n_chips must be positive")
        mission = mission or MissionProfile()
        if keys is None:
            fab_rng, aging_rng = spawn(rng, 2)
            fab_keys = np.asarray(spawn_keys(fab_rng, n_chips), dtype=np.int64)
            aging_keys = np.asarray(spawn_keys(aging_rng, n_chips), dtype=np.int64)
        else:
            fab_keys = np.asarray(list(keys[0]), dtype=np.int64)
            aging_keys = np.asarray(list(keys[1]), dtype=np.int64)
            if fab_keys.shape != (n_chips,) or aging_keys.shape != (n_chips,):
                raise ValueError("keys must supply one fab and one aging key per chip")
        fingerprint = _design_fingerprint(design, mission, idle_policy, n_chips)
        content_key = _content_key(fingerprint, _keys_digest(fab_keys, aging_keys))
        if block_size is None:
            block_size = default_block_size(design.n_ros, design.n_stages)
        if block_size < 1:
            raise ValueError("block_size must be >= 1")

        root = pathlib.Path(root)
        meta_path = root / "meta.json"
        if meta_path.exists():
            meta = json.loads(meta_path.read_text())
            if meta.get("content_key") != content_key:
                raise ValueError(
                    f"{root} already holds a different population "
                    f"(content key mismatch); refusing to overwrite"
                )
            block_size = int(meta["block_size"])
            return cls(
                root,
                design=design,
                mission=mission,
                idle_policy=idle_policy,
                n_chips=n_chips,
                block_size=block_size,
                fab_keys=fab_keys,
                aging_keys=aging_keys,
                content_key=content_key,
            )

        root.mkdir(parents=True, exist_ok=True)
        np.save(root / "fab_keys.npy", fab_keys)
        np.save(root / "aging_keys.npy", aging_keys)
        n_blocks = -(-n_chips // block_size)
        shape = (n_chips, design.n_ros, design.n_stages, 2)
        for name in COLUMNS:
            # sparse at final size: ftruncate allocates no blocks, so an
            # unread column never costs disk
            seg = np.lib.format.open_memmap(
                root / f"{name}.npy", mode="w+", dtype=np.float64, shape=shape
            )
            del seg
            flags = np.lib.format.open_memmap(
                root / f"{name}.flags.npy",
                mode="w+",
                dtype=np.uint8,
                shape=(n_blocks,),
            )
            flags[:] = 0
            flags.flush()
            del flags
        meta = {
            "format": STORE_FORMAT,
            "content_key": content_key,
            "fingerprint": fingerprint,
            "n_chips": int(n_chips),
            "block_size": int(block_size),
            "columns": list(COLUMNS),
        }
        tmp = meta_path.with_name(meta_path.name + f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(meta, indent=2, sort_keys=True, default=str) + "\n")
        os.replace(tmp, meta_path)
        return cls(
            root,
            design=design,
            mission=mission,
            idle_policy=idle_policy,
            n_chips=n_chips,
            block_size=block_size,
            fab_keys=fab_keys,
            aging_keys=aging_keys,
            content_key=content_key,
        )

    @classmethod
    def attach(
        cls,
        root: PathLike,
        design: PufDesign,
        *,
        mission: Optional[MissionProfile] = None,
        idle_policy: Optional[IdlePolicy] = None,
    ) -> "PopulationStore":
        """Map an existing store, verifying it is *this* population.

        Workers call this with the design/mission from their shard spec;
        the recomputed fingerprint plus the persisted key lists must
        reproduce the stored content key, so attaching to the wrong
        store (or a corrupted one) fails loudly instead of silently
        evaluating someone else's silicon.
        """
        root = pathlib.Path(root)
        meta_path = root / "meta.json"
        if not meta_path.exists():
            raise FileNotFoundError(f"no population store at {root}")
        meta = json.loads(meta_path.read_text())
        if meta.get("format") != STORE_FORMAT:
            raise ValueError(
                f"store format {meta.get('format')!r} != {STORE_FORMAT}"
            )
        mission = mission or MissionProfile()
        n_chips = int(meta["n_chips"])
        fab_keys = np.load(root / "fab_keys.npy")
        aging_keys = np.load(root / "aging_keys.npy")
        fingerprint = _design_fingerprint(design, mission, idle_policy, n_chips)
        content_key = _content_key(fingerprint, _keys_digest(fab_keys, aging_keys))
        if content_key != meta.get("content_key"):
            raise ValueError(
                f"store at {root} does not match the supplied design/mission "
                "(content key mismatch)"
            )
        return cls(
            root,
            design=design,
            mission=mission,
            idle_policy=idle_policy,
            n_chips=n_chips,
            block_size=int(meta["block_size"]),
            fab_keys=fab_keys,
            aging_keys=aging_keys,
            content_key=content_key,
        )

    # ---- segments ----------------------------------------------------

    def column(self, name: str) -> np.memmap:
        """The shared writable mapping of one column segment."""
        if name not in COLUMNS:
            raise KeyError(f"unknown column {name!r}")
        mm = self._cols.get(name)
        if mm is None:
            mm = np.load(self.root / f"{name}.npy", mmap_mode="r+")
            self._cols[name] = mm
        return mm

    def _flag_map(self, name: str) -> np.memmap:
        mm = self._flags.get(name)
        if mm is None:
            mm = np.load(self.root / f"{name}.flags.npy", mmap_mode="r+")
            self._flags[name] = mm
        return mm

    def materialised_blocks(self, name: str) -> int:
        """How many blocks of ``name`` hold fabricated bytes (testing aid)."""
        return int(np.count_nonzero(self._flag_map(name)))

    # ---- fabrication -------------------------------------------------

    def ensure_rows(self, start: int, stop: int, columns: Iterable[str]) -> None:
        """Materialise every block overlapping rows ``[start, stop)``.

        Only the named ``columns`` are fabricated (and only where their
        block flag is still down); a later call needing another column of
        the same rows replays the same chip draws and fills just the
        missing segment — the spawn-key discipline makes the replay
        byte-identical.
        """
        if not 0 <= start <= stop <= self.n_chips:
            raise ValueError(f"rows [{start}, {stop}) outside 0..{self.n_chips}")
        columns = [c for c in COLUMNS if c in set(columns)]
        if start == stop or not columns:
            return
        first = start // self.block_size
        last = (stop - 1) // self.block_size
        for block in range(first, last + 1):
            self._ensure_block(block, columns)

    def _ensure_block(self, block: int, columns: Sequence[str]) -> None:
        fab_needed = [
            c for c in FAB_COLUMNS if c in columns and not self._flag_map(c)[block]
        ]
        aging_needed = [
            c for c in AGING_COLUMNS if c in columns and not self._flag_map(c)[block]
        ]
        if not fab_needed and not aging_needed:
            return
        lo = block * self.block_size
        hi = min(lo + self.block_size, self.n_chips)
        t0 = time.perf_counter_ns() if telemetry.enabled() else 0
        with telemetry.span(
            "store.materialise_block",
            block=block,
            n_chips=hi - lo,
            columns=",".join(fab_needed + aging_needed),
        ):
            if fab_needed:
                self._fabricate_process(lo, hi, fab_needed)
            if aging_needed:
                self._fabricate_aging(lo, hi, aging_needed)
        telemetry.count("store.blocks_materialised")
        if t0:
            telemetry.observe(
                "store.fabricate_block_s", (time.perf_counter_ns() - t0) / 1e9
            )

    def _fabricate_process(self, lo: int, hi: int, columns: Sequence[str]) -> None:
        """Replay the fabrication child streams for rows ``[lo, hi)``."""
        cols = {name: self.column(name) for name in columns}
        for i in range(lo, hi):
            chip = self._model.sample_chip(
                as_generator(int(self._fab_keys[i])), chip_id=i
            )
            if "vth" in cols:
                cols["vth"][i] = chip.vth
            if "tc_scale" in cols:
                cols["tc_scale"][i] = chip.tc_scale
        self._publish(cols, lo, hi)

    def _fabricate_aging(self, lo: int, hi: int, columns: Sequence[str]) -> None:
        """Replay the aging child streams for rows ``[lo, hi)``.

        Draw order (NBTI prefactors before HCI, one child per chip) and
        the coefficient folding (Arrhenius ``k_T``, ``pbti_factor``,
        ``PMOS_HCI_FACTOR``) mirror
        :meth:`repro.aging.simulator.PopulationAging.sample` /
        ``__init__`` element for element, so the stored coefficients are
        bit-identical to the in-RAM tensors — and the ``_dir`` columns,
        one further multiply by the duty/transition powers, match the
        in-RAM ``_bti_dir`` / ``_hci_dir`` products the same way.
        """
        tech = self.design.tech
        params = tech.nbti
        shape = (self.design.n_ros, self.design.n_stages, 2)
        cols = {name: self.column(name) for name in columns}
        want_bti = "bti_coeff" in cols or "bti_dir" in cols
        want_hci = "hci_coeff" in cols or "hci_dir" in cols
        duty_pow = self._duty_pow[0, 0]  # (n_stages, 2), broadcast per row
        tpy_pow = self._tpy_pow[0, 0]
        coeff = np.empty(shape)
        for i in range(lo, hi):
            gen = as_generator(int(self._aging_keys[i]))
            nbti_a = nbti.sample_prefactors(shape, params, gen)
            hci_b = hci.sample_prefactors(shape, tech.hci, gen)
            if want_bti:
                coeff[..., PMOS] = (1.0 * nbti_a[..., PMOS]) * self._k_t
                coeff[..., NMOS] = (params.pbti_factor * nbti_a[..., NMOS]) * self._k_t
                if "bti_coeff" in cols:
                    cols["bti_coeff"][i] = coeff
                if "bti_dir" in cols:
                    np.multiply(coeff, duty_pow, out=cols["bti_dir"][i])
            if want_hci:
                coeff[..., PMOS] = hci.PMOS_HCI_FACTOR * hci_b[..., PMOS]
                coeff[..., NMOS] = 1.0 * hci_b[..., NMOS]
                if "hci_coeff" in cols:
                    cols["hci_coeff"][i] = coeff
                if "hci_dir" in cols:
                    np.multiply(coeff, tpy_pow, out=cols["hci_dir"][i])
        self._publish(cols, lo, hi)

    def _publish(self, cols: Dict[str, np.memmap], lo: int, hi: int) -> None:
        """Flush fabricated rows, drop them from RSS, raise the flags."""
        block = lo // self.block_size
        for name, mm in cols.items():
            flush_rows(mm, lo, hi)
            release_rows(mm, lo, hi)
            flags = self._flag_map(name)
            flags[block] = 1
            flags.flush()

    # ---- read-side RSS control ---------------------------------------

    def release(self, columns: Iterable[str], lo: int, hi: int) -> None:
        """Drop rows ``[lo, hi)`` of the named columns from this
        process's resident set (see :func:`release_rows`)."""
        for name in columns:
            mm = self._cols.get(name)
            if mm is not None:
                release_rows(mm, lo, hi)

    # ---- lifecycle ---------------------------------------------------

    def close(self) -> None:
        """Drop every mapping (idempotent).  The files stay on disk —
        directory ownership/cleanup belongs to whoever created the root."""
        if self._closed:
            return
        self._closed = True
        _sampler_mod.unregister_probe(self._probe_name)
        self._cols.clear()
        self._flags.clear()

    def __enter__(self) -> "PopulationStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PopulationStore {str(self.root)!r} n_chips={self.n_chips} "
            f"block_size={self.block_size}>"
        )


def remove_store(root: PathLike) -> None:
    """Delete a store directory created by :meth:`PopulationStore.create`
    (missing is fine — cleanup paths race with nothing)."""
    shutil.rmtree(root, ignore_errors=True)
