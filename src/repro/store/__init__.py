"""Out-of-core population storage and evaluation (``--store mmap``).

The streaming counterpart of the in-RAM population engine: a
:class:`~repro.store.store.PopulationStore` holds the population's
process and aging columns as lazily fabricated, memory-mapped ``.npy``
segments, and a :class:`~repro.store.study.StoreStudy` evaluates them
block by block with bounded RSS — bit-identical responses at any block
size and worker count, million-chip sweeps on laptop RAM.
"""

from .store import (
    AGING_COLUMNS,
    COLUMNS,
    FAB_COLUMNS,
    STORE_FORMAT,
    PopulationStore,
    default_block_size,
    flush_rows,
    release_rows,
    remove_store,
)
from .study import StoreStudy, make_store_study

__all__ = [
    "AGING_COLUMNS",
    "COLUMNS",
    "FAB_COLUMNS",
    "STORE_FORMAT",
    "PopulationStore",
    "StoreStudy",
    "default_block_size",
    "flush_rows",
    "make_store_study",
    "release_rows",
    "remove_store",
]
