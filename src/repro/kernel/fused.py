"""The fused single-pass evaluation kernel and its block sinks.

One population sweep grid point used to be three full-tensor passes —
assemble overdrives, turn them into frequencies, then re-read the
frequency tensor once per derived quantity (bits, margins, histogram
counts).  This module collapses that to a single chip-axis-blocked
stream: per block the kernel fabricates periods from thresholds
(:func:`frequency_block_kernel`), :func:`finalize_period_block` checks
finiteness and flips them to frequencies in place, and the caller's
*sinks* consume the fresh frequency rows — in bounded super-block
windows that amortise per-call dispatch while keeping the traffic far
below a full-tensor re-read — to emit response bits
(:class:`ResponseBlockSink`) or signed-margin histogram counts
(:class:`MarginHistogramSink`).

All sinks are plain callables ``sink(lo, hi, freq_rows)`` over **host**
rows (window-relative ``[lo, hi)``), so they compose with any backend:
device backends convert each block once, host backends pass views.
Every sink performs its block's work exactly as the public per-array
function does on the full tensor — the response sink runs the noiseless
comparison of :func:`repro.core.readout.compare_pairs` (same gather,
same ``>``), the histogram sink calls
:func:`repro.metrics.margins.relative_margins` /
:func:`~repro.metrics.margins.margin_histogram` directly — so bits and
counts are bit-identical to the unfused full-tensor evaluation, because
comparison and binning are elementwise along the chip axis and
histogram counts merge by addition.
"""

from __future__ import annotations

import numpy as np

from .backend import NUMPY, ArrayBackend

#: the shared diagnosis for a non-positive gate overdrive, raised by
#: every engine identically (tests match on the text)
OVERDRIVE_ERROR = (
    "non-positive gate overdrive: the supply cannot turn on every "
    "device at this corner (vdd too low or thresholds too high)"
)


def frequency_block_kernel(
    od,
    scratch,
    vth_rows,
    *,
    vdd: float,
    neg_alpha: float,
    w_flat,
    period_out,
    tc_rows=None,
    tc_coeff: float = 0.0,
    subtract_aging=None,
    xp: ArrayBackend = NUMPY,
) -> None:
    """One chip-axis block of the batched frequency kernel, into ``period_out``.

    The exact operation sequence — subtract, optional tc term, optional
    aging subtraction, ``exp(-alpha * log(od))`` in place, one BLAS
    matvec — shared by :class:`~repro.core.population.BatchStudy` and the
    out-of-core :class:`repro.store.study.StoreStudy`, so the two paths
    are bit-identical by construction rather than by parallel
    maintenance.  ``subtract_aging(od, scratch)`` performs ``od -=
    delta`` for this block; the caller owns the (memoised vs factored)
    grouping choice.  Must run inside ``xp.errstate()``; ``period_out``
    holds *periods* — the caller checks finiteness and takes the
    reciprocal (see :func:`finalize_period_block`).

    ``xp`` routes every array operation through the backend seam; the
    default :data:`~repro.kernel.backend.NUMPY` binds the numpy ufuncs
    directly, so the CPU path is byte-for-byte the pre-seam kernel.
    """
    xp.subtract(vdd, vth_rows, out=od)
    if tc_rows is not None:
        # off nominal temperature the tc mismatch term is non-zero
        xp.multiply(tc_rows, tc_coeff, out=scratch)
        od -= scratch
    if subtract_aging is not None:
        subtract_aging(od, scratch)
    # od ** -alpha as exp(-alpha * log(od)), in place — measurably
    # faster than np.power and within a couple of ULPs of it;
    # non-positive overdrives surface as NaN/inf periods for the
    # caller's finiteness check.
    xp.log(od, out=od)
    od *= neg_alpha
    xp.exp(od, out=od)
    # the (stage, polarity) reduction as one BLAS matvec on no-copy
    # views — what tensordot does internally, minus its per-call
    # reshaping overhead
    xp.matmul_into(
        od.reshape(-1, w_flat.shape[0]),
        w_flat,
        period_out.reshape(-1),
    )


def finalize_period_block(period_rows, xp: ArrayBackend = NUMPY) -> None:
    """Periods → frequencies in place for one block, or raise.

    The finiteness check runs per block on cache-resident rows instead
    of in a separate full-tensor pass; values are unchanged relative to
    checking and inverting the whole tensor afterwards (both operations
    are elementwise).
    """
    if not xp.all_finite(period_rows):
        raise ValueError(OVERDRIVE_ERROR)
    xp.reciprocal(period_rows, out=period_rows)


class ResponseBlockSink:
    """Fills a ``(n_chips, n_bits)`` uint8 response array block by block.

    Each block performs the noiseless comparison of
    :func:`~repro.core.readout.compare_pairs` — gather the two oscillator
    columns of every pair, ``bit = 1`` where the first counts higher — so
    the assembled bits equal ``compare_pairs(full_freqs, ...)`` exactly
    (the comparison is elementwise along the chip axis).  The sink keeps
    the hot loop allocation-free: pair indices are split and validated
    once at construction, the two gather buffers are reused across
    blocks, and the comparison writes straight into the caller's uint8
    array through a boolean view (``np.bool_`` is one byte holding 0/1).
    """

    def __init__(self, pairs: np.ndarray, tech, readout, out: np.ndarray):
        pairs = np.asarray(pairs)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError("pairs must have shape (n_bits, 2)")
        if np.any(pairs < 0):
            raise ValueError("pair indices out of range")
        self.pairs = pairs
        self.tech = tech
        self.readout = readout
        self.out = out
        self._idx_a = np.ascontiguousarray(pairs[:, 0])
        self._idx_b = np.ascontiguousarray(pairs[:, 1])
        self._bits = out.view(np.bool_)
        self._f_a: np.ndarray = None
        self._f_b: np.ndarray = None

    def __call__(self, lo: int, hi: int, freq_rows: np.ndarray) -> None:
        n = hi - lo
        if (
            self._f_a is None
            or self._f_a.shape[0] < n
            or self._f_a.dtype != freq_rows.dtype
        ):
            # engines stream uniform blocks with a short tail, so in
            # practice the buffers are allocated once by the first block
            shape = (n, self._idx_a.shape[0])
            self._f_a = np.empty(shape, dtype=freq_rows.dtype)
            self._f_b = np.empty(shape, dtype=freq_rows.dtype)
        f_a, f_b = self._f_a[:n], self._f_b[:n]
        np.take(freq_rows, self._idx_a, axis=1, out=f_a)
        np.take(freq_rows, self._idx_b, axis=1, out=f_b)
        np.greater(f_a, f_b, out=self._bits[lo:hi])


class MarginHistogramSink:
    """Accumulates signed-margin histogram counts block by block.

    Binning is per element and counts merge by addition over the shared
    explicit ``edges``, so :attr:`counts` equals the one-shot
    full-tensor histogram exactly — the same invariant the parallel
    engine's shard merge already relies on.
    """

    def __init__(self, pairs: np.ndarray, edges: np.ndarray):
        self.pairs = pairs
        self.edges = np.asarray(edges, dtype=float)
        self.counts = np.zeros(len(self.edges) - 1, dtype=np.int64)

    def __call__(self, lo: int, hi: int, freq_rows: np.ndarray) -> None:
        from ..metrics.margins import margin_histogram, relative_margins

        self.counts += margin_histogram(
            relative_margins(freq_rows, self.pairs), self.edges
        )
