"""The dtype-tier validation harness.

The float32 tier is roughly 2× faster on the memory-bound kernel but is
**not** bit-identical in frequencies — only in response *bits*, and only
empirically.  The contract enforced across the repo: float32 results may
be reported, cached or used to gate CI *only after* this harness has
proven response-bit identity against float64 at the scale in question.
The CLI runs it automatically before ``check-anchors`` accepts a
``--dtype float32`` run, and the test suite pins it at anchor scale
(50 chips × 256 ROs).

The harness fabricates the same silicon twice from one seed (the dtype
only affects kernel arithmetic, never the sampled thresholds or
prefactors), sweeps both studies over a (years × corners) grid, and
compares every response bit.  Frequencies are compared too, but only to
report the worst relative error — bits are the pass/fail criterion,
because bits are what every experiment metric consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..aging.schedule import IdlePolicy, MissionProfile
from ..environment.conditions import OperatingConditions

#: default year grid of the harness: fresh silicon, mid-mission, and the
#: 10-year horizon every experiment reports
DEFAULT_YEARS: Tuple[float, ...] = (0.0, 5.0, 10.0)


@dataclass(frozen=True)
class DtypeValidationReport:
    """Outcome of one float32-vs-float64 response-identity sweep."""

    reference_dtype: str
    candidate_dtype: str
    n_chips: int
    n_bits: int
    corners: int
    total_bits: int
    mismatched_bits: int
    max_freq_rel_err: float
    #: human-readable ``(t_years, temperature_k, vdd)`` of corners with
    #: at least one mismatched bit (empty on a pass)
    failing_corners: List[Tuple[float, float, Optional[float]]] = field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        """True iff every response bit matched at every corner."""
        return self.mismatched_bits == 0

    def summary(self) -> str:
        verdict = "identical" if self.ok else "MISMATCH"
        line = (
            f"dtype tier {self.candidate_dtype} vs {self.reference_dtype}: "
            f"{verdict} — {self.total_bits - self.mismatched_bits}/"
            f"{self.total_bits} bits agree over {self.corners} corner(s), "
            f"{self.n_chips} chips; max frequency rel err "
            f"{self.max_freq_rel_err:.3e}"
        )
        if self.failing_corners:
            worst = ", ".join(
                f"(t={t:g}y, T={temp:g}K, vdd={vdd})"
                for t, temp, vdd in self.failing_corners[:4]
            )
            line += f"; failing corners: {worst}"
        return line


def validate_response_identity(
    design,
    n_chips: int,
    *,
    seed,
    mission: Optional[MissionProfile] = None,
    idle_policy: Optional[IdlePolicy] = None,
    years: Sequence[float] = DEFAULT_YEARS,
    conditions: Optional[Sequence[OperatingConditions]] = None,
    reference_dtype: str = "float64",
    candidate_dtype: str = "float32",
) -> DtypeValidationReport:
    """Sweep two same-seed studies at both dtypes; compare every bit.

    ``conditions`` defaults to nominal only; callers probing voltage /
    temperature corners pass their own grid.  Returns the report — it is
    the caller's decision whether a mismatch raises, warns or blocks a
    gate (the CLI refuses to gate, the tests assert :attr:`ok`).
    """
    from ..core.population import make_batch_study

    cond_grid = list(conditions) if conditions else [OperatingConditions.nominal()]
    ref = make_batch_study(
        design,
        n_chips,
        mission=mission,
        idle_policy=idle_policy,
        rng=seed,
        dtype=reference_dtype,
    )
    cand = make_batch_study(
        design,
        n_chips,
        mission=mission,
        idle_policy=idle_policy,
        rng=seed,
        dtype=candidate_dtype,
    )
    total = 0
    mismatched = 0
    corners = 0
    max_rel = 0.0
    failing: List[Tuple[float, float, Optional[float]]] = []
    for cond in cond_grid:
        for t in years:
            corners += 1
            bits_ref = ref.responses(t_years=t, conditions=cond)
            bits_cand = cand.responses(t_years=t, conditions=cond)
            total += bits_ref.size
            bad = int(np.count_nonzero(bits_ref != bits_cand))
            mismatched += bad
            if bad:
                failing.append((float(t), cond.temperature_k, cond.vdd))
            f_ref = ref.frequencies(t, cond)
            f_cand = cand.frequencies(t, cond)
            rel = float(
                np.max(np.abs(f_cand.astype(np.float64) - f_ref) / f_ref)
            )
            max_rel = max(max_rel, rel)
    return DtypeValidationReport(
        reference_dtype=reference_dtype,
        candidate_dtype=candidate_dtype,
        n_chips=n_chips,
        n_bits=design.n_bits,
        corners=corners,
        total_bits=total,
        mismatched_bits=mismatched,
        max_freq_rel_err=max_rel,
        failing_corners=failing,
    )
