"""Fused evaluation kernel: the single-pass hot path of the batched engines.

``repro.kernel`` owns the per-block arithmetic every population engine
streams its chips through:

* :mod:`repro.kernel.fused` — the fabricate → age → compare chain as one
  chip-axis-blocked pass: the frequency block kernel, the per-block
  finalisation (finiteness check + reciprocal) and the block *sinks*
  that derive response bits, signed margins and histogram counts from
  each frequency block while it is still cache-resident, instead of
  re-reading a population-sized tensor per derived quantity;
* :mod:`repro.kernel.backend` — a minimal array-backend seam (numpy by
  default, CuPy/torch resolved lazily at runtime) so the same kernel
  runs on a GPU without the engines changing;
* :mod:`repro.kernel.validate` — the dtype-tier harness that proves
  response-bit identity between float32 and float64 before the reduced
  precision is allowed to gate anything.

The engines (:class:`repro.core.population.BatchStudy`,
:class:`repro.store.study.StoreStudy`, the parallel coordinator) stay
the public surface; this package is where their shared arithmetic lives
so serial / parallel / out-of-core stay bit-identical by construction.
"""

from .backend import ArrayBackend, register_backend, resolve_backend
from .fused import (
    OVERDRIVE_ERROR,
    MarginHistogramSink,
    ResponseBlockSink,
    finalize_period_block,
    frequency_block_kernel,
)
from .validate import DtypeValidationReport, validate_response_identity

__all__ = [
    "ArrayBackend",
    "register_backend",
    "resolve_backend",
    "frequency_block_kernel",
    "finalize_period_block",
    "ResponseBlockSink",
    "MarginHistogramSink",
    "OVERDRIVE_ERROR",
    "DtypeValidationReport",
    "validate_response_identity",
]
