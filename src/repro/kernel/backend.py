"""The array-backend seam of the fused kernel.

The kernel itself (:mod:`repro.kernel.fused`) is written against a tiny
namespace of array operations — the ufuncs of its hot chain plus
allocation, host transfer and the reduction matvec.  This module supplies
that namespace:

* :data:`NUMPY` — the default backend.  Its attributes *are* the numpy
  ufuncs (not wrappers), so routing the kernel through the seam adds
  zero overhead and changes zero bytes relative to calling numpy
  directly — which is what keeps the float64 CPU path bit-identical to
  the pre-seam code.
* ``"cupy"`` / ``"torch"`` — optional drop-ins resolved **lazily** at
  :func:`resolve_backend` time via :func:`importlib.import_module`.
  Neither library is imported at package import (or ever, unless
  explicitly requested), so the seam costs nothing on machines without
  them.
* :func:`register_backend` — test/extension hook to install additional
  backends by name.

Device backends compute each block on the device and hand host rows back
through :meth:`ArrayBackend.to_numpy`; results that cross the engine
boundary (frequency memos, response bits) are always host numpy arrays,
so experiment code runs unchanged on any backend.

Selection: ``resolve_backend(None)`` honours the ``REPRO_KERNEL_BACKEND``
environment variable (default ``"numpy"``); engines also take an explicit
``backend=`` argument which wins over the environment.
"""

from __future__ import annotations

import contextlib
import importlib
import os
from typing import Callable, Dict, Optional, Union

import numpy as np

#: environment variable naming the default backend for new studies
BACKEND_ENV = "REPRO_KERNEL_BACKEND"


class ArrayBackend:
    """The operation namespace the fused kernel is written against.

    Instances carry the ufuncs of the hot chain (``subtract`` /
    ``multiply`` / ``log`` / ``exp`` / ``minimum`` / ``reciprocal``, all
    honouring ``out=``) plus allocation (:meth:`empty`), ingest
    (:meth:`asarray`), host transfer (:meth:`to_numpy`), the stage
    reduction (:meth:`matmul_into`) and the finiteness check
    (:meth:`all_finite`).  ``is_host`` tells the engines whether arrays
    live in addressable host memory (numpy) or need an explicit
    device→host copy per block.
    """

    name: str = "abstract"
    is_host: bool = False

    # hot-chain ufuncs, bound by subclasses
    subtract: Callable
    multiply: Callable
    log: Callable
    exp: Callable
    minimum: Callable
    reciprocal: Callable

    def empty(self, shape, dtype) -> object:
        raise NotImplementedError

    def asarray(self, array: np.ndarray, dtype) -> object:
        """Backend array with the backend's layout, cast to ``dtype``."""
        raise NotImplementedError

    def to_numpy(self, array) -> np.ndarray:
        """Host numpy view/copy of a backend array."""
        raise NotImplementedError

    def matmul_into(self, matrix, vector, out) -> None:
        """``out[:] = matrix @ vector`` (the stage-weight reduction)."""
        raise NotImplementedError

    def all_finite(self, array) -> bool:
        raise NotImplementedError

    def errstate(self):
        """Context suppressing invalid/divide warnings during the kernel."""
        return contextlib.nullcontext()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ArrayBackend {self.name}>"


class NumpyBackend(ArrayBackend):
    """Default backend: the attributes are numpy's own ufuncs."""

    name = "numpy"
    is_host = True

    subtract = staticmethod(np.subtract)
    multiply = staticmethod(np.multiply)
    log = staticmethod(np.log)
    exp = staticmethod(np.exp)
    minimum = staticmethod(np.minimum)
    reciprocal = staticmethod(np.reciprocal)

    def empty(self, shape, dtype) -> np.ndarray:
        return np.empty(shape, dtype=dtype)

    def asarray(self, array: np.ndarray, dtype) -> np.ndarray:
        return np.ascontiguousarray(array, dtype=dtype)

    def to_numpy(self, array: np.ndarray) -> np.ndarray:
        return array

    def matmul_into(self, matrix, vector, out) -> None:
        np.dot(matrix, vector, out=out)

    def all_finite(self, array: np.ndarray) -> bool:
        return bool(np.isfinite(array).all())

    def errstate(self):
        return np.errstate(invalid="ignore", divide="ignore")


#: the process-wide default backend instance
NUMPY = NumpyBackend()


def _make_cupy_backend() -> ArrayBackend:
    cupy = importlib.import_module("cupy")

    class CupyBackend(ArrayBackend):
        name = "cupy"
        is_host = False

        subtract = staticmethod(cupy.subtract)
        multiply = staticmethod(cupy.multiply)
        log = staticmethod(cupy.log)
        exp = staticmethod(cupy.exp)
        minimum = staticmethod(cupy.minimum)
        reciprocal = staticmethod(cupy.reciprocal)

        def empty(self, shape, dtype):
            return cupy.empty(shape, dtype=dtype)

        def asarray(self, array, dtype):
            return cupy.asarray(array, dtype=dtype)

        def to_numpy(self, array):
            return cupy.asnumpy(array)

        def matmul_into(self, matrix, vector, out):
            cupy.dot(matrix, vector, out=out)

        def all_finite(self, array):
            return bool(cupy.isfinite(array).all())

    return CupyBackend()


def _make_torch_backend() -> ArrayBackend:
    torch = importlib.import_module("torch")
    dtype_map = {
        np.dtype(np.float64): torch.float64,
        np.dtype(np.float32): torch.float32,
    }

    def _subtract(a, b, out=None):
        # the kernel's only subtract with a scalar lhs is vdd - vth
        if not torch.is_tensor(a):
            torch.negative(b, out=out)
            out += a
            return out
        return torch.subtract(a, b, out=out)

    def _minimum(a, cap, out=None):
        return torch.clamp(a, max=float(cap), out=out)

    class TorchBackend(ArrayBackend):
        name = "torch"
        is_host = False

        subtract = staticmethod(_subtract)
        multiply = staticmethod(torch.multiply)
        log = staticmethod(torch.log)
        exp = staticmethod(torch.exp)
        minimum = staticmethod(_minimum)
        reciprocal = staticmethod(torch.reciprocal)

        def empty(self, shape, dtype):
            return torch.empty(shape, dtype=dtype_map[np.dtype(dtype)])

        def asarray(self, array, dtype):
            return torch.as_tensor(
                np.ascontiguousarray(array), dtype=dtype_map[np.dtype(dtype)]
            )

        def to_numpy(self, array):
            return array.detach().cpu().numpy()

        def matmul_into(self, matrix, vector, out):
            torch.mv(matrix, vector, out=out)

        def all_finite(self, array):
            return bool(torch.isfinite(array).all())

    return TorchBackend()


#: name -> zero-argument factory; factories import their library lazily
_REGISTRY: Dict[str, Callable[[], ArrayBackend]] = {
    "numpy": lambda: NUMPY,
    "cupy": _make_cupy_backend,
    "torch": _make_torch_backend,
}


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Install (or replace) a named backend factory.

    The factory is called on each :func:`resolve_backend` request for
    ``name`` — keep it cheap or memoise inside.  Used by tests to
    exercise the seam without a GPU, and by extensions shipping their
    own array library adapters.
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    _REGISTRY[name] = factory


def resolve_backend(
    spec: Union[None, str, ArrayBackend] = None,
) -> ArrayBackend:
    """The :class:`ArrayBackend` for ``spec``.

    ``None`` consults the ``REPRO_KERNEL_BACKEND`` environment variable
    and falls back to numpy; a string is looked up in the registry
    (importing the backing library *now*, never earlier); an
    :class:`ArrayBackend` instance passes through unchanged.  Unknown
    names and unimportable libraries raise ``RuntimeError`` with the
    available choices.
    """
    if isinstance(spec, ArrayBackend):
        return spec
    name = spec or os.environ.get(BACKEND_ENV) or "numpy"
    factory = _REGISTRY.get(name)
    if factory is None:
        raise RuntimeError(
            f"unknown kernel backend {name!r}; available: "
            f"{sorted(_REGISTRY)}"
        )
    try:
        return factory()
    except ImportError as exc:
        raise RuntimeError(
            f"kernel backend {name!r} is registered but its library "
            f"cannot be imported: {exc}"
        ) from exc
