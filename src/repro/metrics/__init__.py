"""PUF quality metrics: uniqueness, reliability, uniformity, randomness."""

from .aliasing import AliasingReport, bit_aliasing
from .entropy import (
    EntropyReport,
    collision_entropy_from_hd,
    extractable_key_bits,
    min_entropy_bits,
    response_entropy,
    shannon_bits,
)
from .hamming import fractional_hd, hamming_distance, hd_matrix, pairwise_fractional_hd
from .margins import (
    DEFAULT_HIST_BINS,
    DEFAULT_HIST_LIMIT,
    DEFAULT_PERCENTILES,
    MarginSummary,
    histogram_edges,
    margin_histogram,
    relative_margins,
    summarize_margins,
)
from .randomness import (
    ALPHA,
    RandomnessReport,
    approximate_entropy_test,
    block_frequency_test,
    cumulative_sums_test,
    longest_run_test,
    monobit_test,
    population_bits,
    randomness_battery,
    runs_test,
    serial_test,
)
from .reliability import (
    ReliabilityReport,
    flip_curve,
    flip_fraction,
    reliability,
)
from .uniformity import UniformityReport, uniformity, uniformity_of
from .uniqueness import UniquenessReport, hd_histogram, interchip_hd, uniqueness

__all__ = [
    "ALPHA",
    "AliasingReport",
    "DEFAULT_HIST_BINS",
    "DEFAULT_HIST_LIMIT",
    "DEFAULT_PERCENTILES",
    "EntropyReport",
    "MarginSummary",
    "RandomnessReport",
    "ReliabilityReport",
    "UniformityReport",
    "UniquenessReport",
    "approximate_entropy_test",
    "bit_aliasing",
    "block_frequency_test",
    "collision_entropy_from_hd",
    "cumulative_sums_test",
    "extractable_key_bits",
    "flip_curve",
    "flip_fraction",
    "fractional_hd",
    "hamming_distance",
    "hd_histogram",
    "hd_matrix",
    "histogram_edges",
    "interchip_hd",
    "longest_run_test",
    "margin_histogram",
    "min_entropy_bits",
    "monobit_test",
    "pairwise_fractional_hd",
    "population_bits",
    "randomness_battery",
    "relative_margins",
    "reliability",
    "response_entropy",
    "runs_test",
    "shannon_bits",
    "serial_test",
    "summarize_margins",
    "uniformity",
    "uniformity_of",
    "uniqueness",
]
