"""NIST SP 800-22-style randomness battery (the tests PUF papers quote).

Implemented from the test definitions: monobit frequency, block frequency,
runs, longest-run-of-ones, serial, approximate entropy and cumulative sums.
Each test returns a p-value; the conventional pass criterion is
``p >= 0.01``.  The battery is meant for the concatenated response material
of a chip population (a few thousand bits), matching how the paper's
"random keys" claim is usually substantiated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np
from scipy import special, stats

#: conventional NIST significance level
ALPHA = 0.01


def _bits(x) -> np.ndarray:
    arr = np.asarray(x).ravel()
    if arr.size == 0:
        raise ValueError("empty bit sequence")
    if not np.all((arr == 0) | (arr == 1)):
        raise ValueError("sequence must contain only 0/1")
    return arr.astype(np.int8)


def monobit_test(bits) -> float:
    """Frequency (monobit) test p-value."""
    b = _bits(bits)
    s = np.abs(np.sum(2 * b.astype(np.int64) - 1))
    return float(special.erfc(s / np.sqrt(2.0 * b.size)))


def block_frequency_test(bits, block_size: int = 16) -> float:
    """Frequency-within-block test p-value."""
    b = _bits(bits)
    if block_size < 2:
        raise ValueError("block_size must be at least 2")
    n_blocks = b.size // block_size
    if n_blocks < 1:
        raise ValueError("sequence shorter than one block")
    blocks = b[: n_blocks * block_size].reshape(n_blocks, block_size)
    pi = blocks.mean(axis=1)
    chi2 = 4.0 * block_size * np.sum((pi - 0.5) ** 2)
    return float(special.gammaincc(n_blocks / 2.0, chi2 / 2.0))


def runs_test(bits) -> float:
    """Runs test p-value (returns 0.0 when the monobit prerequisite fails)."""
    b = _bits(bits)
    n = b.size
    pi = b.mean()
    if abs(pi - 0.5) >= 2.0 / np.sqrt(n):
        return 0.0
    v = 1 + int(np.count_nonzero(b[1:] != b[:-1]))
    num = abs(v - 2.0 * n * pi * (1 - pi))
    den = 2.0 * np.sqrt(2.0 * n) * pi * (1 - pi)
    return float(special.erfc(num / den))


def longest_run_test(bits) -> float:
    """Longest-run-of-ones test p-value (128-bit-block variant, K=5)."""
    b = _bits(bits)
    block_size = 128
    if b.size < block_size:
        # fall back to the 8-bit-block variant for short sequences
        block_size = 8
        categories = [1, 2, 3, 4]
        probs = [0.2148, 0.3672, 0.2305, 0.1875]
    else:
        categories = [4, 5, 6, 7, 8, 9]
        probs = [0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124]
    n_blocks = b.size // block_size
    if n_blocks < 1:
        raise ValueError("sequence shorter than one block")
    counts = np.zeros(len(categories), dtype=np.int64)
    for i in range(n_blocks):
        block = b[i * block_size : (i + 1) * block_size]
        longest = 0
        run = 0
        for bit in block:
            run = run + 1 if bit else 0
            longest = max(longest, run)
        idx = int(np.searchsorted(categories, longest))
        idx = min(idx, len(categories) - 1)
        if longest < categories[0]:
            idx = 0
        counts[idx] += 1
    expected = n_blocks * np.asarray(probs)
    chi2 = float(np.sum((counts - expected) ** 2 / expected))
    return float(special.gammaincc((len(categories) - 1) / 2.0, chi2 / 2.0))


def _psi_squared(b: np.ndarray, m: int) -> float:
    if m == 0:
        return 0.0
    n = b.size
    ext = np.concatenate([b, b[: m - 1]]) if m > 1 else b
    weights = 1 << np.arange(m - 1, -1, -1)
    patterns = np.convolve(ext, weights[::-1], mode="valid")[:n] if m > 1 else ext
    counts = np.bincount(patterns.astype(np.int64), minlength=2**m)
    return float((2**m / n) * np.sum(counts.astype(np.float64) ** 2) - n)


def serial_test(bits, m: int = 3) -> float:
    """Serial test p-value (first of the two NIST p-values)."""
    b = _bits(bits)
    if m < 1:
        raise ValueError("m must be positive")
    psi_m = _psi_squared(b, m)
    psi_m1 = _psi_squared(b, m - 1)
    delta = psi_m - psi_m1
    return float(special.gammaincc(2 ** (m - 2), delta / 2.0))


def approximate_entropy_test(bits, m: int = 2) -> float:
    """Approximate-entropy test p-value."""
    b = _bits(bits)
    n = b.size

    def phi(mm: int) -> float:
        if mm == 0:
            return 0.0
        ext = np.concatenate([b, b[: mm - 1]]) if mm > 1 else b
        weights = 1 << np.arange(mm - 1, -1, -1)
        patterns = (
            np.convolve(ext, weights[::-1], mode="valid")[:n] if mm > 1 else ext
        )
        counts = np.bincount(patterns.astype(np.int64), minlength=2**mm)
        c = counts[counts > 0] / n
        return float(np.sum(c * np.log(c)))

    ap_en = phi(m) - phi(m + 1)
    chi2 = 2.0 * n * (np.log(2.0) - ap_en)
    return float(special.gammaincc(2 ** (m - 1), chi2 / 2.0))


def cumulative_sums_test(bits) -> float:
    """Cumulative-sums (forward) test p-value."""
    b = _bits(bits)
    n = b.size
    s = np.cumsum(2 * b.astype(np.int64) - 1)
    z = int(np.abs(s).max())
    if z == 0:
        return 1.0
    sqrt_n = np.sqrt(n)
    total = 0.0
    for k in range(int((-n / z + 1) // 4), int((n / z - 1) // 4) + 1):
        total += stats.norm.cdf((4 * k + 1) * z / sqrt_n) - stats.norm.cdf(
            (4 * k - 1) * z / sqrt_n
        )
    for k in range(int((-n / z - 3) // 4), int((n / z - 1) // 4) + 1):
        total -= stats.norm.cdf((4 * k + 3) * z / sqrt_n) - stats.norm.cdf(
            (4 * k + 1) * z / sqrt_n
        )
    return float(max(0.0, min(1.0, 1.0 - total)))


@dataclass(frozen=True)
class RandomnessReport:
    """Results of the battery: test name -> p-value."""

    p_values: Dict[str, float]

    def passed(self, alpha: float = ALPHA) -> Dict[str, bool]:
        return {name: p >= alpha for name, p in self.p_values.items()}

    def all_passed(self, alpha: float = ALPHA) -> bool:
        return all(self.passed(alpha).values())


def randomness_battery(bits) -> RandomnessReport:
    """Run every test on one bit sequence."""
    return RandomnessReport(
        p_values={
            "monobit": monobit_test(bits),
            "block_frequency": block_frequency_test(bits),
            "runs": runs_test(bits),
            "longest_run": longest_run_test(bits),
            "serial": serial_test(bits),
            "approximate_entropy": approximate_entropy_test(bits),
            "cumulative_sums": cumulative_sums_test(bits),
        }
    )


def population_bits(responses: Sequence) -> np.ndarray:
    """Concatenate a population's responses into one test sequence."""
    return np.concatenate([_bits(r) for r in responses])
