"""Uniformity: the ones-fraction of each chip's response.

An ideal PUF response is balanced — 50 % ones.  Layout systematics skew
individual comparisons the same way on every chip, which shows up both
here and in bit-aliasing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class UniformityReport:
    """Ones-fraction statistics across a chip population."""

    mean: float
    std: float
    per_chip: np.ndarray

    def percent(self) -> float:
        return 100.0 * self.mean


def uniformity_of(response) -> float:
    """Ones-fraction of a single response."""
    arr = np.asarray(response)
    if arr.size == 0:
        raise ValueError("empty response")
    if not np.all((arr == 0) | (arr == 1)):
        raise ValueError("responses must be 0/1 bit arrays")
    return float(arr.mean())


def uniformity(responses: Sequence) -> UniformityReport:
    """Uniformity report over one response per chip."""
    if not len(responses):
        raise ValueError("need at least one response")
    per_chip = np.array([uniformity_of(r) for r in responses])
    return UniformityReport(
        mean=float(per_chip.mean()),
        std=float(per_chip.std(ddof=1)) if per_chip.size > 1 else 0.0,
        per_chip=per_chip,
    )
