"""Signed comparison margins: the analogue primitive behind response bits.

A response bit is the sign of a frequency comparison between two ring
oscillators.  The *margin* of that comparison — how far apart the two
frequencies are, relative to their midpoint — is the analogue quantity
that aging erodes: a bit flips exactly when its margin crosses zero.
Wilde et al. (PAPERS.md) make the case that per-comparison margin
statistics, not just flip counts, are the right primitive for analysing
RO-PUF quality; this module supplies them for the batched engine.

Definitions used throughout the forensics layer:

* ``margin = (f_a - f_b) / ((f_a + f_b) / 2)`` — dimensionless, signed;
  ``margin > 0`` iff the response bit is 1 (``f_a > f_b``).
* Histograms always bin over *shared, explicit* edges so that per-shard
  integer counts from the parallel engine sum to exactly the serial
  whole-population counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

#: |margin| percentiles reported by :func:`summarize_margins`.
DEFAULT_PERCENTILES: Tuple[float, ...] = (5.0, 25.0, 50.0, 75.0, 95.0)

#: Default symmetric signed-margin histogram range (fraction of midpoint
#: frequency).  Process variation at the paper's technology card puts
#: essentially all pair margins inside +/-30 %.
DEFAULT_HIST_LIMIT = 0.3

#: Default number of histogram bins (even, so zero is a bin edge and no
#: bin straddles the flip boundary).
DEFAULT_HIST_BINS = 60


def relative_margins(frequencies: np.ndarray, pairs: np.ndarray) -> np.ndarray:
    """Signed relative margin of every compared RO pair.

    ``frequencies`` has shape ``(..., n_ros)`` (leading axes are batch
    axes, e.g. chips); ``pairs`` is the ``(n_bits, 2)`` index array from
    the pairing strategy.  Returns ``(..., n_bits)`` with

    ``margin[..., k] = (f[a_k] - f[b_k]) / ((f[a_k] + f[b_k]) / 2)``

    so ``margin > 0`` exactly where :func:`~repro.core.readout.compare_pairs`
    reads a 1 bit (equal frequencies give margin 0 and bit 0 — the same
    knife-edge convention).
    """
    freqs = np.asarray(frequencies, dtype=float)
    pairs = np.asarray(pairs)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(f"pairs must have shape (n_bits, 2), got {pairs.shape}")
    f_a = freqs[..., pairs[:, 0]]
    f_b = freqs[..., pairs[:, 1]]
    mid = f_a + f_b
    mid *= 0.5
    return (f_a - f_b) / mid


@dataclass(frozen=True)
class MarginSummary:
    """Population-level distribution summary of |margin|.

    Percentile keys are floats (``5.0`` -> 5th percentile of the absolute
    margin).  All values are dimensionless margin fractions; multiply by
    100 for percent.
    """

    n_values: int
    abs_percentiles: Dict[float, float]
    min_abs: float
    mean_abs: float

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile of |margin| (must be pre-computed)."""
        return self.abs_percentiles[float(p)]


def summarize_margins(
    margins: np.ndarray,
    percentiles: Sequence[float] = DEFAULT_PERCENTILES,
) -> MarginSummary:
    """Distribution summary of the absolute margins in ``margins``."""
    values = np.abs(np.asarray(margins, dtype=float)).ravel()
    if values.size == 0:
        raise ValueError("margins is empty")
    levels = [float(p) for p in percentiles]
    points = np.percentile(values, levels)
    return MarginSummary(
        n_values=int(values.size),
        abs_percentiles={p: float(v) for p, v in zip(levels, points)},
        min_abs=float(values.min()),
        mean_abs=float(values.mean()),
    )


def histogram_edges(
    limit: float = DEFAULT_HIST_LIMIT, n_bins: int = DEFAULT_HIST_BINS
) -> np.ndarray:
    """Shared signed-margin bin edges: ``n_bins`` over ``[-limit, limit]``.

    Every forensics histogram — serial or per-shard — bins over one edge
    array produced here, which is what makes shard counts exactly
    summable.
    """
    if limit <= 0:
        raise ValueError("limit must be positive")
    if n_bins < 2:
        raise ValueError("need at least 2 bins")
    return np.linspace(-limit, limit, n_bins + 1)


def margin_histogram(margins: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Integer bin counts of the signed margins over explicit ``edges``.

    Values outside ``[edges[0], edges[-1]]`` are clipped into the end
    bins rather than dropped, so the counts always total ``margins.size``
    and per-shard counts merge into the serial counts by plain addition.
    """
    edges = np.asarray(edges, dtype=float)
    if edges.ndim != 1 or edges.size < 3:
        raise ValueError("edges must be a 1-D array of at least 3 edges")
    values = np.clip(np.asarray(margins, dtype=float).ravel(), edges[0], edges[-1])
    counts, _ = np.histogram(values, bins=edges)
    return counts.astype(np.int64)
