"""Bit-aliasing: per-bit-position bias across the chip population.

Bit position ``j`` is *aliased* when most chips agree on its value — the
signature of a systematic (chip-independent) influence on that particular
oscillator comparison.  Ideal is 50 % per position; the conventional
layout's systematic gradient produces a broad spread of per-position
biases, which is exactly what correlates responses across chips and
depresses uniqueness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class AliasingReport:
    """Per-bit-position ones-fraction statistics."""

    per_bit: np.ndarray
    mean: float
    std: float
    worst_bias: float

    def percent(self) -> float:
        return 100.0 * self.mean


def bit_aliasing(responses: Sequence) -> AliasingReport:
    """Aliasing report over one response per chip (equal widths)."""
    mat = np.stack([np.asarray(r) for r in responses])
    if mat.ndim != 2:
        raise ValueError("responses must be equal-length bit vectors")
    if not np.all((mat == 0) | (mat == 1)):
        raise ValueError("responses must be 0/1 bit arrays")
    if mat.shape[0] < 2:
        raise ValueError("aliasing needs at least two chips")
    per_bit = mat.mean(axis=0)
    return AliasingReport(
        per_bit=per_bit,
        mean=float(per_bit.mean()),
        std=float(per_bit.std(ddof=1)) if per_bit.size > 1 else 0.0,
        worst_bias=float(np.abs(per_bit - 0.5).max()),
    )
