"""Uniqueness: the inter-chip Hamming distance statistic.

The headline identity metric of any PUF: across a population of chips
answering the same challenge, any two chips' responses should differ in
half their bits (fractional HD 0.5).  Systematic process variation pushes
the statistic *below* 0.5 (chips agree more than chance because the same
layout biases every die the same way) — the conventional RO-PUF's ~45 %
versus the ARO-PUF's 49.67 % in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .hamming import pairwise_fractional_hd


@dataclass(frozen=True)
class UniquenessReport:
    """Summary of the inter-chip HD distribution."""

    mean: float
    std: float
    minimum: float
    maximum: float
    n_chips: int
    n_pairs: int

    def percent(self) -> float:
        """Mean inter-chip HD in percent (the number papers quote)."""
        return 100.0 * self.mean


def interchip_hd(responses: Sequence) -> np.ndarray:
    """All pairwise inter-chip fractional HDs (the raw distribution)."""
    return pairwise_fractional_hd(responses)


def uniqueness(responses: Sequence) -> UniquenessReport:
    """Compute the uniqueness report over one response per chip."""
    dists = interchip_hd(responses)
    return UniquenessReport(
        mean=float(dists.mean()),
        std=float(dists.std(ddof=1)) if dists.size > 1 else 0.0,
        minimum=float(dists.min()),
        maximum=float(dists.max()),
        n_chips=len(responses),
        n_pairs=int(dists.size),
    )


def hd_histogram(responses: Sequence, bins: int = 20):
    """Histogram of the inter-chip HD distribution.

    Returns ``(bin_centers, counts)`` over [0, 1] — the series behind the
    paper's uniqueness figure.
    """
    if bins < 1:
        raise ValueError("bins must be positive")
    dists = interchip_hd(responses)
    counts, edges = np.histogram(dists, bins=bins, range=(0.0, 1.0))
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, counts
