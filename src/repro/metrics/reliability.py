"""Reliability: intra-chip Hamming distance against a golden response.

Two flavours matter for this paper:

* **aging reliability** — fraction of bits flipped between the enrolment
  (golden) response and the response of the *same chip after t years in
  the field*, evaluated at the same corner.  This is the metric behind the
  abstract's "7.7 % vs 32 % over 10 years".
* **environmental reliability** — flips between the golden response and a
  noisy evaluation at a different temperature/voltage corner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .hamming import fractional_hd


@dataclass(frozen=True)
class ReliabilityReport:
    """Bit-flip statistics over a population of chips."""

    mean_flip_fraction: float
    std_flip_fraction: float
    worst_flip_fraction: float
    per_chip: np.ndarray

    def percent(self) -> float:
        """Mean flipped-bit percentage (the number papers quote)."""
        return 100.0 * self.mean_flip_fraction

    @property
    def mean_reliability(self) -> float:
        """Conventional reliability figure: ``1 - mean flip fraction``."""
        return 1.0 - self.mean_flip_fraction


def flip_fraction(golden, observed) -> float:
    """Fraction of bits that differ between golden and observed responses."""
    return fractional_hd(golden, observed)


def reliability(goldens: Sequence, observeds: Sequence) -> ReliabilityReport:
    """Per-chip flip fractions aggregated over a population.

    ``goldens[i]`` and ``observeds[i]`` are the enrolment and regeneration
    responses of chip ``i``.
    """
    if len(goldens) != len(observeds):
        raise ValueError("goldens and observeds must pair up one chip each")
    if not len(goldens):
        raise ValueError("need at least one chip")
    if (
        isinstance(goldens, np.ndarray)
        and isinstance(observeds, np.ndarray)
        and goldens.ndim == 2
        and goldens.shape == observeds.shape
    ):
        # batched fast path: (n_chips, n_bits) response matrices straight
        # from a BatchStudy — one vectorised XOR instead of a chip loop
        if goldens.shape[1] == 0:
            raise ValueError("empty responses have no Hamming distance")
        per_chip = (
            np.count_nonzero(goldens != observeds, axis=1) / goldens.shape[1]
        )
    else:
        per_chip = np.array(
            [flip_fraction(g, o) for g, o in zip(goldens, observeds)]
        )
    return ReliabilityReport(
        mean_flip_fraction=float(per_chip.mean()),
        std_flip_fraction=float(per_chip.std(ddof=1)) if per_chip.size > 1 else 0.0,
        worst_flip_fraction=float(per_chip.max()),
        per_chip=per_chip,
    )


def flip_curve(
    goldens: Sequence, observed_by_time: Sequence[Sequence]
) -> List[ReliabilityReport]:
    """Reliability reports along a time (or corner) sweep.

    ``observed_by_time[k]`` holds the population's responses at sweep point
    ``k``; the result is one report per sweep point — the series behind the
    paper's bit-flips-versus-years figure.
    """
    return [reliability(goldens, observed) for observed in observed_by_time]
