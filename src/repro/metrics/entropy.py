"""Entropy accounting for PUF response material.

A 128-bit key needs at least 128 bits of min-entropy in the material the
fuzzy extractor condenses — minus what the helper data gives away.  This
module provides the standard estimators used for that accounting:

* **per-bit Shannon/min-entropy across the population** — from the
  bit-aliasing probabilities (position ``j`` biased to 0.9 carries only
  ``-log2(0.9) = 0.152`` bits of min-entropy against the population
  distribution);
* **pairwise-collision entropy bound** — from the inter-chip HD
  distribution (correlated responses collide more than ideal);
* **extractable-key budget** — response min-entropy minus the
  ``n - k`` bits of helper-data leakage of a code-offset sketch.

The numbers quantify the E3/E4 story: the conventional RO-PUF's
systematic bias does not just look bad, it costs key material.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..ecc.concatenated import KeyCodec
from .aliasing import bit_aliasing


def shannon_bits(p: float) -> float:
    """Shannon entropy of a Bernoulli(p) bit."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be a probability")
    if p in (0.0, 1.0):
        return 0.0
    return float(-p * np.log2(p) - (1 - p) * np.log2(1 - p))


def min_entropy_bits(p: float) -> float:
    """Min-entropy of a Bernoulli(p) bit: ``-log2(max(p, 1-p))``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be a probability")
    return float(-np.log2(max(p, 1.0 - p)))


@dataclass(frozen=True)
class EntropyReport:
    """Population entropy figures for one design's response material."""

    n_bits: int
    shannon_per_bit: float
    min_entropy_per_bit: float
    total_min_entropy: float

    @property
    def efficiency(self) -> float:
        """Min-entropy per physical response bit (1.0 = ideal)."""
        return self.min_entropy_per_bit


def response_entropy(responses: Sequence) -> EntropyReport:
    """Estimate population entropy from one response per chip.

    Per-position Bernoulli estimates come from the bit-aliasing
    probabilities; totals assume independent positions (an upper bound —
    disjoint pairing makes it tight, chain pairing does not).
    """
    report = bit_aliasing(responses)
    shannon = float(np.mean([shannon_bits(p) for p in report.per_bit]))
    min_e = float(np.mean([min_entropy_bits(p) for p in report.per_bit]))
    n_bits = report.per_bit.size
    return EntropyReport(
        n_bits=n_bits,
        shannon_per_bit=shannon,
        min_entropy_per_bit=min_e,
        total_min_entropy=min_e * n_bits,
    )


def extractable_key_bits(report: EntropyReport, codec: KeyCodec) -> float:
    """Key material left after the code-offset sketch's leakage.

    The helper string of a linear ``(n, k)`` sketch reveals at most
    ``n - k`` bits about the response, so per block at most
    ``min_entropy(n response bits) - (n - k)`` bits survive into the key.
    Negative results mean the configuration is *unsound*: it leaks more
    than the response material carries.
    """
    per_bit = report.min_entropy_per_bit
    blocks = codec.n_blocks
    n, k = codec.code.n, codec.code.k
    per_block = per_bit * n - (n - k)
    return blocks * per_block


def collision_entropy_from_hd(mean_hd: float, n_bits: int) -> float:
    """Population collision-entropy bound from the mean inter-chip HD.

    Two independent draws from the population agree in one position with
    probability ``p_match^2 + (1 - p_match)^2`` where ``p_match = 1 - HD``
    ... i.e. the per-position collision probability is bounded by the
    observed match rate, giving ``H2 >= -n * log2(match rate)`` for
    independent positions.  At HD = 0.5 this returns exactly ``n_bits``.
    """
    if not 0.0 <= mean_hd <= 1.0:
        raise ValueError("mean_hd must be in [0, 1]")
    if n_bits < 1:
        raise ValueError("n_bits must be positive")
    p_match = 1.0 - mean_hd
    return float(-n_bits * np.log2(max(p_match, 1e-12)))
