"""Hamming-distance primitives shared by all PUF quality metrics."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _as_bits(x) -> np.ndarray:
    arr = np.asarray(x)
    if not np.all((arr == 0) | (arr == 1)):
        raise ValueError("responses must be 0/1 bit arrays")
    return arr.astype(np.uint8)


def hamming_distance(a, b) -> int:
    """Number of positions where two equal-length bit vectors differ."""
    a, b = _as_bits(a), _as_bits(b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return int(np.count_nonzero(a != b))


def fractional_hd(a, b) -> float:
    """Hamming distance normalised by the vector length."""
    a = _as_bits(a)
    if a.size == 0:
        raise ValueError("empty responses have no Hamming distance")
    return hamming_distance(a, b) / a.size


def _upper_triangle_hd(mat: np.ndarray):
    """Fractional HDs over the strict upper triangle of a response matrix.

    ``mat`` is a validated ``(n, width)`` bit matrix; returns
    ``(iu, ju, vals)`` where ``vals[k]`` is the fractional HD between rows
    ``iu[k]`` and ``ju[k]`` — the XOR-on-the-upper-triangle kernel shared
    by :func:`pairwise_fractional_hd` and :func:`hd_matrix`.
    """
    n, width = mat.shape
    if width == 0:
        raise ValueError("responses are empty")
    iu, ju = np.triu_indices(n, k=1)
    vals = (mat[iu] ^ mat[ju]).sum(axis=1) / width
    return iu, ju, vals


def pairwise_fractional_hd(responses: Sequence) -> np.ndarray:
    """Fractional HDs between all unordered pairs of responses.

    ``responses`` is a sequence of equal-length bit vectors (or a 2-D
    array, rows = responses).  Returns the flat vector of
    ``n*(n-1)/2`` pairwise fractional distances, the raw material of the
    inter-chip uniqueness statistic.
    """
    mat = np.stack([_as_bits(r) for r in responses])
    if mat.shape[0] < 2:
        raise ValueError("need at least two responses")
    _, _, vals = _upper_triangle_hd(mat)
    return vals


def hd_matrix(responses: Sequence) -> np.ndarray:
    """Full symmetric matrix of pairwise fractional HDs (zero diagonal)."""
    mat = np.stack([_as_bits(r) for r in responses])
    iu, ju, vals = _upper_triangle_hd(mat)
    out = np.zeros((mat.shape[0],) * 2)
    out[iu, ju] = vals
    out[ju, iu] = vals
    return out
