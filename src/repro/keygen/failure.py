"""Key-failure analysis: analytic bounds plus Monte-Carlo validation.

The design-space search relies on the analytic binomial model
(:meth:`repro.ecc.KeyCodec.key_failure_probability`); this module also
provides an empirical estimator that exercises the *actual* decoder on
synthetic error patterns, used by the test suite to validate the analytic
model end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from .._rng import RngLike, as_generator
from ..ecc.concatenated import KeyCodec
from .fuzzy_extractor import FuzzyExtractor, KeyRecoveryError


@dataclass(frozen=True)
class FailureEstimate:
    """Empirical key-failure estimate with a confidence interval."""

    failures: int
    trials: int
    p_hat: float
    ci_low: float
    ci_high: float


def analytic_key_failure(codec: KeyCodec, p: float) -> float:
    """Analytic key-failure probability at raw bit-error rate ``p``."""
    return codec.key_failure_probability(p)


def required_correction(p: float, n: int, target: float) -> int:
    """Smallest ``t`` such that ``P[Binomial(n, p) > t] <= target``.

    A convenience for sizing a standalone BCH code: how many errors must a
    length-``n`` block correct to meet the block-failure target.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be a probability")
    if target <= 0:
        raise ValueError("target must be positive")
    for t in range(n + 1):
        if stats.binom.sf(t, n, p) <= target:
            return t
    return n


def empirical_key_failure(
    extractor: FuzzyExtractor,
    p: float,
    trials: int = 200,
    rng: RngLike = None,
) -> FailureEstimate:
    """Monte-Carlo the full enrol -> corrupt -> reproduce pipeline.

    A trial fails when the reproduced key differs from the enrolled one
    (silent miscorrection) or the decoder reports an unrecoverable word.
    The confidence interval is the 95 % Wilson interval.
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    gen = as_generator(rng)
    n_bits = extractor.response_bits
    failures = 0
    for _ in range(trials):
        response = gen.integers(0, 2, n_bits).astype(np.uint8)
        helper, key = extractor.enroll(response, rng=gen)
        noise = (gen.random(n_bits) < p).astype(np.uint8)
        try:
            key2 = extractor.reproduce(response ^ noise, helper)
            if key2 != key:
                failures += 1
        except KeyRecoveryError:
            failures += 1

    p_hat = failures / trials
    z = 1.959963984540054  # 97.5th normal percentile
    denom = 1 + z**2 / trials
    center = (p_hat + z**2 / (2 * trials)) / denom
    half = (
        z
        * np.sqrt(p_hat * (1 - p_hat) / trials + z**2 / (4 * trials**2))
        / denom
    )
    return FailureEstimate(
        failures=failures,
        trials=trials,
        p_hat=p_hat,
        ci_low=max(0.0, center - half),
        ci_high=min(1.0, center + half),
    )
