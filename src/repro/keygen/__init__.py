"""Key generation: fuzzy extractor, failure analysis, design-space search."""

from .design import (
    DEFAULT_REPETITIONS,
    KeygenDesignPoint,
    best_design,
    search_design_space,
)
from .failure import (
    FailureEstimate,
    analytic_key_failure,
    empirical_key_failure,
    required_correction,
)
from .fuzzy_extractor import FuzzyExtractor, KeyRecoveryError
from .helper import HelperData

__all__ = [
    "DEFAULT_REPETITIONS",
    "FailureEstimate",
    "FuzzyExtractor",
    "HelperData",
    "KeyRecoveryError",
    "KeygenDesignPoint",
    "analytic_key_failure",
    "best_design",
    "empirical_key_failure",
    "required_correction",
    "search_design_space",
]
