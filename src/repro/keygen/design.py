"""Key-generator design-space search: the machinery behind the 24x claim.

Given a raw response bit-error probability ``p`` (the 10-year aged figure
from experiment E2), a key width, and a key-failure target, search the
(repetition factor, BCH code) plane for the *minimum-total-area*
configuration, where total area is

    PUF array sized to source the raw bits  +  ECC decoder datapath.

The aged conventional RO-PUF (p ~ 0.32) forces a heavy repetition inner
code (raw-bit blow-up) *and* a strong outer BCH (big decoder); the ARO-PUF
(p ~ 0.077) gets away with a light configuration.  The area ratio between
the two optima is the paper's ~24x result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.base import PufDesign
from ..ecc.area import keygen_area
from ..ecc.bch import BchCode, standard_codes
from ..ecc.concatenated import ConcatenatedCode, KeyCodec
from ..ecc.repetition import RepetitionCode

#: repetition factors explored by default (odd, 1 = no inner code)
DEFAULT_REPETITIONS = (1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 25, 29, 33)


@dataclass(frozen=True)
class KeygenDesignPoint:
    """One feasible key-generator configuration with its cost breakdown."""

    codec: KeyCodec
    key_failure: float
    raw_bits: int
    n_ros: int
    puf_area: float
    ecc_area: float

    @property
    def total_area(self) -> float:
        return self.puf_area + self.ecc_area

    def describe(self) -> str:
        return (
            f"{self.codec}: raw_bits={self.raw_bits} n_ros={self.n_ros} "
            f"P_fail={self.key_failure:.2e} "
            f"area={self.total_area / 1e3:.1f}e3 um^2 "
            f"(PUF {self.puf_area / 1e3:.1f}, ECC {self.ecc_area / 1e3:.1f})"
        )


def _ros_for_bits(design: PufDesign, raw_bits: int) -> int:
    """Oscillators needed to source ``raw_bits`` response bits."""
    # invert the pairing's bit yield; all schemes here are ~linear, so walk
    # up from the information-theoretic minimum
    n_ros = max(2, raw_bits)
    low, high = 2, 4 * raw_bits + 4
    while low < high:
        mid = (low + high) // 2
        if design.pairing.n_bits(mid) >= raw_bits:
            high = mid
        else:
            low = mid + 1
    return low


def search_design_space(
    p: float,
    design: PufDesign,
    *,
    key_bits: int = 128,
    failure_target: float = 1.0e-6,
    repetitions: Sequence[int] = DEFAULT_REPETITIONS,
    bch_palette: Optional[List[BchCode]] = None,
    max_raw_bits: int = 200_000,
) -> List[KeygenDesignPoint]:
    """All feasible design points, sorted by total area (best first).

    ``design`` supplies the oscillator cell, readout and technology used to
    cost the PUF array (it is resized per candidate via
    :meth:`PufDesign.with_n_ros`).
    """
    if not 0.0 <= p < 0.5:
        raise ValueError("raw bit-error probability must be in [0, 0.5)")
    if failure_target <= 0:
        raise ValueError("failure_target must be positive")
    palette = bch_palette if bch_palette is not None else standard_codes()
    points: List[KeygenDesignPoint] = []
    for r in repetitions:
        inner = RepetitionCode(r)
        for outer in palette:
            codec = KeyCodec(
                code=ConcatenatedCode(outer=outer, inner=inner),
                key_bits=key_bits,
            )
            if codec.raw_bits > max_raw_bits:
                continue
            pf = codec.key_failure_probability(p)
            if pf > failure_target:
                continue
            n_ros = _ros_for_bits(design, codec.raw_bits)
            sized = design.with_n_ros(n_ros)
            points.append(
                KeygenDesignPoint(
                    codec=codec,
                    key_failure=pf,
                    raw_bits=codec.raw_bits,
                    n_ros=n_ros,
                    puf_area=sized.puf_area(),
                    ecc_area=keygen_area(codec, design.tech).total,
                )
            )
    points.sort(key=lambda pt: pt.total_area)
    return points


def best_design(
    p: float,
    design: PufDesign,
    *,
    key_bits: int = 128,
    failure_target: float = 1.0e-6,
    **kwargs,
) -> KeygenDesignPoint:
    """The minimum-area feasible configuration (raises if none exists)."""
    points = search_design_space(
        p, design, key_bits=key_bits, failure_target=failure_target, **kwargs
    )
    if not points:
        raise ValueError(
            f"no feasible key generator at p={p} within the searched space; "
            "widen the repetition/BCH palette or relax the target"
        )
    return points[0]
