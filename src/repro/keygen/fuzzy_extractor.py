"""Code-offset fuzzy extractor: stable keys from noisy PUF responses.

The classic secure-sketch + strong-extractor construction (Dodis et al.),
as PUF key generators deploy it.  Enrolment (in the secure facility)::

    message  <- uniform random bits              (masking randomness)
    codeword  = codec.encode(message)
    helper    = codeword XOR response            (public)
    key       = SHA-256(response)[:key_bits]     (secret, never stored)

Reproduction (in the field, with an aged/noisy response)::

    codeword' = helper XOR response'             (= codeword XOR error)
    codeword  = codec.correct(codeword')         (bounded-distance decode)
    response  = helper XOR codeword              (exact enrolled response)
    key'      = SHA-256(response)[:key_bits]

``key' == key`` whenever the error pattern stays within the codec's
correction power — the link between the bit-flip experiments (E2/E5) and
the ECC design space (E6).  Because the key is extracted from the
*response*, each chip's key is unique by construction; the random message
only serves to mask the response inside the public helper string.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .. import telemetry
from .._rng import RngLike, as_generator
from ..ecc.bch import BchDecodingError
from ..ecc.concatenated import KeyCodec
from .helper import HelperData


class KeyRecoveryError(RuntimeError):
    """Raised when the noisy response is beyond the codec's correction
    power and the decoder detects it."""


def _key_from_bits(bits: np.ndarray, key_bits: int) -> bytes:
    digest = hashlib.sha256(np.packbits(bits).tobytes()).digest()
    n_bytes = -(-key_bits // 8)
    if n_bytes > len(digest):
        raise ValueError("key_bits exceeds one SHA-256 output; use <= 256")
    return digest[:n_bytes]


@dataclass(frozen=True)
class FuzzyExtractor:
    """A code-offset fuzzy extractor bound to one key codec."""

    codec: KeyCodec

    @property
    def response_bits(self) -> int:
        """PUF response bits consumed per key."""
        return self.codec.raw_bits

    @property
    def key_bits(self) -> int:
        return self.codec.key_bits

    def enroll(self, response, rng: RngLike = None) -> Tuple[HelperData, bytes]:
        """One-time enrolment: returns (public helper data, secret key)."""
        telemetry.count("keygen.enrolls")
        resp = self._check_response(response)
        gen = as_generator(rng)
        message = gen.integers(0, 2, self.codec.message_bits).astype(np.uint8)
        codeword = self.codec.encode(message)
        helper = HelperData(
            offset=codeword ^ resp, codec_spec=str(self.codec)
        )
        return helper, _key_from_bits(resp, self.key_bits)

    def reproduce(self, response, helper: HelperData) -> bytes:
        """Field-side key regeneration from a noisy/aged response."""
        resp = self._check_response(response)
        if helper.codec_spec != str(self.codec):
            raise ValueError(
                f"helper data was enrolled with codec {helper.codec_spec!r}, "
                f"not {self.codec!s}"
            )
        if helper.n_bits != self.response_bits:
            raise ValueError("helper data length does not match the codec")
        shifted = helper.offset ^ resp
        try:
            codeword = self.codec.correct(shifted)
        except BchDecodingError as exc:
            telemetry.count("keygen.reproduce_failures")
            raise KeyRecoveryError(
                f"response drifted beyond the correction power: {exc}"
            ) from exc
        telemetry.count("keygen.reproduce_ok")
        recovered = helper.offset ^ codeword
        return _key_from_bits(recovered, self.key_bits)

    def _check_response(self, response) -> np.ndarray:
        resp = np.asarray(response)
        if resp.shape != (self.response_bits,):
            raise ValueError(
                f"this extractor consumes {self.response_bits} response "
                f"bits, got shape {resp.shape}"
            )
        if not np.all((resp == 0) | (resp == 1)):
            raise ValueError("response must be a 0/1 bit vector")
        return resp.astype(np.uint8)
