"""Helper data: the public side-information of the fuzzy extractor.

The code-offset construction stores ``offset = codeword XOR response``.
The offset is public: because the code is linear and the codeword is a
uniformly random message's encoding, the offset leaks (in the
information-theoretic sense) at most ``n - k`` bits about the response,
leaving the message bits as extractable secret material.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class HelperData:
    """Public helper string produced at enrolment.

    Attributes
    ----------
    offset:
        ``codeword XOR response`` bit vector (``raw_bits`` long).
    codec_spec:
        Human-readable description of the codec used (sanity-checked at
        reproduction time so helper data is never fed to the wrong codec).
    """

    offset: np.ndarray
    codec_spec: str

    def __post_init__(self) -> None:
        arr = np.asarray(self.offset)
        if arr.ndim != 1 or not np.all((arr == 0) | (arr == 1)):
            raise ValueError("offset must be a 1-D 0/1 bit vector")
        object.__setattr__(self, "offset", arr.astype(np.uint8))

    @property
    def n_bits(self) -> int:
        return int(self.offset.size)

    def to_bytes(self) -> bytes:
        """Serialise the offset (for storage in NVM)."""
        return np.packbits(self.offset).tobytes()

    @classmethod
    def from_bytes(cls, blob: bytes, n_bits: int, codec_spec: str) -> "HelperData":
        """Deserialise an offset previously stored with :meth:`to_bytes`."""
        bits = np.unpackbits(np.frombuffer(blob, dtype=np.uint8))
        if bits.size < n_bits:
            raise ValueError("blob too short for the declared bit count")
        return cls(offset=bits[:n_bits], codec_spec=codec_spec)
