"""Technology cards: every process-dependent constant in one place.

The paper evaluates the ARO-PUF with HSPICE on a 90 nm predictive technology
model (PTM).  We replace SPICE with an analytic alpha-power-law delay model
(see :mod:`repro.transistor.mosfet`), so a "technology card" here bundles

* nominal device electrical parameters (``vdd``, threshold voltages, the
  velocity-saturation exponent ``alpha``),
* temperature coefficients,
* process-variation magnitudes (inter-die, intra-die random, systematic
  layout gradient),
* aging-model constants (NBTI and HCI), and
* an area table used by the ECC/key design-space experiments.

The calibration constants were chosen so that the mechanistic simulation
reproduces the abstract's anchors (32 %/7.7 % aged bit flips, ~45 %/49.67 %
inter-chip HD); the derivation is sketched next to each constant and in
DESIGN.md §5.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict

#: Boltzmann constant in eV/K, used for the NBTI temperature acceleration.
BOLTZMANN_EV = 8.617333262e-5

#: Reference ambient temperature for all nominal quantities, in Kelvin.
T_REF_K = 298.15


@dataclass(frozen=True)
class AreaTable:
    """Standard-cell area figures, in square micrometres.

    The absolute values follow typical 90 nm standard-cell libraries; only
    the *ratios* matter for the ECC/PUF area comparison (experiment E6).
    """

    inverter: float = 4.9
    nand2: float = 5.9
    nor2: float = 5.9
    xor2: float = 11.8
    mux2: float = 8.8
    dff: float = 22.1
    and2: float = 5.9
    #: per-bit area of a ripple counter (flip-flop + half-adder glue)
    counter_bit: float = 29.0
    #: a 2:1 analog-style transmission gate (used by the ARO recovery mux)
    tgate: float = 3.4

    def scaled(self, factor: float) -> "AreaTable":
        """Return a copy with every entry multiplied by ``factor``."""
        return AreaTable(
            **{f.name: getattr(self, f.name) * factor for f in dataclasses.fields(self)}
        )


@dataclass(frozen=True)
class NbtiParameters:
    """Long-term NBTI model constants (reaction-diffusion form).

    The per-device threshold shift after ``t`` years at stress probability
    (duty factor) ``alpha`` is::

        dVth = A_dev * k(T) * (alpha * t) ** n      [volts]

    with ``A_dev`` log-normally distributed around :attr:`a_mean`
    (coefficient of variation :attr:`a_cv`) to capture the large
    device-to-device NBTI variability of deeply scaled technologies, and
    ``k(T) = exp(-Ea/kB * (1/T - 1/T_ref))`` the Arrhenius acceleration.
    """

    #: mean threshold shift after 1 year of DC stress at T_ref, in volts.
    #: 0.046 V/year^n with n = 1/6 gives ~68 mV after 10 years of DC stress
    #: at T_ref (~82 mV at the 45 degC mission temperature), in the range
    #: published for worst-case 90 nm DC NBTI.
    a_mean: float = 0.046
    #: coefficient of variation of the per-device prefactor.  Deep-submicron
    #: NBTI is dominated by a handful of interface traps per device, so the
    #: spread exceeds the mean; 1.2 (with the 0.30 V saturation below)
    #: calibrates the conventional RO-PUF to the paper's 32 % 10-year flip
    #: rate (DESIGN.md §5, tools/calibrate.py).
    a_cv: float = 1.2
    #: time/duty exponent of the reaction-diffusion model (H2 diffusion).
    n: float = 1.0 / 6.0
    #: activation energy in eV for the Arrhenius temperature acceleration.
    ea: float = 0.08
    #: fractional long-term recovery when stress is removed.  Applied to
    #: the *relaxable* component when a device spends part of its life in
    #: the recovery state.
    recovery_fraction: float = 0.30
    #: PBTI (NMOS) severity relative to NBTI.  Small for the SiON 90 nm
    #: node the paper targets; nonzero so parked-high inputs still age the
    #: pull-down network a little.
    pbti_factor: float = 0.02
    #: hard saturation of the BTI threshold shift, volts.  The interface
    #: trap density a device can generate is finite, so the log-normal
    #: prefactor tail must not produce shifts beyond the physical range.
    max_shift: float = 0.30


@dataclass(frozen=True)
class HciParameters:
    """Hot-carrier-injection model constants.

    HCI damage accrues per switching event; for an oscillator running at
    frequency ``f`` for active time ``t_act``::

        dVth = B_dev * (f * t_act / f0_t0) ** m     [volts]

    ``B_dev`` is log-normal around :attr:`b_mean`.  ``f0_t0`` normalises the
    transition count so that :attr:`b_mean` is the shift after one year of
    continuous 1 GHz switching.
    """

    b_mean: float = 0.006
    b_cv: float = 0.5
    m: float = 0.45
    #: hard saturation of the HCI threshold shift, volts
    max_shift: float = 0.15
    #: normalisation: transitions in one year of continuous 1 GHz operation.
    ref_transitions: float = 1.0e9 * 365.25 * 86400.0


@dataclass(frozen=True)
class VariationParameters:
    """Process-variation magnitudes (threshold-voltage sigmas, in volts)."""

    #: inter-die (chip-wide) Vth shift applied to every device on a chip.
    #: Common-mode for RO comparisons, so it barely affects responses; kept
    #: for physical fidelity of absolute frequencies.
    sigma_inter_die: float = 0.015
    #: intra-die random (device-level) mismatch; the entropy source of the
    #: PUF.  20 mV is a typical AVT/sqrt(WL) figure for minimum-size 90 nm
    #: devices.
    sigma_intra_die: float = 0.020
    #: systematic layout-induced component: identical across chips at equal
    #: die coordinates.  ~0.5 * sigma_intra_die drags the conventional
    #: RO-PUF inter-chip HD to ~45 % (DESIGN.md §5, tools/calibrate.py);
    #: the ARO's symmetric cell cancels it differentially.
    sigma_systematic: float = 0.0097
    #: correlation length of the smooth intra-die spatial component, in
    #: units of the RO grid pitch.
    correlation_length: float = 4.0
    #: fraction of the intra-die variance carried by the spatially
    #: correlated (smooth) component; the rest is white device mismatch.
    correlated_fraction: float = 0.2


@dataclass(frozen=True)
class TechnologyCard:
    """A complete set of process constants for one technology node."""

    name: str = "ptm90"
    #: nominal supply voltage, volts
    vdd: float = 1.2
    #: nominal NMOS threshold voltage, volts
    vth_n: float = 0.25
    #: nominal PMOS threshold magnitude, volts
    vth_p: float = 0.25
    #: alpha-power-law velocity-saturation exponent
    alpha: float = 1.3
    #: drive constant: inverter output current at (vdd - vth) = 1 V, amps.
    #: Sets the absolute frequency scale (~1 GHz for a 5-stage 90 nm RO
    #: with realistic wire and counter-input loading).
    k_drive: float = 3.2e-5
    #: switched load capacitance per ring stage, farads
    c_load: float = 2.4e-15
    #: threshold temperature coefficient, volts per kelvin (Vth decreases
    #: with temperature)
    vth_tc: float = -0.8e-3
    #: mobility temperature exponent: mu(T) = mu0 * (T/T_ref)**mobility_exp
    mobility_exp: float = -1.4
    #: relative device-to-device mismatch of the temperature coefficients;
    #: sets how much of a temperature excursion turns into differential
    #: (bit-flipping) frequency shift rather than common mode.
    tc_mismatch_cv: float = 0.04
    #: relative 1-sigma per-evaluation frequency jitter (supply/thermal
    #: noise within one measurement window)
    eval_jitter: float = 5.0e-4
    nbti: NbtiParameters = field(default_factory=NbtiParameters)
    hci: HciParameters = field(default_factory=HciParameters)
    variation: VariationParameters = field(default_factory=VariationParameters)
    area: AreaTable = field(default_factory=AreaTable)

    def replace(self, **changes) -> "TechnologyCard":
        """Return a copy of the card with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    @property
    def gate_overdrive(self) -> float:
        """Nominal gate overdrive ``vdd - vth`` (volts, NMOS figure)."""
        return self.vdd - self.vth_n


def ptm90() -> TechnologyCard:
    """The default 90 nm predictive-technology-like card used by the paper."""
    return TechnologyCard()


def ptm45() -> TechnologyCard:
    """A 45 nm-like card: lower Vdd, larger mismatch, faster gates.

    Provided for technology-scaling studies; the paper's evaluation uses
    the 90 nm card.
    """
    return TechnologyCard(
        name="ptm45",
        vdd=1.0,
        vth_n=0.22,
        vth_p=0.22,
        alpha=1.25,
        k_drive=2.8e-5,
        c_load=1.1e-15,
        variation=VariationParameters(
            sigma_inter_die=0.018,
            sigma_intra_die=0.028,
            sigma_systematic=0.012,
        ),
        area=AreaTable().scaled(0.30),
    )


_REGISTRY: Dict[str, TechnologyCard] = {}


def register(card: TechnologyCard) -> None:
    """Add ``card`` to the by-name registry used by :func:`get_technology`."""
    _REGISTRY[card.name] = card


def get_technology(name: str) -> TechnologyCard:
    """Look up a technology card by name (``"ptm90"`` or ``"ptm45"``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown technology {name!r}; known: {known}") from None


register(ptm90())
register(ptm45())
