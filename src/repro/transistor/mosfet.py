"""Analytic MOSFET drive/delay model (alpha-power law).

This module stands in for the HSPICE + PTM device layer of the paper.  The
only device property the PUF ultimately consumes is the propagation delay of
each inverting stage as a function of each transistor's threshold voltage,
the supply, and the temperature, so we model exactly that:

* Saturation drive current follows Sakurai-Newton's alpha-power law,
  ``I_d = k * mu(T)/mu0 * (vdd - vth(T))**alpha``.
* A stage transition (output rising through the PMOS, or falling through
  the NMOS) takes ``t = c_load * vdd / I_d``.
* Temperature acts through carrier mobility (``(T/T0)**mobility_exp``) and
  through the threshold voltage (linear ``vth_tc`` shift).

All functions are vectorised: ``vth`` may be any numpy array and the result
has the same shape.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .technology import T_REF_K, TechnologyCard

ArrayLike = Union[float, np.ndarray]


def vth_at_temperature(
    vth: ArrayLike,
    temperature_k: float,
    tech: TechnologyCard,
    tc_scale: Optional[ArrayLike] = None,
) -> np.ndarray:
    """Threshold voltage (magnitude) at ``temperature_k``.

    ``tc_scale`` optionally carries per-device multiplicative mismatch of
    the temperature coefficient (1.0 = nominal); this is what converts a
    temperature excursion into *differential* frequency shift between two
    ROs, the quantity that can flip bits.
    """
    vth = np.asarray(vth, dtype=float)
    delta_t = temperature_k - T_REF_K
    tc = tech.vth_tc if tc_scale is None else tech.vth_tc * np.asarray(tc_scale)
    # vth_tc < 0: thresholds shrink with temperature (for both polarities we
    # track magnitudes, which shrink symmetrically to first order).
    return vth + tc * delta_t


def mobility_factor(temperature_k: float, tech: TechnologyCard) -> float:
    """Mobility degradation factor ``mu(T)/mu(T_ref)`` (dimensionless)."""
    if temperature_k <= 0:
        raise ValueError("temperature must be positive kelvin")
    return float((temperature_k / T_REF_K) ** tech.mobility_exp)


def drive_current(
    vth: ArrayLike,
    tech: TechnologyCard,
    *,
    vdd: Optional[float] = None,
    temperature_k: float = T_REF_K,
    tc_scale: Optional[ArrayLike] = None,
) -> np.ndarray:
    """Saturation drive current of a device with threshold ``vth`` (amps).

    Raises :class:`ValueError` if any device would have no overdrive at the
    requested supply (the RO would simply not oscillate; better to fail
    loudly than return garbage frequencies).
    """
    vdd_eff = tech.vdd if vdd is None else float(vdd)
    vth_t = vth_at_temperature(vth, temperature_k, tech, tc_scale)
    overdrive = vdd_eff - vth_t
    if np.any(overdrive <= 0):
        raise ValueError(
            "non-positive gate overdrive: vdd={:.3f} V cannot turn on a "
            "device with vth up to {:.3f} V".format(vdd_eff, float(np.max(vth_t)))
        )
    mu = mobility_factor(temperature_k, tech)
    return tech.k_drive * mu * overdrive**tech.alpha


def transition_delay(
    vth: ArrayLike,
    tech: TechnologyCard,
    *,
    vdd: Optional[float] = None,
    temperature_k: float = T_REF_K,
    tc_scale: Optional[ArrayLike] = None,
    c_load: Optional[float] = None,
) -> np.ndarray:
    """Propagation delay of one output transition (seconds).

    A rising output transition is driven by the stage PMOS (pass ``vth`` of
    the PMOS), a falling one by the NMOS.  ``c_load`` defaults to the
    technology's per-stage load.
    """
    vdd_eff = tech.vdd if vdd is None else float(vdd)
    cap = tech.c_load if c_load is None else float(c_load)
    current = drive_current(
        vth, tech, vdd=vdd_eff, temperature_k=temperature_k, tc_scale=tc_scale
    )
    return cap * vdd_eff / current


def delay_sensitivity(tech: TechnologyCard) -> float:
    """First-order relative delay sensitivity to a Vth shift, per volt.

    ``d(ln t)/d(vth) = alpha / (vdd - vth)`` — used by the calibration
    notes in DESIGN.md and by fast analytic estimates in tests.
    """
    return tech.alpha / tech.gate_overdrive
