"""Device layer: technology cards and the analytic MOSFET model."""

from .mosfet import (
    delay_sensitivity,
    drive_current,
    mobility_factor,
    transition_delay,
    vth_at_temperature,
)
from .technology import (
    BOLTZMANN_EV,
    T_REF_K,
    AreaTable,
    HciParameters,
    NbtiParameters,
    TechnologyCard,
    VariationParameters,
    get_technology,
    ptm45,
    ptm90,
    register,
)

__all__ = [
    "AreaTable",
    "BOLTZMANN_EV",
    "HciParameters",
    "NbtiParameters",
    "T_REF_K",
    "TechnologyCard",
    "VariationParameters",
    "delay_sensitivity",
    "drive_current",
    "get_technology",
    "mobility_factor",
    "ptm45",
    "ptm90",
    "register",
    "transition_delay",
    "vth_at_temperature",
]
