"""Seeded random-number plumbing shared by every stochastic component.

All Monte-Carlo machinery in :mod:`repro` draws from
:class:`numpy.random.Generator` objects.  To keep experiments reproducible
while still letting independent subsystems (process variation, aging
prefactors, evaluation noise, ...) consume randomness without interfering
with each other, we derive child generators from a single root seed using
``numpy``'s :class:`~numpy.random.SeedSequence` spawning facility.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[int, np.random.Generator, np.random.SeedSequence, None]

#: Default root seed used when an experiment does not specify one.  Fixed so
#: that the benchmark harness regenerates the same tables run after run.
DEFAULT_SEED = 20140324  # DATE 2014 publication date


def as_generator(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts an integer seed, a ``SeedSequence``, an existing generator
    (returned unchanged), or ``None`` (fresh generator from
    :data:`DEFAULT_SEED`).
    """
    if rng is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot make a Generator out of {rng!r}")


def spawn_keys(rng: RngLike, n: int) -> list:
    """The ``n`` child *seed keys* that :func:`spawn` would derive from ``rng``.

    Spawn keys are plain Python ints — the cheap, picklable form of a
    child stream.  ``np.random.default_rng(spawn_keys(rng, n)[i])`` is
    stream-for-stream identical to ``spawn(rng, n)[i]`` (both are defined
    through this function), which is what lets a coordinator ship keys to
    worker processes instead of tensors and still fabricate the exact
    silicon a serial run would.

    **Stability guarantee.**  The derivation is part of the package's
    reproducibility contract and is frozen: one batched draw of ``n``
    int64 values uniform on ``[0, 2**63 - 1)`` from the parent generator,
    key ``i`` being draw ``i``.  Consequences callers may rely on:

    * *stability across calls*: the same parent state and the same ``n``
      always produce the same key list;
    * *parent consumption*: the parent advances by exactly one size-``n``
      ``integers`` draw, so successive calls on one parent yield disjoint
      key lists (mirroring ``SeedSequence.spawn`` semantics without
      keeping the seed sequence around);
    * *no prefix promise*: whether ``spawn_keys(rng, n)`` is a prefix of
      ``spawn_keys(rng, n + 1)`` is an implementation detail of numpy's
      bounded-integer rejection sampling, deliberately outside this
      contract — shard seeding therefore always derives the *full*
      population's keys once and slices, never re-derives per shard.

    Any change to this mapping is a breaking change to every recorded
    seed in ledgers and caches and must bump the package major version.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    gen = as_generator(rng)
    seeds = gen.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [int(s) for s in seeds]


def spawn(rng: RngLike, n: int) -> list:
    """Spawn ``n`` statistically independent child generators from ``rng``.

    The parent generator is consumed (one draw) so repeated calls with the
    same parent yield different children, mirroring ``SeedSequence.spawn``
    semantics without requiring the caller to keep the seed sequence around.
    Defined as ``default_rng`` over :func:`spawn_keys`, so the two stay
    bit-compatible by construction (the parallel engine depends on that).
    """
    return [np.random.default_rng(key) for key in spawn_keys(rng, n)]
