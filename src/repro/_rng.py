"""Seeded random-number plumbing shared by every stochastic component.

All Monte-Carlo machinery in :mod:`repro` draws from
:class:`numpy.random.Generator` objects.  To keep experiments reproducible
while still letting independent subsystems (process variation, aging
prefactors, evaluation noise, ...) consume randomness without interfering
with each other, we derive child generators from a single root seed using
``numpy``'s :class:`~numpy.random.SeedSequence` spawning facility.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[int, np.random.Generator, np.random.SeedSequence, None]

#: Default root seed used when an experiment does not specify one.  Fixed so
#: that the benchmark harness regenerates the same tables run after run.
DEFAULT_SEED = 20140324  # DATE 2014 publication date


def as_generator(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts an integer seed, a ``SeedSequence``, an existing generator
    (returned unchanged), or ``None`` (fresh generator from
    :data:`DEFAULT_SEED`).
    """
    if rng is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot make a Generator out of {rng!r}")


def spawn(rng: RngLike, n: int) -> list:
    """Spawn ``n`` statistically independent child generators from ``rng``.

    The parent generator is consumed (one draw) so repeated calls with the
    same parent yield different children, mirroring ``SeedSequence.spawn``
    semantics without requiring the caller to keep the seed sequence around.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    gen = as_generator(rng)
    seeds = gen.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
