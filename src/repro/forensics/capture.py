"""Margin capture: turn a population study into a per-bit provenance record.

:class:`MarginCollector` is the in-memory tape behind the kernel hook in
:mod:`repro.forensics.hook`: every response evaluation that happens while
a collector is active deposits its signed relative margins, keyed by the
``(t_years, corner)`` that produced them.  :func:`capture_forensics`
drives a study through an aging grid under such a session and assembles
the result — margins, bits, per-mechanism margin shifts and the
enrolment-time forecast — into one :class:`DesignForensics` record.

The capture never alters evaluation: bits come from the engine's own
``responses`` call (the hook runs *after* the comparison), and both
engines produce bit-identical frequency tensors, so a report built with
``--jobs N`` equals the serial one array for array.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..environment.conditions import OperatingConditions
from ..metrics.margins import (
    DEFAULT_HIST_BINS,
    DEFAULT_HIST_LIMIT,
    MarginSummary,
    histogram_edges,
    relative_margins,
    summarize_margins,
)
from .forecast import (
    K_DEFAULT,
    ForecastOutcome,
    MarginForecast,
    classify_bits,
    forecast_at_risk,
    rms_drift,
    score_forecast,
)
from .hook import collector_session

#: Aging grid captured by default: a compact trajectory up to the
#: paper's 10-year horizon (the full experiment sweep uses E2's grid).
DEFAULT_FORENSICS_YEARS: Tuple[float, ...] = (0.5, 2.0, 5.0, 10.0)

#: Default forecast horizon — the paper's headline 10-year point.
DEFAULT_HORIZON = 10.0


def _corner_key(t_years: float, conditions: Optional[OperatingConditions]) -> tuple:
    return (float(t_years), conditions or OperatingConditions.nominal())


class MarginCollector:
    """Bounded LRU tape of signed margins per ``(t_years, corner)``.

    Any object with this ``record`` signature can sit in the hook slot;
    this one computes relative margins from the frequencies the kernel
    hands it and keeps the latest ``max_corners`` grids (re-recording a
    corner overwrites deterministically, so memo-hit re-evaluations are
    idempotent).
    """

    def __init__(self, max_corners: int = 64):
        if max_corners < 1:
            raise ValueError("max_corners must be positive")
        self.max_corners = max_corners
        self._tape: "OrderedDict[tuple, np.ndarray]" = OrderedDict()

    def record(self, frequencies, pairs, t_years, conditions) -> None:
        """Hook entry point: margins from one response evaluation."""
        self.record_margins(
            relative_margins(frequencies, pairs), t_years, conditions
        )

    def record_margins(self, margins, t_years, conditions) -> None:
        """Deposit a pre-computed margin grid (the parallel path's entry)."""
        grid = np.array(margins, dtype=float)  # own copy
        grid.flags.writeable = False
        key = _corner_key(t_years, conditions)
        self._tape[key] = grid
        self._tape.move_to_end(key)
        if len(self._tape) > self.max_corners:
            self._tape.popitem(last=False)

    def margins(
        self,
        t_years: float = 0.0,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """The recorded margin grid for a corner (read-only)."""
        key = _corner_key(t_years, conditions)
        try:
            return self._tape[key]
        except KeyError:
            raise KeyError(
                f"no margins recorded for t={key[0]} at {key[1].describe()}"
            ) from None

    def has(
        self,
        t_years: float = 0.0,
        conditions: Optional[OperatingConditions] = None,
    ) -> bool:
        return _corner_key(t_years, conditions) in self._tape

    def corners(self) -> list:
        """Recorded ``(t_years, conditions)`` keys, oldest first."""
        return list(self._tape)

    def __len__(self) -> int:
        return len(self._tape)


@dataclass(frozen=True)
class DesignForensics:
    """Per-bit provenance of one design's aging trajectory.

    Margins are dimensionless signed fractions (see
    :func:`repro.metrics.margins.relative_margins`); every array is keyed
    or shaped ``(n_chips, n_bits)``.  ``bti_shift`` / ``hci_shift`` are
    the horizon margin shifts under the single-mechanism counterfactuals;
    their gap to the total shift is the (small) mechanism interaction
    through the nonlinear delay model, exposed as
    :meth:`interaction_shift` rather than silently folded into either
    mechanism.
    """

    design: str
    years: Tuple[float, ...]  # captured grid, ascending, starts at 0.0
    t_horizon: float
    pairs: np.ndarray  # (n_bits, 2) RO indices
    margins: Dict[float, np.ndarray]  # year -> (n_chips, n_bits) signed
    bits: Dict[float, np.ndarray]  # year -> (n_chips, n_bits) uint8
    bti_shift: np.ndarray  # (n_chips, n_bits) margin shift, BTI only
    hci_shift: np.ndarray  # (n_chips, n_bits) margin shift, HCI only
    forecast: MarginForecast
    outcome: ForecastOutcome
    hist_edges: np.ndarray  # shared signed-margin bin edges
    histograms: Dict[float, np.ndarray] = field(default_factory=dict)

    # ---- geometry ----------------------------------------------------

    @property
    def n_chips(self) -> int:
        return self.fresh_margins.shape[0]

    @property
    def n_bits(self) -> int:
        return self.fresh_margins.shape[1]

    # ---- derived views -----------------------------------------------

    @property
    def fresh_margins(self) -> np.ndarray:
        return self.margins[0.0]

    @property
    def horizon_margins(self) -> np.ndarray:
        return self.margins[self.t_horizon]

    @property
    def flipped(self) -> np.ndarray:
        """Bits whose horizon response differs from enrolment (bool)."""
        return self.bits[self.t_horizon] != self.bits[0.0]

    @property
    def total_shift(self) -> np.ndarray:
        """Signed margin shift at the horizon (all mechanisms)."""
        return self.horizon_margins - self.fresh_margins

    def interaction_shift(self) -> np.ndarray:
        """Shift not explained by either single-mechanism counterfactual."""
        return self.total_shift - self.bti_shift - self.hci_shift

    def status(self) -> np.ndarray:
        """Per-bit codes: stable / at-risk / flipped (flipped wins)."""
        return classify_bits(self.forecast.at_risk, self.flipped)

    def oriented_margins(self, t_years: Optional[float] = None) -> np.ndarray:
        """Margins re-signed so positive means "holding the enrolled bit".

        ``m(t) * sign(m(0))``: positive cells still read the enrolment
        response, negative cells have flipped — the natural quantity to
        plot on a diverging scale.  Knife-edge enrolment margins of
        exactly zero keep their aged sign.
        """
        t = self.t_horizon if t_years is None else float(t_years)
        sign = np.sign(self.fresh_margins)
        sign[sign == 0] = 1.0
        return self.margins[t] * sign

    def summary(self, t_years: float = 0.0) -> MarginSummary:
        """|margin| distribution summary at ``t_years``."""
        return summarize_margins(self.margins[float(t_years)])

    @property
    def flipped_fraction(self) -> float:
        return float(self.flipped.mean())


def capture_forensics(
    study,
    *,
    design_label: Optional[str] = None,
    years: Sequence[float] = DEFAULT_FORENSICS_YEARS,
    t_horizon: float = DEFAULT_HORIZON,
    k: float = K_DEFAULT,
    challenge: Optional[int] = None,
    conditions: Optional[OperatingConditions] = None,
    hist_limit: float = DEFAULT_HIST_LIMIT,
    hist_bins: int = DEFAULT_HIST_BINS,
) -> DesignForensics:
    """Run a study through the aging grid and assemble its forensics.

    ``study`` is either engine (:class:`~repro.core.population.BatchStudy`
    or :class:`~repro.parallel.ParallelBatchStudy`); the capture rides the
    hook installed for the duration of this call, so no engine internals
    are touched and the response bits returned to other callers are
    unchanged.  The enrolment-time forecast consumes the fresh margins
    plus one aggregate drift scalar (see :mod:`repro.forensics.forecast`)
    and is scored against the actual flips at ``t_horizon``.
    """
    grid = sorted({0.0, float(t_horizon), *(float(t) for t in years)})
    if grid[0] < 0.0:
        raise ValueError("years must be non-negative")
    label = design_label or getattr(study.design, "name", "design")
    edges = histogram_edges(hist_limit, hist_bins)
    sp = telemetry.start_span(
        "forensics.capture",
        design=label,
        n_years=len(grid),
        t_horizon=float(t_horizon),
    )
    try:
        collector = MarginCollector()
        bits: Dict[float, np.ndarray] = {}
        histograms: Dict[float, np.ndarray] = {}
        with collector_session(collector):
            for i, t in enumerate(grid):
                bits[t] = study.responses(challenge, t, conditions=conditions)
                histograms[t] = study.margin_histogram(
                    edges, challenge, t, conditions=conditions
                )
                telemetry.progress("forensics.capture", i + 1, len(grid))
        margins = {t: collector.margins(t, conditions) for t in grid}

        pairs = study.design.pairing.pairs(study.design.n_ros, challenge)
        m0 = margins[0.0]
        m_horizon = margins[float(t_horizon)]
        bti_shift = (
            relative_margins(
                study.mechanism_frequencies(t_horizon, "bti", conditions), pairs
            )
            - m0
        )
        hci_shift = (
            relative_margins(
                study.mechanism_frequencies(t_horizon, "hci", conditions), pairs
            )
            - m0
        )

        forecast = forecast_at_risk(m0, rms_drift(m0, m_horizon), k)
        flipped = bits[float(t_horizon)] != bits[0.0]
        outcome = score_forecast(forecast.at_risk, flipped)
        telemetry.count("forensics.captures")
        return DesignForensics(
            design=label,
            years=tuple(grid),
            t_horizon=float(t_horizon),
            pairs=np.asarray(pairs),
            margins=margins,
            bits=bits,
            bti_shift=bti_shift,
            hci_shift=hci_shift,
            forecast=forecast,
            outcome=outcome,
            hist_edges=edges,
            histograms=histograms,
        )
    finally:
        telemetry.end_span(sp)
