"""JSON and heatmap export of forensics records.

The JSON payload is the machine-readable face of ``repro explain`` —
schema-checked in CI by ``tools/validate_metrics.py --explain``.  The
heatmap is a binary PPM (P6) written by hand: the container has no
plotting stack and the repo takes no new dependencies, and a
chips-by-bits margin matrix needs nothing more than pixels.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..metrics.margins import DEFAULT_PERCENTILES
from .capture import DesignForensics
from .forecast import STATUS_LABELS
from .report import bit_rows

#: Version of the ``explain`` JSON payload schema.
EXPLAIN_FORMAT = 1


def _summary_dict(report: DesignForensics, t_years: float) -> dict:
    summary = report.summary(t_years)
    return {
        "n_values": summary.n_values,
        "abs_percentiles": {
            f"p{p:g}": summary.abs_percentiles[p] for p in DEFAULT_PERCENTILES
        },
        "min_abs": summary.min_abs,
        "mean_abs": summary.mean_abs,
    }


def design_payload(
    report: DesignForensics, *, chip: int = 0, top: Optional[int] = 12
) -> dict:
    """JSON-ready dict for one design's forensics record.

    All margin quantities are dimensionless fractions of the pair
    midpoint frequency (multiply by 100 for percent).
    """
    status = report.status()
    mech_bti = float(np.mean(np.abs(report.bti_shift)))
    mech_hci = float(np.mean(np.abs(report.hci_shift)))
    return {
        "design": report.design,
        "n_chips": report.n_chips,
        "n_bits": report.n_bits,
        "years": list(report.years),
        "t_horizon": report.t_horizon,
        "margin_summary": {
            "fresh": _summary_dict(report, 0.0),
            "horizon": _summary_dict(report, report.t_horizon),
        },
        "forecast": {
            "k": report.forecast.k,
            "drift_scale": report.forecast.drift_scale,
            "threshold": report.forecast.threshold,
            "at_risk_fraction": report.forecast.at_risk_fraction,
            "n_bits": report.outcome.n_bits,
            "n_flipped": report.outcome.n_flipped,
            "n_at_risk": report.outcome.n_at_risk,
            "n_caught": report.outcome.n_caught,
            "precision": report.outcome.precision,
            "recall": report.outcome.recall,
        },
        "flipped_fraction": report.flipped_fraction,
        "status_counts": {
            label: int((status == code).sum())
            for code, label in STATUS_LABELS.items()
        },
        "mechanism": {
            "mean_abs_bti_shift": mech_bti,
            "mean_abs_hci_shift": mech_hci,
            "mean_abs_interaction": float(
                np.mean(np.abs(report.interaction_shift()))
            ),
            "bti_share": mech_bti / (mech_bti + mech_hci)
            if (mech_bti + mech_hci) > 0
            else 0.0,
        },
        "histogram": {
            "edges": [float(e) for e in report.hist_edges],
            "counts": {
                f"{t:g}": [int(c) for c in counts]
                for t, counts in sorted(report.histograms.items())
            },
        },
        "chip": {"index": int(chip), "bits": bit_rows(report, chip, top)},
    }


def explain_payload(
    reports: Dict[str, DesignForensics],
    *,
    config: dict,
    chip: int = 0,
    top: Optional[int] = 12,
) -> dict:
    """The full ``repro explain --json`` payload."""
    return {
        "format": EXPLAIN_FORMAT,
        "kind": "explain",
        "config": dict(config),
        "designs": {
            name: design_payload(rep, chip=chip, top=top)
            for name, rep in reports.items()
        },
    }


def write_explain_json(path: Union[str, Path], payload: dict) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


# ---------------------------------------------------------------------------
# heatmap (hand-rolled binary PPM, no plotting dependency)
# ---------------------------------------------------------------------------

# Diverging blue-white-red anchors (ColorBrewer RdBu endpoints): blue =
# the cell still reads its enrolment bit with margin to spare, white =
# knife edge, red = the bit has flipped.
_BLUE = np.array([33, 102, 172], dtype=float)
_WHITE = np.array([247, 247, 247], dtype=float)
_RED = np.array([178, 24, 43], dtype=float)


def _diverging_rgb(values: np.ndarray) -> np.ndarray:
    """Map values in [-1, 1] onto the blue-white-red ramp, uint8 RGB."""
    v = np.clip(np.asarray(values, dtype=float), -1.0, 1.0)
    rgb = np.empty(v.shape + (3,), dtype=float)
    pos = v >= 0
    for c in range(3):
        rgb[..., c] = np.where(
            pos,
            _WHITE[c] + (_BLUE[c] - _WHITE[c]) * v,
            _WHITE[c] + (_RED[c] - _WHITE[c]) * (-v),
        )
    return np.clip(np.rint(rgb), 0, 255).astype(np.uint8)


def write_margin_heatmap(
    path: Union[str, Path],
    report: DesignForensics,
    *,
    t_years: Optional[float] = None,
    cell_px: int = 6,
) -> Path:
    """Write a chips-by-bits oriented-margin heatmap as binary PPM.

    Each cell is one (chip, bit): the margin at ``t_years`` (default the
    horizon) re-signed so blue means "still holding the enrolled bit"
    and red means "flipped" (see
    :meth:`DesignForensics.oriented_margins`).  The colour scale is
    normalised to the 98th percentile of |margin| so a few huge margins
    don't wash out the interesting knife-edge cells.
    """
    if cell_px < 1:
        raise ValueError("cell_px must be positive")
    oriented = report.oriented_margins(t_years)
    limit = float(np.percentile(np.abs(oriented), 98.0))
    if limit <= 0.0:
        limit = 1.0
    rgb = _diverging_rgb(oriented / limit)  # (n_chips, n_bits, 3)
    # scale each cell to cell_px x cell_px pixels
    rgb = np.repeat(np.repeat(rgb, cell_px, axis=0), cell_px, axis=1)
    height, width = rgb.shape[:2]
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as fh:
        fh.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        fh.write(rgb.tobytes())
    return path
