"""Bit-level provenance: margin capture, mechanism attribution, forecasts.

The forensics layer answers the questions the run ledger's scalars
cannot: *which* bits flip, how much margin each comparison started with,
and whether NBTI/PBTI or HCI ate that margin.  It hangs off a single
hot-path hook in the batched response kernel (see
:mod:`repro.forensics.hook`), costs one branch when disabled, and never
changes response bits — capture reads the same frequency tensors the
kernel already computed.

``repro.forensics.report`` / ``repro.forensics.export`` (text tables,
JSON payloads, PPM heatmaps) are imported lazily by their callers rather
than re-exported here: ``core.population`` imports this package for the
hook, so the package root must stay clear of the analysis layer.
"""

from .capture import (
    DEFAULT_FORENSICS_YEARS,
    DEFAULT_HORIZON,
    DesignForensics,
    MarginCollector,
    capture_forensics,
)
from .forecast import (
    K_DEFAULT,
    STATUS_AT_RISK,
    STATUS_FLIPPED,
    STATUS_LABELS,
    STATUS_STABLE,
    ForecastOutcome,
    MarginForecast,
    classify_bits,
    forecast_at_risk,
    rms_drift,
    score_forecast,
)
from .hook import (
    active_collector,
    collector_session,
    install_collector,
    record_response_margins,
    uninstall_collector,
)

__all__ = [
    "DEFAULT_FORENSICS_YEARS",
    "DEFAULT_HORIZON",
    "DesignForensics",
    "ForecastOutcome",
    "K_DEFAULT",
    "MarginCollector",
    "MarginForecast",
    "STATUS_AT_RISK",
    "STATUS_FLIPPED",
    "STATUS_LABELS",
    "STATUS_STABLE",
    "active_collector",
    "capture_forensics",
    "classify_bits",
    "collector_session",
    "forecast_at_risk",
    "install_collector",
    "record_response_margins",
    "rms_drift",
    "score_forecast",
    "uninstall_collector",
]
