"""Enrolment-time at-risk forecasting from fresh margins.

The whole point of margin forensics is that a bit's fate is legible
*before* it flips: aging erodes each comparison's margin by an amount
whose population scale is known at enrolment (from the aging model's
characterization), so a bit whose fresh margin is small compared to that
scale is at risk, and one with a large margin is safe.

The forecast here is deliberately honest about what enrolment time can
see.  The per-bit decision uses **only** the bit's fresh margin; the one
piece of aging knowledge it consumes is a single population-aggregate
scalar — the RMS margin drift at the forecast horizon — exactly the kind
of number a datasheet or a characterization lot would provide.  It does
*not* replay the per-device aging trajectory (which would trivially
"forecast" every flip with recall 1.0 and teach nothing).

``at_risk = |fresh_margin| < k * rms_drift``

with ``k`` a safety multiplier.  The default ``k`` is calibrated so the
forecast catches >= ~85 % of actual 10-year flips on the paper's seeded
population for both designs; the anchors layer gates recall >= 0.8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Safety multiplier on the RMS drift scale.  Drift is heavy-tailed
#: across devices (prefactors are lognormal), so catching the tail flips
#: needs a threshold above the RMS; 1.5 holds recall ~0.9 or better on
#: the seeded populations of both designs (and down to the CI smoke
#: scale) while keeping the ARO-PUF's at-risk set at about a third of
#: its bits.  The conventional design's at-risk set saturates near 100 %
#: at any sane ``k`` — its drift scale is comparable to its margin
#: scale, which is exactly the failure the paper's ARO design removes.
K_DEFAULT = 1.5

#: Bit classification codes (stable API: exported in JSON payloads).
STATUS_STABLE = 0
STATUS_AT_RISK = 1
STATUS_FLIPPED = 2

STATUS_LABELS = {
    STATUS_STABLE: "stable",
    STATUS_AT_RISK: "at-risk",
    STATUS_FLIPPED: "flipped",
}


def rms_drift(fresh_margins: np.ndarray, aged_margins: np.ndarray) -> float:
    """Population RMS of the signed margin drift between two epochs.

    This is the aggregate characterization input to the forecast: a
    single scalar over the whole population, not per-bit knowledge.
    """
    drift = np.asarray(aged_margins, dtype=float) - np.asarray(
        fresh_margins, dtype=float
    )
    if drift.size == 0:
        raise ValueError("empty margin arrays")
    return float(np.sqrt(np.mean(np.square(drift))))


@dataclass(frozen=True)
class MarginForecast:
    """An enrolment-time at-risk call for every bit of every chip."""

    k: float
    drift_scale: float  # RMS signed-margin drift at the horizon
    threshold: float  # = k * drift_scale, in margin units
    at_risk: np.ndarray  # bool (n_chips, n_bits)

    @property
    def at_risk_fraction(self) -> float:
        return float(self.at_risk.mean())


def forecast_at_risk(
    fresh_margins: np.ndarray, drift_scale: float, k: float = K_DEFAULT
) -> MarginForecast:
    """Flag bits whose fresh margin is within ``k * drift_scale`` of zero."""
    if drift_scale < 0:
        raise ValueError("drift_scale must be non-negative")
    if k <= 0:
        raise ValueError("k must be positive")
    fresh = np.asarray(fresh_margins, dtype=float)
    threshold = k * float(drift_scale)
    at_risk = np.abs(fresh) < threshold
    return MarginForecast(
        k=float(k),
        drift_scale=float(drift_scale),
        threshold=threshold,
        at_risk=at_risk,
    )


@dataclass(frozen=True)
class ForecastOutcome:
    """The forecast scored against what actually happened at the horizon."""

    n_bits: int
    n_flipped: int
    n_at_risk: int
    n_caught: int  # flipped bits that were flagged at-risk
    precision: float
    recall: float


def score_forecast(at_risk: np.ndarray, flipped: np.ndarray) -> ForecastOutcome:
    """Precision/recall of the at-risk call against actual flips.

    Degenerate cases use the usual conventions: with no actual flips the
    recall is vacuously 1.0; with an empty at-risk set the precision is
    1.0 when nothing flipped and 0.0 otherwise.
    """
    at_risk = np.asarray(at_risk, dtype=bool)
    flipped = np.asarray(flipped, dtype=bool)
    if at_risk.shape != flipped.shape:
        raise ValueError(
            f"shape mismatch: at_risk {at_risk.shape} vs flipped {flipped.shape}"
        )
    n_flipped = int(flipped.sum())
    n_at_risk = int(at_risk.sum())
    n_caught = int((at_risk & flipped).sum())
    recall = n_caught / n_flipped if n_flipped else 1.0
    if n_at_risk:
        precision = n_caught / n_at_risk
    else:
        precision = 1.0 if n_flipped == 0 else 0.0
    return ForecastOutcome(
        n_bits=int(flipped.size),
        n_flipped=n_flipped,
        n_at_risk=n_at_risk,
        n_caught=n_caught,
        precision=float(precision),
        recall=float(recall),
    )


def classify_bits(at_risk: np.ndarray, flipped: np.ndarray) -> np.ndarray:
    """Per-bit status codes: flipped wins over at-risk wins over stable."""
    at_risk = np.asarray(at_risk, dtype=bool)
    flipped = np.asarray(flipped, dtype=bool)
    if at_risk.shape != flipped.shape:
        raise ValueError(
            f"shape mismatch: at_risk {at_risk.shape} vs flipped {flipped.shape}"
        )
    status = np.zeros(at_risk.shape, dtype=np.int8)
    status[at_risk] = STATUS_AT_RISK
    status[flipped] = STATUS_FLIPPED
    return status
