"""Plain-text rendering of forensics records for the ``explain`` CLI.

Margins are dimensionless fractions internally; everything rendered here
is in percent (of the pair's midpoint frequency), matching how the paper
quotes frequency differences.  Imports from :mod:`repro.analysis` are
deferred into the functions: this package is imported by
``core.population`` (for the hook), which is imported by the analysis
layer — a top-level import here would be a cycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .capture import DesignForensics
from .forecast import STATUS_LABELS


def render_forensics_summary(reports: Dict[str, DesignForensics]) -> str:
    """One row per design: margin percentiles, forecast quality, flips."""
    from ..analysis.tables import format_table

    rows = []
    for name, rep in reports.items():
        fresh = rep.summary(0.0)
        rows.append(
            [
                name,
                f"{100 * fresh.percentile(5):.2f}",
                f"{100 * fresh.percentile(50):.2f}",
                f"{100 * fresh.percentile(95):.2f}",
                f"{100 * rep.forecast.drift_scale:.3f}",
                f"{100 * rep.forecast.threshold:.3f}",
                f"{100 * rep.forecast.at_risk_fraction:.1f}",
                f"{100 * rep.flipped_fraction:.1f}",
                f"{rep.outcome.recall:.3f}",
                f"{rep.outcome.precision:.3f}",
            ]
        )
    return format_table(
        [
            "design",
            "|m| p5 %",
            "p50 %",
            "p95 %",
            "drift %",
            "thresh %",
            "at-risk %",
            "flipped %",
            "recall",
            "precision",
        ],
        rows,
        title=(
            "Margin forensics: enrolment margins vs "
            f"{reports[next(iter(reports))].t_horizon:g}-year drift"
        ),
    )


def bit_rows(
    report: DesignForensics, chip: int = 0, top: Optional[int] = 12
) -> List[dict]:
    """The ``top`` thinnest-margin bits of one chip, as plain dicts.

    Sorted by |fresh margin| ascending — the forensics reading order:
    the first rows are the bits most likely to go.  ``top=None`` returns
    every bit.  Values are margin *fractions* (the JSON payload and the
    text table apply their own unit scaling).
    """
    if not 0 <= chip < report.n_chips:
        raise ValueError(f"chip must be in [0, {report.n_chips}), got {chip}")
    fresh = report.fresh_margins[chip]
    aged = report.horizon_margins[chip]
    bti = report.bti_shift[chip]
    hci = report.hci_shift[chip]
    status = report.status()[chip]
    at_risk = report.forecast.at_risk[chip]
    order = np.argsort(np.abs(fresh), kind="stable")
    if top is not None:
        order = order[: int(top)]
    rows = []
    for k in order:
        k = int(k)
        rows.append(
            {
                "bit": k,
                "ro_a": int(report.pairs[k, 0]),
                "ro_b": int(report.pairs[k, 1]),
                "fresh_margin": float(fresh[k]),
                "horizon_margin": float(aged[k]),
                "total_shift": float(aged[k] - fresh[k]),
                "bti_shift": float(bti[k]),
                "hci_shift": float(hci[k]),
                "status": STATUS_LABELS[int(status[k])],
                "forecast_at_risk": bool(at_risk[k]),
            }
        )
    return rows


def render_bit_table(
    report: DesignForensics, chip: int = 0, top: Optional[int] = 12
) -> str:
    """Per-chip forensics table, thinnest margins first (percent units)."""
    from ..analysis.tables import format_table

    rows = []
    for r in bit_rows(report, chip, top):
        if r["status"] == "flipped":
            call = "caught" if r["forecast_at_risk"] else "MISSED"
        else:
            call = "flagged" if r["forecast_at_risk"] else ""
        rows.append(
            [
                r["bit"],
                f"{r['ro_a']}/{r['ro_b']}",
                f"{100 * r['fresh_margin']:+.3f}",
                f"{100 * r['horizon_margin']:+.3f}",
                f"{100 * r['bti_shift']:+.3f}",
                f"{100 * r['hci_shift']:+.3f}",
                r["status"],
                call,
            ]
        )
    return format_table(
        [
            "bit",
            "ROs",
            "fresh %",
            f"{report.t_horizon:g}y %",
            "dBTI %",
            "dHCI %",
            "status",
            "forecast",
        ],
        rows,
        title=f"{report.design}: chip {chip} thinnest margins",
    )
