"""Process-global margin-capture slot for the batched response kernel.

Mirrors the telemetry tracer/emitter idiom: a single module-level slot
that the hot path checks with one ``is None`` branch.  With no collector
installed, :func:`record_response_margins` is a function call, an
attribute load and a compare — the same disabled-path discipline the
tracer ships with, and gated by the same overhead benchmark.

Unlike :func:`repro.telemetry.install_emitter`, collector *sessions*
nest: :func:`collector_session` saves and restores whatever was active,
so a forensics capture can run inside a larger instrumented run without
either side uninstalling the other.

This module deliberately imports nothing from the rest of the package
(``core.population`` imports it, so anything heavier would be an import
cycle).  A collector is any object with a
``record(frequencies, pairs, t_years, conditions)`` method — see
:class:`repro.forensics.capture.MarginCollector`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

_collector: Optional[object] = None


def install_collector(collector: object) -> None:
    """Install ``collector`` as the process-wide margin sink.

    Raises if one is already installed — explicit install/uninstall is
    for process-lifetime capture; nested scopes should use
    :func:`collector_session`.
    """
    global _collector
    if _collector is not None:
        raise RuntimeError(
            "a margin collector is already installed; use collector_session() "
            "for nested capture scopes"
        )
    _collector = collector


def uninstall_collector() -> None:
    """Clear the collector slot (idempotent)."""
    global _collector
    _collector = None


def active_collector() -> Optional[object]:
    """The currently installed collector, or None."""
    return _collector


@contextmanager
def collector_session(collector: object) -> Iterator[object]:
    """Install ``collector`` for the duration of the ``with`` block.

    Saves and restores the previously active collector, so sessions nest
    (the innermost one wins while it is active).
    """
    global _collector
    previous = _collector
    _collector = collector
    try:
        yield collector
    finally:
        _collector = previous


def record_response_margins(frequencies, pairs, t_years, conditions) -> None:
    """Hot-path hook: forward one response evaluation to the collector.

    Called by the batched kernel after every response pass with the
    frequency array and pair table that produced the bits.  Reading the
    slot into a local first keeps the call safe against a concurrent
    uninstall between the check and the dispatch.
    """
    collector = _collector
    if collector is None:
        return
    collector.record(frequencies, pairs, t_years, conditions)
