"""Challenge-to-pair mapping: which oscillators get compared.

An RO-PUF response bit is the sign of a frequency difference between two
oscillators; a *pairing scheme* decides which oscillators form each pair.
The choice matters:

* using each RO in at most one pair keeps response bits statistically
  independent (required for the entropy accounting of key generation);
* pairing *physically adjacent* ROs cancels the smooth intra-die variation
  component (good for stability) and most of the systematic layout
  component under the ARO's symmetric discipline;
* challenge-seeded random pairing gives the exponential challenge space
  the PUF literature advertises.

All schemes return an integer array of shape ``(n_bits, 2)``; pairs are
disjoint unless the scheme explicitly documents otherwise.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np


class PairingScheme(abc.ABC):
    """Strategy mapping ``(n_ros, challenge)`` to comparison pairs."""

    @abc.abstractmethod
    def pairs(self, n_ros: int, challenge: Optional[int] = None) -> np.ndarray:
        """Return the pair index array of shape ``(n_bits, 2)``."""

    def n_bits(self, n_ros: int) -> int:
        """Response width this scheme produces from ``n_ros`` oscillators.

        The built-in schemes override this with a closed form — the
        key-generator design-space search calls it against candidate array
        sizes in the hundreds of thousands, where materialising the pair
        array per probe would dominate the search.
        """
        return self.pairs(n_ros).shape[0]

    @staticmethod
    def _check(n_ros: int) -> None:
        if n_ros < 2:
            raise ValueError("need at least two oscillators to form a pair")


@dataclass(frozen=True)
class NeighborPairing(PairingScheme):
    """Disjoint adjacent pairs ``(0,1), (2,3), ...`` — the default.

    Adjacent oscillators share the local smooth variation, which cancels in
    the difference; each RO is used once, so bits are independent.  The
    challenge is ignored (key-generation mode uses one fixed response).
    """

    def pairs(self, n_ros: int, challenge: Optional[int] = None) -> np.ndarray:
        self._check(n_ros)
        n_pairs = n_ros // 2
        idx = np.arange(2 * n_pairs)
        return idx.reshape(n_pairs, 2)

    def n_bits(self, n_ros: int) -> int:
        self._check(n_ros)
        return n_ros // 2


@dataclass(frozen=True)
class ChainPairing(PairingScheme):
    """Overlapping chain pairs ``(0,1), (1,2), ...``.

    Yields ``n_ros - 1`` bits from ``n_ros`` oscillators but *reuses* each
    oscillator, so neighbouring bits are correlated.  Included because many
    early RO-PUF papers (and area-optimised deployments) use it; the
    randomness benchmarks quantify the correlation penalty.
    """

    def pairs(self, n_ros: int, challenge: Optional[int] = None) -> np.ndarray:
        self._check(n_ros)
        idx = np.arange(n_ros)
        return np.column_stack([idx[:-1], idx[1:]])

    def n_bits(self, n_ros: int) -> int:
        self._check(n_ros)
        return n_ros - 1


@dataclass(frozen=True)
class RandomDisjointPairing(PairingScheme):
    """Challenge-seeded random disjoint pairs.

    The challenge seeds a permutation of the oscillator indices; successive
    permuted indices are paired.  Different challenges therefore select
    different random matchings — this is the mode that exposes a large
    challenge space.  ``default_challenge`` is used when a caller passes
    ``challenge=None``.
    """

    default_challenge: int = 0

    def pairs(self, n_ros: int, challenge: Optional[int] = None) -> np.ndarray:
        self._check(n_ros)
        seed = self.default_challenge if challenge is None else int(challenge)
        if seed < 0:
            raise ValueError("challenge must be a non-negative integer")
        perm = np.random.default_rng(seed).permutation(n_ros)
        n_pairs = n_ros // 2
        return perm[: 2 * n_pairs].reshape(n_pairs, 2)

    def n_bits(self, n_ros: int) -> int:
        self._check(n_ros)
        return n_ros // 2


@dataclass(frozen=True)
class DistantPairing(PairingScheme):
    """Disjoint pairs of maximally *distant* oscillators ``(i, i + n/2)``.

    The adversarial counterpart of :class:`NeighborPairing`: distant pairs
    pick up the full systematic and correlated spatial components, which is
    exactly what the layout-sensitivity ablation (experiment E8) wants to
    demonstrate.
    """

    def pairs(self, n_ros: int, challenge: Optional[int] = None) -> np.ndarray:
        self._check(n_ros)
        half = n_ros // 2
        idx = np.arange(half)
        return np.column_stack([idx, idx + half])

    def n_bits(self, n_ros: int) -> int:
        self._check(n_ros)
        return n_ros // 2
