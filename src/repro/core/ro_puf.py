"""The conventional RO-PUF baseline design.

This is the design the ARO-PUF is measured against: NAND-gated inverter
rings, compact per-slot layout (full systematic variation exposure), parked
static when idle (DC NBTI stress on every other PMOS).
"""

from __future__ import annotations

from typing import Optional

from ..aging.schedule import IdlePolicy
from ..circuit.cells import conventional_cell
from ..transistor.technology import TechnologyCard, ptm90
from ..variation.spatial import LayoutStyle
from .base import PufDesign
from .pairing import NeighborPairing, PairingScheme
from .readout import ReadoutConfig


def conventional_design(
    n_ros: int = 256,
    n_stages: int = 5,
    *,
    tech: Optional[TechnologyCard] = None,
    pairing: Optional[PairingScheme] = None,
    readout: Optional[ReadoutConfig] = None,
) -> PufDesign:
    """Build the conventional RO-PUF design point.

    Defaults follow the paper's evaluation setup: 256 five-stage ROs in
    90 nm, neighbour pairing (128 response bits per chip).
    """
    return PufDesign(
        name="ro-puf",
        tech=tech or ptm90(),
        cell=conventional_cell(n_stages),
        n_ros=n_ros,
        layout=LayoutStyle.CONVENTIONAL,
        pairing=pairing or NeighborPairing(),
        readout=readout or ReadoutConfig(),
    )


#: idle behaviour the conventional design exhibits in the field
CONVENTIONAL_IDLE_POLICY = IdlePolicy.PARKED_STATIC
