"""Convenience factory tying designs, fabrication and aging together.

Most experiments need the same bundle: a design, a population of chips,
and each chip's aging trajectory under a mission.  :func:`make_study`
builds all three with one seeded call so that benchmark modules stay thin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .._rng import RngLike, spawn
from ..aging.schedule import IdlePolicy, MissionProfile
from ..aging.simulator import AgingSimulator, ChipAging
from .aro_puf import aro_design
from .base import PufDesign, RoPufInstance
from .ro_puf import conventional_design

#: design factories by name, for CLI/benchmark parameterisation
DESIGNS = {
    "ro-puf": conventional_design,
    "aro-puf": aro_design,
}


def design_by_name(name: str, n_ros: int = 256, n_stages: int = 5) -> PufDesign:
    """Look up and build a design by its registry name."""
    try:
        factory = DESIGNS[name]
    except KeyError:
        known = ", ".join(sorted(DESIGNS))
        raise KeyError(f"unknown design {name!r}; known: {known}") from None
    return factory(n_ros=n_ros, n_stages=n_stages)


@dataclass
class Study:
    """A fabricated, aging-ready population of one design."""

    design: PufDesign
    instances: List[RoPufInstance]
    agings: List[ChipAging]
    mission: MissionProfile

    @property
    def n_chips(self) -> int:
        return len(self.instances)

    def aged_instances(self, t_years: float) -> List[RoPufInstance]:
        """Every instance rebound to its chip aged by ``t_years``."""
        return [
            inst.with_chip(aging.aged(t_years))
            for inst, aging in zip(self.instances, self.agings)
        ]

    def responses(self, challenge: Optional[int] = None, t_years: float = 0.0):
        """Golden responses of every chip at ``t_years`` (list of arrays)."""
        insts = self.instances if t_years == 0 else self.aged_instances(t_years)
        return [inst.golden_response(challenge) for inst in insts]


def make_study(
    design: PufDesign,
    n_chips: int,
    *,
    mission: Optional[MissionProfile] = None,
    idle_policy: Optional[IdlePolicy] = None,
    rng: RngLike = None,
) -> Study:
    """Fabricate ``n_chips`` of ``design`` and prepare aging trajectories.

    ``idle_policy=None`` uses the policy the cell was designed for
    (conventional → parked static, ARO → recovery); the ablation
    experiments override it.
    """
    fab_rng, aging_rng = spawn(rng, 2)
    mission = mission or MissionProfile()
    instances = design.sample_instances(n_chips, fab_rng)
    simulator = AgingSimulator(
        design.tech, design.cell, mission, idle_policy=idle_policy
    )
    aging_children = spawn(aging_rng, n_chips)
    agings = [
        simulator.for_chip(inst.chip, child)
        for inst, child in zip(instances, aging_children)
    ]
    return Study(
        design=design, instances=instances, agings=agings, mission=mission
    )
