"""Batched population evaluation: the engine behind the experiment suite.

Every experiment in the paper's evaluation is a population × time-grid
Monte-Carlo.  The per-chip :class:`~repro.core.base.RoPufInstance` API
evaluates that one chip and one year at a time — clear for examples, but
the Python loop around it dominates wall-clock at paper scale.  This
module stacks a whole :class:`~repro.variation.chip.ChipPopulation` into
one ``(n_chips, n_ros, n_stages, 2)`` threshold tensor and pushes the
entire population through the delay model in a single numpy pass per
(year, corner):

* :class:`PopulationView` — the stacked threshold/`tc_scale` tensors plus
  thin per-chip :class:`~repro.variation.chip.Chip` views;
* :class:`BatchStudy` — the batched counterpart of
  :class:`~repro.core.factory.Study`: one
  :class:`~repro.aging.simulator.PopulationAging` for the whole
  population, one ``ring_frequency``-equivalent call per (year, corner),
  and chip-axis-aware readout;
* :func:`make_batch_study` — drop-in for
  :func:`~repro.core.factory.make_study`; consumes the RNG identically,
  so the same seed fabricates the same chips and prefactors on both
  paths and golden responses are bit-identical.

The batched frequency kernel folds every scalar factor (drive constant,
mobility, load, stage-0 penalty, ``c_load_factor``) into the stage-weight
reduction, so the per-grid-point cost is one subtract, one power and one
tensordot over the population tensor.  Frequencies therefore agree with
the per-chip path to rounding (``rtol`` ~1e-12) rather than bit-for-bit;
response *bits* and aging *deltas* are identical.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import List, Optional, Sequence, Union

import numpy as np

from .. import telemetry
from .._rng import RngLike, spawn
from ..aging.schedule import IdlePolicy, MissionProfile
from ..aging.simulator import AgingSimulator, ChipAging, PopulationAging
from ..environment.conditions import OperatingConditions
from ..forensics.hook import record_response_margins
from ..kernel.backend import ArrayBackend, resolve_backend
from ..kernel.fused import (
    OVERDRIVE_ERROR,
    MarginHistogramSink,
    ResponseBlockSink,
    finalize_period_block,
    frequency_block_kernel,
)
from ..transistor.mosfet import mobility_factor
from ..transistor.technology import T_REF_K, TechnologyCard
from ..variation.chip import Chip, ChipPopulation
from .base import PufDesign, RoPufInstance
from .factory import Study
from .readout import compare_pairs

__all__ = [
    "PopulationView",
    "BatchStudy",
    "make_batch_study",
    "frequency_block_kernel",
    "batch_frequencies_from_overdrive",
]


class PopulationView:
    """A chip population stacked into contiguous evaluation tensors.

    Parameters
    ----------
    vth:
        Threshold tensor, shape ``(n_chips, n_ros, n_stages, 2)``, volts.
    tc_scale:
        Stacked temperature-coefficient mismatch, same shape as ``vth``.
    positions:
        RO grid coordinates shared by every chip, shape ``(n_ros, 2)``.
    chip_ids:
        Monte-Carlo index of each row (defaults to ``0 .. n_chips - 1``).
    """

    def __init__(
        self,
        vth: np.ndarray,
        tc_scale: np.ndarray,
        positions: np.ndarray,
        chip_ids: Optional[Sequence[int]] = None,
    ):
        vth = np.asarray(vth, dtype=float)
        if vth.ndim != 4 or vth.shape[-1] != 2:
            raise ValueError(
                f"vth must have shape (n_chips, n_ros, n_stages, 2), got {vth.shape}"
            )
        tc_scale = np.asarray(tc_scale, dtype=float)
        if tc_scale.shape != vth.shape:
            raise ValueError(
                f"tc_scale shape {tc_scale.shape} does not match vth {vth.shape}"
            )
        positions = np.asarray(positions, dtype=float)
        if positions.shape != (vth.shape[1], 2):
            raise ValueError(
                f"positions must have shape ({vth.shape[1]}, 2), got {positions.shape}"
            )
        self.vth = vth
        self.tc_scale = tc_scale
        self.positions = positions
        self.chip_ids = (
            list(range(vth.shape[0])) if chip_ids is None else list(chip_ids)
        )
        if len(self.chip_ids) != vth.shape[0]:
            raise ValueError("chip_ids must name every chip row")

    @classmethod
    def from_chips(
        cls, chips: Union[ChipPopulation, Sequence[Chip]]
    ) -> "PopulationView":
        """Stack a population (or any chip sequence) into one view."""
        chips = list(chips)
        if not chips:
            raise ValueError("population is empty")
        return cls(
            vth=np.stack([c.vth for c in chips]),
            tc_scale=np.stack([c.tc_scale for c in chips]),
            positions=chips[0].positions,
            chip_ids=[c.chip_id for c in chips],
        )

    @property
    def n_chips(self) -> int:
        return self.vth.shape[0]

    @property
    def n_ros(self) -> int:
        return self.vth.shape[1]

    @property
    def n_stages(self) -> int:
        return self.vth.shape[2]

    def chip(self, index: int) -> Chip:
        """Thin per-chip :class:`Chip` view of row ``index`` (no copy)."""
        return Chip(
            vth=self.vth[index],
            positions=self.positions,
            tc_scale=self.tc_scale[index],
            chip_id=self.chip_ids[index],
        )

    def chips(self) -> List[Chip]:
        return [self.chip(i) for i in range(self.n_chips)]


def _stage_weights(
    tech: TechnologyCard,
    n_stages: int,
    *,
    vdd: float,
    temperature_k: float,
    stage0_penalty: float,
    c_load_factor: float,
) -> np.ndarray:
    """Stage/polarity reduction weights with all scalar factors folded in.

    One device's transition delay is ``c_load * vdd / (k * mu * od**alpha)``;
    summing over stages (stage 0 weighted by its structural penalty) and
    dividing by ``c_load_factor`` gives the ring frequency.  Folding the
    scalar prefactor and the load factor into the weights leaves the hot
    kernel with a single power and a single tensordot.
    """
    mu = mobility_factor(temperature_k, tech)
    scale = tech.c_load * vdd / (tech.k_drive * mu) * c_load_factor
    weights = np.full((n_stages, 2), scale)
    weights[0, :] *= stage0_penalty
    return weights


def batch_frequencies_from_overdrive(
    overdrive: np.ndarray, tech: TechnologyCard, weights: np.ndarray
) -> np.ndarray:
    """Ring frequencies from a gate-overdrive tensor (hot kernel).

    ``overdrive`` has shape ``(..., n_stages, 2)`` and **is consumed**
    (overwritten in place); ``weights`` comes from :func:`_stage_weights`.
    Returns the ``(...,)`` frequency array in hertz.

    ``od ** -alpha`` is evaluated as ``exp(-alpha * log(od))`` in place —
    measurably faster than ``np.power`` and within a couple of ULPs of
    it.  A non-positive overdrive (supply too low for some device) turns
    into a NaN/inf period, which is detected on the small reduced array
    instead of a full-tensor precheck.
    """
    with np.errstate(invalid="ignore", divide="ignore"):
        np.log(overdrive, out=overdrive)
        overdrive *= -tech.alpha
        np.exp(overdrive, out=overdrive)
        period = np.tensordot(overdrive, weights, axes=([-2, -1], [0, 1]))
    if not np.isfinite(period).all():
        raise ValueError(OVERDRIVE_ERROR)
    return np.reciprocal(period)


class BatchStudy:
    """A fabricated, aging-ready population evaluated whole-array at once.

    The batched counterpart of :class:`~repro.core.factory.Study`: the
    same design / mission bundle, but frequencies and responses come back
    as ``(n_chips, ...)`` arrays from one vectorised pass instead of a
    Python loop over per-chip instances.  Per-chip
    :class:`RoPufInstance` views remain available through
    :attr:`instances` / :meth:`aged_instances` for code that wants the
    scalar API.

    Frequencies are memoised per ``(t_years, conditions)`` (LRU), so
    repeated golden-response queries are free.  Memoised arrays are
    read-only — copy before mutating.

    ``dtype`` selects the kernel arithmetic tier: ``"float64"`` (default,
    the bit-identity reference) or the opt-in ``"float32"`` tier, which
    halves kernel bandwidth but only guarantees response-*bit* agreement
    after :func:`repro.kernel.validate.validate_response_identity` has
    proven it at the scale in question — frequencies differ at ~1e-7
    relative.  ``backend`` routes the kernel through an alternative
    array library (see :mod:`repro.kernel.backend`); results crossing
    the study boundary are always host numpy arrays.  ``block_size``
    overrides the chip-axis work-block derivation (testing hook; the
    default is cache-sized and block boundaries never change results).
    """

    #: number of (t_years, conditions) corners kept in the frequency memo
    MEMO_SIZE = 32

    def __init__(
        self,
        design: PufDesign,
        view: PopulationView,
        aging: PopulationAging,
        mission: MissionProfile,
        *,
        dtype: str = "float64",
        block_size: Optional[int] = None,
        backend: Union[None, str, ArrayBackend] = None,
    ):
        if view.n_stages != design.n_stages:
            raise ValueError(
                f"population has {view.n_stages} stages per RO, design wants "
                f"{design.n_stages}"
            )
        if view.n_ros != design.n_ros:
            raise ValueError(
                f"population has {view.n_ros} ROs, design wants {design.n_ros}"
            )
        if aging.n_chips != view.n_chips:
            raise ValueError(
                f"aging carries {aging.n_chips} chips, population has "
                f"{view.n_chips}"
            )
        dt = np.dtype(dtype)
        if dt not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(
                f"dtype must be 'float64' or 'float32', got {dtype!r}"
            )
        if block_size is not None and block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.design = design
        self.view = view
        self.aging = aging
        self.mission = mission
        self.dtype = dt
        self._backend = resolve_backend(backend)
        # the reference tier: float64 through literal numpy — this path
        # must stay byte-identical to the pre-seam engine, so it uses
        # the original tensors (no casts) and the memoised-delta branch
        self._native = (
            self._backend.name == "numpy" and dt == np.dtype(np.float64)
        )
        self._block_size = block_size
        self._freq_memo: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._od_buf = None
        self._scratch_buf = None
        self._inputs: Optional[tuple] = None
        self._instances: Optional[List[RoPufInstance]] = None

    # ---- construction ------------------------------------------------

    @classmethod
    def from_study(cls, study: Study) -> "BatchStudy":
        """Stack an existing per-chip :class:`Study` (shared chips and
        prefactors, so both views answer identically)."""
        return cls(
            design=study.design,
            view=PopulationView.from_chips([inst.chip for inst in study.instances]),
            aging=PopulationAging.from_agings(study.agings),
            mission=study.mission,
        )

    # ---- geometry ----------------------------------------------------

    @property
    def n_chips(self) -> int:
        return self.view.n_chips

    @property
    def n_bits(self) -> int:
        return self.design.n_bits

    # ---- lifecycle ---------------------------------------------------

    def close(self) -> None:
        """No-op, mirroring :class:`repro.parallel.ParallelBatchStudy`.

        The serial engine holds no external resources; exposing the same
        lifecycle lets call sites ``closing(...)`` either engine.
        """

    def __enter__(self) -> "BatchStudy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---- batched evaluation ------------------------------------------

    def frequencies(
        self,
        t_years: float = 0.0,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """True mean frequency of every oscillator of every chip (hertz).

        Shape ``(n_chips, n_ros)``; row ``i`` equals
        ``instances[i].frequencies(conditions)`` after ``t_years`` of
        aging, to floating-point rounding (``rtol`` ~1e-12).
        """
        cond = conditions or OperatingConditions.nominal()
        t = float(t_years)
        cached = self._memo_lookup((t, cond))
        if cached is not None:
            return cached
        return self._corner_pass(t, cond, ())

    def _memo_lookup(self, key: tuple) -> Optional[np.ndarray]:
        cached = self._freq_memo.get(key)
        if cached is not None:
            self._freq_memo.move_to_end(key)
            telemetry.count("batch.corner_memo_hits")
        return cached

    def _memoise(self, key: tuple, freqs: np.ndarray) -> np.ndarray:
        freqs.flags.writeable = False
        self._freq_memo[key] = freqs
        if len(self._freq_memo) > self.MEMO_SIZE:
            self._freq_memo.popitem(last=False)
        return freqs

    def _corner_pass(self, t: float, cond: OperatingConditions, sinks: tuple):
        """One fused streaming pass over the population at ``(t, cond)``.

        Per chip-axis block: fabricate overdrives, subtract the aging
        field, reduce to periods, flip to frequencies.  Every ``sink``
        (response bits, margin histograms) consumes the fresh frequency
        rows from the same pass in bounded super-block windows
        (:data:`_SINK_WINDOW_ELEMS`) — coarse enough to amortise the
        per-call dispatch that would otherwise dominate at kernel-block
        granularity, small enough that at large ``n_chips`` the rows are
        still cache-warm and the pass never re-streams the full tensor.
        The assembled frequency tensor is memoised exactly as before;
        sinks only save the *re-read* passes, so fused and unfused
        evaluation orders are bit-identical.
        """
        telemetry.count("batch.corner_memo_misses")
        if sinks:
            telemetry.count("batch.fused_passes")
        sp = telemetry.start_span(
            "batch.frequencies",
            t_years=t,
            temperature_k=cond.temperature_k,
            n_chips=self.view.n_chips,
            n_ros=self.view.n_ros,
        )

        tech = self.design.tech
        xp = self._backend
        vdd = cond.effective_vdd(tech)
        delta_temp = cond.temperature_k - T_REF_K
        weights = _stage_weights(
            tech,
            self.design.n_stages,
            vdd=vdd,
            temperature_k=cond.temperature_k,
            stage0_penalty=self.design.cell.stage0_penalty,
            c_load_factor=self.design.cell.c_load_factor,
        )
        vth_t, tc_t, bti_dir, hci_dir = self._kernel_inputs()
        delta = (
            self.aging.cached_delta(t) if (t > 0.0 and self._native) else None
        )
        subtract_block = (
            None
            if (t == 0.0 or self._native)
            else self.aging.block_subtracter(t, (bti_dir, hci_dir), xp=xp)
        )
        n_chips = self.view.n_chips
        period = xp.empty((n_chips, self.view.n_ros), self.dtype)
        # The overdrive tensor is assembled block-by-block along the chip
        # axis in two persistent buffers: allocating (and page-faulting) a
        # population-sized array per grid point would cost as much as the
        # arithmetic itself, and block-sized work buffers stay L2-resident
        # through the whole subtract/clip/power chain instead of streaming
        # a population-sized tensor through the cache several times over.
        od_buf, scratch_buf = self._work_buffers()
        neg_alpha = -tech.alpha
        w_flat = (
            np.ascontiguousarray(weights.reshape(-1))
            if self._native
            else xp.asarray(weights.reshape(-1), self.dtype)
        )
        block = od_buf.shape[0]
        n_blocks = -(-n_chips // block)
        telemetry.count("freq.kernel_blocks", n_blocks)
        sink_window = (
            max(block, self._SINK_WINDOW_ELEMS // self.view.n_ros)
            if sinks
            else 0
        )
        flush_lo = 0
        # histogram hook hoisted out of the loop: one tracer lookup per
        # corner, and the per-block clock reads only happen when tracing
        tr = telemetry.active()
        try:
            with xp.errstate():
                for start in range(0, n_chips, block):
                    stop = min(start + block, n_chips)
                    telemetry.progress("batch.frequencies", stop, n_chips)
                    if tr is not None:
                        _blk0 = time.perf_counter_ns()
                    rows = slice(start, stop)
                    if t > 0.0:
                        if delta is not None:
                            def subtract(od, scratch, rows=rows):
                                od -= delta[rows]
                        elif subtract_block is not None:
                            def subtract(od, scratch, rows=rows):
                                subtract_block(od, scratch, rows)
                        else:
                            def subtract(od, scratch, rows=rows):
                                self.aging.subtract_delta_into(
                                    t, od, scratch, rows=rows
                                )
                    else:
                        subtract = None
                    period_rows = period[rows]
                    frequency_block_kernel(
                        od_buf[: stop - start],
                        scratch_buf[: stop - start],
                        vth_t[rows],
                        vdd=vdd,
                        neg_alpha=neg_alpha,
                        w_flat=w_flat,
                        period_out=period_rows,
                        tc_rows=tc_t[rows] if delta_temp != 0.0 else None,
                        tc_coeff=tech.vth_tc * delta_temp,
                        subtract_aging=subtract,
                        xp=xp,
                    )
                    finalize_period_block(period_rows, xp)
                    if sinks and (
                        stop - flush_lo >= sink_window or stop == n_chips
                    ):
                        window = period[flush_lo:stop]
                        host_rows = (
                            window if xp.is_host else xp.to_numpy(window)
                        )
                        for sink in sinks:
                            sink(flush_lo, stop, host_rows)
                        flush_lo = stop
                    if tr is not None:
                        tr.observe(
                            "batch.block_s",
                            (time.perf_counter_ns() - _blk0) / 1e9,
                        )
        except Exception:
            telemetry.end_span(sp)
            raise
        freqs = period if xp.is_host else xp.to_numpy(period)
        self._memoise((t, cond), freqs)
        telemetry.end_span(sp)
        if tr is not None and sp is not None:
            tr.observe("batch.corner_s", sp.duration_ns / 1e9)
        return freqs

    def responses(
        self,
        challenge: Optional[int] = None,
        t_years: float = 0.0,
        *,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """Golden responses of every chip at ``t_years``.

        Shape ``(n_chips, n_bits)`` uint8; row ``i`` is bit-identical to
        ``Study.responses(challenge, t_years)[i]`` under the same seed.

        On a frequency-memo miss the bits are emitted by the fused
        kernel pass itself (one stream over the population instead of a
        compute pass plus a compare pass); on a hit they come from the
        memoised tensor.  Both orders run the identical comparison, so
        the bits cannot differ.
        """
        telemetry.count("batch.response_passes")
        cond = conditions or OperatingConditions.nominal()
        t = float(t_years)
        pairs = self.design.pairing.pairs(self.design.n_ros, challenge)
        freqs = self._memo_lookup((t, cond))
        if freqs is not None:
            bits = compare_pairs(
                freqs, pairs, self.design.tech, self.design.readout
            )
        else:
            bits = np.empty(
                (self.view.n_chips, pairs.shape[0]), dtype=np.uint8
            )
            sink = ResponseBlockSink(
                pairs, self.design.tech, self.design.readout, bits
            )
            freqs = self._corner_pass(t, cond, (sink,))
        # forensics hook: no-op (one branch) unless a collector is installed;
        # the bits above are computed first and never depend on the capture
        record_response_margins(freqs, pairs, t, cond)
        return bits

    def mechanism_frequencies(
        self,
        t_years: float,
        mechanism: str,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """Counterfactual frequencies with a single aging mechanism active.

        ``mechanism`` is ``"bti"`` (NBTI/PBTI only) or ``"hci"`` (HCI
        only): the full population evaluated as if the *other* mechanism
        had contributed no threshold shift at ``t_years``.  The forensics
        layer differences these against the true aged frequencies to
        attribute each bit's margin loss to a mechanism.

        Cold path by design — a report evaluates it a handful of times,
        never inside a sweep loop — but it streams through the fused
        kernel's block buffers all the same: the old full-tensor
        evaluation materialised the overdrive tensor *plus both*
        :meth:`~repro.aging.simulator.PopulationAging.delta_components`
        fields, roughly doubling peak RSS during a forensics capture at
        large ``n_chips``.  The blocked chain subtracts only the
        requested mechanism's component per block (same grouping, same
        clip decision), so results are bit-identical to the full-tensor
        path while allocating nothing beyond the result.  Results are
        memoised alongside :meth:`frequencies` and returned read-only.
        Rows are chip-independent, so shard evaluation concatenates to
        the serial answer bit for bit (the parallel engine relies on it).
        """
        if mechanism not in ("bti", "hci"):
            raise ValueError(f"mechanism must be 'bti' or 'hci', got {mechanism!r}")
        cond = conditions or OperatingConditions.nominal()
        t = float(t_years)
        key = (t, cond, mechanism)
        cached = self._memo_lookup(key)
        if cached is not None:
            return cached
        telemetry.count("batch.mechanism_passes")
        xp = self._backend
        with telemetry.span(
            "batch.mechanism_frequencies",
            t_years=t,
            mechanism=mechanism,
            n_chips=self.view.n_chips,
        ):
            tech = self.design.tech
            vdd = cond.effective_vdd(tech)
            delta_temp = cond.temperature_k - T_REF_K
            weights = _stage_weights(
                tech,
                self.design.n_stages,
                vdd=vdd,
                temperature_k=cond.temperature_k,
                stage0_penalty=self.design.cell.stage0_penalty,
                c_load_factor=self.design.cell.c_load_factor,
            )
            vth_t, tc_t, _, _ = self._kernel_inputs()
            subtract = (
                self.aging.component_subtracter(
                    t, mechanism, xp=xp, dtype=None if self._native else self.dtype
                )
                if t > 0.0
                else None
            )
            n_chips = self.view.n_chips
            period = xp.empty((n_chips, self.view.n_ros), self.dtype)
            od_buf, scratch_buf = self._work_buffers()
            w_flat = (
                np.ascontiguousarray(weights.reshape(-1))
                if self._native
                else xp.asarray(weights.reshape(-1), self.dtype)
            )
            block = od_buf.shape[0]
            with xp.errstate():
                for start in range(0, n_chips, block):
                    stop = min(start + block, n_chips)
                    rows = slice(start, stop)
                    period_rows = period[rows]
                    frequency_block_kernel(
                        od_buf[: stop - start],
                        scratch_buf[: stop - start],
                        vth_t[rows],
                        vdd=vdd,
                        neg_alpha=-tech.alpha,
                        w_flat=w_flat,
                        period_out=period_rows,
                        tc_rows=tc_t[rows] if delta_temp != 0.0 else None,
                        tc_coeff=tech.vth_tc * delta_temp,
                        subtract_aging=(
                            None
                            if subtract is None
                            else (
                                lambda od, scratch, rows=rows: subtract(
                                    od, scratch, rows
                                )
                            )
                        ),
                        xp=xp,
                    )
                    finalize_period_block(period_rows, xp)
            freqs = period if xp.is_host else xp.to_numpy(period)
        return self._memoise(key, freqs)

    def margin_histogram(
        self,
        edges: np.ndarray,
        challenge: Optional[int] = None,
        t_years: float = 0.0,
        *,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """Histogram counts of the signed response margins (int64).

        Bins the population's relative pair margins at ``t_years`` over
        the explicit ``edges`` (see
        :func:`repro.metrics.margins.histogram_edges`).  The parallel
        engine computes the same counts shard-by-shard in the workers and
        merges by addition — identical by construction because the edges
        are shared and binning is per-element.

        On a frequency-memo miss the counts are accumulated by the fused
        kernel pass (one stream over the population, no full-tensor
        margin temporary); on a hit they are binned from the memoised
        tensor.  Same per-element binning either way.
        """
        from ..metrics.margins import margin_histogram, relative_margins

        pairs = self.design.pairing.pairs(self.design.n_ros, challenge)
        cond = conditions or OperatingConditions.nominal()
        t = float(t_years)
        freqs = self._memo_lookup((t, cond))
        if freqs is not None:
            return margin_histogram(relative_margins(freqs, pairs), edges)
        sink = MarginHistogramSink(pairs, edges)
        self._corner_pass(t, cond, (sink,))
        return sink.counts

    # ---- per-chip views (back-compat) --------------------------------

    @property
    def instances(self) -> List[RoPufInstance]:
        """Thin per-chip views over the fresh population (cached)."""
        if self._instances is None:
            self._instances = [
                self.design.instantiate(self.view.chip(i))
                for i in range(self.n_chips)
            ]
        return self._instances

    @property
    def agings(self) -> List[ChipAging]:
        """Per-chip :class:`ChipAging` views (sliced prefactors, no copy)."""
        return [
            self.aging.chip_aging(i, self.view.chip(i))
            for i in range(self.n_chips)
        ]

    def aged_instances(self, t_years: float) -> List[RoPufInstance]:
        """Every instance rebound to its chip aged by ``t_years``."""
        if t_years == 0:
            return list(self.instances)
        delta = self.aging.delta(t_years)
        return [
            self.design.instantiate(
                Chip(
                    vth=self.view.vth[i] + delta[i],
                    positions=self.view.positions,
                    tc_scale=self.view.tc_scale[i],
                    chip_id=self.view.chip_ids[i],
                )
            )
            for i in range(self.n_chips)
        ]

    # ---- internals ---------------------------------------------------

    #: chip-axis block size of the work buffers, in tensor elements.  Two
    #: buffers of ~48k float64 elements (~380 KiB each) fit comfortably in
    #: a commodity 1-2 MiB L2 alongside the streamed input slices, which
    #: is worth ~1.5x on the memory-bound part of the frequency kernel.
    _BLOCK_ELEMS = 48_000

    #: sink flush window, in elements of the period/frequency tensor
    #: (~8 MiB of float64 rows).  Sinks are fed at this coarser
    #: granularity rather than per kernel block: their per-call gather /
    #: compare dispatch costs ~10 us regardless of size, which at
    #: kernel-block width (a few dozen chips) would dominate the corner;
    #: an 8 MiB window amortises it to noise while still bounding the
    #: re-read traffic far below the population tensor at large n_chips.
    _SINK_WINDOW_ELEMS = 1_048_576

    def _work_buffers(self) -> tuple:
        """Persistent chip-axis-blocked scratch (overdrive + delta)."""
        if self._od_buf is None:
            per_chip = self.view.n_ros * self.view.n_stages * 2
            block = max(1, min(self.view.n_chips, self._BLOCK_ELEMS // per_chip))
            if self._block_size is not None:
                block = max(1, min(self.view.n_chips, self._block_size))
            shape = (block,) + self.view.vth.shape[1:]
            self._od_buf = self._backend.empty(shape, self.dtype)
            self._scratch_buf = self._backend.empty(shape, self.dtype)
        return self._od_buf, self._scratch_buf

    def _kernel_inputs(self) -> tuple:
        """The (vth, tc_scale, bti_dir, hci_dir) tensors the kernel reads.

        The native tier hands back the original float64 views unchanged
        (zero copies, zero byte drift); any other (dtype, backend)
        combination casts each tensor once on first use and keeps the
        casts for the study's lifetime.  The direction tensors are only
        materialised off-native — the native aging subtraction goes
        through :meth:`PopulationAging.subtract_delta_into` as before.
        """
        if self._inputs is None:
            if self._native:
                self._inputs = (self.view.vth, self.view.tc_scale, None, None)
            else:
                xp, dt = self._backend, self.dtype
                bti_dir, hci_dir = self.aging.direction_tensors()
                self._inputs = (
                    xp.asarray(self.view.vth, dt),
                    xp.asarray(self.view.tc_scale, dt),
                    xp.asarray(bti_dir, dt),
                    xp.asarray(hci_dir, dt),
                )
        return self._inputs


def make_batch_study(
    design: PufDesign,
    n_chips: int,
    *,
    mission: Optional[MissionProfile] = None,
    idle_policy: Optional[IdlePolicy] = None,
    rng: RngLike = None,
    dtype: str = "float64",
    block_size: Optional[int] = None,
    backend: Union[None, str, ArrayBackend] = None,
) -> BatchStudy:
    """Fabricate ``n_chips`` of ``design`` as one batched study.

    Consumes the RNG exactly like :func:`~repro.core.factory.make_study`
    (fabrication children first, then one aging child per chip, NBTI
    prefactors before HCI), so the same seed yields the same silicon on
    both paths: golden responses and aging deltas are bit-identical, and
    frequencies agree to rounding.  ``dtype`` / ``backend`` /
    ``block_size`` select the kernel tier (see :class:`BatchStudy`);
    fabrication itself always samples in float64, so every tier starts
    from identical silicon.
    """
    fab_rng, aging_rng = spawn(rng, 2)
    mission = mission or MissionProfile()
    with telemetry.span("fabricate.batch_study", n_chips=n_chips, n_ros=design.n_ros):
        population = design.variation_model().sample_population(n_chips, fab_rng)
        simulator = AgingSimulator(
            design.tech, design.cell, mission, idle_policy=idle_policy
        )
        aging = simulator.population_aging(population, aging_rng)
        return BatchStudy(
            design=design,
            view=PopulationView.from_chips(population),
            aging=aging,
            mission=mission,
            dtype=dtype,
            block_size=block_size,
            backend=backend,
        )
