"""Batched population evaluation: the engine behind the experiment suite.

Every experiment in the paper's evaluation is a population × time-grid
Monte-Carlo.  The per-chip :class:`~repro.core.base.RoPufInstance` API
evaluates that one chip and one year at a time — clear for examples, but
the Python loop around it dominates wall-clock at paper scale.  This
module stacks a whole :class:`~repro.variation.chip.ChipPopulation` into
one ``(n_chips, n_ros, n_stages, 2)`` threshold tensor and pushes the
entire population through the delay model in a single numpy pass per
(year, corner):

* :class:`PopulationView` — the stacked threshold/`tc_scale` tensors plus
  thin per-chip :class:`~repro.variation.chip.Chip` views;
* :class:`BatchStudy` — the batched counterpart of
  :class:`~repro.core.factory.Study`: one
  :class:`~repro.aging.simulator.PopulationAging` for the whole
  population, one ``ring_frequency``-equivalent call per (year, corner),
  and chip-axis-aware readout;
* :func:`make_batch_study` — drop-in for
  :func:`~repro.core.factory.make_study`; consumes the RNG identically,
  so the same seed fabricates the same chips and prefactors on both
  paths and golden responses are bit-identical.

The batched frequency kernel folds every scalar factor (drive constant,
mobility, load, stage-0 penalty, ``c_load_factor``) into the stage-weight
reduction, so the per-grid-point cost is one subtract, one power and one
tensordot over the population tensor.  Frequencies therefore agree with
the per-chip path to rounding (``rtol`` ~1e-12) rather than bit-for-bit;
response *bits* and aging *deltas* are identical.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import List, Optional, Sequence, Union

import numpy as np

from .. import telemetry
from .._rng import RngLike, spawn
from ..aging.schedule import IdlePolicy, MissionProfile
from ..aging.simulator import AgingSimulator, ChipAging, PopulationAging
from ..environment.conditions import OperatingConditions
from ..forensics.hook import record_response_margins
from ..transistor.mosfet import mobility_factor
from ..transistor.technology import T_REF_K, TechnologyCard
from ..variation.chip import Chip, ChipPopulation
from .base import PufDesign, RoPufInstance
from .factory import Study
from .readout import compare_pairs


class PopulationView:
    """A chip population stacked into contiguous evaluation tensors.

    Parameters
    ----------
    vth:
        Threshold tensor, shape ``(n_chips, n_ros, n_stages, 2)``, volts.
    tc_scale:
        Stacked temperature-coefficient mismatch, same shape as ``vth``.
    positions:
        RO grid coordinates shared by every chip, shape ``(n_ros, 2)``.
    chip_ids:
        Monte-Carlo index of each row (defaults to ``0 .. n_chips - 1``).
    """

    def __init__(
        self,
        vth: np.ndarray,
        tc_scale: np.ndarray,
        positions: np.ndarray,
        chip_ids: Optional[Sequence[int]] = None,
    ):
        vth = np.asarray(vth, dtype=float)
        if vth.ndim != 4 or vth.shape[-1] != 2:
            raise ValueError(
                f"vth must have shape (n_chips, n_ros, n_stages, 2), got {vth.shape}"
            )
        tc_scale = np.asarray(tc_scale, dtype=float)
        if tc_scale.shape != vth.shape:
            raise ValueError(
                f"tc_scale shape {tc_scale.shape} does not match vth {vth.shape}"
            )
        positions = np.asarray(positions, dtype=float)
        if positions.shape != (vth.shape[1], 2):
            raise ValueError(
                f"positions must have shape ({vth.shape[1]}, 2), got {positions.shape}"
            )
        self.vth = vth
        self.tc_scale = tc_scale
        self.positions = positions
        self.chip_ids = (
            list(range(vth.shape[0])) if chip_ids is None else list(chip_ids)
        )
        if len(self.chip_ids) != vth.shape[0]:
            raise ValueError("chip_ids must name every chip row")

    @classmethod
    def from_chips(
        cls, chips: Union[ChipPopulation, Sequence[Chip]]
    ) -> "PopulationView":
        """Stack a population (or any chip sequence) into one view."""
        chips = list(chips)
        if not chips:
            raise ValueError("population is empty")
        return cls(
            vth=np.stack([c.vth for c in chips]),
            tc_scale=np.stack([c.tc_scale for c in chips]),
            positions=chips[0].positions,
            chip_ids=[c.chip_id for c in chips],
        )

    @property
    def n_chips(self) -> int:
        return self.vth.shape[0]

    @property
    def n_ros(self) -> int:
        return self.vth.shape[1]

    @property
    def n_stages(self) -> int:
        return self.vth.shape[2]

    def chip(self, index: int) -> Chip:
        """Thin per-chip :class:`Chip` view of row ``index`` (no copy)."""
        return Chip(
            vth=self.vth[index],
            positions=self.positions,
            tc_scale=self.tc_scale[index],
            chip_id=self.chip_ids[index],
        )

    def chips(self) -> List[Chip]:
        return [self.chip(i) for i in range(self.n_chips)]


def _stage_weights(
    tech: TechnologyCard,
    n_stages: int,
    *,
    vdd: float,
    temperature_k: float,
    stage0_penalty: float,
    c_load_factor: float,
) -> np.ndarray:
    """Stage/polarity reduction weights with all scalar factors folded in.

    One device's transition delay is ``c_load * vdd / (k * mu * od**alpha)``;
    summing over stages (stage 0 weighted by its structural penalty) and
    dividing by ``c_load_factor`` gives the ring frequency.  Folding the
    scalar prefactor and the load factor into the weights leaves the hot
    kernel with a single power and a single tensordot.
    """
    mu = mobility_factor(temperature_k, tech)
    scale = tech.c_load * vdd / (tech.k_drive * mu) * c_load_factor
    weights = np.full((n_stages, 2), scale)
    weights[0, :] *= stage0_penalty
    return weights


def frequency_block_kernel(
    od: np.ndarray,
    scratch: np.ndarray,
    vth_rows: np.ndarray,
    *,
    vdd: float,
    neg_alpha: float,
    w_flat: np.ndarray,
    period_out: np.ndarray,
    tc_rows: Optional[np.ndarray] = None,
    tc_coeff: float = 0.0,
    subtract_aging=None,
) -> None:
    """One chip-axis block of the batched frequency kernel, into ``period_out``.

    The exact operation sequence — subtract, optional tc term, optional
    aging subtraction, ``exp(-alpha * log(od))`` in place, one BLAS
    matvec — shared by :class:`BatchStudy` and the out-of-core
    :class:`repro.store.study.StoreStudy`, so the two paths are
    bit-identical by construction rather than by parallel maintenance.
    ``subtract_aging(od, scratch)`` performs ``od -= delta`` for this
    block; the caller owns the (memoised vs factored) grouping choice.
    Must run inside ``np.errstate(invalid="ignore", divide="ignore")``;
    ``period_out`` holds *periods* — the caller checks finiteness and
    takes the reciprocal.
    """
    np.subtract(vdd, vth_rows, out=od)
    if tc_rows is not None:
        # off nominal temperature the tc mismatch term is non-zero
        np.multiply(tc_rows, tc_coeff, out=scratch)
        od -= scratch
    if subtract_aging is not None:
        subtract_aging(od, scratch)
    # od ** -alpha as exp(-alpha * log(od)), in place (see
    # batch_frequencies_from_overdrive); non-positive overdrives surface
    # as NaN/inf periods for the caller's finiteness check.
    np.log(od, out=od)
    od *= neg_alpha
    np.exp(od, out=od)
    # the (stage, polarity) reduction as one BLAS matvec on no-copy
    # views — what tensordot does internally, minus its per-call
    # reshaping overhead
    np.dot(
        od.reshape(-1, w_flat.shape[0]),
        w_flat,
        out=period_out.reshape(-1),
    )


def batch_frequencies_from_overdrive(
    overdrive: np.ndarray, tech: TechnologyCard, weights: np.ndarray
) -> np.ndarray:
    """Ring frequencies from a gate-overdrive tensor (hot kernel).

    ``overdrive`` has shape ``(..., n_stages, 2)`` and **is consumed**
    (overwritten in place); ``weights`` comes from :func:`_stage_weights`.
    Returns the ``(...,)`` frequency array in hertz.

    ``od ** -alpha`` is evaluated as ``exp(-alpha * log(od))`` in place —
    measurably faster than ``np.power`` and within a couple of ULPs of
    it.  A non-positive overdrive (supply too low for some device) turns
    into a NaN/inf period, which is detected on the small reduced array
    instead of a full-tensor precheck.
    """
    with np.errstate(invalid="ignore", divide="ignore"):
        np.log(overdrive, out=overdrive)
        overdrive *= -tech.alpha
        np.exp(overdrive, out=overdrive)
        period = np.tensordot(overdrive, weights, axes=([-2, -1], [0, 1]))
    if not np.isfinite(period).all():
        raise ValueError(
            "non-positive gate overdrive: the supply cannot turn on every "
            "device at this corner (vdd too low or thresholds too high)"
        )
    return np.reciprocal(period)


class BatchStudy:
    """A fabricated, aging-ready population evaluated whole-array at once.

    The batched counterpart of :class:`~repro.core.factory.Study`: the
    same design / mission bundle, but frequencies and responses come back
    as ``(n_chips, ...)`` arrays from one vectorised pass instead of a
    Python loop over per-chip instances.  Per-chip
    :class:`RoPufInstance` views remain available through
    :attr:`instances` / :meth:`aged_instances` for code that wants the
    scalar API.

    Frequencies are memoised per ``(t_years, conditions)`` (LRU), so
    repeated golden-response queries are free.  Memoised arrays are
    read-only — copy before mutating.
    """

    #: number of (t_years, conditions) corners kept in the frequency memo
    MEMO_SIZE = 32

    def __init__(
        self,
        design: PufDesign,
        view: PopulationView,
        aging: PopulationAging,
        mission: MissionProfile,
    ):
        if view.n_stages != design.n_stages:
            raise ValueError(
                f"population has {view.n_stages} stages per RO, design wants "
                f"{design.n_stages}"
            )
        if view.n_ros != design.n_ros:
            raise ValueError(
                f"population has {view.n_ros} ROs, design wants {design.n_ros}"
            )
        if aging.n_chips != view.n_chips:
            raise ValueError(
                f"aging carries {aging.n_chips} chips, population has "
                f"{view.n_chips}"
            )
        self.design = design
        self.view = view
        self.aging = aging
        self.mission = mission
        self._freq_memo: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._od_buf: Optional[np.ndarray] = None
        self._scratch_buf: Optional[np.ndarray] = None
        self._instances: Optional[List[RoPufInstance]] = None

    # ---- construction ------------------------------------------------

    @classmethod
    def from_study(cls, study: Study) -> "BatchStudy":
        """Stack an existing per-chip :class:`Study` (shared chips and
        prefactors, so both views answer identically)."""
        return cls(
            design=study.design,
            view=PopulationView.from_chips([inst.chip for inst in study.instances]),
            aging=PopulationAging.from_agings(study.agings),
            mission=study.mission,
        )

    # ---- geometry ----------------------------------------------------

    @property
    def n_chips(self) -> int:
        return self.view.n_chips

    @property
    def n_bits(self) -> int:
        return self.design.n_bits

    # ---- lifecycle ---------------------------------------------------

    def close(self) -> None:
        """No-op, mirroring :class:`repro.parallel.ParallelBatchStudy`.

        The serial engine holds no external resources; exposing the same
        lifecycle lets call sites ``closing(...)`` either engine.
        """

    def __enter__(self) -> "BatchStudy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---- batched evaluation ------------------------------------------

    def frequencies(
        self,
        t_years: float = 0.0,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """True mean frequency of every oscillator of every chip (hertz).

        Shape ``(n_chips, n_ros)``; row ``i`` equals
        ``instances[i].frequencies(conditions)`` after ``t_years`` of
        aging, to floating-point rounding (``rtol`` ~1e-12).
        """
        cond = conditions or OperatingConditions.nominal()
        t = float(t_years)
        key = (t, cond)
        cached = self._freq_memo.get(key)
        if cached is not None:
            self._freq_memo.move_to_end(key)
            telemetry.count("batch.corner_memo_hits")
            return cached
        telemetry.count("batch.corner_memo_misses")
        sp = telemetry.start_span(
            "batch.frequencies",
            t_years=t,
            temperature_k=cond.temperature_k,
            n_chips=self.view.n_chips,
            n_ros=self.view.n_ros,
        )

        tech = self.design.tech
        vdd = cond.effective_vdd(tech)
        delta_temp = cond.temperature_k - T_REF_K
        weights = _stage_weights(
            tech,
            self.design.n_stages,
            vdd=vdd,
            temperature_k=cond.temperature_k,
            stage0_penalty=self.design.cell.stage0_penalty,
            c_load_factor=self.design.cell.c_load_factor,
        )
        delta = self.aging.cached_delta(t) if t > 0.0 else None
        n_chips = self.view.n_chips
        period = np.empty((n_chips, self.view.n_ros))
        # The overdrive tensor is assembled block-by-block along the chip
        # axis in two persistent buffers: allocating (and page-faulting) a
        # population-sized array per grid point would cost as much as the
        # arithmetic itself, and block-sized work buffers stay L2-resident
        # through the whole subtract/clip/power chain instead of streaming
        # a population-sized tensor through the cache several times over.
        od_buf, scratch_buf = self._work_buffers()
        neg_alpha = -tech.alpha
        w_flat = np.ascontiguousarray(weights.reshape(-1))
        n_blocks = -(-n_chips // od_buf.shape[0])
        telemetry.count("freq.kernel_blocks", n_blocks)
        # histogram hook hoisted out of the loop: one tracer lookup per
        # corner, and the per-block clock reads only happen when tracing
        tr = telemetry.active()
        with np.errstate(invalid="ignore", divide="ignore"):
            for start in range(0, n_chips, od_buf.shape[0]):
                stop = min(start + od_buf.shape[0], n_chips)
                telemetry.progress("batch.frequencies", stop, n_chips)
                if tr is not None:
                    _blk0 = time.perf_counter_ns()
                rows = slice(start, stop)
                if t > 0.0:
                    if delta is not None:
                        def subtract(od, scratch, rows=rows):
                            od -= delta[rows]
                    else:
                        def subtract(od, scratch, rows=rows):
                            self.aging.subtract_delta_into(t, od, scratch, rows=rows)
                else:
                    subtract = None
                frequency_block_kernel(
                    od_buf[: stop - start],
                    scratch_buf[: stop - start],
                    self.view.vth[rows],
                    vdd=vdd,
                    neg_alpha=neg_alpha,
                    w_flat=w_flat,
                    period_out=period[rows],
                    tc_rows=(
                        self.view.tc_scale[rows] if delta_temp != 0.0 else None
                    ),
                    tc_coeff=tech.vth_tc * delta_temp,
                    subtract_aging=subtract,
                )
                if tr is not None:
                    tr.observe(
                        "batch.block_s",
                        (time.perf_counter_ns() - _blk0) / 1e9,
                    )
        if not np.isfinite(period).all():
            telemetry.end_span(sp)
            raise ValueError(
                "non-positive gate overdrive: the supply cannot turn on every "
                "device at this corner (vdd too low or thresholds too high)"
            )
        freqs = np.reciprocal(period, out=period)
        freqs.flags.writeable = False
        self._freq_memo[key] = freqs
        if len(self._freq_memo) > self.MEMO_SIZE:
            self._freq_memo.popitem(last=False)
        telemetry.end_span(sp)
        if tr is not None and sp is not None:
            tr.observe("batch.corner_s", sp.duration_ns / 1e9)
        return freqs

    def responses(
        self,
        challenge: Optional[int] = None,
        t_years: float = 0.0,
        *,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """Golden responses of every chip at ``t_years``.

        Shape ``(n_chips, n_bits)`` uint8; row ``i`` is bit-identical to
        ``Study.responses(challenge, t_years)[i]`` under the same seed.
        """
        telemetry.count("batch.response_passes")
        cond = conditions or OperatingConditions.nominal()
        pairs = self.design.pairing.pairs(self.design.n_ros, challenge)
        freqs = self.frequencies(t_years, cond)
        bits = compare_pairs(freqs, pairs, self.design.tech, self.design.readout)
        # forensics hook: no-op (one branch) unless a collector is installed;
        # the bits above are computed first and never depend on the capture
        record_response_margins(freqs, pairs, float(t_years), cond)
        return bits

    def mechanism_frequencies(
        self,
        t_years: float,
        mechanism: str,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """Counterfactual frequencies with a single aging mechanism active.

        ``mechanism`` is ``"bti"`` (NBTI/PBTI only) or ``"hci"`` (HCI
        only): the full population evaluated as if the *other* mechanism
        had contributed no threshold shift at ``t_years``.  The forensics
        layer differences these against the true aged frequencies to
        attribute each bit's margin loss to a mechanism.

        Cold path by design — a report evaluates it a handful of times,
        never inside a sweep loop — so it runs the unblocked full-tensor
        kernel (:func:`batch_frequencies_from_overdrive`).  Results are
        memoised alongside :meth:`frequencies` and returned read-only.
        Rows are chip-independent, so shard evaluation concatenates to
        the serial answer bit for bit (the parallel engine relies on it).
        """
        if mechanism not in ("bti", "hci"):
            raise ValueError(f"mechanism must be 'bti' or 'hci', got {mechanism!r}")
        cond = conditions or OperatingConditions.nominal()
        t = float(t_years)
        key = (t, cond, mechanism)
        cached = self._freq_memo.get(key)
        if cached is not None:
            self._freq_memo.move_to_end(key)
            telemetry.count("batch.corner_memo_hits")
            return cached
        telemetry.count("batch.mechanism_passes")
        with telemetry.span(
            "batch.mechanism_frequencies",
            t_years=t,
            mechanism=mechanism,
            n_chips=self.view.n_chips,
        ):
            tech = self.design.tech
            vdd = cond.effective_vdd(tech)
            delta_temp = cond.temperature_k - T_REF_K
            weights = _stage_weights(
                tech,
                self.design.n_stages,
                vdd=vdd,
                temperature_k=cond.temperature_k,
                stage0_penalty=self.design.cell.stage0_penalty,
                c_load_factor=self.design.cell.c_load_factor,
            )
            od = vdd - self.view.vth
            if delta_temp != 0.0:
                od -= self.view.tc_scale * (tech.vth_tc * delta_temp)
            if t > 0.0:
                bti, hci = self.aging.delta_components(t)
                od -= bti if mechanism == "bti" else hci
            freqs = batch_frequencies_from_overdrive(od, tech, weights)
        freqs.flags.writeable = False
        self._freq_memo[key] = freqs
        if len(self._freq_memo) > self.MEMO_SIZE:
            self._freq_memo.popitem(last=False)
        return freqs

    def margin_histogram(
        self,
        edges: np.ndarray,
        challenge: Optional[int] = None,
        t_years: float = 0.0,
        *,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """Histogram counts of the signed response margins (int64).

        Bins the population's relative pair margins at ``t_years`` over
        the explicit ``edges`` (see
        :func:`repro.metrics.margins.histogram_edges`).  The parallel
        engine computes the same counts shard-by-shard in the workers and
        merges by addition — identical by construction because the edges
        are shared and binning is per-element.
        """
        from ..metrics.margins import margin_histogram, relative_margins

        pairs = self.design.pairing.pairs(self.design.n_ros, challenge)
        freqs = self.frequencies(t_years, conditions)
        return margin_histogram(relative_margins(freqs, pairs), edges)

    # ---- per-chip views (back-compat) --------------------------------

    @property
    def instances(self) -> List[RoPufInstance]:
        """Thin per-chip views over the fresh population (cached)."""
        if self._instances is None:
            self._instances = [
                self.design.instantiate(self.view.chip(i))
                for i in range(self.n_chips)
            ]
        return self._instances

    @property
    def agings(self) -> List[ChipAging]:
        """Per-chip :class:`ChipAging` views (sliced prefactors, no copy)."""
        return [
            self.aging.chip_aging(i, self.view.chip(i))
            for i in range(self.n_chips)
        ]

    def aged_instances(self, t_years: float) -> List[RoPufInstance]:
        """Every instance rebound to its chip aged by ``t_years``."""
        if t_years == 0:
            return list(self.instances)
        delta = self.aging.delta(t_years)
        return [
            self.design.instantiate(
                Chip(
                    vth=self.view.vth[i] + delta[i],
                    positions=self.view.positions,
                    tc_scale=self.view.tc_scale[i],
                    chip_id=self.view.chip_ids[i],
                )
            )
            for i in range(self.n_chips)
        ]

    # ---- internals ---------------------------------------------------

    #: chip-axis block size of the work buffers, in tensor elements.  Two
    #: buffers of ~48k float64 elements (~380 KiB each) fit comfortably in
    #: a commodity 1-2 MiB L2 alongside the streamed input slices, which
    #: is worth ~1.5x on the memory-bound part of the frequency kernel.
    _BLOCK_ELEMS = 48_000

    def _work_buffers(self) -> tuple:
        """Persistent chip-axis-blocked scratch (overdrive + delta)."""
        if self._od_buf is None:
            per_chip = self.view.n_ros * self.view.n_stages * 2
            block = max(1, min(self.view.n_chips, self._BLOCK_ELEMS // per_chip))
            shape = (block,) + self.view.vth.shape[1:]
            self._od_buf = np.empty(shape)
            self._scratch_buf = np.empty(shape)
        return self._od_buf, self._scratch_buf


def make_batch_study(
    design: PufDesign,
    n_chips: int,
    *,
    mission: Optional[MissionProfile] = None,
    idle_policy: Optional[IdlePolicy] = None,
    rng: RngLike = None,
) -> BatchStudy:
    """Fabricate ``n_chips`` of ``design`` as one batched study.

    Consumes the RNG exactly like :func:`~repro.core.factory.make_study`
    (fabrication children first, then one aging child per chip, NBTI
    prefactors before HCI), so the same seed yields the same silicon on
    both paths: golden responses and aging deltas are bit-identical, and
    frequencies agree to rounding.
    """
    fab_rng, aging_rng = spawn(rng, 2)
    mission = mission or MissionProfile()
    with telemetry.span("fabricate.batch_study", n_chips=n_chips, n_ros=design.n_ros):
        population = design.variation_model().sample_population(n_chips, fab_rng)
        simulator = AgingSimulator(
            design.tech, design.cell, mission, idle_policy=idle_policy
        )
        aging = simulator.population_aging(population, aging_rng)
        return BatchStudy(
            design=design,
            view=PopulationView.from_chips(population),
            aging=aging,
            mission=mission,
        )
