"""PUF design and instance abstractions.

A :class:`PufDesign` is everything that goes to the fab: the technology,
the oscillator cell, the array geometry, the layout discipline, the pairing
scheme and the readout datapath.  Instantiating a design against one
Monte-Carlo :class:`~repro.variation.chip.Chip` yields a
:class:`RoPufInstance` — the object experiments interrogate.

Aging composes naturally: age the chip (producing a new chip) and rebind it
with :meth:`RoPufInstance.with_chip`; the instance itself stays stateless.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from .._rng import RngLike
from ..circuit.cells import CellDescriptor
from ..circuit.delay import ring_frequency
from ..environment.conditions import OperatingConditions
from ..transistor.technology import TechnologyCard
from ..variation.chip import Chip
from ..variation.process import VariationModel
from ..variation.spatial import LayoutStyle
from .pairing import NeighborPairing, PairingScheme
from .readout import ReadoutConfig, compare_pairs, voted_response


@dataclass(frozen=True)
class PufDesign:
    """One complete PUF design point (what the fab would receive)."""

    name: str
    tech: TechnologyCard
    cell: CellDescriptor
    n_ros: int
    layout: LayoutStyle
    pairing: PairingScheme = field(default_factory=NeighborPairing)
    readout: ReadoutConfig = field(default_factory=ReadoutConfig)

    def __post_init__(self) -> None:
        if self.n_ros < 2:
            raise ValueError("a design needs at least two oscillators")

    @property
    def n_stages(self) -> int:
        """Inverting stages per oscillator (from the cell descriptor)."""
        return self.cell.n_stages

    @property
    def n_bits(self) -> int:
        """Response width of one evaluation."""
        return self.pairing.n_bits(self.n_ros)

    def variation_model(self) -> VariationModel:
        """The Monte-Carlo sampler matching this design's geometry/layout."""
        return VariationModel(
            tech=self.tech,
            n_ros=self.n_ros,
            n_stages=self.n_stages,
            layout=self.layout,
        )

    def with_n_ros(self, n_ros: int) -> "PufDesign":
        """Resize the array (used by the key-generation design search)."""
        return replace(self, n_ros=n_ros)

    def instantiate(self, chip: Chip) -> "RoPufInstance":
        """Bind the design to one manufactured chip."""
        return RoPufInstance(design=self, chip=chip)

    def sample_instances(
        self, n_chips: int, rng: RngLike = None
    ) -> List["RoPufInstance"]:
        """Fabricate ``n_chips`` Monte-Carlo instances of this design."""
        population = self.variation_model().sample_population(n_chips, rng)
        return [self.instantiate(chip) for chip in population]

    def puf_area(self) -> float:
        """PUF-block silicon area in square micrometres.

        Oscillator array plus readout: two counters, the pair-selection
        muxing (a 2x ``n_ros``:1 mux tree costs about one 2:1 mux per RO
        per side), and the comparator.
        """
        area = self.tech.area
        cells = self.n_ros * self.cell.cell_area(self.tech)
        counters = 2 * self.readout.counter_bits * area.counter_bit
        mux_tree = 2 * max(self.n_ros - 1, 1) * area.mux2
        comparator = self.readout.counter_bits * (area.xor2 + area.and2)
        return cells + counters + mux_tree + comparator


@dataclass(frozen=True)
class RoPufInstance:
    """One physical PUF: a design bound to a manufactured (or aged) chip."""

    design: PufDesign
    chip: Chip

    def __post_init__(self) -> None:
        if self.chip.n_stages != self.design.n_stages:
            raise ValueError(
                f"chip has {self.chip.n_stages} stages per RO, design wants "
                f"{self.design.n_stages}"
            )
        if self.chip.n_ros != self.design.n_ros:
            raise ValueError(
                f"chip has {self.chip.n_ros} ROs, design wants {self.design.n_ros}"
            )

    @property
    def chip_id(self) -> int:
        return self.chip.chip_id

    @property
    def n_bits(self) -> int:
        return self.design.n_bits

    def with_chip(self, chip: Chip) -> "RoPufInstance":
        """Rebind to another chip view (typically an aged one)."""
        return RoPufInstance(design=self.design, chip=chip)

    def frequencies(
        self, conditions: Optional[OperatingConditions] = None
    ) -> np.ndarray:
        """True mean frequency of every oscillator at the given corner (Hz)."""
        cond = conditions or OperatingConditions.nominal()
        return ring_frequency(
            self.chip.vth,
            self.design.tech,
            vdd=cond.effective_vdd(self.design.tech),
            temperature_k=cond.temperature_k,
            tc_scale=self.chip.tc_scale,
            stage0_penalty=self.design.cell.stage0_penalty,
        ) / self.design.cell.c_load_factor

    def evaluate(
        self,
        challenge: Optional[int] = None,
        *,
        conditions: Optional[OperatingConditions] = None,
        noisy: bool = False,
        votes: int = 1,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Produce the response bits for ``challenge`` at a corner.

        Noiseless evaluation compares true frequencies (the idealised
        infinite-window measurement used as the aging-study reference);
        noisy evaluation runs the jittered counter datapath, optionally
        majority-voting over ``votes`` windows.
        """
        pairs = self.design.pairing.pairs(self.design.n_ros, challenge)
        freqs = self.frequencies(conditions)
        if not noisy:
            if votes != 1:
                raise ValueError("votes only applies to noisy evaluation")
            return compare_pairs(
                freqs, pairs, self.design.tech, self.design.readout
            )
        return voted_response(
            freqs,
            pairs,
            self.design.tech,
            self.design.readout,
            votes=votes,
            rng=rng,
        )

    def golden_response(self, challenge: Optional[int] = None) -> np.ndarray:
        """The enrolment-time reference response (noiseless, nominal)."""
        return self.evaluate(challenge, conditions=OperatingConditions.nominal())
