"""Measurement datapath: counters, comparison, and voting.

The silicon readout of an RO-PUF routes the two selected oscillators to two
counters for a fixed window and compares the counts.  This module models
that path: the (optional) jitter + quantisation of the counts and the final
comparison, plus majority voting over repeated windows (how golden
responses are enrolled).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._rng import RngLike, as_generator, spawn
from ..environment.noise import majority_vote, noisy_counts
from ..transistor.technology import TechnologyCard


@dataclass(frozen=True)
class ReadoutConfig:
    """Configuration of the counting/comparison datapath.

    Parameters
    ----------
    window_s:
        Counting window per evaluation.  20 us at ~1 GHz gives ~2e4 counts,
        so quantisation is at the 5e-5 relative level — far below jitter.
    counter_bits:
        Width of the two ripple counters (area model input; also bounds the
        window: the counter must not wrap).
    """

    window_s: float = 2.0e-5
    counter_bits: int = 16

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.counter_bits < 4:
            raise ValueError("counter_bits must be at least 4")

    def check_no_overflow(self, max_frequency_hz: float) -> None:
        """Raise if the window would wrap the counters at this frequency."""
        max_count = max_frequency_hz * self.window_s
        if max_count >= 2**self.counter_bits:
            raise ValueError(
                f"a {self.counter_bits}-bit counter wraps after "
                f"{2**self.counter_bits} edges but the window collects "
                f"~{max_count:.0f}; shorten window_s or widen the counter"
            )


def compare_pairs(
    frequencies: np.ndarray,
    pairs: np.ndarray,
    tech: TechnologyCard,
    config: ReadoutConfig,
    *,
    noisy: bool = False,
    rng: RngLike = None,
) -> np.ndarray:
    """One evaluation: response bits from pair frequency comparisons.

    ``bit = 1`` when the first oscillator of the pair counts higher.
    Noiseless mode compares true frequencies directly (the analytic
    "infinite window" golden measurement); noisy mode pushes both
    oscillators through the jittered, quantised counter model.

    ``frequencies`` may carry leading batch axes (e.g. a chip axis of
    shape ``(n_chips, n_ros)`` from a
    :class:`~repro.core.population.BatchStudy`); oscillators are indexed
    along the last axis and the result keeps the batch shape,
    ``(..., n_bits)``.
    """
    frequencies = np.asarray(frequencies, dtype=float)
    pairs = np.asarray(pairs)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError("pairs must have shape (n_bits, 2)")
    if np.any(pairs < 0) or np.any(pairs >= frequencies.shape[-1]):
        raise ValueError("pair indices out of range")

    f_a = frequencies[..., pairs[:, 0]]
    f_b = frequencies[..., pairs[:, 1]]
    if not noisy:
        return (f_a > f_b).astype(np.uint8)

    config.check_no_overflow(float(frequencies.max()))
    gen = as_generator(rng)
    counts_a = noisy_counts(f_a, config.window_s, tech, gen)
    counts_b = noisy_counts(f_b, config.window_s, tech, gen)
    return (counts_a > counts_b).astype(np.uint8)


def voted_response(
    frequencies: np.ndarray,
    pairs: np.ndarray,
    tech: TechnologyCard,
    config: ReadoutConfig,
    *,
    votes: int = 1,
    rng: RngLike = None,
) -> np.ndarray:
    """Majority-voted noisy response over ``votes`` repeated windows.

    Like :func:`compare_pairs`, ``frequencies`` may carry leading batch
    axes; the vote is taken per bit across the repeated windows.
    """
    if votes < 1:
        raise ValueError("votes must be at least 1")
    if votes == 1:
        return compare_pairs(
            frequencies, pairs, tech, config, noisy=True, rng=rng
        )
    children = spawn(rng, votes)
    rounds = np.stack(
        [
            compare_pairs(frequencies, pairs, tech, config, noisy=True, rng=child)
            for child in children
        ]
    )
    return majority_vote(rounds)
