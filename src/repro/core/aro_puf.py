"""The ARO-PUF: the paper's aging-resistant design.

Three deliberate departures from the conventional baseline, each mapped to
a mechanism in this framework:

1. **Recovery gating** — the :func:`~repro.circuit.cells.aro_cell` breaks
   the ring when idle and steers every inverter input to logic high, so no
   PMOS accumulates DC NBTI stress (``IdlePolicy.RECOVERY``).  Aging is
   confined to the microscopic fraction of life the oscillators actually
   oscillate.
2. **Balanced stress** — while oscillating, every stage sees identical
   50 % AC stress, so what little aging remains is symmetric across the
   compared pair instead of tracking the parked logic pattern.
3. **Symmetric layout** — oscillator stages are interleaved about a common
   centroid (``LayoutStyle.SYMMETRIC``), cancelling the systematic
   (chip-independent) variation component that biases conventional pair
   comparisons identically on every die and drags inter-chip HD to ~45 %.
"""

from __future__ import annotations

from typing import Optional

from ..aging.schedule import IdlePolicy
from ..circuit.cells import aro_cell
from ..transistor.technology import TechnologyCard, ptm90
from ..variation.spatial import LayoutStyle
from .base import PufDesign
from .pairing import NeighborPairing, PairingScheme
from .readout import ReadoutConfig


def aro_design(
    n_ros: int = 256,
    n_stages: int = 5,
    *,
    tech: Optional[TechnologyCard] = None,
    pairing: Optional[PairingScheme] = None,
    readout: Optional[ReadoutConfig] = None,
) -> PufDesign:
    """Build the ARO-PUF design point (same defaults as the baseline)."""
    return PufDesign(
        name="aro-puf",
        tech=tech or ptm90(),
        cell=aro_cell(n_stages),
        n_ros=n_ros,
        layout=LayoutStyle.SYMMETRIC,
        pairing=pairing or NeighborPairing(),
        readout=readout or ReadoutConfig(),
    )


#: idle behaviour the ARO design is built for
ARO_IDLE_POLICY = IdlePolicy.RECOVERY
