"""Core PUF architectures: designs, instances, pairing and readout."""

from .aro_puf import ARO_IDLE_POLICY, aro_design
from .base import PufDesign, RoPufInstance
from .factory import DESIGNS, Study, design_by_name, make_study
from .pairing import (
    ChainPairing,
    DistantPairing,
    NeighborPairing,
    PairingScheme,
    RandomDisjointPairing,
)
from .population import (
    BatchStudy,
    PopulationView,
    batch_frequencies_from_overdrive,
    make_batch_study,
)
from .readout import ReadoutConfig, compare_pairs, voted_response
from .selection import StaticPairing, select_stable_pairs, selection_margins
from .ro_puf import CONVENTIONAL_IDLE_POLICY, conventional_design

__all__ = [
    "ARO_IDLE_POLICY",
    "BatchStudy",
    "CONVENTIONAL_IDLE_POLICY",
    "ChainPairing",
    "DESIGNS",
    "DistantPairing",
    "NeighborPairing",
    "PairingScheme",
    "PopulationView",
    "PufDesign",
    "RandomDisjointPairing",
    "ReadoutConfig",
    "RoPufInstance",
    "StaticPairing",
    "Study",
    "aro_design",
    "batch_frequencies_from_overdrive",
    "compare_pairs",
    "conventional_design",
    "design_by_name",
    "select_stable_pairs",
    "selection_margins",
    "make_batch_study",
    "make_study",
    "voted_response",
]
