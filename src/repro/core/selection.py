"""Enrolment-time pair selection: the 1-out-of-k masking enhancement.

The classic RO-PUF reliability technique (Suh & Devadas, DAC 2007):
instead of comparing fixed pairs, group ``k`` oscillators per response bit
and pick — *at enrolment, using measured frequencies* — the pair within
each group whose frequency difference is largest.  A wide margin at
enrolment buys headroom against noise and drift; the selected indices are
stored as (public) helper data.

This is the state of the art the ARO-PUF is implicitly measured against,
so the framework implements it faithfully:

* :func:`select_stable_pairs` performs the per-chip enrolment selection;
* :class:`StaticPairing` wraps the selected pairs as a
  :class:`~repro.core.pairing.PairingScheme` so the rest of the stack
  (readout, metrics, aging studies) works unchanged;
* the masking ablation (experiment E9) quantifies the catch: masking is
  bought with ``k`` oscillators per bit, and a margin that is generous
  against *zero-mean measurement noise* is still consumed by the
  *systematically growing* aging differential.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .pairing import PairingScheme


@dataclass(frozen=True)
class StaticPairing(PairingScheme):
    """A fixed, enrolment-derived pair list acting as a pairing scheme.

    The pair table is chip-specific helper data; instances of this scheme
    are created per chip by :func:`select_stable_pairs`.
    """

    pair_table: Tuple[Tuple[int, int], ...]

    def pairs(self, n_ros: int, challenge: Optional[int] = None) -> np.ndarray:
        self._check(n_ros)
        table = np.asarray(self.pair_table, dtype=np.int64)
        if table.size and table.max() >= n_ros:
            raise ValueError(
                f"pair table references RO {int(table.max())} but the array "
                f"has only {n_ros}"
            )
        return table.reshape(-1, 2)

    def n_bits(self, n_ros: int) -> int:
        return len(self.pair_table)


def select_stable_pairs(
    frequencies: np.ndarray, k: int
) -> StaticPairing:
    """1-out-of-k enrolment selection.

    Oscillators are grouped ``[0..k-1], [k..2k-1], ...`` (physically
    adjacent, matching how masking is laid out in silicon); within each
    group the pair with the largest absolute frequency difference wins.
    One response bit per group; leftover oscillators are unused.

    Parameters
    ----------
    frequencies:
        Enrolment-time measured frequencies, shape ``(n_ros,)``.
    k:
        Group size (``k = 2`` degenerates to plain neighbour pairing).
    """
    freqs = np.asarray(frequencies, dtype=float)
    if freqs.ndim != 1:
        raise ValueError("frequencies must be a 1-D array")
    if k < 2:
        raise ValueError("group size k must be at least 2")
    n_groups = freqs.size // k
    if n_groups < 1:
        raise ValueError(f"need at least k={k} oscillators, got {freqs.size}")

    table = []
    for g in range(n_groups):
        base = g * k
        group = freqs[base : base + k]
        # argmax over all distinct pairs within the group; the diagonal is
        # masked so a fully tied group still yields two distinct devices
        diff = np.abs(group[:, None] - group[None, :])
        np.fill_diagonal(diff, -1.0)
        i, j = np.unravel_index(np.argmax(diff), diff.shape)
        table.append((base + int(i), base + int(j)))
    return StaticPairing(pair_table=tuple(table))


def selection_margins(frequencies: np.ndarray, pairing: StaticPairing) -> np.ndarray:
    """Relative frequency margins ``|f_a - f_b| / mean`` of selected pairs.

    The enrolment-time safety margin each masked bit starts its life with.
    """
    freqs = np.asarray(frequencies, dtype=float)
    pairs = pairing.pairs(freqs.size)
    gaps = np.abs(freqs[pairs[:, 0]] - freqs[pairs[:, 1]])
    return gaps / freqs.mean()
