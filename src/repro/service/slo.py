"""Declarative SLOs: the service's pass/warn/fail bands.

What :mod:`repro.telemetry.anchors` does for the paper's *scientific*
claims, this module does for the service's *operational* claims: each
:class:`Slo` names one flat service metric (a key of
``RedMetrics.metrics()``), a direction, and a pass/fail pair of bounds;
:func:`check_slos` judges a metrics mapping into verdicts with the same
``pass`` / ``warn`` / ``fail`` / ``missing`` vocabulary — so the anchor
machinery's :func:`~repro.telemetry.anchors.worst_status` (duck-typed on
``.status``) aggregates both kinds unchanged, and ``repro loadgen
--slo-gate enforce`` exits non-zero exactly like the CI anchor gate.

Bands are one-sided: an *upper*-bound SLO (latency) passes at or below
``pass_at``, fails above ``fail_at`` and warns between; a *lower*-bound
SLO (availability) mirrors that.  Custom specs load from JSON
(:func:`load_slo_spec`) so a deployment can tighten bands without
touching code.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from ..telemetry.anchors import STATUS_ORDER  # noqa: F401  (re-exported order)

PathLike = Union[str, pathlib.Path]

#: schema version of the JSON SLO-spec file format
SLO_SPEC_FORMAT = 1

_BOUNDS = ("upper", "lower")


@dataclass(frozen=True)
class Slo:
    """One service-level objective with pass/warn/fail bands."""

    name: str
    #: flat metric key from ``RedMetrics.metrics()``, e.g. ``auth.p99_ms``
    metric: str
    #: ``upper``: smaller is better (latency); ``lower``: bigger is
    #: better (availability)
    bound: str
    #: best-side bound: measured on the good side of this passes
    pass_at: float
    #: worst-side bound: measured beyond this fails; between warns
    fail_at: float
    unit: str = ""
    note: str = ""

    def __post_init__(self):
        if self.bound not in _BOUNDS:
            raise ValueError(f"slo {self.name!r}: bound must be one of {_BOUNDS}")
        if self.bound == "upper" and self.fail_at < self.pass_at:
            raise ValueError(
                f"slo {self.name!r}: upper bound needs fail_at >= pass_at"
            )
        if self.bound == "lower" and self.fail_at > self.pass_at:
            raise ValueError(
                f"slo {self.name!r}: lower bound needs fail_at <= pass_at"
            )

    def judge(self, measured: float) -> str:
        """pass / warn / fail for one measured value."""
        if not math.isfinite(measured):
            return "fail"
        if self.bound == "upper":
            if measured <= self.pass_at:
                return "pass"
            return "warn" if measured <= self.fail_at else "fail"
        if measured >= self.pass_at:
            return "pass"
        return "warn" if measured >= self.fail_at else "fail"


@dataclass(frozen=True)
class SloVerdict:
    """One SLO's outcome against one run's service metrics."""

    slo: Slo
    measured: Optional[float]
    status: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.slo.name,
            "metric": self.slo.metric,
            "bound": self.slo.bound,
            "pass_at": self.slo.pass_at,
            "fail_at": self.slo.fail_at,
            "unit": self.slo.unit,
            "measured": self.measured,
            "status": self.status,
        }


#: The default objectives for the fleet service.  Latency bands are set
#: from the single-process asyncio server's measured headroom (p99 well
#: under 10 ms at 10k+ auth/sec on the reference box); availability
#: counts only *errors* — an impostor rejection is the service working.
DEFAULT_SLOS: Sequence[Slo] = (
    Slo(
        name="auth-availability",
        metric="auth.availability",
        bound="lower",
        pass_at=0.999,
        fail_at=0.99,
        note="error rate (not rejections) must stay under 0.1%",
    ),
    Slo(
        name="auth-p99-latency",
        metric="auth.p99_ms",
        bound="upper",
        pass_at=10.0,
        fail_at=50.0,
        unit="ms",
        note="ok-outcome p99 under 10 ms; 50 ms is user-visible",
    ),
    Slo(
        name="auth-p999-latency",
        metric="auth.p999_ms",
        bound="upper",
        pass_at=50.0,
        fail_at=250.0,
        unit="ms",
        note="tail-of-tail: one bad request in a thousand still bounded",
    ),
)


def check_slos(
    metrics: Mapping[str, float],
    slos: Sequence[Slo] = DEFAULT_SLOS,
) -> List[SloVerdict]:
    """Judge every SLO against a flat service-metrics mapping."""
    verdicts = []
    for slo in slos:
        measured = metrics.get(slo.metric)
        if measured is None:
            verdicts.append(SloVerdict(slo, None, "missing"))
        else:
            verdicts.append(SloVerdict(slo, float(measured), slo.judge(float(measured))))
    return verdicts


def slo_verdicts_payload(verdicts: Sequence[SloVerdict]) -> List[Dict[str, Any]]:
    """JSON-ready verdict list for the loadgen artefact's ``service.slo``."""
    return [v.to_dict() for v in verdicts]


_STATUS_MARK = {"pass": "ok  ", "warn": "WARN", "fail": "FAIL", "missing": "----"}
_BOUND_MARK = {"upper": "<=", "lower": ">="}


def render_slo_verdicts(verdicts: Sequence[SloVerdict]) -> str:
    """Aligned terminal table: one row per objective."""
    if not verdicts:
        return "(no SLOs checked)"
    rows = []
    for v in verdicts:
        s = v.slo
        measured = "     --" if v.measured is None else f"{v.measured:9.3f}"
        rows.append(
            f"{_STATUS_MARK[v.status]}  {s.name:<22} "
            f"{s.metric:<22} {measured} {s.unit:<3} "
            f"(pass {_BOUND_MARK[s.bound]} {s.pass_at:g}, "
            f"fail beyond {s.fail_at:g})"
        )
    return "\n".join(rows)


def load_slo_spec(path: PathLike) -> List[Slo]:
    """Load a JSON SLO spec: ``{"format": 1, "slos": [{...}, ...]}``.

    Each entry carries the :class:`Slo` fields (``unit``/``note``
    optional); unknown keys are rejected so a typo'd band name cannot
    silently disable an objective.
    """
    payload = json.loads(pathlib.Path(path).read_text())
    if not isinstance(payload, dict):
        raise ValueError("SLO spec must be a JSON object")
    fmt = payload.get("format")
    if fmt != SLO_SPEC_FORMAT:
        raise ValueError(
            f"unsupported SLO spec format {fmt!r} (expected {SLO_SPEC_FORMAT})"
        )
    entries = payload.get("slos")
    if not isinstance(entries, list) or not entries:
        raise ValueError("SLO spec needs a non-empty 'slos' list")
    allowed = {"name", "metric", "bound", "pass_at", "fail_at", "unit", "note"}
    slos = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ValueError(f"slos[{i}] must be an object")
        unknown = set(entry) - allowed
        if unknown:
            raise ValueError(f"slos[{i}] has unknown keys: {sorted(unknown)}")
        try:
            slos.append(
                Slo(
                    name=str(entry["name"]),
                    metric=str(entry["metric"]),
                    bound=str(entry["bound"]),
                    pass_at=float(entry["pass_at"]),
                    fail_at=float(entry["fail_at"]),
                    unit=str(entry.get("unit", "")),
                    note=str(entry.get("note", "")),
                )
            )
        except KeyError as exc:
            raise ValueError(f"slos[{i}] is missing required key {exc}") from exc
    return slos
