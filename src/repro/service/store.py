"""Enrollment-record store: the verifier's helper-data database.

The host side of the key-generation protocol keeps, per chip id:

* the **majority-voted reference response** — what threshold
  authentication compares fresh measurements against;
* the **public helper string** (:class:`~repro.keygen.helper.HelperData`)
  — what the fuzzy extractor needs to regenerate the key from an aged
  response;
* the **SHA-256 digest of the enrolled key** — so a regenerated key can
  be verified without the key itself ever touching the store (the
  standard never-store-the-secret discipline).

:class:`HelperStore` is an in-memory dict with optional append-only
JSONL persistence in the ledger idiom: every mutation appends one line,
re-enrollment appends a fresh line and last-wins on load, malformed
lines are skipped with a count rather than poisoning the whole file.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

import numpy as np

from ..keygen.helper import HelperData

PathLike = Union[str, pathlib.Path]

#: schema version stamped on every persisted record
STORE_FORMAT = 1


@dataclass(frozen=True)
class EnrollmentRecord:
    """One chip's enrolled identity: reference bits + public helper."""

    chip_id: int
    reference: np.ndarray  # majority-voted 0/1 response bits
    helper: HelperData
    key_digest: bytes  # SHA-256 of the enrolled key (never the key)

    def __post_init__(self) -> None:
        ref = np.asarray(self.reference)
        if ref.ndim != 1 or not np.all((ref == 0) | (ref == 1)):
            raise ValueError("reference must be a 1-D 0/1 bit vector")
        object.__setattr__(self, "reference", ref.astype(np.uint8))

    @property
    def n_bits(self) -> int:
        return int(self.reference.size)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": STORE_FORMAT,
            "chip_id": int(self.chip_id),
            "n_bits": self.n_bits,
            "reference": np.packbits(self.reference).tobytes().hex(),
            "helper": self.helper.to_bytes().hex(),
            "codec_spec": self.helper.codec_spec,
            "key_digest": self.key_digest.hex(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "EnrollmentRecord":
        n_bits = int(payload["n_bits"])
        ref_bits = np.unpackbits(
            np.frombuffer(bytes.fromhex(payload["reference"]), dtype=np.uint8)
        )
        if ref_bits.size < n_bits:
            raise ValueError("reference blob too short for declared n_bits")
        helper = HelperData.from_bytes(
            bytes.fromhex(payload["helper"]), n_bits, payload["codec_spec"]
        )
        return cls(
            chip_id=int(payload["chip_id"]),
            reference=ref_bits[:n_bits],
            helper=helper,
            key_digest=bytes.fromhex(payload["key_digest"]),
        )


def key_digest(key: bytes) -> bytes:
    """The stored commitment to an enrolled key."""
    return hashlib.sha256(key).digest()


class HelperStore:
    """Chip-id → :class:`EnrollmentRecord`, optionally JSONL-persisted.

    With ``path`` set, every :meth:`put` appends one JSON line and the
    constructor replays the file (last record per chip wins, malformed
    lines counted in ``n_skipped``) — the same crash-tolerant append-only
    discipline as :class:`~repro.telemetry.ledger.RunLedger`.
    """

    def __init__(self, path: Optional[PathLike] = None):
        self.path = pathlib.Path(path) if path is not None else None
        self._records: Dict[int, EnrollmentRecord] = {}
        self.n_skipped = 0
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        assert self.path is not None
        with self.path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = EnrollmentRecord.from_dict(json.loads(line))
                except (json.JSONDecodeError, KeyError, ValueError, TypeError):
                    self.n_skipped += 1
                    continue
                self._records[record.chip_id] = record

    def put(self, record: EnrollmentRecord) -> None:
        self._records[record.chip_id] = record
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a") as fh:
                fh.write(json.dumps(record.to_dict()) + "\n")

    def get(self, chip_id: int) -> Optional[EnrollmentRecord]:
        return self._records.get(int(chip_id))

    def __contains__(self, chip_id: int) -> bool:
        return int(chip_id) in self._records

    def __len__(self) -> int:
        return len(self._records)

    def chip_ids(self) -> List[int]:
        return sorted(self._records)
