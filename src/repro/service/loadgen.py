"""SLO-gated load generation: a synthetic aging fleet vs. the service.

The load generator answers the deployment question the paper's numbers
imply but never measure: *does the verifier hold its latency and
availability objectives while a fleet ages under it?*  A
:class:`SyntheticFleet` seeds per-chip golden responses and replays the
mission by flipping bits at the paper's 10-year rates (32 % for the
conventional RO-PUF, 7.7 % for the ARO — :data:`DESIGN_FLIPS_10Y`)
scaled by the stress-relaxation ``sqrt(t)`` law the aging model uses,
plus a fresh measurement-noise floor.  :func:`run_loadgen` enrolls the
fleet and then hammers the ``auth`` (and optionally ``key``) endpoints
from ``concurrency`` worker coroutines.

Observability is client-side by construction: the generator runs its own
:class:`~repro.telemetry.red.RedMetrics` over *observed* latencies
(wire time included in connect mode), so SLO verdicts judge what a
caller experiences, not what the server believes — and the payload shape
is identical whether the service is in-process or across a socket.

:func:`loadgen_payload` serialises a run into the benchmark-artefact
shape (``values`` + ``histograms`` + manifest, METRICS_FORMAT-compatible
sections) extended with a ``service`` section (full RED state, flat
metrics, SLO verdicts, request-log tail) — ingestible by
``tools/bench_compare.py``, ``tools/validate_metrics.py --service`` and
:func:`~repro.telemetry.perfledger.entry_from_bench_payload`.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from .. import telemetry
from ..telemetry.red import RedMetrics
from .slo import DEFAULT_SLOS, Slo, check_slos, slo_verdicts_payload

#: schema version of the payload's ``service`` section
SERVICE_SECTION_FORMAT = 1

#: the paper's 10-year response flip rates, percent (abstract: 32 % of
#: conventional RO-PUF bits flip after ten years vs 7.7 % for the ARO)
DESIGN_FLIPS_10Y: Dict[str, float] = {"aro-puf": 7.7, "ro-puf": 32.0}

#: request-log samples kept (the tail) for the payload / CI assertions
SAMPLE_KEEP = 64


@dataclass(frozen=True)
class FleetSpec:
    """A reproducible synthetic fleet."""

    n_chips: int = 16
    seed: int = 0
    #: which flip-rate curve ages the fleet (:data:`DESIGN_FLIPS_10Y` key)
    design: str = "aro-puf"
    #: fresh measurement-noise floor, percent of bits per read
    noise_pct: float = 1.0

    def __post_init__(self):
        if self.n_chips < 1:
            raise ValueError("n_chips must be >= 1")
        if self.design not in DESIGN_FLIPS_10Y:
            raise ValueError(
                f"unknown design {self.design!r}; "
                f"one of {sorted(DESIGN_FLIPS_10Y)}"
            )
        if not 0.0 <= self.noise_pct < 50.0:
            raise ValueError("noise_pct must be in [0, 50)")


class SyntheticFleet:
    """Golden responses + an aging/noise replay for one fleet spec.

    Each chip gets a seeded golden response; a read at mission time ``t``
    XORs it with a Bernoulli error pattern of rate
    ``flips10 * sqrt(t / 10) + noise`` (the aging model's stress-
    relaxation ``sqrt(t)`` shape anchored at the paper's 10-year flip
    percentage, plus the fresh noise floor), clipped below 50 %.
    Impostor reads answer from a *different* chip's silicon.
    """

    def __init__(self, spec: FleetSpec, response_bits: int):
        if response_bits < 1:
            raise ValueError("response_bits must be >= 1")
        self.spec = spec
        self.response_bits = int(response_bits)
        self._rng = np.random.default_rng(spec.seed)
        self.golden = self._rng.integers(
            0, 2, (spec.n_chips, self.response_bits), dtype=np.uint8
        )

    def flip_rate(self, years: float) -> float:
        """Expected per-bit error rate of a read at mission time ``years``."""
        if years < 0.0:
            raise ValueError("years must be >= 0")
        aged = (DESIGN_FLIPS_10Y[self.spec.design] / 100.0) * np.sqrt(years / 10.0)
        return float(min(aged + self.spec.noise_pct / 100.0, 0.499))

    def read(self, chip_id: int, years: float = 0.0) -> np.ndarray:
        """One noisy read of ``chip_id``'s silicon at mission time."""
        p = self.flip_rate(years)
        flips = (self._rng.random(self.response_bits) < p).astype(np.uint8)
        return self.golden[chip_id] ^ flips

    def impostor_read(self, claimed_id: int, years: float = 0.0) -> np.ndarray:
        """A read of the *wrong* silicon answering for ``claimed_id``."""
        other = (claimed_id + 1) % self.spec.n_chips
        return self.read(other, years)

    def measurements(self, chip_id: int, votes: int) -> List[np.ndarray]:
        """``votes`` fresh enrollment-time reads (majority-vote input)."""
        if votes < 1:
            raise ValueError("votes must be >= 1")
        return [self.read(chip_id, 0.0) for _ in range(votes)]


@dataclass
class LoadgenReport:
    """Everything one load-generation run measured (client side)."""

    spec: FleetSpec
    red: RedMetrics
    n_enrolled: int = 0
    n_requests: int = 0
    wall_s: float = 0.0
    years: float = 0.0
    concurrency: int = 1
    outcomes: Dict[str, int] = field(default_factory=dict)
    #: tail of per-request log entries (endpoint/outcome/duration/trace id)
    samples: List[Dict[str, Any]] = field(default_factory=list)
    max_loop_lag_ms: Optional[float] = None

    @property
    def auth_per_s(self) -> float:
        if self.wall_s <= 0.0:
            return 0.0
        return self.n_requests / self.wall_s


async def run_loadgen(
    client: Any,
    fleet: SyntheticFleet,
    *,
    n_requests: Optional[int] = None,
    duration_s: Optional[float] = None,
    concurrency: int = 8,
    years: float = 10.0,
    votes: int = 5,
    key_fraction: float = 0.0,
    impostor_fraction: float = 0.0,
    red: Optional[RedMetrics] = None,
) -> LoadgenReport:
    """Enroll the fleet, then hammer the service from worker coroutines.

    ``client`` is anything with the endpoint coroutines (the
    :class:`~repro.service.server.FleetService` itself for in-process
    runs, a :class:`~repro.service.server.ServiceClient` across a
    socket).  Exactly one of ``n_requests`` / ``duration_s`` bounds the
    run.  Each request picks a chip round-robin, a mission time uniform
    in ``[0, years]`` (the fleet ages *during* the run), and an endpoint
    (``key`` with probability ``key_fraction``, otherwise ``auth``;
    ``impostor_fraction`` of auths answer from the wrong silicon).

    Durations are measured around the client call and folded into a
    client-side :class:`RedMetrics`; progress heartbeats go through the
    module emitter (``--events``) under the ``loadgen.enroll`` /
    ``loadgen.requests`` stages.
    """
    if (n_requests is None) == (duration_s is None):
        raise ValueError("give exactly one of n_requests / duration_s")
    if n_requests is not None and n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    if duration_s is not None and duration_s <= 0.0:
        raise ValueError("duration_s must be positive")
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if not 0.0 <= key_fraction <= 1.0:
        raise ValueError("key_fraction must be in [0, 1]")
    if not 0.0 <= impostor_fraction <= 1.0:
        raise ValueError("impostor_fraction must be in [0, 1]")

    red = red if red is not None else RedMetrics()
    report = LoadgenReport(
        spec=fleet.spec, red=red, years=years, concurrency=concurrency
    )
    rng = np.random.default_rng(fleet.spec.seed + 1)

    # ---- enrollment phase ------------------------------------------------
    n_chips = fleet.spec.n_chips
    for chip_id in range(n_chips):
        t0 = time.perf_counter()
        reply = await client.enroll(chip_id, fleet.measurements(chip_id, votes))
        red.observe("enroll", reply.get("outcome", "internal"), time.perf_counter() - t0)
        if reply.get("outcome") == "ok":
            report.n_enrolled += 1
        telemetry.progress("loadgen.enroll", chip_id + 1, n_chips)

    # ---- request phase ---------------------------------------------------
    total = n_requests
    deadline = None if duration_s is None else time.perf_counter() + duration_s
    issued = 0
    done = 0

    async def worker() -> None:
        nonlocal issued, done
        while True:
            if total is not None and issued >= total:
                return
            if deadline is not None and time.perf_counter() >= deadline:
                return
            issued += 1
            chip_id = (issued - 1) % n_chips
            t = float(rng.uniform(0.0, years))
            use_key = rng.random() < key_fraction
            impostor = (not use_key) and rng.random() < impostor_fraction
            if impostor:
                response = fleet.impostor_read(chip_id, t)
            else:
                response = fleet.read(chip_id, t)
            endpoint = "key" if use_key else "auth"
            t0 = time.perf_counter()
            if use_key:
                reply = await client.key(chip_id, response)
            else:
                reply = await client.auth(chip_id, response)
            duration_s_ = time.perf_counter() - t0
            outcome = reply.get("outcome", "internal")
            red.observe(endpoint, outcome, duration_s_)
            report.outcomes[outcome] = report.outcomes.get(outcome, 0) + 1
            done += 1
            report.samples.append(
                {
                    "endpoint": endpoint,
                    "outcome": outcome,
                    "chip_id": chip_id,
                    "years": round(t, 3),
                    "duration_ms": duration_s_ * 1e3,
                    "trace_id": reply.get("trace_id"),
                }
            )
            del report.samples[:-SAMPLE_KEEP]
            telemetry.progress("loadgen.requests", done, total)

    wall0 = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(concurrency)))
    report.wall_s = time.perf_counter() - wall0
    report.n_requests = done
    telemetry.progress("loadgen.requests", done, total)
    return report


def loadgen_payload(
    report: LoadgenReport,
    *,
    slos: Sequence[Slo] = DEFAULT_SLOS,
    manifest: Optional[Dict[str, Any]] = None,
    name: str = "loadgen",
) -> Dict[str, Any]:
    """The run as a benchmark-shaped artefact with a ``service`` section.

    ``values`` / ``histograms`` follow the ``benchmarks._common.emit``
    payload layout (so ``bench_compare`` diffs two runs and
    ``entry_from_bench_payload`` folds one into the perf ledger);
    ``service`` adds the full RED state, the flat SLO-gateable metrics,
    the verdicts against ``slos`` and the request-log tail.
    """
    red = report.red
    verdicts = check_slos(red.metrics(), slos)
    values: Dict[str, float] = {
        "auth_per_s": report.auth_per_s,
        "requests": float(report.n_requests),
        "enrolled": float(report.n_enrolled),
        "errors": float(red.total_errors()),
        "wall_s": report.wall_s,
        "concurrency": float(report.concurrency),
        "years": float(report.years),
    }
    if report.max_loop_lag_ms is not None:
        values["max_loop_lag_ms"] = float(report.max_loop_lag_ms)
    payload: Dict[str, Any] = {
        "name": name,
        "values": values,
        "histograms": red.summaries(),
        "service": {
            "format": SERVICE_SECTION_FORMAT,
            "fleet": {
                "n_chips": report.spec.n_chips,
                "design": report.spec.design,
                "seed": report.spec.seed,
                "noise_pct": report.spec.noise_pct,
            },
            "red": red.to_dict(),
            "metrics": red.metrics(),
            "slo": slo_verdicts_payload(verdicts),
            "requests": list(report.samples),
        },
    }
    if manifest is not None:
        payload["manifest"] = manifest
    return payload
