"""repro.service — the asyncio enrollment/authentication fleet service.

The productionised form of experiment E10: the paper's end-game is
lifetime authentication, so this package turns the protocol and keygen
primitives into a *served* host-side stack (the device↔host split of
the litepuf-style evaluation flow):

* :class:`HelperStore` / :class:`EnrollmentRecord` — the helper-data
  store keyed by chip id: majority-voted reference response, public
  fuzzy-extractor helper string, and the SHA-256 digest of the enrolled
  key (the key itself is never stored);
* :class:`FleetService` — the asyncio server core: ``enroll`` (majority-
  vote over repeated noisy measurements), ``auth`` (threshold fractional
  Hamming distance, the hot path) and ``key`` (full fuzzy-extractor key
  regeneration), each traced per request, RED-metered per endpoint ×
  outcome, and appended to a JSONL audit trail;
* :func:`serve` / :class:`ServiceClient` — a newline-delimited-JSON TCP
  wire protocol over asyncio streams, plus the matching client;
* :class:`SyntheticFleet` / :func:`run_loadgen` — the load generator:
  a seeded fleet whose responses age along the paper's 10-year flip
  rates (32 % conventional, 7.7 % ARO), replayed against the service at
  configurable concurrency while every observability surface records;
* :data:`DEFAULT_SLOS` / :func:`check_slos` — the declarative SLO spec
  (availability, p99/p999 latency) with anchors-style pass/warn/fail
  bands, gating ``repro loadgen`` exits.
"""

from .audit import AUDIT_FORMAT, AuditTrail
from .loadgen import (
    DESIGN_FLIPS_10Y,
    FleetSpec,
    LoadgenReport,
    SyntheticFleet,
    loadgen_payload,
    run_loadgen,
)
from .server import (
    FleetService,
    ServiceClient,
    ServiceClientPool,
    default_extractor,
    majority_vote,
    serve,
)
from .slo import (
    DEFAULT_SLOS,
    SLO_SPEC_FORMAT,
    Slo,
    SloVerdict,
    check_slos,
    load_slo_spec,
    render_slo_verdicts,
    slo_verdicts_payload,
)
from .store import EnrollmentRecord, HelperStore

__all__ = [
    "AUDIT_FORMAT",
    "AuditTrail",
    "DEFAULT_SLOS",
    "DESIGN_FLIPS_10Y",
    "EnrollmentRecord",
    "FleetService",
    "FleetSpec",
    "HelperStore",
    "LoadgenReport",
    "SLO_SPEC_FORMAT",
    "ServiceClient",
    "ServiceClientPool",
    "Slo",
    "SloVerdict",
    "SyntheticFleet",
    "check_slos",
    "default_extractor",
    "load_slo_spec",
    "loadgen_payload",
    "majority_vote",
    "render_slo_verdicts",
    "run_loadgen",
    "serve",
    "slo_verdicts_payload",
]
