"""Audit trail: one JSONL line per served request.

The compliance half of the observability stack: where RED metrics
aggregate, the audit trail *itemises* — every request's trace id,
endpoint, chip id, outcome and duration lands as one appended JSON line,
so an operator can join a latency spike seen in ``repro monitor`` back
to the exact requests (and from the trace id into the Perfetto
timeline).

Unlike the progress emitter this writer must not drop lines, so there is
no throttle; instead of paying an fsync-ish flush per request it buffers
and flushes every :data:`FLUSH_EVERY` records (and on :meth:`close`) —
at 10k+ auth/sec a per-line flush would dominate the serve loop.
Reading back uses the ledger discipline: malformed lines are skipped and
counted, never fatal.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Any, Dict, Iterator, Optional, Union

PathLike = Union[str, pathlib.Path]

#: schema version stamped on every line
AUDIT_FORMAT = 1

#: buffered records between explicit flushes
FLUSH_EVERY = 1000


class AuditTrail:
    """Append-only JSONL request log with buffered flushing."""

    def __init__(self, path: PathLike, *, flush_every: int = FLUSH_EVERY):
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a")
        self._flush_every = flush_every
        self._unflushed = 0
        self.n_records = 0

    def append(
        self,
        *,
        endpoint: str,
        outcome: str,
        duration_ms: float,
        chip_id: Optional[int] = None,
        trace_id: Optional[int] = None,
        **extra: Any,
    ) -> None:
        record: Dict[str, Any] = {
            "format": AUDIT_FORMAT,
            "t": time.time(),
            "endpoint": endpoint,
            "outcome": outcome,
            "duration_ms": float(duration_ms),
        }
        if chip_id is not None:
            record["chip_id"] = int(chip_id)
        if trace_id is not None:
            record["trace_id"] = int(trace_id)
        record.update(extra)
        self._fh.write(json.dumps(record) + "\n")
        self.n_records += 1
        self._unflushed += 1
        if self._unflushed >= self._flush_every:
            self.flush()

    def flush(self) -> None:
        if self._unflushed:
            self._fh.flush()
            self._unflushed = 0

    def close(self) -> None:
        if not self._fh.closed:
            self.flush()
            self._fh.close()

    def __enter__(self) -> "AuditTrail":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def read_audit(path: PathLike) -> Iterator[Dict[str, Any]]:
    """Yield audit records, skipping malformed lines (ledger discipline)."""
    path = pathlib.Path(path)
    if not path.exists():
        return
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                yield record
