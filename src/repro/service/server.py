"""The fleet service: asyncio enrollment/authentication/key endpoints.

:class:`FleetService` is the host-side authority from the paper's
deployment story, served: devices enroll once (majority-voted reference
response + fuzzy-extractor helper data into the
:class:`~repro.service.store.HelperStore`), then authenticate for the
rest of the mission — either the lightweight threshold check
(fractional Hamming distance, the hot path) or full key regeneration
through the code-offset extractor.

Every request flows through one driver (:meth:`FleetService._serve`)
that wires the whole observability stack in a single place:

* a per-request root span with its own trace id when an
  :class:`~repro.telemetry.asynctrace.AsyncTracer` is installed
  (plain-tracer and disabled paths skip it entirely — the <2 % overhead
  bound of the telemetry layer extends to serving);
* one :meth:`RedMetrics.observe` per request — endpoint × outcome ×
  duration;
* one audit-trail line (trace id included) when a trail is attached.

The wire protocol is newline-delimited JSON over asyncio streams —
one request object per line, one reply object back, bit vectors packed
to hex (``response`` + ``bits``).  :func:`serve` binds the TCP server;
:class:`ServiceClient` is the matching client, used by the load
generator's connect mode and by tests.

Outcome vocabulary (see :mod:`repro.telemetry.red` for the taxonomy):
``ok``, ``rejected`` (impostor refused — *not* an error),
``bad_request``, ``unknown_chip``, ``key_recovery``, ``internal``.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from .._rng import RngLike, as_generator
from ..ecc import BchCode, ConcatenatedCode, KeyCodec, RepetitionCode
from ..keygen import FuzzyExtractor, KeyRecoveryError
from ..metrics.hamming import fractional_hd
from ..telemetry import tracer as _tracer_mod
from ..telemetry.asynctrace import AsyncTracer
from ..telemetry.red import RedMetrics
from .audit import AuditTrail
from .store import EnrollmentRecord, HelperStore, key_digest

#: wire ops the dispatcher accepts
WIRE_OPS = ("enroll", "auth", "key", "status")


def default_extractor(key_bits: int = 128) -> FuzzyExtractor:
    """The service's reference codec: BCH(63,45,t=4) × repetition-3.

    The E6 design-space sweep's balanced point — enough correction power
    for the ARO's 10-year drift at a practical response width.
    """
    codec = KeyCodec(
        code=ConcatenatedCode(BchCode.design(6, 4), RepetitionCode(3)),
        key_bits=key_bits,
    )
    return FuzzyExtractor(codec)


def majority_vote(measurements: Sequence[Any]) -> np.ndarray:
    """Bitwise majority over repeated noisy measurements of one response.

    The standard enrollment-time denoising step: with ``k`` reads a bit
    is enrolled as 1 when at least half the reads said 1 (ties round
    up), suppressing measurement noise before the reference/helper are
    committed to the store.
    """
    arr = np.asarray(measurements)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2 or arr.shape[0] < 1:
        raise ValueError("measurements must be a non-empty list of bit vectors")
    if not np.all((arr == 0) | (arr == 1)):
        raise ValueError("measurements must be 0/1 bit vectors")
    return (arr.mean(axis=0) >= 0.5).astype(np.uint8)


def _pack_bits(bits: np.ndarray) -> str:
    return np.packbits(np.asarray(bits).astype(np.uint8)).tobytes().hex()


def _unpack_bits(blob_hex: str, n_bits: int) -> np.ndarray:
    bits = np.unpackbits(np.frombuffer(bytes.fromhex(blob_hex), dtype=np.uint8))
    if bits.size < n_bits:
        raise ValueError("bit blob too short for the declared bit count")
    return bits[:n_bits]


class FleetService:
    """The served verifier: enrollment store + threshold auth + keygen.

    Parameters
    ----------
    extractor:
        The fuzzy extractor (defaults to :func:`default_extractor`); its
        ``response_bits`` fixes the response width every endpoint expects.
    threshold:
        Fractional-HD acceptance bound for ``auth``, in ``(0, 0.5)`` —
        between the aged intra-chip distance and the ~50 % inter-chip
        floor, exactly the E10 trade-off.
    store / audit / red:
        Injectable for persistence/testing; fresh in-memory instances by
        default (``audit`` stays ``None`` unless given).
    seed:
        Seeds the enrollment masking randomness (reproducible fleets).
    inject_latency_s:
        Artificial per-request delay *inside* the measured window — the
        SLO gate's test hook (a latency regression you can switch on).
    """

    def __init__(
        self,
        *,
        extractor: Optional[FuzzyExtractor] = None,
        threshold: float = 0.25,
        store: Optional[HelperStore] = None,
        audit: Optional[AuditTrail] = None,
        red: Optional[RedMetrics] = None,
        seed: RngLike = 0,
        inject_latency_s: float = 0.0,
    ):
        if not 0.0 < threshold < 0.5:
            raise ValueError("threshold must be in (0, 0.5)")
        if inject_latency_s < 0.0:
            raise ValueError("inject_latency_s must be >= 0")
        self.extractor = extractor or default_extractor()
        self.threshold = float(threshold)
        self.store = store if store is not None else HelperStore()
        self.audit = audit
        self.red = red if red is not None else RedMetrics()
        self.inject_latency_s = float(inject_latency_s)
        self._rng = as_generator(seed)

    @property
    def response_bits(self) -> int:
        return self.extractor.response_bits

    # ---- the single request driver --------------------------------------

    async def _serve(
        self,
        endpoint: str,
        chip_id: Optional[int],
        impl: Callable[[], Tuple[str, Dict[str, Any]]],
    ) -> Dict[str, Any]:
        """Run one request through trace → impl → RED → audit.

        ``impl`` is the endpoint's synchronous core returning
        ``(outcome, body)``; anything it raises beyond the protocol
        vocabulary is an ``internal`` error (counted, audited, span
        flagged, re-raised).  With no :class:`AsyncTracer` installed the
        request takes the lean branch below — one module-slot read and
        one isinstance is all the span machinery may cost the untraced
        hot path (``benchmarks/bench_service.py`` holds the bound).
        """
        tracer = _tracer_mod._active
        if isinstance(tracer, AsyncTracer):
            return await self._serve_traced(tracer, endpoint, chip_id, impl)
        t0 = time.perf_counter()
        outcome = "internal"
        try:
            if self.inject_latency_s > 0.0:
                await asyncio.sleep(self.inject_latency_s)
            outcome, body = impl()
            return {"outcome": outcome, **body}
        finally:
            duration_s = time.perf_counter() - t0
            self.red.observe(endpoint, outcome, duration_s)
            if self.audit is not None:
                self.audit.append(
                    endpoint=endpoint,
                    outcome=outcome,
                    duration_ms=duration_s * 1e3,
                    chip_id=chip_id,
                    trace_id=None,
                )

    async def _serve_traced(
        self,
        tracer: AsyncTracer,
        endpoint: str,
        chip_id: Optional[int],
        impl: Callable[[], Tuple[str, Dict[str, Any]]],
    ) -> Dict[str, Any]:
        """The traced request driver: a ``request.<endpoint>`` span wraps
        the impl, the trace id rides back in the reply and the audit row."""
        t0 = time.perf_counter()
        span_cm = tracer.request(endpoint, chip_id=chip_id)
        span = span_cm.__enter__()
        trace_id = int(span.attrs["trace_id"])
        outcome = "internal"
        try:
            if self.inject_latency_s > 0.0:
                await asyncio.sleep(self.inject_latency_s)
            outcome, body = impl()
            return {"outcome": outcome, **body, "trace_id": trace_id}
        except BaseException:
            span.error = True
            raise
        finally:
            span.attrs["outcome"] = outcome
            span_cm.__exit__(None, None, None)
            duration_s = time.perf_counter() - t0
            self.red.observe(endpoint, outcome, duration_s)
            if self.audit is not None:
                self.audit.append(
                    endpoint=endpoint,
                    outcome=outcome,
                    duration_ms=duration_s * 1e3,
                    chip_id=chip_id,
                    trace_id=trace_id,
                )

    # ---- endpoints -------------------------------------------------------

    async def enroll(self, chip_id: int, measurements: Sequence[Any]) -> Dict[str, Any]:
        """Majority-vote enrollment: commit reference + helper + digest."""
        return await self._serve("enroll", chip_id, lambda: self._enroll(chip_id, measurements))

    def _enroll(self, chip_id: int, measurements: Sequence[Any]) -> Tuple[str, Dict[str, Any]]:
        try:
            reference = majority_vote(measurements)
            if reference.size != self.response_bits:
                raise ValueError(
                    f"this service enrolls {self.response_bits}-bit "
                    f"responses, got {reference.size}"
                )
            helper, key = self.extractor.enroll(reference, rng=self._rng)
        except ValueError as exc:
            return "bad_request", {"error": str(exc)}
        record = EnrollmentRecord(
            chip_id=int(chip_id),
            reference=reference,
            helper=helper,
            key_digest=key_digest(key),
        )
        self.store.put(record)
        return "ok", {
            "chip_id": record.chip_id,
            "n_bits": record.n_bits,
            "key_bits": self.extractor.key_bits,
            "key_digest": record.key_digest.hex(),
        }

    async def auth(self, chip_id: int, response: Any) -> Dict[str, Any]:
        """Threshold authentication: the lifetime hot path."""
        return await self._serve("auth", chip_id, lambda: self._auth(chip_id, response))

    def _auth(self, chip_id: int, response: Any) -> Tuple[str, Dict[str, Any]]:
        record = self.store.get(chip_id)
        if record is None:
            return "unknown_chip", {"error": f"chip {chip_id} was never enrolled"}
        resp = np.asarray(response)
        if resp.shape != (record.n_bits,) or not np.all((resp == 0) | (resp == 1)):
            return "bad_request", {
                "error": f"response must be a {record.n_bits}-bit 0/1 vector"
            }
        distance = fractional_hd(record.reference, resp.astype(np.uint8))
        accepted = distance <= self.threshold
        body = {
            "accepted": bool(accepted),
            "distance": float(distance),
            "threshold": self.threshold,
        }
        return ("ok" if accepted else "rejected"), body

    async def key(self, chip_id: int, response: Any) -> Dict[str, Any]:
        """Full key regeneration through the fuzzy extractor."""
        return await self._serve("key", chip_id, lambda: self._key(chip_id, response))

    def _key(self, chip_id: int, response: Any) -> Tuple[str, Dict[str, Any]]:
        record = self.store.get(chip_id)
        if record is None:
            return "unknown_chip", {"error": f"chip {chip_id} was never enrolled"}
        try:
            key = self.extractor.reproduce(np.asarray(response), record.helper)
        except ValueError as exc:
            return "bad_request", {"error": str(exc)}
        except KeyRecoveryError as exc:
            return "key_recovery", {"error": str(exc)}
        if key_digest(key) != record.key_digest:
            # decoded to a *wrong* codeword without detection: treat as a
            # recovery failure, never hand out a key that fails its
            # enrollment commitment
            return "key_recovery", {"error": "regenerated key failed digest check"}
        return "ok", {"key": key.hex(), "key_bits": self.extractor.key_bits}

    async def status(self) -> Dict[str, Any]:
        """Liveness/introspection endpoint (cheap, still metered)."""
        return await self._serve("status", None, self._status)

    def _status(self) -> Tuple[str, Dict[str, Any]]:
        return "ok", {
            "enrolled": len(self.store),
            "requests": self.red.total_requests(),
            "response_bits": self.response_bits,
            "threshold": self.threshold,
        }

    # ---- wire protocol ---------------------------------------------------

    async def dispatch(self, request: Any) -> Dict[str, Any]:
        """Route one decoded wire request to its endpoint.

        Malformed requests are served as ``bad_request`` through the
        same driver, so wire garbage is traced/metered/audited like any
        other outcome instead of vanishing.
        """
        if not isinstance(request, dict):
            return await self._bad("wire", None, "request must be a JSON object")
        op = request.get("op")
        if op not in WIRE_OPS:
            return await self._bad("wire", None, f"unknown op {op!r}")
        if op == "status":
            return await self.status()
        chip_id = request.get("chip_id")
        if not isinstance(chip_id, int):
            return await self._bad(op, None, "chip_id must be an integer")
        try:
            if op == "enroll":
                blobs = request.get("measurements")
                bits = request.get("bits")
                if not isinstance(blobs, list) or not isinstance(bits, int):
                    raise ValueError("enroll needs 'measurements' (list) and 'bits'")
                measurements = [_unpack_bits(b, bits) for b in blobs]
                return await self.enroll(chip_id, measurements)
            blob = request.get("response")
            bits = request.get("bits")
            if not isinstance(blob, str) or not isinstance(bits, int):
                raise ValueError(f"{op} needs 'response' (hex) and 'bits'")
            response = _unpack_bits(blob, bits)
        except ValueError as exc:
            return await self._bad(op, chip_id, str(exc))
        if op == "auth":
            return await self.auth(chip_id, response)
        return await self.key(chip_id, response)

    async def _bad(self, endpoint: str, chip_id: Optional[int], error: str) -> Dict[str, Any]:
        return await self._serve(
            endpoint, chip_id, lambda: ("bad_request", {"error": error})
        )

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: a line of JSON in, a line of JSON out."""
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                except json.JSONDecodeError:
                    reply = await self._bad("wire", None, "malformed JSON")
                else:
                    reply = await self.dispatch(request)
                writer.write(json.dumps(reply).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                # server.close() cancels in-flight handlers mid-teardown;
                # the connection is gone either way
                pass


async def serve(
    service: FleetService, host: str = "127.0.0.1", port: int = 0
) -> "asyncio.base_events.Server":
    """Bind the TCP server (``port=0`` picks a free port; see
    ``server.sockets[0].getsockname()``)."""
    return await asyncio.start_server(service.handle_connection, host, port)


class ServiceClient:
    """Async client for the newline-JSON wire protocol.

    Mirrors the service's endpoint signatures (numpy bit vectors in,
    reply dicts out) so the load generator can swap between in-process
    and over-the-wire clients without branching.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self._writer.write(json.dumps(request).encode() + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return json.loads(line)

    async def enroll(self, chip_id: int, measurements: Sequence[Any]) -> Dict[str, Any]:
        arr = [np.asarray(m) for m in measurements]
        bits = int(arr[0].size) if arr else 0
        return await self.call(
            {
                "op": "enroll",
                "chip_id": int(chip_id),
                "bits": bits,
                "measurements": [_pack_bits(m) for m in arr],
            }
        )

    async def auth(self, chip_id: int, response: Any) -> Dict[str, Any]:
        resp = np.asarray(response)
        return await self.call(
            {
                "op": "auth",
                "chip_id": int(chip_id),
                "bits": int(resp.size),
                "response": _pack_bits(resp),
            }
        )

    async def key(self, chip_id: int, response: Any) -> Dict[str, Any]:
        resp = np.asarray(response)
        return await self.call(
            {
                "op": "key",
                "chip_id": int(chip_id),
                "bits": int(resp.size),
                "response": _pack_bits(resp),
            }
        )

    async def status(self) -> Dict[str, Any]:
        return await self.call({"op": "status"})

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


class ServiceClientPool:
    """``size`` connections behind one client interface.

    The wire protocol is strictly request/reply per connection, so two
    coroutines sharing one :class:`ServiceClient` would interleave
    writes and mis-pair replies.  The pool checks a connection out per
    call (an :class:`asyncio.Queue` of free clients), which lets the
    load generator run ``concurrency`` workers against ``concurrency``
    sockets without any worker knowing about connections.
    """

    def __init__(self, clients: Sequence[ServiceClient]):
        if not clients:
            raise ValueError("pool needs at least one client")
        self._clients = list(clients)
        self._free: "asyncio.Queue[ServiceClient]" = asyncio.Queue()
        for client in self._clients:
            self._free.put_nowait(client)

    @classmethod
    async def connect(cls, host: str, port: int, size: int) -> "ServiceClientPool":
        clients = [await ServiceClient.connect(host, port) for _ in range(size)]
        return cls(clients)

    async def _call(self, fn: Callable[[ServiceClient], Any]) -> Dict[str, Any]:
        client = await self._free.get()
        try:
            return await fn(client)
        finally:
            self._free.put_nowait(client)

    async def enroll(self, chip_id: int, measurements: Sequence[Any]) -> Dict[str, Any]:
        return await self._call(lambda c: c.enroll(chip_id, measurements))

    async def auth(self, chip_id: int, response: Any) -> Dict[str, Any]:
        return await self._call(lambda c: c.auth(chip_id, response))

    async def key(self, chip_id: int, response: Any) -> Dict[str, Any]:
        return await self._call(lambda c: c.key(chip_id, response))

    async def status(self) -> Dict[str, Any]:
        return await self._call(lambda c: c.status())

    async def close(self) -> None:
        for client in self._clients:
            await client.close()
