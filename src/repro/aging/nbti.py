"""Negative/positive bias temperature instability model.

Long-term reaction-diffusion form with duty-factor (stress-probability)
dependence::

    dVth(t) = A_dev * k_T(T) * (duty * t_years) ** n

* ``A_dev`` is the per-device prefactor; deeply scaled devices hold only a
  handful of interface traps, so ``A_dev`` scatters widely device to
  device (log-normal around ``NbtiParameters.a_mean`` with CV
  ``a_cv``).  This scatter — not the mean shift — is what flips PUF bits:
  the common-mode part of aging cancels in every RO comparison.
* ``k_T`` is the Arrhenius temperature acceleration,
  ``exp(Ea/kB * (1/T_ref - 1/T))``.
* The same functional form serves PBTI on the NMOS, scaled down by
  ``NbtiParameters.pbti_factor``.

The explicit stress/recovery *cycling* model (:func:`relaxed_shift`)
implements the fractional-recovery correction used when a device's DC
stress is interrupted — e.g. the "periodic state toggling" mitigation
discussed as an alternative to the ARO cell.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..transistor.technology import BOLTZMANN_EV, T_REF_K, NbtiParameters

ArrayLike = Union[float, np.ndarray]


def temperature_acceleration(temperature_k: float, params: NbtiParameters) -> float:
    """Arrhenius acceleration factor ``k_T`` relative to ``T_ref``."""
    if temperature_k <= 0:
        raise ValueError("temperature must be positive kelvin")
    return float(
        np.exp(params.ea / BOLTZMANN_EV * (1.0 / T_REF_K - 1.0 / temperature_k))
    )


def bti_shift(
    duty: ArrayLike,
    t_years: float,
    params: NbtiParameters,
    *,
    prefactor: ArrayLike = None,
    temperature_k: float = T_REF_K,
    pbti: bool = False,
) -> np.ndarray:
    """Threshold shift magnitude after ``t_years`` at the given duty (volts).

    Parameters
    ----------
    duty:
        Stress probability in [0, 1] (fraction of lifetime under stress).
    prefactor:
        Per-device prefactor(s) ``A_dev``; defaults to the mean
        ``params.a_mean``.  Broadcasts against ``duty``.
    pbti:
        Apply the NMOS (PBTI) severity scaling.
    """
    duty = np.asarray(duty, dtype=float)
    if np.any(duty < 0) or np.any(duty > 1):
        raise ValueError("duty must be in [0, 1]")
    if t_years < 0:
        raise ValueError("t_years must be non-negative")
    a = params.a_mean if prefactor is None else np.asarray(prefactor, dtype=float)
    k_t = temperature_acceleration(temperature_k, params)
    scale = params.pbti_factor if pbti else 1.0
    shift = scale * a * k_t * np.power(duty * t_years, params.n)
    # interface-trap generation saturates; clip the log-normal tail to the
    # physically attainable shift
    return np.minimum(shift, params.max_shift)


def sample_prefactors(
    shape,
    params: NbtiParameters,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw per-device log-normal NBTI prefactors ``A_dev``.

    The log-normal is parameterised so the *mean* equals ``params.a_mean``
    and the coefficient of variation equals ``params.a_cv``.
    """
    cv = params.a_cv
    if cv < 0:
        raise ValueError("a_cv must be non-negative")
    if cv == 0.0:
        return np.full(shape, params.a_mean)
    sigma2 = np.log1p(cv**2)
    mu = np.log(params.a_mean) - 0.5 * sigma2
    return rng.lognormal(mean=mu, sigma=np.sqrt(sigma2), size=shape)


def relaxed_shift(
    duty: ArrayLike,
    t_years: float,
    params: NbtiParameters,
    *,
    prefactor: ArrayLike = None,
    temperature_k: float = T_REF_K,
    relax_cycles: int = 0,
) -> np.ndarray:
    """BTI shift when DC stress is periodically interrupted.

    Each stress interruption lets the relaxable trap population anneal,
    removing ``params.recovery_fraction`` of the shift accumulated *since
    the previous interruption*; the permanent component keeps the power-law
    envelope.  With ``relax_cycles = 0`` this reduces to :func:`bti_shift`.

    This models the "flip the parked state every so often" mitigation that
    the ARO design renders unnecessary.
    """
    base = bti_shift(
        duty,
        t_years,
        params,
        prefactor=prefactor,
        temperature_k=temperature_k,
    )
    if relax_cycles < 0:
        raise ValueError("relax_cycles must be non-negative")
    if relax_cycles == 0:
        return base
    # A fraction ``recovery_fraction`` of the shift is relaxable; each
    # interruption anneals the relaxable damage accumulated since the
    # previous one, so with many cycles the observable shift saturates at
    # the permanent component.  ``c / (c + 1)`` interpolates smoothly
    # between no recovery (c = 0) and full relaxable recovery (c -> inf).
    r = params.recovery_fraction
    c = float(relax_cycles)
    surviving = 1.0 - r * c / (c + 1.0)
    return base * surviving
