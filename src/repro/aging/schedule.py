"""Mission profiles: how the PUF is used over the product's lifetime.

Aging is driven entirely by *how* the circuit spends its years in the
field, so every aging experiment starts from a :class:`MissionProfile`:
how often the PUF is interrogated (and hence how long the oscillators
actually oscillate), what the silicon temperature is, and what the parked
oscillators do in between (the knob the ARO design turns).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

#: seconds in a Julian year, used for all duty/transition bookkeeping
SECONDS_PER_YEAR = 365.25 * 86400.0


class IdlePolicy(enum.Enum):
    """What a non-selected oscillator does between evaluations."""

    #: parked by the enable gate; the chain latches a static pattern and
    #: every other PMOS sits under DC NBTI stress (conventional RO-PUF).
    PARKED_STATIC = "parked_static"
    #: firmware mitigation: the parked pattern is periodically inverted
    #: (e.g. via a toggle flip-flop on the enable path), so every device
    #: spends half the idle life under stress instead of a fixed subset
    #: spending all of it.  The obvious software alternative to the ARO —
    #: and, as experiment E7 shows, a poor one: the t**(1/6) law makes the
    #: half-duty discount tiny while the stress now scatters over *all*
    #: devices, so the differential aging that flips bits barely improves.
    PARKED_TOGGLING = "parked_toggling"
    #: ring broken, every inverter input steered to the recovery level;
    #: no device is under DC stress (the ARO cell).
    RECOVERY = "recovery"
    #: enable held high; the oscillator free-runs for the whole lifetime
    #: (AC NBTI at 50 % duty plus massive HCI) — an ablation baseline.
    FREE_RUNNING = "free_running"


@dataclass(frozen=True)
class MissionProfile:
    """Lifetime usage pattern of the PUF.

    Parameters
    ----------
    eval_duty:
        Fraction of wall-clock time the oscillators spend oscillating for
        key regeneration.  Regenerating a 128-bit key takes the 128 pair
        measurements x 20 us window ~ 2.6 ms; at roughly seven
        regenerations per day that is ~6 s of oscillation per year, i.e. a
        duty of 2e-7 — the default.
    temperature_k:
        Silicon temperature during the mission (both stress and idle), in
        kelvin.  45 degC is a typical consumer-device average.
    osc_frequency_hz:
        Representative oscillation frequency used for HCI transition
        counting (the exact per-RO frequency spread is irrelevant at the
        HCI magnitudes involved).
    """

    eval_duty: float = 2.0e-7
    temperature_k: float = 318.15
    osc_frequency_hz: float = 1.0e9

    def __post_init__(self) -> None:
        if not 0.0 <= self.eval_duty <= 1.0:
            raise ValueError("eval_duty must be in [0, 1]")
        if self.temperature_k <= 0:
            raise ValueError("temperature_k must be positive kelvin")
        if self.osc_frequency_hz <= 0:
            raise ValueError("osc_frequency_hz must be positive")

    def with_eval_duty(self, eval_duty: float) -> "MissionProfile":
        """Copy of the profile with a different evaluation duty."""
        return replace(self, eval_duty=eval_duty)

    def active_seconds(self, t_years: float) -> float:
        """Total oscillation time accumulated after ``t_years`` (seconds)."""
        if t_years < 0:
            raise ValueError("t_years must be non-negative")
        return self.eval_duty * t_years * SECONDS_PER_YEAR

    def transitions(self, t_years: float) -> float:
        """Output transitions accumulated per oscillating device."""
        return self.osc_frequency_hz * self.active_seconds(t_years)


def typical_mission() -> MissionProfile:
    """The default 10-year consumer mission used throughout the paper repro."""
    return MissionProfile()


def burn_in_mission(temperature_k: float = 398.15) -> MissionProfile:
    """An accelerated-stress profile (125 degC) for burn-in style studies."""
    return MissionProfile(temperature_k=temperature_k)
