"""Hot-carrier-injection aging model.

HCI damage is created by energetic carriers during output transitions, so
it scales with the accumulated *switching count* rather than with time
under bias.  We use the standard power-law form::

    dVth(t) = B_dev * (N_transitions / N_ref) ** m

``B_dev`` is a per-device log-normal prefactor (same few-trap argument as
NBTI, somewhat tighter distribution) and ``N_ref`` normalises to one year
of continuous 1 GHz switching so that ``HciParameters.b_mean`` has an
interpretable magnitude.

HCI is what punishes the *free-running* conventional RO-PUF ablation: a
ring left oscillating for ten years racks up ~3e17 transitions.  For the
ARO — which oscillates only during key regeneration — the accumulated count
is ~5 orders of magnitude smaller and HCI is negligible, as the paper
argues.  NMOS devices take the full damage; PMOS see a reduced share
(:data:`PMOS_HCI_FACTOR`) because hole injection is less efficient.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..transistor.technology import HciParameters

ArrayLike = Union[float, np.ndarray]

#: relative HCI severity of PMOS devices (hole injection is inefficient)
PMOS_HCI_FACTOR = 0.4


def hci_shift(
    transitions: ArrayLike,
    params: HciParameters,
    *,
    prefactor: ArrayLike = None,
    pmos: bool = False,
) -> np.ndarray:
    """Threshold shift after the given accumulated transition count (volts)."""
    transitions = np.asarray(transitions, dtype=float)
    if np.any(transitions < 0):
        raise ValueError("transition counts must be non-negative")
    b = params.b_mean if prefactor is None else np.asarray(prefactor, dtype=float)
    scale = PMOS_HCI_FACTOR if pmos else 1.0
    shift = scale * b * np.power(transitions / params.ref_transitions, params.m)
    return np.minimum(shift, params.max_shift)


def sample_prefactors(
    shape,
    params: HciParameters,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw per-device log-normal HCI prefactors ``B_dev`` (mean-preserving)."""
    cv = params.b_cv
    if cv < 0:
        raise ValueError("b_cv must be non-negative")
    if cv == 0.0:
        return np.full(shape, params.b_mean)
    sigma2 = np.log1p(cv**2)
    mu = np.log(params.b_mean) - 0.5 * sigma2
    return rng.lognormal(mean=mu, sigma=np.sqrt(sigma2), size=shape)
