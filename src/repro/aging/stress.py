"""Per-device stress bookkeeping: from cell + mission to duty factors.

The NBTI/HCI laws in :mod:`repro.aging.nbti` and :mod:`repro.aging.hci`
consume three numbers per device:

* ``nbti_duty`` — the fraction of lifetime the PMOS gate is at logic low,
* ``pbti_duty`` — the fraction the NMOS gate is at logic high, and
* ``transitions_per_year`` — switching events for HCI.

This module derives those from the *structure* of the oscillator cell (its
parked logic state, extracted by settling the real netlist — see
:meth:`repro.circuit.CellDescriptor.idle_stress_pattern`) combined with the
:class:`~repro.aging.schedule.MissionProfile` and
:class:`~repro.aging.schedule.IdlePolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuit.cells import CellDescriptor, CellKind
from ..variation.chip import NMOS, PMOS
from .schedule import SECONDS_PER_YEAR, IdlePolicy, MissionProfile


@dataclass(frozen=True)
class StressProfile:
    """Lifetime stress figures for every device of one oscillator cell.

    Arrays have shape ``(n_stages, 2)`` (stage, polarity); the same cell
    design is instantiated for every RO on a die, so one profile serves a
    whole chip (per-device *response* to stress varies chip-to-chip via the
    aging prefactors, not the stress itself).
    """

    nbti_duty: np.ndarray
    pbti_duty: np.ndarray
    transitions_per_year: np.ndarray

    def __post_init__(self) -> None:
        for name in ("nbti_duty", "pbti_duty", "transitions_per_year"):
            arr = np.asarray(getattr(self, name), dtype=float)
            if arr.ndim != 2 or arr.shape[1] != 2:
                raise ValueError(f"{name} must have shape (n_stages, 2)")
            if np.any(arr < 0):
                raise ValueError(f"{name} must be non-negative")
            object.__setattr__(self, name, arr)
        if np.any(self.nbti_duty > 1.0) or np.any(self.pbti_duty > 1.0):
            raise ValueError("duty factors cannot exceed 1")

    @property
    def n_stages(self) -> int:
        return self.nbti_duty.shape[0]


def default_idle_policy(cell: CellDescriptor) -> IdlePolicy:
    """The idle policy each cell was designed for."""
    if cell.kind is CellKind.ARO:
        return IdlePolicy.RECOVERY
    return IdlePolicy.PARKED_STATIC


def compute_stress(
    cell: CellDescriptor,
    mission: MissionProfile,
    idle_policy: "IdlePolicy | None" = None,
) -> StressProfile:
    """Derive the lifetime stress profile of one oscillator cell.

    The active (oscillating) share of life contributes 50 % AC duty to
    every device plus the HCI transition count; the idle share contributes
    according to the policy:

    * ``PARKED_STATIC`` — the cell's settled parked state determines which
      PMOS (input low) and NMOS (input high) devices sit at DC stress;
    * ``PARKED_TOGGLING`` — the parked pattern is periodically inverted,
      so every device sees half the idle time under stress;
    * ``RECOVERY`` — every inverter input is held high: zero NBTI duty,
      full PBTI duty (weak) on the NMOS;
    * ``FREE_RUNNING`` — the idle share looks exactly like activity.
    """
    policy = default_idle_policy(cell) if idle_policy is None else idle_policy
    if policy is IdlePolicy.RECOVERY and cell.kind is not CellKind.ARO:
        raise ValueError(
            "the conventional cell has no recovery mux; RECOVERY idle policy "
            "requires the ARO cell"
        )

    n = cell.n_stages
    active = mission.eval_duty
    idle = 1.0 - active

    nbti = np.zeros((n, 2))
    pbti = np.zeros((n, 2))
    transitions = np.zeros((n, 2))

    # -- active share: symmetric AC stress and switching on every device
    nbti[:, PMOS] += 0.5 * active
    pbti[:, NMOS] += 0.5 * active
    transitions[:, :] += mission.osc_frequency_hz * active * SECONDS_PER_YEAR

    # -- idle share
    if policy is IdlePolicy.FREE_RUNNING:
        nbti[:, PMOS] += 0.5 * idle
        pbti[:, NMOS] += 0.5 * idle
        transitions[:, :] += mission.osc_frequency_hz * idle * SECONDS_PER_YEAR
    elif policy is IdlePolicy.RECOVERY:
        # all inverter inputs parked high: PMOS off (recovers), NMOS on
        pbti[:, NMOS] += idle
    elif policy is IdlePolicy.PARKED_TOGGLING:
        # the pattern and its inverse alternate: every inverting stage
        # spends half the idle life with its input low
        nbti[:, PMOS] += 0.5 * idle
        pbti[:, NMOS] += 0.5 * idle
    elif policy is IdlePolicy.PARKED_STATIC:
        pattern = cell.idle_stress_pattern()
        nbti[:, PMOS] += idle * pattern[:, PMOS]
        pbti[:, NMOS] += idle * pattern[:, NMOS]
    else:  # pragma: no cover - enum is exhaustive
        raise ValueError(f"unhandled idle policy {policy!r}")

    return StressProfile(
        nbti_duty=nbti, pbti_duty=pbti, transitions_per_year=transitions
    )
