"""Aging layer: NBTI/PBTI, HCI, stress bookkeeping and the simulator."""

from .hci import PMOS_HCI_FACTOR, hci_shift
from .nbti import bti_shift, relaxed_shift, sample_prefactors, temperature_acceleration
from .schedule import (
    SECONDS_PER_YEAR,
    IdlePolicy,
    MissionProfile,
    burn_in_mission,
    typical_mission,
)
from .simulator import AgingSimulator, ChipAging, PopulationAging
from .stress import StressProfile, compute_stress, default_idle_policy

__all__ = [
    "AgingSimulator",
    "ChipAging",
    "IdlePolicy",
    "MissionProfile",
    "PMOS_HCI_FACTOR",
    "PopulationAging",
    "SECONDS_PER_YEAR",
    "StressProfile",
    "bti_shift",
    "burn_in_mission",
    "compute_stress",
    "default_idle_policy",
    "hci_shift",
    "relaxed_shift",
    "sample_prefactors",
    "temperature_acceleration",
    "typical_mission",
]
