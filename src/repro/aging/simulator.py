"""Aging orchestration: from a fresh chip to its aged views over time.

:class:`AgingSimulator` binds a technology, an oscillator cell design and a
mission profile.  For each chip it samples the per-device aging prefactors
*once* (they are physical properties of the individual devices) and hands
back a :class:`ChipAging` that can produce a consistent aged
:class:`~repro.variation.chip.Chip` at any point of the mission — the
degradation trajectory of every device is monotone and self-consistent
across time points, which is what lets experiments sweep 0.5 .. 10 years
and get smooth bit-flip curves.

:class:`PopulationAging` is the batched companion: one object holding the
prefactors of a whole population as ``(n_chips, n_ros, n_stages, 2)``
tensors, evaluating the threshold-shift field of every chip in a single
vectorised pass per time point.  Its deltas are bit-identical to the
per-chip :meth:`ChipAging.delta` under the same sampled prefactors.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .. import telemetry
from .._rng import RngLike, as_generator, spawn
from ..circuit.cells import CellDescriptor
from ..transistor.technology import TechnologyCard
from ..variation.chip import NMOS, PMOS, Chip, ChipPopulation
from . import hci, nbti
from .schedule import IdlePolicy, MissionProfile
from .stress import StressProfile, compute_stress


@dataclass(frozen=True)
class ChipAging:
    """The aging trajectory of one chip (prefactors frozen at creation)."""

    chip: Chip
    tech: TechnologyCard
    stress: StressProfile
    mission: MissionProfile
    nbti_a: np.ndarray
    hci_b: np.ndarray

    def delta(self, t_years: float) -> np.ndarray:
        """Per-device threshold shift after ``t_years`` (volts).

        Shape matches ``chip.vth``: ``(n_ros, n_stages, 2)``.
        """
        if t_years < 0:
            raise ValueError("t_years must be non-negative")
        shape = self.chip.vth.shape
        delta = np.zeros(shape)
        temp = self.mission.temperature_k
        params = self.tech.nbti

        # PMOS: NBTI (dominant) + a reduced HCI share
        delta[:, :, PMOS] += nbti.bti_shift(
            self.stress.nbti_duty[None, :, PMOS],
            t_years,
            params,
            prefactor=self.nbti_a[:, :, PMOS],
            temperature_k=temp,
        )
        delta[:, :, PMOS] += hci.hci_shift(
            self.stress.transitions_per_year[None, :, PMOS] * t_years,
            self.tech.hci,
            prefactor=self.hci_b[:, :, PMOS],
            pmos=True,
        )

        # NMOS: PBTI (weak) + full HCI
        delta[:, :, NMOS] += nbti.bti_shift(
            self.stress.pbti_duty[None, :, NMOS],
            t_years,
            params,
            prefactor=self.nbti_a[:, :, NMOS],
            temperature_k=temp,
            pbti=True,
        )
        delta[:, :, NMOS] += hci.hci_shift(
            self.stress.transitions_per_year[None, :, NMOS] * t_years,
            self.tech.hci,
            prefactor=self.hci_b[:, :, NMOS],
            pmos=False,
        )
        return delta

    def aged(self, t_years: float) -> Chip:
        """The chip as manufactured plus ``t_years`` of field aging."""
        if t_years == 0:
            return self.chip
        return self.chip.with_delta(self.delta(t_years))

    def mean_frequency_degradation(self, t_years: float) -> float:
        """Population-mean fractional frequency loss at ``t_years``.

        A cheap first-order figure (delay-sensitivity-weighted mean Vth
        shift) used for quick reporting; experiments that need the real
        number recompute frequencies through the delay model.
        """
        from ..transistor.mosfet import delay_sensitivity

        sens = delay_sensitivity(self.tech)
        d = self.delta(t_years)
        # each of the 2*n_stages transition components carries equal weight
        return float(np.mean(np.sum(d, axis=(1, 2)) * sens / (2 * self.chip.n_stages)))


class AgingSimulator:
    """Builds :class:`ChipAging` trajectories for a fixed design point."""

    def __init__(
        self,
        tech: TechnologyCard,
        cell: CellDescriptor,
        mission: Optional[MissionProfile] = None,
        idle_policy: Optional[IdlePolicy] = None,
    ):
        self.tech = tech
        self.cell = cell
        self.mission = mission or MissionProfile()
        self.idle_policy = idle_policy
        self.stress = compute_stress(cell, self.mission, idle_policy)

    def for_chip(self, chip: Chip, rng: RngLike = None) -> ChipAging:
        """Sample the chip's device prefactors and return its trajectory."""
        if chip.n_stages != self.cell.n_stages:
            raise ValueError(
                f"chip has {chip.n_stages} stages but the cell expects "
                f"{self.cell.n_stages}"
            )
        gen = as_generator(rng)
        shape = chip.vth.shape
        return ChipAging(
            chip=chip,
            tech=self.tech,
            stress=self.stress,
            mission=self.mission,
            nbti_a=nbti.sample_prefactors(shape, self.tech.nbti, gen),
            hci_b=hci.sample_prefactors(shape, self.tech.hci, gen),
        )

    def for_population(
        self, population: ChipPopulation, rng: RngLike = None
    ) -> list:
        """Trajectories for every chip (independent child RNG per chip)."""
        children = spawn(rng, len(population))
        return [
            self.for_chip(chip, child)
            for chip, child in zip(population, children)
        ]

    def population_aging(
        self, population: ChipPopulation, rng: RngLike = None
    ) -> "PopulationAging":
        """Batched trajectory of the whole population (see
        :class:`PopulationAging`).  Consumes the RNG exactly like
        :meth:`for_population`, so the same seed yields the same prefactors
        on both paths.
        """
        return PopulationAging.sample(self, population, rng)


class PopulationAging:
    """Vectorised aging trajectories of a whole chip population.

    Where :class:`ChipAging` evaluates the NBTI/HCI closed form for one
    chip per call, this class stacks every chip's per-device prefactors
    into ``(n_chips, n_ros, n_stages, 2)`` tensors and evaluates the
    threshold-shift field of the *entire population* in one numpy pass
    per time point.

    The time-independent pieces of the closed form — the duty factors, the
    Arrhenius temperature acceleration and the prefactor products — are
    folded into two coefficient tensors at construction, so each
    :meth:`delta` call only evaluates the ``t``-dependent power laws (tiny
    ``(n_stages, 2)`` arrays) and two broadcast multiply/clip chains over
    the population tensor.  The per-element operation grouping matches
    :meth:`ChipAging.delta` exactly, so deltas are **bit-identical** to
    the per-chip path.

    Repeated queries at the same time point (golden responses, metric
    re-use) hit an LRU memo; memoised arrays are returned read-only.
    """

    #: number of distinct time points kept in the delta memo
    MEMO_SIZE = 16

    def __init__(
        self,
        tech: TechnologyCard,
        stress: StressProfile,
        mission: MissionProfile,
        nbti_a: np.ndarray,
        hci_b: np.ndarray,
    ):
        nbti_a = np.asarray(nbti_a, dtype=float)
        hci_b = np.asarray(hci_b, dtype=float)
        if nbti_a.ndim != 4 or nbti_a.shape[-1] != 2:
            raise ValueError(
                "nbti_a must have shape (n_chips, n_ros, n_stages, 2), "
                f"got {nbti_a.shape}"
            )
        if hci_b.shape != nbti_a.shape:
            raise ValueError(
                f"hci_b shape {hci_b.shape} does not match nbti_a {nbti_a.shape}"
            )
        if nbti_a.shape[2] != stress.n_stages:
            raise ValueError(
                f"prefactors carry {nbti_a.shape[2]} stages but the stress "
                f"profile has {stress.n_stages}"
            )
        self.tech = tech
        self.stress = stress
        self.mission = mission
        self.nbti_a = nbti_a
        self.hci_b = hci_b

        # ---- time-independent factors, folded once -------------------
        # ChipAging.delta computes, per element,
        #   ((scale * a) * k_T) * (duty * t) ** n          (BTI)
        #   (scale * b) * ((tpy * t) / N_ref) ** m         (HCI)
        # and we reproduce exactly that grouping so the batched delta is
        # bit-identical to the per-chip one.
        params = tech.nbti
        k_t = nbti.temperature_acceleration(mission.temperature_k, params)
        bti_coeff = np.empty_like(nbti_a)
        bti_coeff[..., PMOS] = (1.0 * nbti_a[..., PMOS]) * k_t
        bti_coeff[..., NMOS] = (params.pbti_factor * nbti_a[..., NMOS]) * k_t
        hci_coeff = np.empty_like(hci_b)
        hci_coeff[..., PMOS] = hci.PMOS_HCI_FACTOR * hci_b[..., PMOS]
        hci_coeff[..., NMOS] = 1.0 * hci_b[..., NMOS]
        self._bti_coeff = bti_coeff
        self._hci_coeff = hci_coeff

        # per-device stress shaped for broadcast against the population
        # tensor: PMOS rows take the NBTI duty, NMOS rows the PBTI duty.
        n_stages = stress.n_stages
        duty = np.empty((1, 1, n_stages, 2))
        duty[0, 0, :, PMOS] = stress.nbti_duty[:, PMOS]
        duty[0, 0, :, NMOS] = stress.pbti_duty[:, NMOS]
        tpy = np.empty((1, 1, n_stages, 2))
        tpy[0, 0, :, PMOS] = stress.transitions_per_year[:, PMOS]
        tpy[0, 0, :, NMOS] = stress.transitions_per_year[:, NMOS]
        self._duty = duty
        self._tpy = tpy
        # per-(stage, polarity) coefficient maxima: lets delta evaluation
        # prove a clip is a no-op from a 10-element check and skip the
        # population-sized minimum pass (bitwise identical either way)
        self._bti_max = self._bti_coeff.max(axis=(0, 1))
        self._hci_max = self._hci_coeff.max(axis=(0, 1))
        # fully-factored stress directions for the frequency path:
        #   delta(t) = t**n * bti_dir + t**m * hci_dir   (clips aside)
        # pulling the duty/transition powers out of the time loop.  This
        # regroups the closed form (ULP-level drift), so only
        # subtract_delta_into uses it — delta() keeps the exact grouping.
        self._bti_dir = bti_coeff * self._duty ** tech.nbti.n
        self._hci_dir = (
            hci_coeff * (self._tpy / tech.hci.ref_transitions) ** tech.hci.m
        )
        self._bti_dir_max = float(self._bti_dir.max())
        self._hci_dir_max = float(self._hci_dir.max())
        self._memo: "OrderedDict[float, np.ndarray]" = OrderedDict()

    # ---- construction ------------------------------------------------

    @classmethod
    def sample(
        cls,
        simulator: AgingSimulator,
        population: ChipPopulation,
        rng: RngLike = None,
        *,
        children: Optional[Sequence[RngLike]] = None,
    ) -> "PopulationAging":
        """Sample every chip's prefactors into one stacked tensor.

        Mirrors :meth:`AgingSimulator.for_population` draw for draw (one
        spawned child generator per chip, NBTI before HCI), so the same
        seed produces the same device prefactors on both paths.

        ``children`` bypasses the spawn and supplies one pre-derived
        generator (or spawn key) per chip — the parallel engine's shard
        workers use this so a shard consumes exactly the child streams the
        serial path would have handed its chips.
        """
        chips = list(population)
        if not chips:
            raise ValueError("population is empty")
        for chip in chips:
            if chip.n_stages != simulator.cell.n_stages:
                raise ValueError(
                    f"chip has {chip.n_stages} stages but the cell expects "
                    f"{simulator.cell.n_stages}"
                )
        if children is None:
            children = spawn(rng, len(chips))
        elif len(children) != len(chips):
            raise ValueError(
                f"got {len(children)} child streams for {len(chips)} chips"
            )
        a_rows, b_rows = [], []
        with telemetry.span("aging.sample_prefactors", n_chips=len(chips)):
            for i, (chip, child) in enumerate(zip(chips, children)):
                gen = as_generator(child)
                a_rows.append(
                    nbti.sample_prefactors(chip.vth.shape, simulator.tech.nbti, gen)
                )
                b_rows.append(
                    hci.sample_prefactors(chip.vth.shape, simulator.tech.hci, gen)
                )
                telemetry.progress("aging.sample_prefactors", i + 1, len(chips))
        return cls(
            tech=simulator.tech,
            stress=simulator.stress,
            mission=simulator.mission,
            nbti_a=np.stack(a_rows),
            hci_b=np.stack(b_rows),
        )

    @classmethod
    def from_agings(cls, agings: Sequence[ChipAging]) -> "PopulationAging":
        """Stack existing per-chip trajectories (they must share one
        simulator, i.e. one technology/stress/mission)."""
        agings = list(agings)
        if not agings:
            raise ValueError("need at least one ChipAging")
        first = agings[0]
        return cls(
            tech=first.tech,
            stress=first.stress,
            mission=first.mission,
            nbti_a=np.stack([a.nbti_a for a in agings]),
            hci_b=np.stack([a.hci_b for a in agings]),
        )

    # ---- geometry ----------------------------------------------------

    @property
    def n_chips(self) -> int:
        return self.nbti_a.shape[0]

    @property
    def n_ros(self) -> int:
        return self.nbti_a.shape[1]

    @property
    def n_stages(self) -> int:
        return self.nbti_a.shape[2]

    # ---- evaluation --------------------------------------------------

    def delta(self, t_years: float) -> np.ndarray:
        """Population threshold-shift field after ``t_years`` (volts).

        Shape ``(n_chips, n_ros, n_stages, 2)``; row ``i`` is bit-identical
        to ``ChipAging.delta(t_years)`` of chip ``i``.  The returned array
        is memoised and read-only — copy before mutating.
        """
        t = float(t_years)
        cached = self._memo.get(t)
        if cached is not None:
            self._memo.move_to_end(t)
            telemetry.count("aging.delta_memo_hits")
            return cached
        telemetry.count("aging.delta_memo_misses")

        delta = self.delta_into(t, np.empty_like(self.nbti_a))
        delta.flags.writeable = False
        self._memo[t] = delta
        if len(self._memo) > self.MEMO_SIZE:
            self._memo.popitem(last=False)
        return delta

    def delta_into(self, t_years: float, out: np.ndarray) -> np.ndarray:
        """:meth:`delta` evaluated into a caller-owned buffer (no memo).

        The hot loop of a year sweep calls this with one persistent buffer
        so that no population-sized array is allocated (and page-faulted)
        per grid point.  Returns ``out``.
        """
        if t_years < 0:
            raise ValueError("t_years must be non-negative")
        t = float(t_years)
        sp = telemetry.start_span(
            "aging.delta", t_years=t, n_chips=self.n_chips
        )
        # t-dependent power laws on the tiny (1, 1, n_stages, 2) stress
        # arrays; everything population-sized below is multiply/clip/add.
        pow_bti = np.power(self._duty * t, self.tech.nbti.n)
        pow_hci = np.power(
            (self._tpy * t) / self.tech.hci.ref_transitions, self.tech.hci.m
        )
        np.multiply(self._bti_coeff, pow_bti, out=out)
        if (self._bti_max * pow_bti[0, 0] > self.tech.nbti.max_shift).any():
            telemetry.count("aging.clip_applied")
            np.minimum(out, self.tech.nbti.max_shift, out=out)
        else:
            telemetry.count("aging.clip_skipped")
        hci_part = self._hci_coeff * pow_hci
        if (self._hci_max * pow_hci[0, 0] > self.tech.hci.max_shift).any():
            telemetry.count("aging.clip_applied")
            np.minimum(hci_part, self.tech.hci.max_shift, out=hci_part)
        else:
            telemetry.count("aging.clip_skipped")
        np.add(out, hci_part, out=out)
        telemetry.end_span(sp)
        return out

    def _component_terms(self, t: float, mechanism: str) -> tuple:
        """``(coeff, pow_mech, clip, cap)`` of one mechanism at ``t``.

        ``pow_mech`` is the tiny ``(1, 1, n_stages, 2)`` time power-law
        array, ``clip`` the population-wide decision whether the
        saturation cap is reachable (proved from the per-stage maxima, so
        skipping the clip pass is bitwise identical to applying it).
        The expressions match :meth:`delta_into` operation for operation.
        """
        if mechanism == "bti":
            pow_mech = np.power(self._duty * t, self.tech.nbti.n)
            cap = self.tech.nbti.max_shift
            clip = bool((self._bti_max * pow_mech[0, 0] > cap).any())
            return self._bti_coeff, pow_mech, clip, cap
        if mechanism == "hci":
            pow_mech = np.power(
                (self._tpy * t) / self.tech.hci.ref_transitions,
                self.tech.hci.m,
            )
            cap = self.tech.hci.max_shift
            clip = bool((self._hci_max * pow_mech[0, 0] > cap).any())
            return self._hci_coeff, pow_mech, clip, cap
        raise ValueError(f"mechanism must be 'bti' or 'hci', got {mechanism!r}")

    def delta_component(
        self,
        t_years: float,
        mechanism: str,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One mechanism's shift field at ``t_years`` (exact grouping).

        ``out`` lets callers reuse a population-sized buffer across
        captures instead of allocating a fresh tensor per call; it must
        match the prefactor tensor's shape and dtype.  Values are
        bit-identical to the corresponding half of
        :meth:`delta_components`.
        """
        if t_years < 0:
            raise ValueError("t_years must be non-negative")
        coeff, pow_mech, clip, cap = self._component_terms(
            float(t_years), mechanism
        )
        if out is None:
            out = np.empty_like(coeff)
        np.multiply(coeff, pow_mech, out=out)
        if clip:
            np.minimum(out, cap, out=out)
        return out

    def delta_components(self, t_years: float) -> tuple:
        """Per-mechanism split of :meth:`delta`: ``(bti, hci)`` fields.

        Each has the population tensor shape ``(n_chips, n_ros, n_stages,
        2)``.  The grouping, clip decisions and final add mirror
        :meth:`delta_into` operation for operation, so ``bti + hci`` is
        *bit-identical* to ``delta(t_years)`` — the forensics layer relies
        on that to attribute a margin shift to NBTI/PBTI vs HCI without
        introducing a reconciliation residual of its own.  Not memoised:
        attribution calls this once per report, never in a sweep loop.
        Callers that need only one mechanism (the blocked
        counterfactual-frequency path) use :meth:`delta_component` or
        :meth:`component_subtracter` instead and skip the second
        population-sized tensor entirely.
        """
        if t_years < 0:
            raise ValueError("t_years must be non-negative")
        t = float(t_years)
        telemetry.count("aging.mechanism_splits")
        return (
            self.delta_component(t, "bti"),
            self.delta_component(t, "hci"),
        )

    def direction_tensors(self) -> tuple:
        """``(bti_dir, hci_dir)`` factored stress-direction tensors.

        The fully-factored form behind :meth:`subtract_delta_into`
        (``delta(t) = t**n * bti_dir + t**m * hci_dir``, clips aside).
        Exposed for the kernel tiers that pre-cast population tensors to
        a different dtype/backend; treat the returned arrays as
        read-only.
        """
        return self._bti_dir, self._hci_dir

    def block_subtracter(self, t_years: float, directions: tuple, xp):
        """A per-block ``od -= delta(t_years)[rows]`` closure.

        ``directions`` carries the (possibly dtype-cast, possibly
        device-resident) pair from :meth:`direction_tensors`; ``xp`` is
        the :class:`repro.kernel.backend.ArrayBackend` the block buffers
        live on.  Semantics — factored grouping, exact clip decisions
        proved from float64 scalar maxima, per-block telemetry counters —
        mirror :meth:`subtract_delta_into`; only the arithmetic precision
        follows the tensors passed in.
        """
        if t_years < 0:
            raise ValueError("t_years must be non-negative")
        t = float(t_years)
        bti_dir, hci_dir = directions
        bti_t = t ** self.tech.nbti.n
        hci_t = t ** self.tech.hci.m
        cap_bti = self.tech.nbti.max_shift
        cap_hci = self.tech.hci.max_shift
        clip_bti = self._bti_dir_max * bti_t > cap_bti
        clip_hci = self._hci_dir_max * hci_t > cap_hci

        def subtract(od, scratch, rows):
            telemetry.count("aging.subtract_blocks")
            xp.multiply(bti_dir[rows], bti_t, out=scratch)
            if clip_bti:
                telemetry.count("aging.clip_applied")
                xp.minimum(scratch, cap_bti, out=scratch)
            else:
                telemetry.count("aging.clip_skipped")
            od -= scratch
            xp.multiply(hci_dir[rows], hci_t, out=scratch)
            if clip_hci:
                telemetry.count("aging.clip_applied")
                xp.minimum(scratch, cap_hci, out=scratch)
            else:
                telemetry.count("aging.clip_skipped")
            od -= scratch

        return subtract

    def component_subtracter(
        self, t_years: float, mechanism: str, *, xp=np, dtype=None
    ):
        """A per-block ``od -= delta_component(t_years, mechanism)[rows]``.

        The blocked counterfactual-frequency path subtracts one
        mechanism's field block by block through this closure instead of
        materialising the full :meth:`delta_components` pair — same
        coefficient grouping, same population-wide clip decision, so the
        result is bit-identical to the full-tensor subtraction while
        allocating nothing population-sized.  ``dtype`` (with its
        backend ``xp``) casts the coefficient tensor once for off-native
        kernel tiers; ``None`` keeps the float64 originals.
        """
        if t_years < 0:
            raise ValueError("t_years must be non-negative")
        coeff, pow_mech, clip, cap = self._component_terms(
            float(t_years), mechanism
        )
        if dtype is not None:
            coeff = xp.asarray(coeff, dtype)
            pow_mech = xp.asarray(pow_mech, dtype)

        def subtract(od, scratch, rows):
            xp.multiply(coeff[rows], pow_mech, out=scratch)
            if clip:
                xp.minimum(scratch, cap, out=scratch)
            od -= scratch

        return subtract

    def cached_delta(self, t_years: float) -> Optional[np.ndarray]:
        """The memoised delta for ``t_years`` if one exists, else None."""
        return self._memo.get(float(t_years))

    def subtract_delta_into(
        self,
        t_years: float,
        od: np.ndarray,
        scratch: np.ndarray,
        rows: slice = slice(None),
    ) -> np.ndarray:
        """``od -= delta(t_years)[rows]`` with the fewest memory passes.

        The hot kernel of the batched frequency sweep.  The BTI and HCI
        terms are subtracted separately from factored direction tensors
        (one scalar multiply + one subtract each), which regroups the
        closed form relative to :meth:`delta` — results differ from
        subtracting :meth:`delta` only in the last few ULPs, so callers
        that need the bit-exact per-chip grouping use :meth:`delta`
        instead.  Clips are applied exactly: a cheap maximum check proves
        when the population cannot reach the cap and the clip pass is
        skipped.

        ``rows`` selects a chip-axis block, letting the caller chunk the
        evaluation so the work buffers stay cache-resident.
        """
        if t_years < 0:
            raise ValueError("t_years must be non-negative")
        t = float(t_years)
        telemetry.count("aging.subtract_blocks")
        # Factored closed form: delta(t) = t**n * bti_dir + t**m * hci_dir
        # (clips aside), so the hot loop pays two *scalar* broadcasts
        # instead of two (n_stages, 2) broadcasts — measurably cheaper.
        bti_t = t ** self.tech.nbti.n
        hci_t = t ** self.tech.hci.m
        np.multiply(self._bti_dir[rows], bti_t, out=scratch)
        if self._bti_dir_max * bti_t > self.tech.nbti.max_shift:
            telemetry.count("aging.clip_applied")
            np.minimum(scratch, self.tech.nbti.max_shift, out=scratch)
        else:
            telemetry.count("aging.clip_skipped")
        od -= scratch
        np.multiply(self._hci_dir[rows], hci_t, out=scratch)
        if self._hci_dir_max * hci_t > self.tech.hci.max_shift:
            telemetry.count("aging.clip_applied")
            np.minimum(scratch, self.tech.hci.max_shift, out=scratch)
        else:
            telemetry.count("aging.clip_skipped")
        od -= scratch
        return od

    def delta_grid(self, years: Sequence[float]) -> np.ndarray:
        """Deltas over a full year grid, shape
        ``(len(years), n_chips, n_ros, n_stages, 2)``."""
        return np.stack([self.delta(t) for t in years])

    def chip_aging(self, index: int, chip: Chip) -> ChipAging:
        """Per-chip :class:`ChipAging` view of row ``index`` (thin slice,
        no re-sampling) bound to ``chip``."""
        return ChipAging(
            chip=chip,
            tech=self.tech,
            stress=self.stress,
            mission=self.mission,
            nbti_a=self.nbti_a[index],
            hci_b=self.hci_b[index],
        )
