"""Aging orchestration: from a fresh chip to its aged views over time.

:class:`AgingSimulator` binds a technology, an oscillator cell design and a
mission profile.  For each chip it samples the per-device aging prefactors
*once* (they are physical properties of the individual devices) and hands
back a :class:`ChipAging` that can produce a consistent aged
:class:`~repro.variation.chip.Chip` at any point of the mission — the
degradation trajectory of every device is monotone and self-consistent
across time points, which is what lets experiments sweep 0.5 .. 10 years
and get smooth bit-flip curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._rng import RngLike, as_generator, spawn
from ..circuit.cells import CellDescriptor
from ..transistor.technology import TechnologyCard
from ..variation.chip import NMOS, PMOS, Chip, ChipPopulation
from . import hci, nbti
from .schedule import IdlePolicy, MissionProfile
from .stress import StressProfile, compute_stress


@dataclass(frozen=True)
class ChipAging:
    """The aging trajectory of one chip (prefactors frozen at creation)."""

    chip: Chip
    tech: TechnologyCard
    stress: StressProfile
    mission: MissionProfile
    nbti_a: np.ndarray
    hci_b: np.ndarray

    def delta(self, t_years: float) -> np.ndarray:
        """Per-device threshold shift after ``t_years`` (volts).

        Shape matches ``chip.vth``: ``(n_ros, n_stages, 2)``.
        """
        if t_years < 0:
            raise ValueError("t_years must be non-negative")
        shape = self.chip.vth.shape
        delta = np.zeros(shape)
        temp = self.mission.temperature_k
        params = self.tech.nbti

        # PMOS: NBTI (dominant) + a reduced HCI share
        delta[:, :, PMOS] += nbti.bti_shift(
            self.stress.nbti_duty[None, :, PMOS],
            t_years,
            params,
            prefactor=self.nbti_a[:, :, PMOS],
            temperature_k=temp,
        )
        delta[:, :, PMOS] += hci.hci_shift(
            self.stress.transitions_per_year[None, :, PMOS] * t_years,
            self.tech.hci,
            prefactor=self.hci_b[:, :, PMOS],
            pmos=True,
        )

        # NMOS: PBTI (weak) + full HCI
        delta[:, :, NMOS] += nbti.bti_shift(
            self.stress.pbti_duty[None, :, NMOS],
            t_years,
            params,
            prefactor=self.nbti_a[:, :, NMOS],
            temperature_k=temp,
            pbti=True,
        )
        delta[:, :, NMOS] += hci.hci_shift(
            self.stress.transitions_per_year[None, :, NMOS] * t_years,
            self.tech.hci,
            prefactor=self.hci_b[:, :, NMOS],
            pmos=False,
        )
        return delta

    def aged(self, t_years: float) -> Chip:
        """The chip as manufactured plus ``t_years`` of field aging."""
        if t_years == 0:
            return self.chip
        return self.chip.with_delta(self.delta(t_years))

    def mean_frequency_degradation(self, t_years: float) -> float:
        """Population-mean fractional frequency loss at ``t_years``.

        A cheap first-order figure (delay-sensitivity-weighted mean Vth
        shift) used for quick reporting; experiments that need the real
        number recompute frequencies through the delay model.
        """
        from ..transistor.mosfet import delay_sensitivity

        sens = delay_sensitivity(self.tech)
        d = self.delta(t_years)
        # each of the 2*n_stages transition components carries equal weight
        return float(np.mean(np.sum(d, axis=(1, 2)) * sens / (2 * self.chip.n_stages)))


class AgingSimulator:
    """Builds :class:`ChipAging` trajectories for a fixed design point."""

    def __init__(
        self,
        tech: TechnologyCard,
        cell: CellDescriptor,
        mission: Optional[MissionProfile] = None,
        idle_policy: Optional[IdlePolicy] = None,
    ):
        self.tech = tech
        self.cell = cell
        self.mission = mission or MissionProfile()
        self.idle_policy = idle_policy
        self.stress = compute_stress(cell, self.mission, idle_policy)

    def for_chip(self, chip: Chip, rng: RngLike = None) -> ChipAging:
        """Sample the chip's device prefactors and return its trajectory."""
        if chip.n_stages != self.cell.n_stages:
            raise ValueError(
                f"chip has {chip.n_stages} stages but the cell expects "
                f"{self.cell.n_stages}"
            )
        gen = as_generator(rng)
        shape = chip.vth.shape
        return ChipAging(
            chip=chip,
            tech=self.tech,
            stress=self.stress,
            mission=self.mission,
            nbti_a=nbti.sample_prefactors(shape, self.tech.nbti, gen),
            hci_b=hci.sample_prefactors(shape, self.tech.hci, gen),
        )

    def for_population(
        self, population: ChipPopulation, rng: RngLike = None
    ) -> list:
        """Trajectories for every chip (independent child RNG per chip)."""
        children = spawn(rng, len(population))
        return [
            self.for_chip(chip, child)
            for chip, child in zip(population, children)
        ]
