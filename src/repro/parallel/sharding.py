"""Chip-axis sharding: the deterministic work decomposition of a study.

The chip axis of every population Monte-Carlo is embarrassingly parallel:
chip ``i``'s silicon is fabricated from its own spawned child stream and
its responses never read another chip's state.  This module turns a
``(design, mission, seed, n_chips)`` study into ``jobs`` self-contained
:class:`ShardSpec` work orders:

* :func:`shard_bounds` splits ``range(n_chips)`` into contiguous,
  balanced ``[start, stop)`` ranges — chip order is preserved, so the
  coordinator reassembles results with one concatenation and no
  permutation bookkeeping;
* :class:`ShardSpec` carries everything a worker process needs to
  fabricate and evaluate its chips *locally*: the (small, picklable)
  design and mission objects plus each chip's **spawn keys** — plain
  ints from :func:`repro._rng.spawn_keys` — rather than the stacked
  threshold tensors, keeping the pickled task payload in the kilobytes
  regardless of population size.

Because the coordinator derives the *full* population's key lists once
and slices them (``spawn_keys`` makes no prefix promise across different
``n``), every shard fabricates exactly the chips a serial
:func:`~repro.core.population.make_batch_study` run would have, for any
shard count — including counts that do not divide ``n_chips``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..aging.schedule import IdlePolicy, MissionProfile
from ..core.base import PufDesign


def shard_bounds(n_items: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``range(n_items)`` into contiguous, balanced ``(start, stop)``.

    The first ``n_items % shards`` ranges carry one extra item, so sizes
    differ by at most one; a shard count above ``n_items`` is clamped so
    no empty shard is ever created.  Concatenating per-range results in
    list order reproduces item order exactly.
    """
    if n_items <= 0:
        raise ValueError("n_items must be positive")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    shards = min(shards, n_items)
    base, extra = divmod(n_items, shards)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for k in range(shards):
        stop = start + base + (1 if k < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


@dataclass(frozen=True)
class ShardSpec:
    """One worker's self-contained fabrication-and-evaluation order.

    Parameters
    ----------
    design, mission, idle_policy:
        The study bundle, exactly as :func:`make_batch_study` receives it
        (all small frozen dataclasses — cheap to pickle).
    chip_start:
        Global index of this shard's first chip; chip ``j`` of the shard
        is population chip ``chip_start + j``.
    fab_keys, aging_keys:
        This shard's slice of the population's fabrication / aging spawn
        keys (ints; see :func:`repro._rng.spawn_keys`).
    store_root:
        When set, the path of a shared
        :class:`~repro.store.store.PopulationStore`: the worker attaches
        to its mmap segments (by path + row offset) and evaluates
        out-of-core over rows ``[chip_start, chip_start + n_chips)``
        instead of fabricating an in-RAM shard.  The keys still ride
        along — they are a few bytes per chip and double as the worker's
        identity check against the store's persisted key lists.
    dtype:
        Kernel arithmetic tier for the worker's
        :class:`~repro.core.population.BatchStudy` (``"float64"`` or
        ``"float32"``).  Result-defining — every shard of a study
        carries the same tier.  Ignored by store-attached shards, which
        are float64 only.
    """

    design: PufDesign
    mission: MissionProfile
    idle_policy: Optional[IdlePolicy]
    chip_start: int
    fab_keys: Tuple[int, ...]
    aging_keys: Tuple[int, ...]
    store_root: Optional[str] = None
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if not self.fab_keys:
            raise ValueError("a shard must carry at least one chip")
        if len(self.fab_keys) != len(self.aging_keys):
            raise ValueError(
                f"{len(self.fab_keys)} fabrication keys vs "
                f"{len(self.aging_keys)} aging keys"
            )
        if self.chip_start < 0:
            raise ValueError("chip_start must be non-negative")

    @property
    def n_chips(self) -> int:
        return len(self.fab_keys)

    @property
    def chip_ids(self) -> range:
        """The global chip indices this shard fabricates."""
        return range(self.chip_start, self.chip_start + self.n_chips)
