"""Worker-process side of the parallel engine.

Everything in this module runs inside a ``ProcessPoolExecutor`` worker.
The contract with the coordinator (:mod:`repro.parallel.engine`):

* a task ships a :class:`~repro.parallel.sharding.ShardSpec` (spawn keys
  and config, never tensors) plus a list of :class:`EvalRequest` items;
* the worker fabricates its chip shard locally — through exactly the
  same ``sample_chip`` / prefactor-sampling calls, fed exactly the same
  child streams, as a serial :func:`make_batch_study` would have used for
  those chips — and keeps the resulting shard
  :class:`~repro.core.population.BatchStudy` in a small LRU cache so a
  year sweep pays fabrication once, not once per grid point;
* the reply is a :class:`ShardReport`: the requested arrays (chip-axis
  slices, concatenated coordinator-side in shard order) plus a telemetry
  digest — counters and per-span wall-time totals from a worker-local
  tracer — that the coordinator folds into the parent run's stream.

Workers must not inherit the parent's live telemetry: under the ``fork``
start method the installed tracer/emitter globals (and the emitter's open
file handle) are copied into the child, and a worker writing heartbeats
to the coordinator's JSONL file would interleave with the parent's.
:func:`reset_inherited_telemetry` severs that inheritance in the pool
initializer (and again, defensively, at the top of every task).
"""

from __future__ import annotations

import pathlib
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from .. import telemetry
from .._rng import as_generator
from ..aging.simulator import AgingSimulator, PopulationAging
from ..core.population import BatchStudy, PopulationView
from ..environment.conditions import OperatingConditions
from ..forensics import hook as _hook_mod
from ..telemetry import events as _events_mod
from ..telemetry import sampler as _sampler_mod
from ..telemetry import tracer as _tracer_mod
from ..variation.chip import ChipPopulation
from .cache import ResultCache
from .sharding import ShardSpec


@dataclass(frozen=True)
class EvalRequest:
    """One batched-evaluation call, in :class:`BatchStudy` vocabulary.

    ``mechanism`` applies to ``"mechanism_frequencies"`` requests only;
    ``hist_edges`` (a picklable tuple of bin edges) to ``"margin_hist"``
    requests, whose replies are per-shard integer bin counts that the
    coordinator merges by addition.
    """

    kind: str  # "frequencies" | "responses" | "mechanism_frequencies" | "margin_hist"
    t_years: float = 0.0
    conditions: Optional[OperatingConditions] = None
    challenge: Optional[int] = None
    mechanism: Optional[str] = None
    hist_edges: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in (
            "frequencies",
            "responses",
            "mechanism_frequencies",
            "margin_hist",
        ):
            raise ValueError(f"unknown request kind {self.kind!r}")
        if self.kind == "mechanism_frequencies" and self.mechanism not in (
            "bti",
            "hci",
        ):
            raise ValueError(
                f"mechanism must be 'bti' or 'hci', got {self.mechanism!r}"
            )
        if self.kind == "margin_hist" and self.hist_edges is None:
            raise ValueError("margin_hist requests need hist_edges")


@dataclass
class ShardReport:
    """A worker's reply: result slices plus its telemetry digest."""

    shard_index: int
    n_chips: int
    arrays: List[np.ndarray]
    counters: Dict[str, float]
    span_totals: Dict[str, Tuple[int, int]]  # name -> (duration_ns, calls)
    wall_s: float
    #: the worker's full span forest as timed dicts (absolute worker
    #: perf_counter_ns timestamps; the coordinator re-bases them via
    #: ``clock``) — the Chrome-trace export's per-worker lanes
    spans: List[Dict] = field(default_factory=list)
    #: serialised Histogram state per metric name, merged bucket-wise
    #: into the coordinator tracer's histograms
    histograms: Dict[str, Dict] = field(default_factory=dict)
    #: the worker's clock handshake ``(wall_ns, perf_ns)`` read
    #: back-to-back; lets the coordinator convert worker perf timestamps
    #: onto its own perf timeline (see ``telemetry.clock_handshake``)
    clock: Optional[Tuple[int, int]] = None


def reset_inherited_telemetry() -> None:
    """Disable any tracer/emitter this process inherited over ``fork``.

    The globals are nulled without calling the uninstall helpers: those
    close the emitter's file handle, and while closing a forked dup is
    harmless to the parent, leaving the object untouched is the least
    surprising behaviour.  The parent flushes after every event line, so
    no buffered bytes can be replayed from the child either way.

    The forensics margin collector is severed for the same reason: shard
    ``responses`` calls inside a worker would otherwise deposit partial
    margin grids into a forked copy of the coordinator's tape.  Margin
    capture for parallel runs happens coordinator-side, from the merged
    frequency tensors.

    A forked resource-sampler slot is severed too: the inherited object
    holds a dead thread handle (threads do not survive ``fork``), and
    sampling in workers is a coordinator decision, not an inherited one.
    """
    _tracer_mod._active = None
    _events_mod._emitter = None
    _hook_mod._collector = None
    _sampler_mod._sampler = None


def worker_init() -> None:
    """``ProcessPoolExecutor`` initializer for shard workers."""
    reset_inherited_telemetry()


# ---------------------------------------------------------------------------
# shard fabrication (cached per worker process)
# ---------------------------------------------------------------------------

#: fabricated shards this worker holds, keyed by the coordinator's shard
#: token.  Tasks are distributed by the pool, not pinned, so one worker
#: may see several shards over a study's lifetime; the LRU bound keeps a
#: long-lived worker from accumulating every shard of every study.
_SHARD_CACHE: "OrderedDict[str, Union[BatchStudy, object]]" = OrderedDict()
_SHARD_CACHE_SIZE = 8


def fabricate_shard(spec: ShardSpec) -> BatchStudy:
    """Build the shard's :class:`BatchStudy` from its spawn keys.

    Per chip this performs the identical draws, in the identical order,
    as the serial path: ``sample_chip`` on the chip's fabrication stream,
    then NBTI-before-HCI prefactor sampling on its aging stream (via
    :meth:`PopulationAging.sample` with pre-derived children).  Responses
    and deltas of the shard rows are therefore bit-identical to the same
    rows of a whole-population study under the same root seed.
    """
    design, mission = spec.design, spec.mission
    model = design.variation_model()
    with telemetry.span(
        "parallel.fabricate_shard",
        chip_start=spec.chip_start,
        n_chips=spec.n_chips,
    ):
        chips = [
            model.sample_chip(as_generator(key), chip_id=cid)
            for key, cid in zip(spec.fab_keys, spec.chip_ids)
        ]
        population = ChipPopulation(chips=chips)
        simulator = AgingSimulator(
            design.tech, design.cell, mission, idle_policy=spec.idle_policy
        )
        aging = PopulationAging.sample(
            simulator,
            population,
            children=[as_generator(key) for key in spec.aging_keys],
        )
        return BatchStudy(
            design=design,
            view=PopulationView.from_chips(population),
            aging=aging,
            mission=mission,
            dtype=spec.dtype,
        )


def attach_shard(spec: ShardSpec):
    """Attach a :class:`~repro.store.study.StoreStudy` window to the
    coordinator's shared segments (``spec.store_root`` is set).

    Nothing is re-fabricated eagerly: the worker's study materialises the
    store blocks overlapping its row window on first touch, writing into
    the *same* files every other worker maps, so a block is fabricated at
    most once per sweep across the whole pool (identical bytes if two
    workers ever race on a boundary block).  The worker's frequency memo
    spills next to the store, keeping worker RSS block-bounded too.
    """
    from ..store import PopulationStore, StoreStudy

    root = pathlib.Path(spec.store_root)
    with telemetry.span(
        "parallel.attach_shard",
        chip_start=spec.chip_start,
        n_chips=spec.n_chips,
    ):
        store = PopulationStore.attach(
            root,
            spec.design,
            mission=spec.mission,
            idle_policy=spec.idle_policy,
        )
        return StoreStudy(
            spec.design,
            store,
            mission=spec.mission,
            idle_policy=spec.idle_policy,
            row_start=spec.chip_start,
            row_stop=spec.chip_start + spec.n_chips,
            spill=ResultCache(root / "spill"),
        )


def _cached_shard(token: str, spec: ShardSpec):
    shard = _SHARD_CACHE.get(token)
    if shard is not None:
        _SHARD_CACHE.move_to_end(token)
        telemetry.count("parallel.shard_cache_hits")
        return shard
    telemetry.count("parallel.shard_cache_misses")
    shard = attach_shard(spec) if spec.store_root else fabricate_shard(spec)
    _SHARD_CACHE[token] = shard
    if len(_SHARD_CACHE) > _SHARD_CACHE_SIZE:
        _SHARD_CACHE.popitem(last=False)
    return shard


def _span_totals(tracer: telemetry.Tracer) -> Dict[str, Tuple[int, int]]:
    """Wall-time totals by span name over the worker's whole span forest."""
    totals: Dict[str, Tuple[int, int]] = {}
    stack = list(tracer.roots)
    while stack:
        span = stack.pop()
        duration, calls = totals.get(span.name, (0, 0))
        totals[span.name] = (duration + span.duration_ns, calls + 1)
        stack.extend(span.children)
    return totals


def evaluate_shard(
    token: str,
    spec: ShardSpec,
    shard_index: int,
    requests: List[EvalRequest],
) -> ShardReport:
    """Entry point of one pool task: fabricate (or reuse) and evaluate.

    Runs every request through the shard's :class:`BatchStudy` under a
    worker-local tracer, so the report can carry the work done (kernel
    counters, span totals) back to the coordinator without any shared
    state between processes.
    """
    reset_inherited_telemetry()
    clock = telemetry.clock_handshake()
    t0 = time.perf_counter()
    with telemetry.session() as tracer:
        shard = _cached_shard(token, spec)
        arrays: List[np.ndarray] = []
        for req in requests:
            if req.kind == "frequencies":
                out = shard.frequencies(req.t_years, req.conditions)
            elif req.kind == "responses":
                out = shard.responses(
                    req.challenge, req.t_years, conditions=req.conditions
                )
            elif req.kind == "mechanism_frequencies":
                out = shard.mechanism_frequencies(
                    req.t_years, req.mechanism, req.conditions
                )
            else:  # margin_hist: per-shard reduction, merged by addition
                out = shard.margin_histogram(
                    np.asarray(req.hist_edges, dtype=float),
                    req.challenge,
                    req.t_years,
                    conditions=req.conditions,
                )
            if isinstance(out, np.memmap):
                # a store-backed shard hands back a read-only memmap of
                # its spilled corner; materialise the shard slice so the
                # reply pickles as plain bytes
                out = np.array(out)
            arrays.append(out)
        span_totals = _span_totals(tracer)
        counters = dict(tracer.counters)
        spans = [root.to_timed_dict() for root in tracer.roots]
        histograms = {
            name: hist.to_dict() for name, hist in tracer.histograms.items()
        }
    return ShardReport(
        shard_index=shard_index,
        n_chips=spec.n_chips,
        arrays=arrays,
        counters=counters,
        span_totals=span_totals,
        wall_s=time.perf_counter() - t0,
        spans=spans,
        histograms=histograms,
        clock=clock,
    )
