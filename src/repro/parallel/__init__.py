"""Parallel evaluation of population studies, plus result caching.

Public surface:

* :func:`make_parallel_study` — drop-in for
  :func:`repro.core.population.make_batch_study` with a ``jobs`` knob;
  bit-identical results for any worker count.
* :class:`ParallelBatchStudy` — the chip-sharded engine behind it.
* :class:`ResultCache` / :func:`cache_key` — content-addressed on-disk
  cache of experiment payloads (``repro run --cache DIR``).
* :func:`shard_bounds` / :class:`ShardSpec` — the deterministic chip-axis
  decomposition, exposed for tests and tooling.
"""

from .cache import CACHE_FORMAT, ResultCache, cache_key
from .engine import ParallelBatchStudy, make_parallel_study
from .sharding import ShardSpec, shard_bounds
from .worker import EvalRequest, ShardReport

__all__ = [
    "CACHE_FORMAT",
    "EvalRequest",
    "ParallelBatchStudy",
    "ResultCache",
    "ShardReport",
    "ShardSpec",
    "cache_key",
    "make_parallel_study",
    "shard_bounds",
]
