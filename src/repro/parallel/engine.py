"""Coordinator side: :class:`ParallelBatchStudy` and its factory.

The parallel engine shards a population study across worker processes
along the chip axis and re-exposes the :class:`BatchStudy` evaluation
surface the experiment suite uses (``frequencies`` / ``responses`` /
``n_chips`` / ``n_bits``), so E1/E2/E3/E5 run unchanged on either
engine.  Design invariants:

* **Determinism for any shard count.**  The coordinator consumes the
  root RNG exactly like :func:`make_batch_study` (two spawned children,
  fabrication first) and derives the *full* population's per-chip spawn
  keys before slicing them into shards; workers replay the serial
  per-chip draws from those keys.  Responses, frequencies and aging
  deltas are therefore bit-identical across ``jobs = 1, 2, 4, ...`` —
  including shard counts that do not divide ``n_chips`` — and identical
  to the serial engine.
* **Cheap tasks.**  A task pickles spawn keys plus the (small) design
  and mission objects, never population tensors; replies carry only the
  requested result slices.  Workers cache their fabricated shard, so a
  year sweep ships the keys once and the grid points are near-pure
  kernel time.
* **One telemetry stream.**  Workers never write to the parent's tracer
  or heartbeat file (the pool initializer severs inherited telemetry).
  Instead each reply carries a counter/span digest; the coordinator
  folds counters into the parent tracer, attaches one summary span per
  shard under its ``parallel.evaluate`` span, and emits the merged
  per-shard progress heartbeats itself as replies arrive.

The coordinator memoises concatenated frequency tensors per
``(t_years, conditions)`` corner — mirroring :class:`BatchStudy`'s memo —
so repeated golden-response queries do not re-enter the pool.
"""

from __future__ import annotations

import itertools
import os
import pathlib
import tempfile
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import List, Optional, Union

import numpy as np

from .. import telemetry
from .._rng import RngLike, spawn, spawn_keys
from ..aging.schedule import IdlePolicy, MissionProfile
from ..core.base import PufDesign
from ..core.population import BatchStudy, make_batch_study
from ..environment.conditions import OperatingConditions
from ..forensics import hook as _forensics_hook
from ..telemetry.tracer import Span
from .sharding import ShardSpec, shard_bounds
from .worker import EvalRequest, ShardReport, evaluate_shard, worker_init

#: distinguishes shard tokens of different studies within one process
_study_counter = itertools.count()


class ParallelBatchStudy:
    """A population study evaluated by a pool of shard workers.

    Construction is cheap: no silicon is fabricated in the coordinator
    process, only spawn keys are derived.  The worker pool (and each
    worker's shard) comes up lazily on the first evaluation call.  Call
    :meth:`close` (or use the instance as a context manager) to release
    the pool; the serial :class:`BatchStudy` exposes the same no-op
    lifecycle so call sites can treat both engines uniformly.
    """

    #: number of (t_years, conditions) corners kept in the coordinator's
    #: concatenated-frequency memo (mirrors BatchStudy.MEMO_SIZE)
    MEMO_SIZE = 32

    def __init__(
        self,
        design: PufDesign,
        n_chips: int,
        *,
        mission: Optional[MissionProfile] = None,
        idle_policy: Optional[IdlePolicy] = None,
        rng: RngLike = None,
        jobs: int = 2,
        mp_context=None,
        store: str = "ram",
        block_size: Optional[int] = None,
        store_dir: Optional[str] = None,
        dtype: str = "float64",
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if n_chips < 1:
            raise ValueError("n_chips must be positive")
        if store not in ("ram", "mmap"):
            raise ValueError(f"store must be 'ram' or 'mmap', got {store!r}")
        if dtype not in ("float64", "float32"):
            raise ValueError(
                f"dtype must be 'float64' or 'float32', got {dtype!r}"
            )
        if store == "mmap" and dtype != "float64":
            # the store's on-disk segments are float64 and its kernels
            # promise bit-identity with the dense path — a mixed tier
            # would silently compute in float64-then-cast, which is
            # neither tier, so refuse instead
            raise ValueError("store='mmap' supports dtype='float64' only")
        mission = mission or MissionProfile()
        # Consume the RNG exactly like make_batch_study / make_study
        # (fabrication child first, then aging), then derive the whole
        # population's per-chip keys the way sample_population and
        # PopulationAging.sample would, so shard workers replay the
        # serial draws verbatim.
        fab_rng, aging_rng = spawn(rng, 2)
        fab_keys = spawn_keys(fab_rng, n_chips)
        aging_keys = spawn_keys(aging_rng, n_chips)
        token = f"pid{os.getpid()}-study{next(_study_counter)}"
        self.design = design
        self.mission = mission
        # With --store mmap the coordinator lays down one shared (still
        # unmaterialised) store; workers attach by path and fabricate
        # their own row windows into the common segments, so no tensor
        # ever crosses a process boundary in either direction.
        self._store_root: Optional[pathlib.Path] = None
        self._own_store = False
        self._population_store = None
        if store == "mmap":
            from ..store import PopulationStore

            if store_dir is None:
                self._store_root = pathlib.Path(
                    tempfile.mkdtemp(prefix="repro-store-")
                )
                self._own_store = True
            else:
                self._store_root = pathlib.Path(store_dir)
            self._population_store = PopulationStore.create(
                self._store_root,
                design,
                n_chips,
                mission=mission,
                idle_policy=idle_policy,
                keys=(fab_keys, aging_keys),
                block_size=block_size,
            )
        self._specs = [
            ShardSpec(
                design=design,
                mission=mission,
                idle_policy=idle_policy,
                chip_start=start,
                fab_keys=tuple(fab_keys[start:stop]),
                aging_keys=tuple(aging_keys[start:stop]),
                store_root=(
                    str(self._store_root) if self._store_root is not None else None
                ),
                dtype=dtype,
            )
            for start, stop in shard_bounds(n_chips, jobs)
        ]
        self._tokens = [f"{token}/s{k}" for k in range(len(self._specs))]
        self._n_chips = n_chips
        self._mp_context = mp_context
        self._executor: Optional[ProcessPoolExecutor] = None
        self._freq_memo: "OrderedDict[tuple, np.ndarray]" = OrderedDict()

    # ---- geometry ----------------------------------------------------

    @property
    def n_chips(self) -> int:
        return self._n_chips

    @property
    def n_bits(self) -> int:
        return self.design.n_bits

    @property
    def jobs(self) -> int:
        """Worker count (clamped to ``n_chips`` at construction)."""
        return len(self._specs)

    # ---- pool lifecycle ----------------------------------------------

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=worker_init,
                mp_context=self._mp_context,
            )
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down (idempotent; pool restarts on use).

        A coordinator-owned mmap store (one created in a temp directory
        rather than adopted from ``store_dir``) is deleted with the pool:
        its segments are scratch space for this study, not a cache.
        """
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        store, self._population_store = self._population_store, None
        if store is not None:
            store.close()
        if self._own_store and self._store_root is not None:
            from ..store import remove_store

            remove_store(self._store_root)
            self._store_root = None

    def __enter__(self) -> "ParallelBatchStudy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ---- evaluation --------------------------------------------------

    def _evaluate(self, requests: List[EvalRequest]) -> List[np.ndarray]:
        """Run ``requests`` on every shard; concatenate in chip-id order.

        Progress heartbeats (one merged ``parallel.shards`` stream) are
        emitted from this process as replies arrive; each reply's counter
        and span digest is folded into the parent tracer, so ``--trace``
        and ``--metrics-out`` see one coherent run.
        """
        sp = telemetry.start_span(
            "parallel.evaluate",
            jobs=self.jobs,
            n_chips=self._n_chips,
            n_requests=len(requests),
        )
        try:
            pool = self._pool()
            futures = {
                pool.submit(
                    evaluate_shard, self._tokens[k], spec, k, requests
                ): k
                for k, spec in enumerate(self._specs)
            }
            reports: List[Optional[ShardReport]] = [None] * len(self._specs)
            pending = set(futures)
            done_chips = 0
            telemetry.progress("parallel.shards", 0, self._n_chips)
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    report = future.result()
                    reports[futures[future]] = report
                    done_chips += report.n_chips
                    telemetry.progress(
                        "parallel.shards", done_chips, self._n_chips
                    )
                    self._fold_report(report)
            assert all(r is not None for r in reports)
            return [
                np.concatenate([r.arrays[i] for r in reports])
                for i in range(len(requests))
            ]
        finally:
            telemetry.end_span(sp)

    def _fold_report(self, report: ShardReport) -> None:
        """Merge one worker's telemetry digest into the parent tracer."""
        telemetry.count("parallel.shards_completed")
        for name, value in report.counters.items():
            telemetry.count(name, value)
        tracer = telemetry.active()
        if tracer is None:
            return
        for name, hist in report.histograms.items():
            tracer.merge_histogram(name, hist)
        # Worker spans happened in another process; re-create them as one
        # summary child per shard with recorded (not re-measured) timings
        # so the span tree still shows where the workers spent their time.
        # The ``synthetic`` attribute marks timestamps that are durations
        # dressed as spans (start pinned to 0), so clock-faithful views
        # (the Chrome-trace export) skip them in favour of the remote
        # lanes attached below.
        parent = tracer.active_span
        shard_span = Span(
            "parallel.shard",
            {
                "shard": report.shard_index,
                "n_chips": report.n_chips,
                "wall_s": round(report.wall_s, 6),
                "synthetic": True,
            },
        )
        shard_span.start_ns = 0
        shard_span.end_ns = int(report.wall_s * 1e9)
        for name, (duration_ns, calls) in sorted(report.span_totals.items()):
            child = Span(name, {"calls": calls, "synthetic": True})
            child.start_ns = 0
            child.end_ns = duration_ns
            child.parent = shard_span
            shard_span.children.append(child)
        if parent is not None:
            shard_span.parent = parent
            parent.children.append(shard_span)
        else:  # pragma: no cover - tracer active but no open span
            tracer.roots.append(shard_span)
        # The worker's real span forest, re-based onto this process's
        # perf_counter timeline via the two clock handshakes: offset =
        # (W_worker - P_worker) - (W_coord - P_coord).  These become the
        # per-worker lanes of the Chrome-trace export.
        if report.spans and report.clock is not None:
            offset = (report.clock[0] - report.clock[1]) - (
                tracer.wall0_ns - tracer.perf0_ns
            )
            tracer.add_remote_lane(
                f"worker-{report.shard_index}",
                [Span.from_timed_dict(d, offset) for d in report.spans],
            )

    def frequencies(
        self,
        t_years: float = 0.0,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """Population frequency tensor, bit-identical to the serial
        :meth:`BatchStudy.frequencies` under the same root seed.

        Shape ``(n_chips, n_ros)``; memoised read-only per corner.
        """
        cond = conditions or OperatingConditions.nominal()
        key = (float(t_years), cond)
        cached = self._freq_memo.get(key)
        if cached is not None:
            self._freq_memo.move_to_end(key)
            telemetry.count("parallel.corner_memo_hits")
            return cached
        telemetry.count("parallel.corner_memo_misses")
        freqs = self._evaluate(
            [EvalRequest("frequencies", float(t_years), cond)]
        )[0]
        freqs.flags.writeable = False
        self._freq_memo[key] = freqs
        if len(self._freq_memo) > self.MEMO_SIZE:
            self._freq_memo.popitem(last=False)
        return freqs

    def responses(
        self,
        challenge: Optional[int] = None,
        t_years: float = 0.0,
        *,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """Golden responses of every chip, shape ``(n_chips, n_bits)``,
        bit-identical to the serial engine for any worker count.

        With a forensics collector active, the merged frequency tensor
        (memoised, so usually already resident from the response pass's
        sibling query) is recorded coordinator-side — workers have their
        collector slot severed, so the tape sees exactly one grid per
        corner, identical to the serial engine's.
        """
        cond = conditions or OperatingConditions.nominal()
        bits = self._evaluate(
            [EvalRequest("responses", float(t_years), cond, challenge)]
        )[0]
        if _forensics_hook.active_collector() is not None:
            pairs = self.design.pairing.pairs(self.design.n_ros, challenge)
            _forensics_hook.record_response_margins(
                self.frequencies(t_years, cond), pairs, float(t_years), cond
            )
        return bits

    def mechanism_frequencies(
        self,
        t_years: float,
        mechanism: str,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """Single-mechanism counterfactual frequencies, merged from the
        shards; row-identical to :meth:`BatchStudy.mechanism_frequencies`
        (the kernel is chip-row independent)."""
        if mechanism not in ("bti", "hci"):
            raise ValueError(
                f"mechanism must be 'bti' or 'hci', got {mechanism!r}"
            )
        cond = conditions or OperatingConditions.nominal()
        key = (float(t_years), cond, mechanism)
        cached = self._freq_memo.get(key)
        if cached is not None:
            self._freq_memo.move_to_end(key)
            telemetry.count("parallel.corner_memo_hits")
            return cached
        telemetry.count("parallel.mechanism_passes")
        freqs = self._evaluate(
            [
                EvalRequest(
                    "mechanism_frequencies",
                    float(t_years),
                    cond,
                    mechanism=mechanism,
                )
            ]
        )[0]
        freqs.flags.writeable = False
        self._freq_memo[key] = freqs
        if len(self._freq_memo) > self.MEMO_SIZE:
            self._freq_memo.popitem(last=False)
        return freqs

    def margin_histogram(
        self,
        edges: np.ndarray,
        challenge: Optional[int] = None,
        t_years: float = 0.0,
        *,
        conditions: Optional[OperatingConditions] = None,
    ) -> np.ndarray:
        """Signed-margin histogram counts, reduced in the workers.

        Each shard bins its own chips over the shared ``edges`` and ships
        back one small ``int64`` count vector; the coordinator sums them.
        Binning is per-element, so the merged counts equal the serial
        engine's exactly for any worker count.
        """
        edges = np.asarray(edges, dtype=float)
        counts = self._evaluate(
            [
                EvalRequest(
                    "margin_hist",
                    float(t_years),
                    conditions or OperatingConditions.nominal(),
                    challenge,
                    hist_edges=tuple(float(e) for e in edges),
                )
            ]
        )[0]
        # _evaluate concatenates the per-shard replies; fold them back
        # into one (n_bins,) vector by summing over the shard axis
        return counts.reshape(self.jobs, -1).sum(axis=0)


def make_parallel_study(
    design: PufDesign,
    n_chips: int,
    *,
    mission: Optional[MissionProfile] = None,
    idle_policy: Optional[IdlePolicy] = None,
    rng: RngLike = None,
    jobs: int = 1,
    mp_context=None,
    store: str = "ram",
    block_size: Optional[int] = None,
    store_dir: Optional[str] = None,
    dtype: str = "float64",
) -> Union[BatchStudy, ParallelBatchStudy]:
    """Drop-in for :func:`make_batch_study` with ``--jobs``/``--store`` knobs.

    ``jobs <= 1`` returns a serial engine (no pool, no pickling): the
    dense in-RAM :class:`BatchStudy` for ``store="ram"``, the out-of-core
    :class:`~repro.store.study.StoreStudy` for ``store="mmap"``.
    ``jobs > 1`` returns a :class:`ParallelBatchStudy` sharded over
    ``min(jobs, n_chips)`` worker processes — with ``store="mmap"`` the
    workers share one mmap store instead of fabricating in-RAM shards.
    Every combination of the two knobs produces bit-identical responses,
    frequencies and deltas under the same seed.  ``dtype="float32"``
    selects the reduced-precision kernel tier (RAM engines only; see
    :mod:`repro.kernel.validate` for the identity contract).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if store not in ("ram", "mmap"):
        raise ValueError(f"store must be 'ram' or 'mmap', got {store!r}")
    if store == "mmap" and dtype != "float64":
        raise ValueError("store='mmap' supports dtype='float64' only")
    if jobs == 1:
        if store == "mmap":
            from ..store import make_store_study

            return make_store_study(
                design,
                n_chips,
                mission=mission,
                idle_policy=idle_policy,
                rng=rng,
                block_size=block_size,
                store_dir=store_dir,
            )
        return make_batch_study(
            design,
            n_chips,
            mission=mission,
            idle_policy=idle_policy,
            rng=rng,
            dtype=dtype,
            block_size=block_size,
        )
    return ParallelBatchStudy(
        design,
        n_chips,
        mission=mission,
        idle_policy=idle_policy,
        rng=rng,
        jobs=jobs,
        mp_context=mp_context,
        store=store,
        block_size=block_size,
        store_dir=store_dir,
        dtype=dtype,
    )
