"""Content-addressed on-disk cache for experiment result payloads.

Repeated runs of an identical configuration — CI's anchors job, a
``bench_compare`` baseline, a developer re-rendering tables — recompute
the same population Monte-Carlo from scratch every time.  The run ledger
already keys measurements by config digest (same git SHA, seed and
config = same measurement); this module turns that observation into a
cache: the result object of an experiment run is stored under a key
derived from *what was computed*, and any later run asking for the same
computation gets the stored payload back bit-for-bit.

Key discipline (what makes a hit safe):

* the key digests the experiment id, the full scalar configuration
  (chips, ROs, stages, seed, mission profile) **and the package
  version** — a new release changes every key, so stale physics can
  never satisfy a new binary's request;
* worker count, telemetry flags and other how-it-ran knobs are
  deliberately *excluded*: the parallel engine is bit-identical across
  ``--jobs``, so a result computed with 4 workers is the correct answer
  for a 1-worker request.

Entries are a pickle payload plus a JSON sidecar carrying the payload's
SHA-256; :meth:`ResultCache.get` re-hashes on read and treats any
mismatch, unreadable metadata or undecodable pickle as a miss — with a
``RuntimeWarning`` naming the reason — so a corrupted cache degrades to
recomputation, never to wrong numbers.  Writes go through a temp file
and ``os.replace`` so a killed run cannot leave a half-written entry
under a valid key.

Alongside the pickle payloads the cache holds **array entries**
(:meth:`create_array` / :meth:`open_array`): ``.npy`` files that the
out-of-core population store fills block-by-block through a writable
memmap and that readers reopen memory-mapped, so a population-sized
frequency tensor never has to exist in RAM on either side.  Array
entries keep the sidecar-last write discipline — the entry is invisible
until :meth:`commit_array` lands its JSON sidecar — but record shape and
dtype instead of a content hash (hashing gigabytes per corner would cost
more than recomputing them; the addressing key is already a digest of
everything that determines the bytes).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import pickle
import time
import warnings
from datetime import datetime, timezone
from typing import Any, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from .. import telemetry
from ..telemetry.manifest import package_version

PathLike = Union[str, pathlib.Path]

#: layout version of one cache entry, bumped on format changes (a bump
#: invalidates every existing entry by key, not by deletion)
CACHE_FORMAT = 1


def cache_key(
    experiment: str,
    config: Mapping[str, Any],
    *,
    version: Optional[str] = None,
) -> str:
    """The content address of one ``(experiment, config, version)`` run.

    ``config`` must be the complete result-determining configuration
    (anything that changes the numbers must be in it; anything that only
    changes how fast they were computed must not).  Keys are hex SHA-256
    of the canonical JSON form, so they are stable across processes,
    platforms and dict orderings.
    """
    if not experiment:
        raise ValueError("experiment id must be non-empty")
    blob = json.dumps(
        {
            "format": CACHE_FORMAT,
            "experiment": experiment,
            "config": config,
            "package_version": version or package_version(),
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """A directory of content-addressed experiment payloads.

    Tracks hit/miss/store statistics over its lifetime (the CLI folds
    them into the run manifest's ``cache`` field).
    """

    def __init__(self, root: PathLike):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ---- paths -------------------------------------------------------

    def _payload_path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.pkl"

    def _meta_path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self._payload_path(key).exists() and self._meta_path(key).exists()

    @staticmethod
    def _observe_since(t0: int, name: str) -> None:
        """Record one cache-op latency (``t0`` of 0 means tracing is off)."""
        if t0:
            telemetry.observe(name, (time.perf_counter_ns() - t0) / 1e9)

    # ---- read --------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """The stored payload for ``key``, or ``None`` on a miss.

        A present-but-unusable entry (corrupt pickle, digest mismatch,
        bad metadata, wrong format) is a miss accompanied by one
        ``RuntimeWarning``; the caller recomputes and may overwrite the
        bad entry via :meth:`put`.
        """
        t0 = time.perf_counter_ns() if telemetry.enabled() else 0
        payload_path = self._payload_path(key)
        meta_path = self._meta_path(key)
        if not payload_path.exists() or not meta_path.exists():
            self.misses += 1
            self._observe_since(t0, "cache.miss_s")
            return None
        try:
            meta = json.loads(meta_path.read_text())
            if meta.get("format") != CACHE_FORMAT:
                raise ValueError(
                    f"entry format {meta.get('format')!r} != {CACHE_FORMAT}"
                )
            raw = payload_path.read_bytes()
            digest = hashlib.sha256(raw).hexdigest()
            if digest != meta.get("payload_sha256"):
                raise ValueError("payload bytes do not match recorded SHA-256")
            payload = pickle.loads(raw)
        except Exception as exc:
            warnings.warn(
                f"cache entry {key[:12]}… in {self.root} is unusable "
                f"({exc}); recomputing",
                RuntimeWarning,
                stacklevel=2,
            )
            self.misses += 1
            self._observe_since(t0, "cache.miss_s")
            return None
        self.hits += 1
        self._observe_since(t0, "cache.hit_s")
        return payload

    # ---- write -------------------------------------------------------

    def put(
        self,
        key: str,
        payload: Any,
        *,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> pathlib.Path:
        """Store ``payload`` under ``key``; returns the payload path.

        ``meta`` (e.g. the experiment id and config the key was derived
        from) is recorded in the sidecar for human audit; it does not
        participate in addressing.
        """
        t0 = time.perf_counter_ns() if telemetry.enabled() else 0
        raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        sidecar = {
            "format": CACHE_FORMAT,
            "payload_sha256": hashlib.sha256(raw).hexdigest(),
            "payload_bytes": len(raw),
            "package_version": package_version(),
            "created_utc": datetime.now(timezone.utc).isoformat(),
        }
        if meta:
            sidecar["meta"] = dict(meta)
        payload_path = self._payload_path(key)
        self._atomic_write(payload_path, raw)
        self._atomic_write(
            self._meta_path(key),
            (json.dumps(sidecar, indent=2, sort_keys=True, default=str) + "\n").encode(),
        )
        self.stores += 1
        self._observe_since(t0, "cache.put_s")
        return payload_path

    @staticmethod
    def _atomic_write(path: pathlib.Path, data: bytes) -> None:
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    # ---- array entries (out-of-core spill) ---------------------------

    def _array_path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.npy"

    def has_array(self, key: str) -> bool:
        """Whether a *committed* array entry exists for ``key``."""
        if not self._array_path(key).exists():
            return False
        meta_path = self._meta_path(key)
        if not meta_path.exists():
            return False
        try:
            return json.loads(meta_path.read_text()).get("kind") == "array"
        except Exception:
            return False

    def create_array(
        self, key: str, shape: Tuple[int, ...], dtype: Any = np.float64
    ) -> np.memmap:
        """A writable memmap destined to become the array entry for ``key``.

        The ``.npy`` file is created sparse at its final size and filled
        in place by the caller; until :meth:`commit_array` writes the
        sidecar the entry does not exist (:meth:`open_array` misses), so
        a killed run leaves no half-written entry under a valid key.
        """
        return np.lib.format.open_memmap(
            self._array_path(key), mode="w+", dtype=np.dtype(dtype), shape=shape
        )

    def commit_array(
        self, key: str, *, meta: Optional[Mapping[str, Any]] = None
    ) -> pathlib.Path:
        """Publish the array written via :meth:`create_array`.

        The caller must have flushed (or dropped) its writable memmap
        first; shape and dtype are read back from the ``.npy`` header so
        the sidecar always describes the bytes actually on disk.
        """
        path = self._array_path(key)
        header = np.load(path, mmap_mode="r")
        shape, dtype = header.shape, header.dtype
        del header
        sidecar = {
            "format": CACHE_FORMAT,
            "kind": "array",
            "shape": list(shape),
            "dtype": np.dtype(dtype).str,
            "payload_bytes": path.stat().st_size,
            "package_version": package_version(),
            "created_utc": datetime.now(timezone.utc).isoformat(),
        }
        if meta:
            sidecar["meta"] = dict(meta)
        self._atomic_write(
            self._meta_path(key),
            (json.dumps(sidecar, indent=2, sort_keys=True, default=str) + "\n").encode(),
        )
        self.stores += 1
        return path

    def open_array(self, key: str) -> Optional[np.ndarray]:
        """The committed array for ``key``, memory-mapped read-only.

        Returns ``None`` on a miss; a present-but-inconsistent entry
        (sidecar/header disagreement, unreadable file) is a miss with a
        ``RuntimeWarning``, mirroring :meth:`get`.
        """
        path = self._array_path(key)
        meta_path = self._meta_path(key)
        if not path.exists() or not meta_path.exists():
            self.misses += 1
            return None
        try:
            meta = json.loads(meta_path.read_text())
            if meta.get("format") != CACHE_FORMAT or meta.get("kind") != "array":
                raise ValueError("sidecar does not describe an array entry")
            arr = np.load(path, mmap_mode="r")
            if list(arr.shape) != list(meta.get("shape", [])):
                raise ValueError("stored shape does not match sidecar")
            if arr.dtype != np.dtype(meta.get("dtype")):
                raise ValueError("stored dtype does not match sidecar")
        except Exception as exc:
            warnings.warn(
                f"array cache entry {key[:12]}… in {self.root} is unusable "
                f"({exc}); recomputing",
                RuntimeWarning,
                stacklevel=2,
            )
            self.misses += 1
            return None
        self.hits += 1
        return arr

    def discard_array(self, key: str) -> None:
        """Delete the array entry for ``key`` (eviction; missing is fine).

        The sidecar goes first so a crash mid-discard leaves a headerless
        orphan (invisible to :meth:`open_array`), never a dangling
        sidecar pointing at absent bytes.
        """
        for path in (self._meta_path(key), self._array_path(key)):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    # ---- reporting ---------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResultCache {str(self.root)!r} hits={self.hits} "
            f"misses={self.misses} stores={self.stores}>"
        )
