"""Gate-level netlist container with structural validation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from .gates import Gate


class NetlistError(ValueError):
    """Raised for structurally invalid netlists (multiple drivers, ...)."""


@dataclass
class Netlist:
    """A flat gate-level netlist.

    Nodes are referenced by name; every node has at most one driver (a gate
    output or a primary input).  The netlist may contain combinational
    loops — ring oscillators are nothing but such loops — so no acyclicity
    is enforced.
    """

    name: str = "netlist"
    gates: List[Gate] = field(default_factory=list)
    primary_inputs: List[str] = field(default_factory=list)
    _drivers: Dict[str, Gate] = field(default_factory=dict, repr=False)

    def add_input(self, node: str) -> str:
        """Declare ``node`` as a primary input and return its name."""
        if node in self._drivers:
            raise NetlistError(f"node {node!r} already driven by a gate")
        if node in self.primary_inputs:
            raise NetlistError(f"primary input {node!r} declared twice")
        self.primary_inputs.append(node)
        return node

    def add_gate(self, gate: Gate) -> Gate:
        """Add a gate, enforcing single-driver and unique-name rules."""
        if any(g.name == gate.name for g in self.gates):
            raise NetlistError(f"duplicate gate name {gate.name!r}")
        if gate.output in self._drivers:
            raise NetlistError(f"node {gate.output!r} already has a driver")
        if gate.output in self.primary_inputs:
            raise NetlistError(f"node {gate.output!r} is a primary input")
        self.gates.append(gate)
        self._drivers[gate.output] = gate
        return gate

    def gate(
        self,
        gate_type: str,
        inputs: Sequence[str],
        output: str,
        *,
        name: Optional[str] = None,
        delay: float = 1.0e-11,
        **tags,
    ) -> Gate:
        """Convenience constructor-and-add for a gate."""
        gate = Gate(
            name=name or f"{gate_type.lower()}_{len(self.gates)}",
            gate_type=gate_type,
            inputs=tuple(inputs),
            output=output,
            delay=delay,
            tags=dict(tags),
        )
        return self.add_gate(gate)

    @property
    def nodes(self) -> Set[str]:
        """All node names referenced anywhere in the netlist."""
        names: Set[str] = set(self.primary_inputs)
        for g in self.gates:
            names.add(g.output)
            names.update(g.inputs)
        return names

    def driver_of(self, node: str) -> Optional[Gate]:
        """The gate driving ``node``, or ``None`` for primary inputs."""
        return self._drivers.get(node)

    def fanout_of(self, node: str) -> List[Gate]:
        """Gates with ``node`` among their inputs."""
        return [g for g in self.gates if node in g.inputs]

    def gates_tagged(self, **query) -> List[Gate]:
        """Gates whose tags contain every ``key=value`` pair in ``query``."""
        out = []
        for g in self.gates:
            if all(g.tags.get(k) == v for k, v in query.items()):
                out.append(g)
        return out

    def validate(self) -> None:
        """Check that every gate input is driven by something.

        Raises :class:`NetlistError` on floating inputs.
        """
        driven = set(self.primary_inputs) | set(self._drivers)
        for g in self.gates:
            for node in g.inputs:
                if node not in driven:
                    raise NetlistError(
                        f"gate {g.name!r} input node {node!r} is floating"
                    )
