"""Circuit layer: analytic RO timing plus a structural logic simulator."""

from .cells import (
    CellDescriptor,
    CellKind,
    aro_cell,
    cell_for,
    conventional_cell,
    measured_period,
)
from .delay import chip_frequencies, ring_frequency, ring_period
from .eventsim import EventSimulator, SimulationError, SimulationResult, Waveform
from .gates import GATE_LIBRARY, Gate
from .netlist import Netlist, NetlistError
from .vcd import dump_vcd
from .ring import (
    ENABLE,
    OSC_OUT,
    RECOVERY,
    build_aro_cell,
    build_conventional_ro,
    stage_input_nodes,
)

__all__ = [
    "CellDescriptor",
    "CellKind",
    "ENABLE",
    "EventSimulator",
    "GATE_LIBRARY",
    "Gate",
    "Netlist",
    "NetlistError",
    "OSC_OUT",
    "RECOVERY",
    "SimulationError",
    "SimulationResult",
    "Waveform",
    "aro_cell",
    "build_aro_cell",
    "build_conventional_ro",
    "cell_for",
    "measured_period",
    "chip_frequencies",
    "conventional_cell",
    "ring_frequency",
    "ring_period",
    "dump_vcd",
    "stage_input_nodes",
]
