"""Netlist builders for the two oscillator cells under study.

``build_conventional_ro``
    The textbook RO-PUF oscillator: a NAND enable gate closing a ring of
    inverters.  When parked (``en = 0``) the NAND output is forced high and
    the chain latches a static alternating pattern — every other inverter
    then holds its PMOS under DC NBTI stress for the lifetime of the part.

``build_aro_cell``
    The aging-resistant cell.  Each inverter input goes through a 2:1 mux:
    in active mode (``en = 1``) the muxes close the ring and the cell
    oscillates like a plain inverter ring; in idle mode every inverter
    input is steered to the recovery level (logic high), turning every
    PMOS off so no device accumulates DC NBTI stress while the PUF is not
    being interrogated.

Both builders tag each oscillation-path inverting gate with its ``stage``
index so the stress analyser and the device model can map netlist nodes
onto the chip's ``(stage, polarity)`` threshold arrays.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .netlist import Netlist

#: name of the enable primary input in both cells
ENABLE = "en"
#: name of the ARO launch input (stage-0 mux select, sequenced after ENABLE)
LAUNCH = "en0"
#: name of the recovery-level primary input of the ARO cell (tie high)
RECOVERY = "vrec"
#: name of the oscillation output node (the feedback node)
OSC_OUT = "osc"


def _stage_delays(
    n_stages: int, delays: Optional[Sequence[float]], default: float
) -> list:
    if delays is None:
        return [default] * n_stages
    if len(delays) != n_stages:
        raise ValueError(
            f"need {n_stages} stage delays, got {len(delays)}"
        )
    if any(d <= 0 for d in delays):
        raise ValueError("stage delays must be positive")
    return list(delays)


def build_conventional_ro(
    n_stages: int = 5,
    *,
    stage_delays: Optional[Sequence[float]] = None,
    nand_penalty: float = 1.3,
    default_delay: float = 2.0e-11,
) -> Netlist:
    """Conventional enable-gated ring oscillator.

    Stage 0 is the NAND enable gate (its delay is ``nand_penalty`` times
    its nominal stage delay, reflecting the stacked-device structure);
    stages ``1 .. n_stages-1`` are inverters.  The feedback node is exposed
    as :data:`OSC_OUT`.
    """
    if n_stages < 3 or n_stages % 2 == 0:
        raise ValueError("n_stages must be an odd integer >= 3")
    delays = _stage_delays(n_stages, stage_delays, default_delay)

    net = Netlist(name=f"ro{n_stages}")
    net.add_input(ENABLE)
    nodes = [f"n{i}" for i in range(n_stages - 1)] + [OSC_OUT]
    net.gate(
        "NAND2",
        [ENABLE, OSC_OUT],
        nodes[0],
        name="stage0",
        delay=delays[0] * nand_penalty,
        stage=0,
        role="stage",
    )
    for i in range(1, n_stages):
        net.gate(
            "INV",
            [nodes[i - 1]],
            nodes[i],
            name=f"stage{i}",
            delay=delays[i],
            stage=i,
            role="stage",
        )
    net.validate()
    return net


def build_aro_cell(
    n_stages: int = 5,
    *,
    stage_delays: Optional[Sequence[float]] = None,
    mux_delay_fraction: float = 0.35,
    default_delay: float = 2.0e-11,
) -> Netlist:
    """Aging-resistant oscillator cell (per-stage recovery muxes).

    Every stage is ``MUX2 -> INV``; the mux selects are the enables.  With
    the enables low each mux steers the recovery level (:data:`RECOVERY`,
    tie high) onto the inverter input.  The mux adds
    ``mux_delay_fraction`` of a stage delay to every stage, which is the
    cell's (small) speed cost.

    Stage 0's mux has its own select (:data:`LAUNCH`), sequenced *after*
    :data:`ENABLE` by the evaluation controller.  Raising every mux select
    in the same instant would start the ring in the degenerate
    all-stages-in-phase mode (every inverter input flips simultaneously);
    closing the loop last through one dedicated mux launches a single clean
    wavefront, exactly as a careful enable sequencer does in silicon.
    """
    if n_stages < 3 or n_stages % 2 == 0:
        raise ValueError("n_stages must be an odd integer >= 3")
    if not 0 < mux_delay_fraction < 1:
        raise ValueError("mux_delay_fraction must be in (0, 1)")
    delays = _stage_delays(n_stages, stage_delays, default_delay)

    net = Netlist(name=f"aro{n_stages}")
    net.add_input(ENABLE)
    net.add_input(LAUNCH)
    net.add_input(RECOVERY)
    inv_out = [f"n{i}" for i in range(n_stages - 1)] + [OSC_OUT]
    for i in range(n_stages):
        prev = inv_out[i - 1] if i > 0 else OSC_OUT
        mux_out = f"m{i}"
        net.gate(
            "MUX2",
            [RECOVERY, prev, LAUNCH if i == 0 else ENABLE],
            mux_out,
            name=f"mux{i}",
            delay=delays[i] * mux_delay_fraction,
            stage=i,
            role="mux",
        )
        net.gate(
            "INV",
            [mux_out],
            inv_out[i],
            name=f"stage{i}",
            delay=delays[i],
            stage=i,
            role="stage",
        )
    net.validate()
    return net


def stage_input_nodes(net: Netlist) -> list:
    """Input node of each stage's inverting gate, ordered by stage index.

    For the conventional cell stage 0 (the NAND) this is the feedback
    input — the device in the oscillation path; the enable input's devices
    are off the oscillation path and excluded from the timing/stress model.
    """
    stages = sorted(net.gates_tagged(role="stage"), key=lambda g: g.tags["stage"])
    if not stages:
        raise ValueError(f"netlist {net.name!r} has no gates tagged role='stage'")
    nodes = []
    for g in stages:
        if g.gate_type == "NAND2":
            # inputs are (enable, feedback): the feedback device matters
            nodes.append(g.inputs[1])
        else:
            nodes.append(g.inputs[0])
    return nodes
