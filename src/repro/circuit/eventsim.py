"""Event-driven gate-level logic simulator.

A deliberately small discrete-event simulator sufficient for the two
structural jobs of this project:

* drive an RO netlist with its enable waveform and *measure the oscillation
  period* from the recorded waveform of the feedback node (used to
  cross-validate the analytic period model), and
* *settle* a disabled netlist to its parked static state, from which the
  NBTI stress analysis reads which PMOS gates sit at logic low.

Semantics: two-valued logic with *inertial* gate delays — when a gate
re-evaluates while an output change is still in flight, the in-flight event
is superseded, so pulses narrower than a gate's propagation delay are
swallowed exactly as a real CMOS stage filters them.  Primary-input events
are transport-scheduled (a stimulus is never cancelled by a later one).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from .netlist import Netlist


class SimulationError(RuntimeError):
    """Raised when a simulation cannot produce the requested answer."""


@dataclass
class Waveform:
    """The recorded history of one node: change times and new values."""

    times: List[float] = field(default_factory=list)
    values: List[bool] = field(default_factory=list)

    def record(self, time: float, value: bool) -> None:
        if self.values and self.values[-1] == value:
            return  # not a change
        self.times.append(time)
        self.values.append(value)

    def _arrays(self):
        """Cached numpy views of the history, rebuilt only when it grew.

        Queries (``value_at``/``edges``) are hot after long oscillator
        runs; converting the Python lists on every call dominates them.
        The cache key is the history length, which only ever grows.
        """
        cache = getattr(self, "_array_cache", None)
        if cache is None or cache[0] != len(self.times):
            cache = (
                len(self.times),
                np.asarray(self.times, dtype=float),
                np.asarray(self.values, dtype=bool),
            )
            self._array_cache = cache
        return cache[1], cache[2]

    def value_at(self, time: float) -> bool:
        """Node value at ``time`` (initial transition applies at its time)."""
        if not self.times:
            raise SimulationError("node never took a value")
        times, values = self._arrays()
        idx = int(np.searchsorted(times, time, side="right")) - 1
        if idx < 0:
            raise SimulationError(f"no value recorded at or before t={time}")
        return bool(values[idx])

    def edges(self, rising: bool = True, after: float = 0.0) -> List[float]:
        """Times of rising (or falling) edges strictly after ``after``."""
        times, values = self._arrays()
        if len(times) < 2:
            return []
        prev, cur = values[:-1], values[1:]
        mask = (~prev & cur) if rising else (prev & ~cur)
        mask &= times[1:] > after
        return times[1:][mask].tolist()

    @property
    def n_toggles(self) -> int:
        """Number of value changes after the initial assignment."""
        return max(0, len(self.times) - 1)


@dataclass
class SimulationResult:
    """Waveforms of every node plus bookkeeping from one simulation run."""

    waveforms: Dict[str, Waveform]
    end_time: float
    settled: bool
    events_processed: int

    def final_values(self) -> Dict[str, bool]:
        """Value of every node at the end of the run."""
        return {n: w.values[-1] for n, w in self.waveforms.items() if w.values}

    def period(self, node: str, n_cycles: int = 4) -> float:
        """Oscillation period measured from the last ``n_cycles`` rising edges.

        Discards the first half of the run as start-up transient.
        """
        wave = self.waveforms[node]
        edges = wave.edges(rising=True, after=self.end_time * 0.25)
        if len(edges) < n_cycles + 1:
            raise SimulationError(
                f"node {node!r} shows {len(edges)} rising edges after warm-up; "
                f"need {n_cycles + 1} to measure a period"
            )
        window = edges[-(n_cycles + 1):]
        return (window[-1] - window[0]) / n_cycles


class EventSimulator:
    """Discrete-event simulator bound to one netlist."""

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        self._fanout: Dict[str, list] = {}
        for g in netlist.gates:
            for node in g.inputs:
                self._fanout.setdefault(node, []).append(g)
        self._drivers_outputs = [g.output for g in netlist.gates]

    def run(
        self,
        inputs: Mapping[str, bool],
        t_end: float,
        *,
        initial: Optional[Mapping[str, bool]] = None,
        input_events: Iterable[Tuple[float, str, bool]] = (),
        max_events: int = 2_000_000,
    ) -> SimulationResult:
        """Simulate until ``t_end`` (or quiescence, whichever comes first).

        Parameters
        ----------
        inputs:
            Values applied to the primary inputs at t=0.  Every primary
            input must be covered.
        initial:
            Optional initial values for internal nodes (default: all low).
        input_events:
            Additional scheduled input changes ``(time, node, value)``.
        max_events:
            Safety valve: a run that exceeds this count raises, which
            catches accidentally unstable settle() calls.
        """
        missing = [n for n in self.netlist.primary_inputs if n not in inputs]
        if missing:
            raise SimulationError(f"unbound primary inputs: {missing}")

        values: Dict[str, bool] = {n: False for n in self.netlist.nodes}
        if initial:
            for node, val in initial.items():
                if node not in values:
                    raise SimulationError(f"unknown initial node {node!r}")
                values[node] = bool(val)
        waveforms = {n: Waveform() for n in self.netlist.nodes}
        for node, val in values.items():
            waveforms[node].times.append(0.0)
            waveforms[node].values.append(val)

        counter = itertools.count()
        queue: List[Tuple[float, int, str, bool]] = []
        # last value scheduled (or committed) per gate output; a gate whose
        # evaluation matches its projection schedules nothing
        projected: Dict[str, bool] = dict(values)
        # sequence number of the live (non-superseded) event per gate
        # output — inertial delay: rescheduling invalidates the old event
        live_seq: Dict[str, int] = {}
        gate_outputs = set(self._drivers_outputs)

        def schedule(time: float, node: str, value: bool) -> None:
            if projected[node] == value:
                return
            projected[node] = value
            seq = next(counter)
            live_seq[node] = seq
            heapq.heappush(queue, (time, seq, node, bool(value)))

        def push_input(time: float, node: str, value: bool) -> None:
            # transport semantics: stimuli are never superseded
            heapq.heappush(queue, (time, next(counter), node, bool(value)))

        for node in self.netlist.primary_inputs:
            push_input(0.0, node, bool(inputs[node]))
        # evaluate every gate once against the initial state so that
        # inconsistent initial assignments resolve themselves
        for g in self.netlist.gates:
            out = g.evaluate([values[n] for n in g.inputs])
            schedule(g.delay, g.output, out)
        for time, node, val in sorted(input_events):
            if node not in self.netlist.primary_inputs:
                raise SimulationError(f"{node!r} is not a primary input")
            push_input(time, node, val)

        processed = 0
        now = 0.0
        while queue:
            time, seq, node, value = heapq.heappop(queue)
            if time > t_end:
                # leave the event unconsumed conceptually; simulation ends
                now = t_end
                break
            processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events before t_end; "
                    "circuit appears unstable"
                )
            now = time
            if node in gate_outputs and live_seq.get(node) != seq:
                continue  # superseded in flight (inertial filtering)
            if values[node] == value:
                continue
            values[node] = value
            waveforms[node].record(time, value)
            for g in self._fanout.get(node, ()):
                out = g.evaluate([values[n] for n in g.inputs])
                schedule(time + g.delay, g.output, out)
        else:
            # queue drained: circuit is quiescent
            return SimulationResult(
                waveforms=waveforms,
                end_time=now,
                settled=True,
                events_processed=processed,
            )
        return SimulationResult(
            waveforms=waveforms,
            end_time=t_end,
            settled=False,
            events_processed=processed,
        )

    def settle(
        self,
        inputs: Mapping[str, bool],
        *,
        initial: Optional[Mapping[str, bool]] = None,
        max_events: int = 100_000,
    ) -> Dict[str, bool]:
        """Run until quiescence and return the final node values.

        Raises :class:`SimulationError` if the circuit keeps toggling (an
        enabled oscillator, for example, never settles).
        """
        result = self.run(
            inputs,
            t_end=float("inf"),
            initial=initial,
            max_events=max_events,
        )
        if not result.settled:
            raise SimulationError("circuit did not settle")
        return result.final_values()
