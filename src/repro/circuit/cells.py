"""Oscillator cell descriptors and structural stress analysis.

A :class:`CellDescriptor` bundles everything the rest of the framework
needs to know about one oscillator cell design: how to build its netlist,
how to park it, its analytic timing fudge factors, its standard-cell area,
and — crucially — which devices sit under DC BTI stress while parked.

The parked stress pattern is not hard-coded: it is *derived* by settling
the actual netlist with the event simulator and reading the logic level at
every stage's inverting-gate input.  A PMOS whose gate input parks at logic
low conducts for the whole idle life of the part and accumulates NBTI
stress at ~100 % duty; an input parked high stresses the NMOS instead
(PBTI, far weaker in the technologies the paper targets, tracked anyway).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..transistor.technology import TechnologyCard
from ..variation.chip import NMOS, PMOS
from .eventsim import EventSimulator
from .netlist import Netlist
from .ring import (
    ENABLE,
    LAUNCH,
    RECOVERY,
    build_aro_cell,
    build_conventional_ro,
    stage_input_nodes,
)


class CellKind(enum.Enum):
    """The two oscillator cell designs compared by the paper."""

    CONVENTIONAL = "conventional"
    ARO = "aro"


@dataclass(frozen=True)
class CellDescriptor:
    """Static description of one oscillator cell design."""

    kind: CellKind
    n_stages: int
    #: analytic delay penalty of the enable stage (NAND vs plain inverter)
    stage0_penalty: float
    #: uniform per-stage load factor (the ARO recovery mux loads each stage)
    c_load_factor: float
    #: inputs that park the cell
    idle_inputs: Dict[str, bool]
    #: inputs that let the cell oscillate
    active_inputs: Dict[str, bool]
    _builder: Callable[..., Netlist]
    #: intermediate input phase applied between idle and active (the ARO
    #: raises the stage muxes first and the launch mux last); ``None``
    #: means the cell starts in one step
    prelaunch_inputs: Optional[Dict[str, bool]] = None

    def build(self, stage_delays: Optional[Sequence[float]] = None) -> Netlist:
        """Instantiate the cell netlist (optionally with per-stage delays)."""
        return self._builder(self.n_stages, stage_delays=stage_delays)

    def idle_stress_pattern(self) -> np.ndarray:
        """Per-device DC stress indicator while parked.

        Returns an array of shape ``(n_stages, 2)``: entry ``[i, PMOS]`` is
        1.0 when stage ``i``'s PMOS gate parks at logic low (NBTI stress)
        and ``[i, NMOS]`` is 1.0 when it parks high (PBTI stress).
        """
        net = self.build()
        sim = EventSimulator(net)
        state = sim.settle(self.idle_inputs)
        pattern = np.zeros((self.n_stages, 2))
        for stage, node in enumerate(stage_input_nodes(net)):
            if state[node]:
                pattern[stage, NMOS] = 1.0
            else:
                pattern[stage, PMOS] = 1.0
        return pattern

    def cell_area(self, tech: TechnologyCard) -> float:
        """Standard-cell area of one oscillator cell, square micrometres."""
        area = tech.area
        if self.kind is CellKind.CONVENTIONAL:
            return area.nand2 + (self.n_stages - 1) * area.inverter
        # ARO: an inverter plus a transmission-gate recovery steer per
        # stage (a t-gate into the ring and a half-sized pull-up to the
        # recovery level — 1.5 t-gate equivalents, not a full static mux)
        return self.n_stages * (area.inverter + 1.5 * area.tgate)


def measured_period(
    cell: "CellDescriptor",
    stage_delays: Optional[Sequence[float]] = None,
    *,
    n_cycles: int = 8,
) -> float:
    """Oscillation period of the cell measured with the event simulator.

    Mirrors the hardware bring-up protocol: park the cell (settle with the
    idle inputs), step through the cell's pre-launch phase if it has one
    (the ARO raises the ring muxes before the launch mux), then complete
    the enable sequence and let a *single* wavefront circulate.  Starting
    from an arbitrary (all-low) state instead would inject one wavefront
    per inconsistent stage and report a fraction of the physical period.
    """
    from .ring import OSC_OUT

    net = cell.build(stage_delays)
    sim = EventSimulator(net)
    state = sim.settle(cell.idle_inputs)
    if cell.prelaunch_inputs is not None:
        state = sim.settle(cell.prelaunch_inputs, initial=state)
    total_delay = sum(g.delay for g in net.gates)
    t_end = 2.0 * total_delay * (n_cycles + 8)
    result = sim.run(cell.active_inputs, t_end=t_end, initial=state)
    return result.period(OSC_OUT, n_cycles=n_cycles)


def conventional_cell(n_stages: int = 5) -> CellDescriptor:
    """Descriptor for the conventional NAND-gated RO cell."""
    return CellDescriptor(
        kind=CellKind.CONVENTIONAL,
        n_stages=n_stages,
        stage0_penalty=1.3,
        c_load_factor=1.0,
        idle_inputs={ENABLE: False},
        active_inputs={ENABLE: True},
        _builder=build_conventional_ro,
    )


def aro_cell(n_stages: int = 5) -> CellDescriptor:
    """Descriptor for the aging-resistant (recovery-gated) ARO cell."""
    return CellDescriptor(
        kind=CellKind.ARO,
        n_stages=n_stages,
        stage0_penalty=1.0,
        c_load_factor=1.15,
        idle_inputs={ENABLE: False, LAUNCH: False, RECOVERY: True},
        active_inputs={ENABLE: True, LAUNCH: True, RECOVERY: True},
        _builder=build_aro_cell,
        prelaunch_inputs={ENABLE: True, LAUNCH: False, RECOVERY: True},
    )


def cell_for(kind: CellKind, n_stages: int = 5) -> CellDescriptor:
    """Descriptor factory keyed by :class:`CellKind`."""
    if kind is CellKind.CONVENTIONAL:
        return conventional_cell(n_stages)
    if kind is CellKind.ARO:
        return aro_cell(n_stages)
    raise ValueError(f"unknown cell kind {kind!r}")
