"""Logic-gate primitives for the structural (event-driven) simulator.

The event simulator exists for two jobs the vectorised analytic path cannot
do: (1) verify that the RO netlists actually oscillate with the expected
period, and (2) find the *static parked state* of a disabled oscillator,
which determines which PMOS devices sit under DC NBTI stress for the
product's lifetime (the crux of the conventional-vs-ARO comparison).

Gates evaluate plain boolean logic; each instance carries a propagation
delay assigned by the caller (typically from the device model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence, Tuple

GateFn = Callable[[Tuple[bool, ...]], bool]


def _inv(inputs: Tuple[bool, ...]) -> bool:
    return not inputs[0]


def _buf(inputs: Tuple[bool, ...]) -> bool:
    return inputs[0]


def _nand2(inputs: Tuple[bool, ...]) -> bool:
    return not (inputs[0] and inputs[1])


def _nor2(inputs: Tuple[bool, ...]) -> bool:
    return not (inputs[0] or inputs[1])


def _and2(inputs: Tuple[bool, ...]) -> bool:
    return inputs[0] and inputs[1]


def _or2(inputs: Tuple[bool, ...]) -> bool:
    return inputs[0] or inputs[1]


def _xor2(inputs: Tuple[bool, ...]) -> bool:
    return inputs[0] != inputs[1]


def _mux2(inputs: Tuple[bool, ...]) -> bool:
    """2:1 multiplexer: inputs are ``(d0, d1, sel)``; ``sel`` picks d1."""
    d0, d1, sel = inputs
    return d1 if sel else d0


#: gate type name -> (function, arity)
GATE_LIBRARY: Dict[str, Tuple[GateFn, int]] = {
    "INV": (_inv, 1),
    "BUF": (_buf, 1),
    "NAND2": (_nand2, 2),
    "NOR2": (_nor2, 2),
    "AND2": (_and2, 2),
    "OR2": (_or2, 2),
    "XOR2": (_xor2, 2),
    "MUX2": (_mux2, 3),
}

#: gate types whose single data input drives a complementary CMOS pair
#: whose PMOS is NBTI-stressed whenever that input is low.
INVERTING_TYPES = frozenset({"INV", "NAND2", "NOR2"})


@dataclass(frozen=True)
class Gate:
    """One gate instance in a netlist.

    Attributes
    ----------
    name:
        Unique instance name within its netlist.
    gate_type:
        Key into :data:`GATE_LIBRARY`.
    inputs:
        Names of the driving nodes, in library order.
    output:
        Name of the driven node (exactly one driver per node).
    delay:
        Propagation delay in seconds.
    tags:
        Free-form metadata; the RO builders use it to link a gate back to
        its ``(stage, role)`` so stress analysis can map node states onto
        the chip's per-device threshold arrays.
    """

    name: str
    gate_type: str
    inputs: Tuple[str, ...]
    output: str
    delay: float = 1.0e-11
    tags: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.gate_type not in GATE_LIBRARY:
            known = ", ".join(sorted(GATE_LIBRARY))
            raise ValueError(
                f"unknown gate type {self.gate_type!r}; known: {known}"
            )
        fn, arity = GATE_LIBRARY[self.gate_type]
        if len(self.inputs) != arity:
            raise ValueError(
                f"{self.gate_type} takes {arity} inputs, got {len(self.inputs)}"
            )
        if self.delay <= 0:
            raise ValueError("gate delay must be positive")

    def evaluate(self, values: Sequence[bool]) -> bool:
        """Evaluate the gate function on the given input values."""
        fn, _ = GATE_LIBRARY[self.gate_type]
        return fn(tuple(bool(v) for v in values))
