"""Vectorised ring-oscillator timing from per-device thresholds.

This is the hot path of every Monte-Carlo experiment: given a chip's
threshold arrays it returns the oscillation period/frequency of every RO on
the die under given supply/temperature conditions.

Model
-----
A ring of ``N`` (odd) inverting stages completes one oscillation period
after every stage has made one rising and one falling output transition:

    period = sum_i t_rise(i) + t_fall(i)

where the rising transition of stage ``i`` is driven by its PMOS (threshold
``vth_p[i]``) and the falling one by its NMOS (``vth_n[i]``), each with the
alpha-power-law transition delay from :mod:`repro.transistor.mosfet`.

The first stage of every ring is the enable gate (a NAND for the
conventional RO, the mux-gated inverter for the ARO); its oscillation-path
devices are modelled like any inverter stage with its own thresholds, with
a structural delay penalty (stacked devices / extra mux load) captured by a
per-design ``stage0_penalty`` factor.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..transistor.mosfet import transition_delay
from ..transistor.technology import T_REF_K, TechnologyCard
from ..variation.chip import NMOS, PMOS, Chip


def ring_period(
    vth: np.ndarray,
    tech: TechnologyCard,
    *,
    vdd: Optional[float] = None,
    temperature_k: float = T_REF_K,
    tc_scale: Optional[np.ndarray] = None,
    stage0_penalty: float = 1.0,
) -> np.ndarray:
    """Oscillation period of each ring (seconds).

    Parameters
    ----------
    vth:
        Threshold array of shape ``(..., n_stages, 2)``; the leading axes
        are arbitrary batch axes (typically ``n_ros`` or
        ``(n_chips, n_ros)``).
    stage0_penalty:
        Multiplicative delay factor applied to stage 0 (the enable gate).

    Returns
    -------
    numpy.ndarray with the batch shape of ``vth`` (stage/polarity axes
    reduced away).
    """
    vth = np.asarray(vth, dtype=float)
    if vth.ndim < 2 or vth.shape[-1] != 2:
        raise ValueError(f"vth must have shape (..., n_stages, 2), got {vth.shape}")
    if vth.shape[-2] % 2 == 0:
        raise ValueError("a ring needs an odd number of inverting stages")
    if stage0_penalty <= 0:
        raise ValueError("stage0_penalty must be positive")

    t_fall = transition_delay(
        vth[..., NMOS],
        tech,
        vdd=vdd,
        temperature_k=temperature_k,
        tc_scale=None if tc_scale is None else np.asarray(tc_scale)[..., NMOS],
    )
    t_rise = transition_delay(
        vth[..., PMOS],
        tech,
        vdd=vdd,
        temperature_k=temperature_k,
        tc_scale=None if tc_scale is None else np.asarray(tc_scale)[..., PMOS],
    )
    stage = t_rise + t_fall
    # weight the enable stage by its structural penalty
    weights = np.ones(vth.shape[-2])
    weights[0] = stage0_penalty
    return np.tensordot(stage, weights, axes=([-1], [0]))


def ring_frequency(
    vth: np.ndarray,
    tech: TechnologyCard,
    *,
    vdd: Optional[float] = None,
    temperature_k: float = T_REF_K,
    tc_scale: Optional[np.ndarray] = None,
    stage0_penalty: float = 1.0,
) -> np.ndarray:
    """Oscillation frequency of each ring (hertz); see :func:`ring_period`."""
    period = ring_period(
        vth,
        tech,
        vdd=vdd,
        temperature_k=temperature_k,
        tc_scale=tc_scale,
        stage0_penalty=stage0_penalty,
    )
    return 1.0 / period


def chip_frequencies(
    chip: Chip,
    tech: TechnologyCard,
    *,
    vdd: Optional[float] = None,
    temperature_k: float = T_REF_K,
    stage0_penalty: float = 1.0,
    use_tc_mismatch: bool = True,
) -> np.ndarray:
    """Frequencies of every RO on ``chip`` (hertz), shape ``(n_ros,)``."""
    return ring_frequency(
        chip.vth,
        tech,
        vdd=vdd,
        temperature_k=temperature_k,
        tc_scale=chip.tc_scale if use_tc_mismatch else None,
        stage0_penalty=stage0_penalty,
    )
