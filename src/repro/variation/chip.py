"""Chip data model: per-transistor threshold voltages for an RO array.

A :class:`Chip` is the Monte-Carlo unit of the whole framework: it carries
one threshold-voltage sample per transistor of every ring-oscillator stage
on the die, plus the grid position of each RO.  Aging produces *new* chips
via :meth:`Chip.with_delta` — chips are treated as immutable so an
experiment can hold the fresh and the aged view of the same die
side by side.

Array layout
------------
``vth`` has shape ``(n_ros, n_stages, 2)`` where the last axis indexes the
device polarity: ``NMOS = 0`` (drives falling output transitions) and
``PMOS = 1`` (drives rising output transitions, and is the NBTI victim).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

import numpy as np

#: polarity index of the NMOS device in the last axis of ``Chip.vth``
NMOS = 0
#: polarity index of the PMOS device in the last axis of ``Chip.vth``
PMOS = 1


@dataclass(frozen=True)
class Chip:
    """One manufactured die: an array of ring-oscillator stages.

    Parameters
    ----------
    vth:
        Threshold-voltage magnitudes, shape ``(n_ros, n_stages, 2)``, volts.
    positions:
        RO grid coordinates, shape ``(n_ros, 2)``, in pitch units.
    tc_scale:
        Per-device multiplicative mismatch of the threshold temperature
        coefficient, same shape as ``vth`` (1.0 = nominal device).
    chip_id:
        Monte-Carlo index within its population (for reporting).
    """

    vth: np.ndarray
    positions: np.ndarray
    tc_scale: np.ndarray
    chip_id: int = 0

    def __post_init__(self) -> None:
        vth = np.asarray(self.vth, dtype=float)
        if vth.ndim != 3 or vth.shape[2] != 2:
            raise ValueError(
                f"vth must have shape (n_ros, n_stages, 2), got {vth.shape}"
            )
        if np.any(vth <= 0):
            raise ValueError("threshold magnitudes must be positive")
        positions = np.asarray(self.positions, dtype=float)
        if positions.shape != (vth.shape[0], 2):
            raise ValueError(
                f"positions must have shape ({vth.shape[0]}, 2), got {positions.shape}"
            )
        if np.asarray(self.tc_scale).shape != vth.shape:
            raise ValueError("tc_scale must have the same shape as vth")
        object.__setattr__(self, "vth", vth)
        object.__setattr__(self, "positions", positions)
        object.__setattr__(self, "tc_scale", np.asarray(self.tc_scale, dtype=float))

    @property
    def n_ros(self) -> int:
        """Number of ring oscillators on the die."""
        return self.vth.shape[0]

    @property
    def n_stages(self) -> int:
        """Number of inverting stages per ring oscillator."""
        return self.vth.shape[1]

    @property
    def vth_n(self) -> np.ndarray:
        """NMOS thresholds, shape ``(n_ros, n_stages)``."""
        return self.vth[:, :, NMOS]

    @property
    def vth_p(self) -> np.ndarray:
        """PMOS threshold magnitudes, shape ``(n_ros, n_stages)``."""
        return self.vth[:, :, PMOS]

    def with_delta(self, delta: np.ndarray) -> "Chip":
        """Return a new chip with ``delta`` (same shape as ``vth``) added.

        This is how aging is applied: the aging simulator computes a
        per-device threshold shift and the aged die is a fresh object.
        """
        delta = np.asarray(delta, dtype=float)
        if delta.shape != self.vth.shape:
            raise ValueError(
                f"delta shape {delta.shape} does not match vth shape {self.vth.shape}"
            )
        return Chip(
            vth=self.vth + delta,
            positions=self.positions,
            tc_scale=self.tc_scale,
            chip_id=self.chip_id,
        )


@dataclass
class ChipPopulation:
    """A Monte-Carlo population of chips from the same design/process."""

    chips: List[Chip] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.chips)

    def __iter__(self) -> Iterator[Chip]:
        return iter(self.chips)

    def __getitem__(self, index: int) -> Chip:
        return self.chips[index]

    def stacked_vth(self) -> np.ndarray:
        """All thresholds stacked into ``(n_chips, n_ros, n_stages, 2)``."""
        if not self.chips:
            raise ValueError("population is empty")
        return np.stack([c.vth for c in self.chips])

    def map(self, fn) -> List:
        """Apply ``fn`` to every chip and return the list of results."""
        return [fn(chip) for chip in self.chips]


def grid_positions(n_ros: int) -> np.ndarray:
    """Row-major grid coordinates for ``n_ros`` oscillators.

    The grid is made as square as possible (``ceil(sqrt)`` columns); the
    coordinates are in RO-pitch units, matching the correlation length in
    :class:`repro.transistor.VariationParameters`.
    """
    if n_ros <= 0:
        raise ValueError("n_ros must be positive")
    cols = int(np.ceil(np.sqrt(n_ros)))
    idx = np.arange(n_ros)
    return np.column_stack([idx % cols, idx // cols]).astype(float)
