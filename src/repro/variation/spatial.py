"""Spatial components of process variation.

Two spatially structured components matter for RO-PUF statistics:

* The **systematic layout component** — lithography- and layout-induced
  threshold offsets that depend on the *die coordinate only* and are
  therefore (to first order) identical on every manufactured chip.  Because
  it is the same on every chip, it biases each RO-pair comparison the same
  way everywhere, correlating responses across chips and pulling the
  inter-chip Hamming distance below the ideal 50 %.  With
  ``sigma_sys = q * sigma_rand`` the expected inter-chip HD is

      HD = 1/2 - (1/pi) * arcsin(q**2 / (1 + q**2))

  (two bits from two chips agree when the common systematic offset
  dominates both chips' independent random parts).  The paper's ~45 %
  conventional figure corresponds to q ~= 0.43, which is how
  ``VariationParameters.sigma_systematic`` was calibrated.

* A **smooth chip-specific correlated component** — wafer-level gradients
  and stress fields that differ chip to chip.  It is common-mode for
  physically adjacent ROs (neighbour pairing cancels most of it) but not
  for distant ones; it is included for fidelity of pairing-strategy
  comparisons.

The ARO-PUF's symmetric (common-centroid, interleaved) cell layout cancels
the systematic component differentially; we model that as a residual factor
applied to the systematic field (see :class:`LayoutStyle`).
"""

from __future__ import annotations

import enum
from collections import OrderedDict

import numpy as np

from .._rng import RngLike, as_generator


class LayoutStyle(enum.Enum):
    """How the oscillator cells are laid out on the die.

    ``CONVENTIONAL`` places each RO compactly at its grid slot, so it picks
    up the full systematic offset of its coordinate.  ``SYMMETRIC`` is the
    ARO discipline: the stages of neighbouring oscillators are interleaved
    about a common centroid, cancelling linear (and most of the smooth)
    systematic gradient between any two compared oscillators.
    """

    CONVENTIONAL = "conventional"
    SYMMETRIC = "symmetric"


#: Residual fraction of the systematic component that survives a
#: common-centroid symmetric layout (non-linear gradient remnants).
SYMMETRIC_RESIDUAL = 0.05


def systematic_field(positions: np.ndarray, sigma: float) -> np.ndarray:
    """Deterministic systematic threshold offset at each position (volts).

    The field is a fixed low-order surface — a tilted plane plus a gentle
    bowl plus a mid-frequency ripple — chosen to mimic lithographic and
    CMP-induced systematics.  It is *deterministic* (a property of the mask
    set, not of any individual chip) and normalised so its standard
    deviation over the supplied positions equals ``sigma``.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError("positions must have shape (n, 2)")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    x, y = positions[:, 0], positions[:, 1]
    span = max(float(np.ptp(x)), float(np.ptp(y)), 1.0)
    xn, yn = x / span, y / span
    raw = (
        0.9 * xn
        + 0.5 * yn
        + 0.6 * (xn - 0.5) ** 2
        + 0.3 * np.sin(2.0 * np.pi * 1.5 * xn)
        + 0.2 * np.cos(2.0 * np.pi * 1.2 * yn)
    )
    raw = raw - raw.mean()
    std = raw.std()
    if std == 0.0:  # single position: no gradient to speak of
        return np.zeros_like(raw)
    return sigma * raw / std


#: above this point count the exact Cholesky draw (O(n^2) memory) gives
#: way to the FFT grid synthesiser
_CHOLESKY_LIMIT = 1024

#: memoised Cholesky factors keyed by (positions, sigma, length).  The
#: factor is a pure function of the kernel inputs, so reusing it across
#: chips changes nothing about the draws: every chip still multiplies the
#: same matrix by its own standard-normal vector.  Population fabrication
#: calls this once per chip with identical grids, and the factorisation
#: (not the matvec) dominates ``sample_chip`` wall-clock at paper scale.
_CHOL_CACHE: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
_CHOL_CACHE_SIZE = 8


def _cholesky_factor(
    positions: np.ndarray, sigma: float, correlation_length: float
) -> np.ndarray:
    key = (positions.tobytes(), float(sigma), float(correlation_length))
    chol = _CHOL_CACHE.get(key)
    if chol is not None:
        _CHOL_CACHE.move_to_end(key)
        return chol
    n = positions.shape[0]
    diff = positions[:, None, :] - positions[None, :, :]
    dist2 = np.sum(diff**2, axis=-1)
    cov = sigma**2 * np.exp(-0.5 * dist2 / correlation_length**2)
    # jitter for numerical positive-definiteness
    cov[np.diag_indices(n)] += 1e-12 * sigma**2 + 1e-18
    chol = np.linalg.cholesky(cov)
    chol.flags.writeable = False
    _CHOL_CACHE[key] = chol
    if len(_CHOL_CACHE) > _CHOL_CACHE_SIZE:
        _CHOL_CACHE.popitem(last=False)
    return chol


def correlated_field(
    positions: np.ndarray,
    sigma: float,
    correlation_length: float,
    rng: RngLike = None,
) -> np.ndarray:
    """Chip-specific smooth Gaussian random field sampled at ``positions``.

    Up to :data:`_CHOLESKY_LIMIT` points this is an exact
    squared-exponential-kernel Cholesky draw.  Beyond that (the key-
    generation design space sizes arrays to hundreds of thousands of ROs)
    an FFT-based grid synthesis with the same kernel takes over: white
    noise convolved with a Gaussian kernel of width ``L / sqrt(2)`` has
    exactly the squared-exponential covariance with length ``L``.  The
    grid path snaps each position to the nearest integer grid point, which
    is exact for the row-major RO grids this framework generates.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError("positions must have shape (n, 2)")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if correlation_length <= 0:
        raise ValueError("correlation_length must be positive")
    n = positions.shape[0]
    if sigma == 0.0 or n == 0:
        return np.zeros(n)
    gen = as_generator(rng)
    if n <= _CHOLESKY_LIMIT:
        chol = _cholesky_factor(positions, sigma, correlation_length)
        return chol @ gen.standard_normal(n)
    return _correlated_field_fft(positions, sigma, correlation_length, gen)


def _correlated_field_fft(
    positions: np.ndarray,
    sigma: float,
    correlation_length: float,
    gen: np.random.Generator,
) -> np.ndarray:
    """Grid-based spectral synthesis of the squared-exponential field."""
    xi = np.rint(positions[:, 0]).astype(np.int64)
    yi = np.rint(positions[:, 1]).astype(np.int64)
    xi -= xi.min()
    yi -= yi.min()
    cols = int(xi.max()) + 1
    rows = int(yi.max()) + 1
    # pad by several correlation lengths so the periodic FFT wrap-around
    # cannot correlate opposite die edges
    pad = int(np.ceil(4 * correlation_length))
    big_r, big_c = rows + pad, cols + pad

    s = correlation_length / np.sqrt(2.0)
    fy = np.fft.fftfreq(big_r)[:, None] * big_r
    fx = np.fft.fftfreq(big_c)[None, :] * big_c
    kernel = np.exp(-(fx**2 + fy**2) / (2.0 * s**2))
    norm = np.sqrt(np.sum(kernel**2))
    white = gen.standard_normal((big_r, big_c))
    field = np.fft.irfft2(
        np.fft.rfft2(white) * np.fft.rfft2(kernel), s=(big_r, big_c)
    )
    field *= sigma / norm
    return field[yi, xi]


def effective_systematic(
    positions: np.ndarray, sigma: float, layout: LayoutStyle
) -> np.ndarray:
    """Systematic offsets as *seen by each RO* under the given layout.

    Conventional layout exposes the raw field; the symmetric ARO layout
    leaves only :data:`SYMMETRIC_RESIDUAL` of it.
    """
    field = systematic_field(positions, sigma)
    if layout is LayoutStyle.SYMMETRIC:
        return SYMMETRIC_RESIDUAL * field
    return field
