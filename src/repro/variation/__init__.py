"""Process-variation Monte-Carlo: chips, spatial fields, and the sampler."""

from .chip import NMOS, PMOS, Chip, ChipPopulation, grid_positions
from .process import VariationModel
from .spatial import (
    SYMMETRIC_RESIDUAL,
    LayoutStyle,
    correlated_field,
    effective_systematic,
    systematic_field,
)

__all__ = [
    "Chip",
    "ChipPopulation",
    "LayoutStyle",
    "NMOS",
    "PMOS",
    "SYMMETRIC_RESIDUAL",
    "VariationModel",
    "correlated_field",
    "effective_systematic",
    "grid_positions",
    "systematic_field",
]
