"""Monte-Carlo process-variation sampler (the virtual fab).

:class:`VariationModel` turns a technology card plus an array geometry into
:class:`~repro.variation.chip.Chip` samples.  The threshold voltage of each
device decomposes hierarchically, matching the standard WID/D2D taxonomy
used in the RO-PUF literature:

    vth = vth_nominal
        + inter_die              (one draw per chip, common to all devices)
        + correlated(x, y)       (smooth chip-specific field, per RO)
        + white mismatch         (independent per device — the PUF entropy)
        + systematic(x, y)       (mask-set property, identical across chips)

The systematic term depends on the layout style: the ARO's symmetric cell
cancels it down to a small residual (see :mod:`repro.variation.spatial`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._rng import RngLike, as_generator, spawn
from ..transistor.technology import TechnologyCard
from .chip import Chip, ChipPopulation, grid_positions
from .spatial import LayoutStyle, correlated_field, effective_systematic


@dataclass(frozen=True)
class VariationModel:
    """Samples chips for one design point.

    Parameters
    ----------
    tech:
        Technology card supplying nominal thresholds and sigma values.
    n_ros, n_stages:
        Geometry of the RO array (stages = inverting stages per ring).
    layout:
        Cell layout discipline; controls systematic-component cancellation.
    """

    tech: TechnologyCard
    n_ros: int
    n_stages: int
    layout: LayoutStyle = LayoutStyle.CONVENTIONAL

    def __post_init__(self) -> None:
        if self.n_ros < 2:
            raise ValueError("an RO-PUF needs at least two oscillators")
        if self.n_stages < 3 or self.n_stages % 2 == 0:
            raise ValueError("n_stages must be an odd integer >= 3 for oscillation")

    def sample_chip(self, rng: RngLike = None, chip_id: int = 0) -> Chip:
        """Draw one chip from the process distribution."""
        gen = as_generator(rng)
        var = self.tech.variation
        positions = grid_positions(self.n_ros)
        shape = (self.n_ros, self.n_stages, 2)

        inter_die = var.sigma_inter_die * gen.standard_normal()

        # Split intra-die variance between a smooth correlated field and
        # white per-device mismatch, preserving total variance.
        corr_sigma = var.sigma_intra_die * np.sqrt(var.correlated_fraction)
        white_sigma = var.sigma_intra_die * np.sqrt(1.0 - var.correlated_fraction)
        corr = correlated_field(
            positions, corr_sigma, var.correlation_length, rng=gen
        )
        white = white_sigma * gen.standard_normal(shape)

        systematic = effective_systematic(positions, var.sigma_systematic, self.layout)

        per_ro = inter_die + corr + systematic  # shape (n_ros,)
        vth = np.empty(shape)
        vth[:, :, 0] = self.tech.vth_n
        vth[:, :, 1] = self.tech.vth_p
        vth += per_ro[:, None, None] + white

        tc_scale = 1.0 + self.tech.tc_mismatch_cv * gen.standard_normal(shape)

        return Chip(vth=vth, positions=positions, tc_scale=tc_scale, chip_id=chip_id)

    def sample_population(self, n_chips: int, rng: RngLike = None) -> ChipPopulation:
        """Draw ``n_chips`` independent chips.

        Each chip gets its own spawned child generator so that adding chips
        to a population never perturbs the earlier chips' samples.
        """
        if n_chips <= 0:
            raise ValueError("n_chips must be positive")
        children = spawn(rng, n_chips)
        chips = [
            self.sample_chip(child, chip_id=i) for i, child in enumerate(children)
        ]
        return ChipPopulation(chips=chips)
