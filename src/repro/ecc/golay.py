"""The binary Golay code (23, 12, 7) — the classic PUF key-gen workhorse.

Golay's perfect three-error-correcting code appears throughout the PUF
key-generation literature (Bosch et al.'s reference constructions use it
as the outer code), so the design-space search deserves it in the palette
next to the BCH family.

Being *perfect*, the 2^11 syndromes are in exact one-to-one
correspondence with the error patterns of weight <= 3
(``1 + 23 + C(23,2) + C(23,3) = 2048``), so decoding is a syndrome table
lookup — built once at construction by enumerating those patterns.  The
flip side of perfection: there are no detectable failures.  Any received
word decodes to *some* codeword; four or more errors silently miscorrect.
The key-failure model (binomial tail beyond t) already accounts for that.

The interface mirrors :class:`repro.ecc.bch.BchCode` (``n``, ``k``,
``t``, ``encode``, ``decode``, ``extract_message``, ``is_codeword``,
``shortened``) so :class:`repro.ecc.concatenated.ConcatenatedCode`
accepts either family as the outer code.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from .galois import poly_mod_gf2

#: generator polynomial x^11 + x^10 + x^6 + x^5 + x^4 + x^2 + 1,
#: lowest-degree-first coefficient array
GOLAY_GENERATOR = np.array(
    [1, 0, 1, 0, 1, 1, 1, 0, 0, 0, 1, 1], dtype=np.uint8
)

N = 23
K = 12
T = 3
N_PARITY = 11


def _syndrome_key(word: np.ndarray) -> int:
    rem = poly_mod_gf2(word, GOLAY_GENERATOR)
    return int(sum(int(b) << i for i, b in enumerate(rem)))


_TABLE_CACHE: Dict[int, Tuple[int, ...]] = {}


def _build_syndrome_table() -> Dict[int, Tuple[int, ...]]:
    """Map every syndrome to its unique weight-<=3 error pattern.

    Built once per process (module-level cache): the table is a property
    of the code, not of any instance.
    """
    if _TABLE_CACHE:
        return _TABLE_CACHE
    for weight in range(T + 1):
        for positions in itertools.combinations(range(N), weight):
            err = np.zeros(N, dtype=np.uint8)
            err[list(positions)] = 1
            key = _syndrome_key(err)
            if key in _TABLE_CACHE:  # pragma: no cover - perfection
                raise AssertionError("syndrome collision: code is not perfect")
            _TABLE_CACHE[key] = positions
    if len(_TABLE_CACHE) != 2**N_PARITY:  # pragma: no cover
        raise AssertionError("syndrome table does not fill the space")
    return _TABLE_CACHE


@dataclass(frozen=True)
class GolayCode:
    """The (23, 12) binary Golay code with table-lookup decoding.

    ``n_short`` < 23 gives the shortened variant (fewer message bits, same
    parity and correction power).
    """

    n: int = N
    _table: Dict[int, Tuple[int, ...]] = field(
        default_factory=_build_syndrome_table, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not N_PARITY < self.n <= N:
            raise ValueError(
                f"Golay length must be in ({N_PARITY}, {N}], got {self.n}"
            )

    # -- BchCode-compatible geometry --------------------------------------

    @property
    def k(self) -> int:
        return self.n - N_PARITY

    @property
    def t(self) -> int:
        return T

    @property
    def n_parity(self) -> int:
        return N_PARITY

    @property
    def rate(self) -> float:
        return self.k / self.n

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.n == N:
            return "Golay(23,12,t=3)"
        return f"Golay({self.n},{self.k},t=3)"

    def shortened(self, n_short: int) -> "GolayCode":
        """Shortened Golay code (drops high-order message bits)."""
        if n_short > self.n:
            raise ValueError("a shortened code cannot be longer")
        return GolayCode(n=n_short, _table=self._table)

    # -- codec -------------------------------------------------------------

    def encode(self, message) -> np.ndarray:
        msg = np.asarray(message)
        if msg.shape != (self.k,):
            raise ValueError(f"message must have shape ({self.k},)")
        if not np.all((msg == 0) | (msg == 1)):
            raise ValueError("message must be a 0/1 bit vector")
        shifted = np.zeros(self.n, dtype=np.uint8)
        shifted[N_PARITY:] = msg
        parity = poly_mod_gf2(shifted, GOLAY_GENERATOR)
        codeword = np.zeros(self.n, dtype=np.uint8)
        codeword[: parity.size] = parity
        codeword[N_PARITY:] = msg
        return codeword

    def extract_message(self, codeword) -> np.ndarray:
        cw = np.asarray(codeword)
        if cw.shape != (self.n,):
            raise ValueError(f"codeword must have shape ({self.n},)")
        return cw[N_PARITY:].astype(np.uint8).copy()

    def is_codeword(self, word) -> bool:
        w = np.asarray(word)
        if w.shape != (self.n,):
            raise ValueError(f"word must have shape ({self.n},)")
        full = np.zeros(N, dtype=np.uint8)
        full[: self.n] = w
        return _syndrome_key(full) == 0

    def decode(self, received) -> Tuple[np.ndarray, int]:
        """Correct up to three errors via the perfect syndrome table.

        Shortened positions are known zeros; an "error" located there
        means the true pattern had weight > t, which the perfect code
        cannot flag otherwise — it is reported as a decoding failure.
        """
        from .bch import BchDecodingError

        rec = np.asarray(received)
        if rec.shape != (self.n,):
            raise ValueError(f"received must have shape ({self.n},)")
        if not np.all((rec == 0) | (rec == 1)):
            raise ValueError("received must be a 0/1 bit vector")
        full = np.zeros(N, dtype=np.uint8)
        full[: self.n] = rec
        positions = self._table[_syndrome_key(full)]
        if any(p >= self.n for p in positions):
            raise BchDecodingError(
                "error located in the shortened (always-zero) prefix"
            )
        corrected = rec.astype(np.uint8).copy()
        for p in positions:
            corrected[p] ^= 1
        return corrected, len(positions)
