"""Repetition code: the inner workhorse of high-error PUF key generators.

A raw bit-error probability around 30 % (the aged conventional RO-PUF) is
far beyond what any practical standalone BCH code handles, so key
generators concatenate a majority-voted repetition inner code that knocks
the error rate down to a level the outer BCH can finish off.  The price is
a factor-``r`` blow-up in raw PUF bits — the dominant term in the paper's
24x area comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class RepetitionCode:
    """An ``r``-fold repetition code with majority decoding (``r`` odd)."""

    r: int

    def __post_init__(self) -> None:
        if self.r < 1 or self.r % 2 == 0:
            raise ValueError("repetition factor must be a positive odd integer")

    @property
    def n(self) -> int:
        return self.r

    @property
    def k(self) -> int:
        return 1

    @property
    def t(self) -> int:
        """Errors corrected per group: ``(r - 1) // 2``."""
        return (self.r - 1) // 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Rep({self.r})"

    def encode(self, message) -> np.ndarray:
        """Repeat every message bit ``r`` times."""
        msg = np.asarray(message)
        if not np.all((msg == 0) | (msg == 1)):
            raise ValueError("message must be a 0/1 bit vector")
        return np.repeat(msg.astype(np.uint8), self.r)

    def decode(self, received) -> np.ndarray:
        """Majority-vote every group of ``r`` bits."""
        rx = np.asarray(received)
        if rx.size % self.r != 0:
            raise ValueError(
                f"received length {rx.size} is not a multiple of r={self.r}"
            )
        if not np.all((rx == 0) | (rx == 1)):
            raise ValueError("received must be a 0/1 bit vector")
        groups = rx.reshape(-1, self.r)
        return (groups.sum(axis=1) > self.t).astype(np.uint8)

    def decoded_error_probability(self, p: float) -> float:
        """Residual bit-error probability after majority voting.

        A decoded bit is wrong when more than ``t`` of its ``r`` copies
        flipped: the binomial survival function at ``t``.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be a probability")
        if self.r == 1:
            return p
        return float(stats.binom.sf(self.t, self.r, p))
