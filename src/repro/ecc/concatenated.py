"""Concatenated (repetition inner, BCH outer) codes and key-level codecs.

``ConcatenatedCode`` is the linear code actually used by the fuzzy
extractor: the outer BCH codeword is expanded bit-by-bit through the inner
repetition code.  Linearity is what makes the code-offset construction
work, and concatenating two linear codes preserves it.

``KeyCodec`` stacks as many concatenated blocks as the key needs (a 128-bit
key over a ``k=64`` outer code needs two blocks) and exposes the aggregate
geometry the design-space search optimises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import stats

from .bch import BchCode
from .repetition import RepetitionCode


@dataclass(frozen=True)
class ConcatenatedCode:
    """Repetition-inside-BCH concatenation (inner ``r`` may be 1)."""

    outer: BchCode
    inner: RepetitionCode

    @property
    def n(self) -> int:
        """Raw (PUF-side) bits per block."""
        return self.outer.n * self.inner.r

    @property
    def k(self) -> int:
        """Message bits per block."""
        return self.outer.k

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.inner} o {self.outer}"

    def encode(self, message) -> np.ndarray:
        """Outer-encode then repeat every codeword bit."""
        return self.inner.encode(self.outer.encode(message))

    def decode(self, received) -> Tuple[np.ndarray, int]:
        """Majority-vote the groups, then BCH-decode the result.

        Returns ``(corrected outer codeword, outer errors corrected)``.
        """
        rx = np.asarray(received)
        if rx.shape != (self.n,):
            raise ValueError(f"received must have shape ({self.n},)")
        voted = self.inner.decode(rx)
        return self.outer.decode(voted)

    def decode_message(self, received) -> np.ndarray:
        """Decode straight to the message bits."""
        corrected, _ = self.decode(received)
        return self.outer.extract_message(corrected)

    def correct(self, received) -> np.ndarray:
        """Return the corrected *raw* codeword (inner-expanded).

        This is what the code-offset fuzzy extractor needs: the nearest
        codeword at the raw-bit level, so the exact enrolled response can
        be reconstructed as ``offset XOR codeword``.
        """
        corrected_outer, _ = self.decode(received)
        return self.inner.encode(corrected_outer)

    def block_failure_probability(self, p: float) -> float:
        """Probability one block fails at raw bit-error probability ``p``.

        The inner stage leaves each outer bit wrong independently with
        probability ``q`` (:meth:`RepetitionCode.decoded_error_probability`);
        the block fails when more than ``t`` outer bits are wrong.
        """
        q = self.inner.decoded_error_probability(p)
        return float(stats.binom.sf(self.outer.t, self.outer.n, q))


@dataclass(frozen=True)
class KeyCodec:
    """Enough concatenated blocks to carry ``key_bits`` message bits."""

    code: ConcatenatedCode
    key_bits: int

    def __post_init__(self) -> None:
        if self.key_bits < 1:
            raise ValueError("key_bits must be positive")

    @property
    def n_blocks(self) -> int:
        return -(-self.key_bits // self.code.k)  # ceil division

    @property
    def raw_bits(self) -> int:
        """Total PUF response bits consumed."""
        return self.n_blocks * self.code.n

    @property
    def message_bits(self) -> int:
        """Total message capacity (>= key_bits)."""
        return self.n_blocks * self.code.k

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.n_blocks} x [{self.code}]"

    def encode(self, message) -> np.ndarray:
        """Encode ``message_bits`` bits into ``raw_bits`` bits."""
        msg = np.asarray(message)
        if msg.shape != (self.message_bits,):
            raise ValueError(f"message must have shape ({self.message_bits},)")
        blocks = msg.reshape(self.n_blocks, self.code.k)
        return np.concatenate([self.code.encode(b) for b in blocks])

    def decode(self, received) -> np.ndarray:
        """Decode ``raw_bits`` bits back to the ``message_bits`` bits."""
        rx = np.asarray(received)
        if rx.shape != (self.raw_bits,):
            raise ValueError(f"received must have shape ({self.raw_bits},)")
        blocks = rx.reshape(self.n_blocks, self.code.n)
        return np.concatenate([self.code.decode_message(b) for b in blocks])

    def correct(self, received) -> np.ndarray:
        """Corrected raw codeword over all blocks (see
        :meth:`ConcatenatedCode.correct`)."""
        rx = np.asarray(received)
        if rx.shape != (self.raw_bits,):
            raise ValueError(f"received must have shape ({self.raw_bits},)")
        blocks = rx.reshape(self.n_blocks, self.code.n)
        return np.concatenate([self.code.correct(b) for b in blocks])

    def key_failure_probability(self, p: float) -> float:
        """Probability the key regeneration fails at raw error rate ``p``."""
        p_block = self.code.block_failure_probability(p)
        return float(1.0 - (1.0 - p_block) ** self.n_blocks)
