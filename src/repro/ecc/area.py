"""Gate-count area model for the key-generation error-correction logic.

The paper's headline ~24x area claim counts *total* key-generation silicon:
the RO array needed to source the raw bits plus the ECC decoder.  The
paper synthesises its decoders; we substitute a standard-architecture gate
count (documented in DESIGN.md) whose terms follow the textbook serial BCH
decoder datapath:

* **syndrome stage** — ``2t`` Galois LFSRs of ``m`` flip-flops with on
  average ``m/2`` XOR taps each;
* **Berlekamp–Massey stage** — the locator and scratch registers
  (``2 (t+1) m`` flip-flops), two serial GF(2^m) multipliers and one
  inverter, each costing about ``m^2`` AND + ``m^2`` XOR equivalents, plus
  control;
* **Chien stage** — ``t + 1`` constant-multiplier cells (``m`` flip-flops
  and ~``m/2`` XORs each) and an ``m``-input zero detector;
* **repetition majority** — a ``ceil(log2 r)``-bit counter and comparator
  per decoded bit, time-shared (one instance);
* **helper-data XOR** — one XOR per raw bit, time-shared (one ``m``-wide
  slice counted).

Absolute numbers are library-dependent; the *scaling* with ``n``, ``t``
and ``m`` is what the experiment needs, and that follows the architecture.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..transistor.technology import AreaTable, TechnologyCard
from .bch import BchCode
from .concatenated import KeyCodec
from .golay import GolayCode
from .repetition import RepetitionCode


@dataclass(frozen=True)
class AreaBreakdown:
    """Area of one key-generator datapath, square micrometres."""

    syndrome: float
    berlekamp_massey: float
    chien: float
    repetition: float
    helper_xor: float
    encoder: float

    @property
    def total(self) -> float:
        return (
            self.syndrome
            + self.berlekamp_massey
            + self.chien
            + self.repetition
            + self.helper_xor
            + self.encoder
        )


def gf_multiplier_area(m: int, area: AreaTable) -> float:
    """Parallel GF(2^m) multiplier: ~m^2 AND plus ~m^2 XOR equivalents."""
    return m * m * (area.and2 + area.xor2)


def bch_decoder_area(code: BchCode, tech: TechnologyCard) -> AreaBreakdown:
    """Gate-count area of a serial-architecture BCH decoder."""
    area = tech.area
    m, t = code.field.m, code.t

    syndrome = 2 * t * (m * area.dff + (m / 2.0) * area.xor2)
    bm_registers = 2 * (t + 1) * m * area.dff
    bm_datapath = 2 * gf_multiplier_area(m, area) + gf_multiplier_area(m, area)
    bm_control = 8 * m * area.dff  # counters, degree tracking, FSM
    chien = (t + 1) * (m * area.dff + (m / 2.0) * area.xor2) + m * area.nor2
    encoder = code.n_parity * (area.dff + 0.5 * area.xor2)

    return AreaBreakdown(
        syndrome=syndrome,
        berlekamp_massey=bm_registers + bm_datapath + bm_control,
        chien=chien,
        repetition=0.0,
        helper_xor=0.0,
        encoder=encoder,
    )


def golay_decoder_area(code: GolayCode, tech: TechnologyCard) -> AreaBreakdown:
    """Gate-count area of a Kasami error-trapping Golay decoder.

    Hardware Golay decoders do not store the syndrome table; the classic
    error-trapping architecture cycles the received word through a buffer
    while a syndrome LFSR hunts for a trappable (weight <= 3) pattern —
    a few dozen flip-flops and some weight-check logic.
    """
    area = tech.area
    syndrome = code.n_parity * area.dff + 6 * area.xor2
    trapping = 23 * area.dff + 16 * area.xor2 + 8 * area.and2
    encoder = code.n_parity * (area.dff + 0.5 * area.xor2)
    return AreaBreakdown(
        syndrome=syndrome,
        berlekamp_massey=0.0,
        chien=trapping,
        repetition=0.0,
        helper_xor=0.0,
        encoder=encoder,
    )


def outer_decoder_area(code, tech: TechnologyCard) -> AreaBreakdown:
    """Dispatch on the outer-code family (BCH or Golay)."""
    if isinstance(code, GolayCode):
        return golay_decoder_area(code, tech)
    return bch_decoder_area(code, tech)


def repetition_decoder_area(code: RepetitionCode, tech: TechnologyCard) -> float:
    """Majority voter: a small counter plus compare, time-shared."""
    if code.r == 1:
        return 0.0
    area = tech.area
    counter_bits = max(1, math.ceil(math.log2(code.r + 1)))
    return counter_bits * (area.counter_bit + area.xor2) + area.and2


def keygen_area(codec: KeyCodec, tech: TechnologyCard) -> AreaBreakdown:
    """Total ECC datapath area for a key codec (decoder is time-shared
    across blocks, so block count does not multiply the logic)."""
    area = tech.area
    base = outer_decoder_area(codec.code.outer, tech)
    rep = repetition_decoder_area(codec.code.inner, tech)
    # one word-wide helper-XOR slice, sized by the outer parity width
    helper = tech.area.xor2 * codec.code.outer.n_parity / 2.0
    return AreaBreakdown(
        syndrome=base.syndrome,
        berlekamp_massey=base.berlekamp_massey,
        chien=base.chien,
        repetition=rep,
        helper_xor=helper,
        encoder=base.encoder,
    )
