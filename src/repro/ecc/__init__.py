"""Error correction from scratch: GF(2^m), BCH, repetition, area models."""

from .area import (
    AreaBreakdown,
    bch_decoder_area,
    gf_multiplier_area,
    golay_decoder_area,
    keygen_area,
    outer_decoder_area,
    repetition_decoder_area,
)
from .bch import BchCode, BchDecodingError, standard_codes
from .concatenated import ConcatenatedCode, KeyCodec
from .golay import GOLAY_GENERATOR, GolayCode
from .galois import (
    PRIMITIVE_POLYS,
    GF2m,
    poly_degree,
    poly_lcm_gf2,
    poly_mod_gf2,
    poly_mul_gf2,
    poly_trim,
)
from .repetition import RepetitionCode

__all__ = [
    "AreaBreakdown",
    "BchCode",
    "BchDecodingError",
    "ConcatenatedCode",
    "GF2m",
    "GOLAY_GENERATOR",
    "GolayCode",
    "KeyCodec",
    "PRIMITIVE_POLYS",
    "RepetitionCode",
    "bch_decoder_area",
    "gf_multiplier_area",
    "golay_decoder_area",
    "keygen_area",
    "outer_decoder_area",
    "poly_degree",
    "poly_lcm_gf2",
    "poly_mod_gf2",
    "poly_mul_gf2",
    "poly_trim",
    "repetition_decoder_area",
    "standard_codes",
]
