"""GF(2^m) finite-field arithmetic, built from scratch.

The BCH codes used for PUF key generation live over binary extension
fields.  This module provides:

* :class:`GF2m` — a field with log/antilog tables for fast multiply,
  divide, inverse and power;
* cyclotomic cosets and minimal polynomials, the ingredients of the BCH
  generator polynomial;
* dense polynomial arithmetic over GF(2) (coefficients as 0/1 numpy
  arrays, lowest degree first), enough for systematic cyclic encoding.

Primitive polynomials follow the standard tables (Lin & Costello).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

#: default primitive polynomials for GF(2^m), m -> integer bitmask
#: (bit i = coefficient of x^i); from the standard tables.
PRIMITIVE_POLYS: Dict[int, int] = {
    2: 0b111,               # x^2 + x + 1
    3: 0b1011,              # x^3 + x + 1
    4: 0b10011,             # x^4 + x + 1
    5: 0b100101,            # x^5 + x^2 + 1
    6: 0b1000011,           # x^6 + x + 1
    7: 0b10001001,          # x^7 + x^3 + 1
    8: 0b100011101,         # x^8 + x^4 + x^3 + x^2 + 1
    9: 0b1000010001,        # x^9 + x^4 + 1
    10: 0b10000001001,      # x^10 + x^3 + 1
    11: 0b100000000101,     # x^11 + x^2 + 1
    12: 0b1000001010011,    # x^12 + x^6 + x^4 + x + 1
    13: 0b10000000011011,   # x^13 + x^4 + x^3 + x + 1
    14: 0b100010001000011,  # x^14 + x^10 + x^6 + x + 1
}


class GF2m:
    """The finite field GF(2^m) with a fixed primitive element alpha.

    Elements are represented as integers in ``[0, 2^m)`` (polynomial basis
    bitmask).  ``exp[i] = alpha**i`` and ``log[x]`` invert each other for
    nonzero ``x``.
    """

    def __init__(self, m: int, primitive_poly: int = 0):
        if m < 2 or m > 14:
            raise ValueError("supported field sizes are GF(2^2) .. GF(2^14)")
        poly = primitive_poly or PRIMITIVE_POLYS[m]
        if poly >> m != 1 or poly < (1 << m):
            raise ValueError(
                f"primitive polynomial must have degree exactly {m}"
            )
        self.m = m
        self.order = (1 << m) - 1  # multiplicative group order
        self.size = 1 << m
        self.primitive_poly = poly

        exp = np.zeros(2 * self.order, dtype=np.int64)
        log = np.zeros(self.size, dtype=np.int64)
        x = 1
        for i in range(self.order):
            exp[i] = x
            log[x] = i
            x <<= 1
            if x & (1 << m):
                x ^= poly
        if x != 1:
            raise ValueError(f"polynomial {poly:#b} is not primitive over GF(2)")
        exp[self.order :] = exp[: self.order]  # wraparound for index math
        self.exp = exp
        self.log = log

    def __repr__(self) -> str:
        return f"GF2m(m={self.m}, poly={self.primitive_poly:#x})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, GF2m)
            and other.m == self.m
            and other.primitive_poly == self.primitive_poly
        )

    def __hash__(self) -> int:
        return hash((self.m, self.primitive_poly))

    def _check(self, *elems: int) -> None:
        for e in elems:
            if not 0 <= e < self.size:
                raise ValueError(f"{e} is not an element of GF(2^{self.m})")

    def add(self, a: int, b: int) -> int:
        """Field addition (= subtraction = XOR)."""
        self._check(a, b)
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """Field multiplication via log/antilog tables."""
        self._check(a, b)
        if a == 0 or b == 0:
            return 0
        return int(self.exp[self.log[a] + self.log[b]])

    def inv(self, a: int) -> int:
        """Multiplicative inverse (raises on zero)."""
        self._check(a)
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in a field")
        return int(self.exp[self.order - self.log[a]])

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        self._check(a, b)
        return int(self.exp[(self.log[a] - self.log[b]) % self.order])

    def pow(self, a: int, e: int) -> int:
        """``a`` raised to the integer power ``e`` (negative allowed)."""
        self._check(a)
        if a == 0:
            if e < 0:
                raise ZeroDivisionError("zero to a negative power")
            return 0 if e > 0 else 1
        return int(self.exp[(self.log[a] * e) % self.order])

    def alpha_pow(self, e: int) -> int:
        """``alpha**e`` for any integer exponent."""
        return int(self.exp[e % self.order])

    # ------------------------------------------------------------------
    # structures needed by BCH construction
    # ------------------------------------------------------------------

    def cyclotomic_coset(self, s: int) -> List[int]:
        """The 2-cyclotomic coset of ``s`` modulo ``2^m - 1``."""
        s %= self.order
        coset = []
        c = s
        while True:
            coset.append(c)
            c = (c * 2) % self.order
            if c == s:
                break
        return sorted(coset)

    def minimal_polynomial(self, s: int) -> np.ndarray:
        """Minimal polynomial of ``alpha**s`` over GF(2).

        Returned as a 0/1 coefficient array, lowest degree first:
        ``prod_{j in coset(s)} (x - alpha**j)`` — the product has binary
        coefficients by construction.
        """
        coset = self.cyclotomic_coset(s)
        # poly over GF(2^m), coefficients lowest-first; start with 1
        poly = [1]
        for j in coset:
            root = self.alpha_pow(j)
            # multiply poly by (x + root)
            new = [0] * (len(poly) + 1)
            for i, c in enumerate(poly):
                new[i + 1] ^= c  # times x
                new[i] ^= self.mul(c, root)
            poly = new
        coeffs = np.array(poly, dtype=np.uint8)
        if np.any(coeffs > 1):
            raise AssertionError("minimal polynomial must be binary")
        return coeffs


# ----------------------------------------------------------------------
# polynomial arithmetic over GF(2) — coefficient arrays, lowest first
# ----------------------------------------------------------------------


def poly_trim(p: np.ndarray) -> np.ndarray:
    """Strip trailing (high-order) zero coefficients; zero poly -> [0]."""
    p = np.asarray(p, dtype=np.uint8) & 1
    nz = np.nonzero(p)[0]
    if nz.size == 0:
        return np.zeros(1, dtype=np.uint8)
    return p[: nz[-1] + 1].copy()


def poly_degree(p: np.ndarray) -> int:
    """Degree of the polynomial (zero polynomial has degree -1)."""
    p = poly_trim(p)
    if p.size == 1 and p[0] == 0:
        return -1
    return p.size - 1


def poly_mul_gf2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Product of two GF(2)[x] polynomials."""
    a, b = poly_trim(a), poly_trim(b)
    out = np.convolve(a.astype(np.int64), b.astype(np.int64)) & 1
    return poly_trim(out.astype(np.uint8))


def poly_mod_gf2(a: np.ndarray, mod: np.ndarray) -> np.ndarray:
    """``a mod m`` in GF(2)[x]."""
    a = poly_trim(a).astype(np.uint8).copy()
    mod = poly_trim(mod)
    dm = poly_degree(mod)
    if dm < 0:
        raise ZeroDivisionError("polynomial modulus is zero")
    if dm == 0:
        return np.zeros(1, dtype=np.uint8)
    while poly_degree(a) >= dm:
        da = poly_degree(a)
        shift = da - dm
        a[shift : shift + dm + 1] ^= mod
        a = poly_trim(a)
    out = np.zeros(dm, dtype=np.uint8)
    out[: a.size] = a if poly_degree(a) >= 0 else 0
    return out


def poly_lcm_gf2(polys: Sequence[np.ndarray]) -> np.ndarray:
    """Least common multiple of binary polynomials.

    The BCH construction only ever calls this with minimal polynomials
    (irreducible), so the LCM is the product of the *distinct* ones.
    """
    if not polys:
        raise ValueError("need at least one polynomial")
    seen = set()
    result = np.array([1], dtype=np.uint8)
    for p in polys:
        key = tuple(poly_trim(p).tolist())
        if key in seen:
            continue
        seen.add(key)
        result = poly_mul_gf2(result, p)
    return result
