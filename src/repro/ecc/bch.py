"""Binary BCH codes: construction, systematic encoding, and decoding.

Everything is built from first principles on :mod:`repro.ecc.galois`:

* **construction** — the generator polynomial of a t-error-correcting BCH
  code of length ``2^m - 1`` is the LCM of the minimal polynomials of
  ``alpha, alpha^2, ..., alpha^{2t}``;
* **encoding** — systematic cyclic encoding (message in the high-order
  positions, parity = remainder of ``msg * x^{n-k}`` modulo the
  generator);
* **decoding** — syndrome computation, Berlekamp–Massey to find the error
  locator polynomial, and a Chien search for its roots.  Binary BCH needs
  no error-magnitude (Forney) step: located bits are simply flipped.

Shortened codes (``BchCode.shortened``) are supported because key
generators rarely need the full natural length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .. import telemetry
from .galois import GF2m, poly_degree, poly_lcm_gf2, poly_mod_gf2


class BchDecodingError(ValueError):
    """Raised when the received word is beyond the code's correction power
    (more roots missing than the locator degree, or locations outside the
    shortened length)."""


def _as_bits(x, length: int, what: str) -> np.ndarray:
    arr = np.asarray(x)
    if arr.shape != (length,):
        raise ValueError(f"{what} must have shape ({length},), got {arr.shape}")
    if not np.all((arr == 0) | (arr == 1)):
        raise ValueError(f"{what} must be a 0/1 bit vector")
    return arr.astype(np.uint8)


@dataclass(frozen=True)
class BchCode:
    """A (possibly shortened) binary BCH code.

    Use :meth:`design` to build one; the constructor is not meant to be
    called with hand-rolled parameters.
    """

    field: GF2m
    n: int
    k: int
    t: int
    generator: np.ndarray
    #: natural (unshortened) code length ``2^m - 1``
    n_full: int

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def design(cls, m: int, t: int) -> "BchCode":
        """The t-error-correcting BCH code of length ``2^m - 1``."""
        if t < 1:
            raise ValueError("t must be at least 1")
        field = GF2m(m)
        n = field.order
        if 2 * t >= n:
            raise ValueError(f"t={t} too large for length {n}")
        minimals = [field.minimal_polynomial(j) for j in range(1, 2 * t + 1)]
        gen = poly_lcm_gf2(minimals)
        k = n - poly_degree(gen)
        if k <= 0:
            raise ValueError(f"BCH(m={m}, t={t}) has no message bits")
        return cls(field=field, n=n, k=k, t=t, generator=gen, n_full=n)

    def shortened(self, n_short: int) -> "BchCode":
        """Shorten to length ``n_short`` (drops high-order message bits)."""
        drop = self.n - n_short
        if drop < 0:
            raise ValueError("a shortened code cannot be longer")
        if drop >= self.k:
            raise ValueError(
                f"cannot shorten by {drop}: only {self.k} message bits"
            )
        return BchCode(
            field=self.field,
            n=n_short,
            k=self.k - drop,
            t=self.t,
            generator=self.generator,
            n_full=self.n_full,
        )

    @property
    def n_parity(self) -> int:
        """Number of parity bits (degree of the generator polynomial)."""
        return self.n - self.k

    @property
    def rate(self) -> float:
        """Code rate ``k / n``."""
        return self.k / self.n

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"BCH({self.n},{self.k},t={self.t})"

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------

    def encode(self, message) -> np.ndarray:
        """Systematic encoding: ``[parity | message]`` (lowest index first).

        Positions ``0 .. n-k-1`` carry parity, ``n-k .. n-1`` the message.
        """
        msg = _as_bits(message, self.k, "message")
        shifted = np.zeros(self.n_parity + self.k, dtype=np.uint8)
        shifted[self.n_parity :] = msg
        parity = poly_mod_gf2(shifted, self.generator)
        codeword = np.empty(self.n, dtype=np.uint8)
        codeword[: self.n_parity] = parity[: self.n_parity]
        codeword[self.n_parity :] = msg
        return codeword

    def extract_message(self, codeword) -> np.ndarray:
        """Message bits of a (corrected) systematic codeword."""
        cw = _as_bits(codeword, self.n, "codeword")
        return cw[self.n_parity :].copy()

    def is_codeword(self, word) -> bool:
        """True when ``word`` is divisible by the generator polynomial."""
        w = _as_bits(word, self.n, "word")
        rem = poly_mod_gf2(w, self.generator)
        return not np.any(rem)

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------

    def _syndromes(self, received: np.ndarray) -> List[int]:
        """``S_j = r(alpha^j)`` for ``j = 1 .. 2t``."""
        field = self.field
        ones = np.nonzero(received)[0]
        syndromes = []
        for j in range(1, 2 * self.t + 1):
            s = 0
            for i in ones:
                s ^= field.alpha_pow(int(i) * j)
            syndromes.append(s)
        return syndromes

    def _berlekamp_massey(self, syndromes: List[int]) -> List[int]:
        """Error-locator polynomial (coefficients lowest-first)."""
        field = self.field
        sigma = [1]
        prev = [1]
        l = 0
        shift = 1
        b = 1
        for step, s_n in enumerate(syndromes):
            d = s_n
            for i in range(1, l + 1):
                if i < len(sigma) and step - i >= 0:
                    d ^= field.mul(sigma[i], syndromes[step - i])
            if d == 0:
                shift += 1
                continue
            coef = field.div(d, b)
            update = sigma.copy()
            # sigma -= coef * x^shift * prev
            needed = shift + len(prev)
            if len(update) < needed:
                update.extend([0] * (needed - len(update)))
            for i, c in enumerate(prev):
                update[shift + i] ^= field.mul(coef, c)
            if 2 * l <= step:
                prev = sigma
                b = d
                l = step + 1 - l
                shift = 1
            else:
                shift += 1
            sigma = update
        # trim trailing zeros
        while len(sigma) > 1 and sigma[-1] == 0:
            sigma.pop()
        return sigma

    def _chien_search(self, sigma: List[int]) -> np.ndarray:
        """Error positions: ``i`` such that ``sigma(alpha^{-i}) = 0``."""
        field = self.field
        order = field.order
        positions = np.arange(self.n_full)
        acc = np.zeros(self.n_full, dtype=np.int64)
        for j, coef in enumerate(sigma):
            if coef == 0:
                continue
            exps = (int(field.log[coef]) + (order - positions * j) % order) % order
            acc ^= field.exp[exps]
        return np.nonzero(acc == 0)[0]

    def decode(self, received) -> Tuple[np.ndarray, int]:
        """Correct up to ``t`` errors.

        Returns ``(corrected codeword, number of corrected bits)``; raises
        :class:`BchDecodingError` when the word is uncorrectable *and* the
        decoder can tell (locator degree does not match its root count, or
        an error lands in the shortened prefix).  Words with more than
        ``t`` errors may also silently decode to a wrong codeword — an
        inherent property of bounded-distance decoding that the key-failure
        model accounts for.
        """
        telemetry.count("ecc.bch_decodes")
        rec = _as_bits(received, self.n, "received")
        full = np.zeros(self.n_full, dtype=np.uint8)
        full[: self.n] = rec  # shortened positions beyond n are known zeros
        syndromes = self._syndromes(full)
        if not any(syndromes):
            telemetry.count("ecc.bch_clean_words")
            return rec.copy(), 0
        sigma = self._berlekamp_massey(syndromes)
        n_errors = len(sigma) - 1
        if n_errors > self.t:
            telemetry.count("ecc.bch_decode_failures")
            raise BchDecodingError(
                f"locator degree {n_errors} exceeds correction power t={self.t}"
            )
        roots = self._chien_search(sigma)
        if roots.size != n_errors:
            telemetry.count("ecc.bch_decode_failures")
            raise BchDecodingError(
                f"found {roots.size} error locations for a degree-{n_errors} "
                "locator; received word is uncorrectable"
            )
        if np.any(roots >= self.n):
            telemetry.count("ecc.bch_decode_failures")
            raise BchDecodingError(
                "error located in the shortened (always-zero) prefix"
            )
        corrected = rec.copy()
        corrected[roots] ^= 1
        if not self.is_codeword(corrected):
            telemetry.count("ecc.bch_decode_failures")
            raise BchDecodingError("correction did not land on a codeword")
        telemetry.count("ecc.bch_corrected_bits", n_errors)
        return corrected, int(n_errors)


def standard_codes(max_m: int = 10, max_t: int = 32) -> List[BchCode]:
    """A palette of practical BCH codes for the design-space search."""
    codes = []
    for m in range(5, max_m + 1):
        for t in range(1, max_t + 1):
            try:
                code = BchCode.design(m, t)
            except ValueError:
                break
            if code.k < 8:
                break
            codes.append(code)
    return codes
