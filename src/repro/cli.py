"""Command-line front-end: regenerate any paper experiment from a shell.

Usage::

    python -m repro.cli list
    python -m repro.cli run e2 --chips 50 --ros 256
    python -m repro.cli run e6
    python -m repro.cli run all --chips 25 --out results.txt
    python -m repro.cli run e2 --trace
    python -m repro.cli run e2 --profile --metrics-out metrics.json

``run`` executes the experiment(s) at the requested Monte-Carlo scale and
prints the same paper-style tables the benchmark harness produces (the
benchmark harness additionally asserts the paper-anchored bands and times
the kernels — use ``pytest benchmarks/ --benchmark-only`` for that).

Telemetry flags (``run`` and ``report``):

* ``--trace`` prints the nested span tree (wall time per engine stage)
  and the kernel counters after the tables;
* ``--profile`` additionally samples per-span peak traced memory
  (tracemalloc) — slower, opt-in;
* ``--metrics-out PATH`` writes spans + counters + a complete
  :class:`~repro.telemetry.RunManifest` (seed, git SHA, numpy/platform
  versions) as JSON, the artefact CI's smoke step validates.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Tuple

from . import telemetry
from .analysis import experiments as exp
from .analysis import render

Runner = Callable[[exp.ExperimentConfig], str]


def _run_e1(config: exp.ExperimentConfig) -> str:
    return render.render_e1(exp.frequency_degradation(config))


def _run_e2(config: exp.ExperimentConfig) -> str:
    return render.render_e2(exp.aging_bitflips(config))


def _run_e3(config: exp.ExperimentConfig) -> str:
    return render.render_e3(exp.uniqueness_experiment(config))


def _run_e4(config: exp.ExperimentConfig) -> str:
    return render.render_e4(exp.randomness_experiment(config))


def _run_e5(config: exp.ExperimentConfig) -> str:
    return render.render_e5(exp.environmental_reliability(config))


def _run_e6(config: exp.ExperimentConfig) -> str:
    # E6 is policy-driven, not population-driven; config is unused but the
    # signature is kept uniform for the dispatch table
    return render.render_e6(exp.ecc_area_experiment())


def _run_e7(config: exp.ExperimentConfig) -> str:
    return render.render_e7(exp.duty_ablation(config))


def _run_e8(config: exp.ExperimentConfig) -> str:
    return render.render_e8(exp.layout_ablation(config))


def _run_e9(config: exp.ExperimentConfig) -> str:
    return render.render_e9(exp.masking_ablation(config))


def _run_e10(config: exp.ExperimentConfig) -> str:
    return render.render_e10(exp.authentication_experiment(config))


def _run_e11(config: exp.ExperimentConfig) -> str:
    return render.render_e11(exp.attack_experiment(config))


def _run_e12(config: exp.ExperimentConfig) -> str:
    return render.render_e12(exp.stage_ablation(config))


#: experiment id -> (runner, one-line description)
EXPERIMENTS: Dict[str, Tuple[Runner, str]] = {
    "e1": (_run_e1, "RO frequency degradation vs years in the field"),
    "e2": (_run_e2, "response bit flips vs years (32 % vs 7.7 % @ 10 y)"),
    "e3": (_run_e3, "inter-chip Hamming distance (45 % vs 49.67 %)"),
    "e4": (_run_e4, "uniformity, bit-aliasing, randomness battery"),
    "e5": (_run_e5, "intra-chip HD at temperature / supply corners"),
    "e6": (_run_e6, "PUF + ECC area for a 128-bit key (~24x band)"),
    "e7": (_run_e7, "ablation: idle policy and activity duty"),
    "e8": (_run_e8, "ablation: layout systematics and pairing"),
    "e9": (_run_e9, "extension: 1-out-of-k masking vs the ARO fix"),
    "e10": (_run_e10, "extension: lifetime device authentication"),
    "e11": (_run_e11, "extension: sorting modeling attack on CRPs"),
    "e12": (_run_e12, "extension: ring-length design-choice study"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ARO-PUF (DATE 2014) reproduction: run paper experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    telemetry_args = argparse.ArgumentParser(add_help=False)
    tgroup = telemetry_args.add_argument_group("telemetry")
    tgroup.add_argument(
        "--trace",
        action="store_true",
        help="print the nested span tree and kernel counters after the run",
    )
    tgroup.add_argument(
        "--profile",
        action="store_true",
        help="like --trace, plus per-span peak traced memory (slower)",
    )
    tgroup.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write spans + counters + run manifest to PATH as JSON",
    )

    sub.add_parser("list", help="list the available experiments")

    report = sub.add_parser(
        "report",
        help="run experiments and write a Markdown report",
        parents=[telemetry_args],
    )
    report.add_argument(
        "--experiments",
        nargs="+",
        default=None,
        choices=sorted(EXPERIMENTS),
        help="subset to include (default: all)",
    )
    report.add_argument("--chips", type=int, default=50)
    report.add_argument("--ros", type=int, default=256)
    report.add_argument("--seed", type=int, default=None)
    report.add_argument(
        "--path", default="REPORT.md", help="output file (default REPORT.md)"
    )

    run = sub.add_parser(
        "run",
        help="run one experiment (or 'all')",
        parents=[telemetry_args],
    )
    run.add_argument(
        "experiment",
        help="experiment id from DESIGN.md section 4 (see 'list'), or 'all'",
    )
    run.add_argument(
        "--chips", type=int, default=50, help="Monte-Carlo chips (default 50)"
    )
    run.add_argument(
        "--ros", type=int, default=256, help="oscillators per chip (default 256)"
    )
    run.add_argument(
        "--seed", type=int, default=None, help="root RNG seed (default: fixed)"
    )
    run.add_argument(
        "--out",
        type=argparse.FileType("w"),
        default=None,
        help="also write the tables to this file",
    )
    return parser


def _unknown_experiment_error(unknown) -> int:
    """Print a helpful unknown-id message; returns the exit status."""
    ids = ", ".join(sorted(EXPERIMENTS))
    if isinstance(unknown, str):
        unknown = [unknown]
    names = ", ".join(repr(u) for u in unknown)
    print(
        f"error: unknown experiment id {names}\n"
        f"valid ids: {ids} (or 'all'); see 'python -m repro.cli list'",
        file=sys.stderr,
    )
    return 2


def _telemetry_wanted(args: argparse.Namespace) -> bool:
    return bool(
        getattr(args, "trace", False)
        or getattr(args, "profile", False)
        or getattr(args, "metrics_out", None)
    )


def _finish_telemetry(args: argparse.Namespace, config) -> None:
    """Uninstall the tracer and emit the requested views of the run."""
    tracer = telemetry.uninstall()
    if tracer is None:
        return
    if args.trace or args.profile:
        print("\n── telemetry: span tree " + "─" * 40)
        print(telemetry.render_span_tree(tracer))
        print("\n── telemetry: counters " + "─" * 41)
        print(telemetry.render_counters(tracer))
    if args.metrics_out:
        manifest = telemetry.RunManifest.collect(
            seed=config.seed,
            config={
                "command": args.command,
                "n_chips": config.n_chips,
                "n_ros": config.n_ros,
                "experiment": getattr(args, "experiment", None)
                or getattr(args, "experiments", None),
            },
            argv=sys.argv,
        )
        path = telemetry.write_metrics(args.metrics_out, tracer, manifest)
        print(f"metrics written to {path}")


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for key in sorted(EXPERIMENTS):
            print(f"{key.ljust(width)}  {EXPERIMENTS[key][1]}")
        return 0

    kwargs = {"n_chips": args.chips, "n_ros": args.ros}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    config = exp.ExperimentConfig(**kwargs)

    if _telemetry_wanted(args):
        telemetry.install(telemetry.Tracer(memory=args.profile))

    try:
        if args.command == "report":
            from .analysis.report import ALL_EXPERIMENTS, generate_report

            selected = args.experiments or list(ALL_EXPERIMENTS)
            unknown = [key for key in selected if key not in EXPERIMENTS]
            if unknown:
                return _unknown_experiment_error(unknown)
            generate_report(config, experiments=selected, path=args.path)
            print(f"report written to {args.path}")
            return 0

        if args.experiment != "all" and args.experiment not in EXPERIMENTS:
            return _unknown_experiment_error(args.experiment)
        selected = (
            sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        )
        chunks = []
        for key in selected:
            runner, _ = EXPERIMENTS[key]
            chunks.append(runner(config))
        text = "\n\n".join(chunks)
        print(text)
        if args.out is not None:
            args.out.write(text + "\n")
            args.out.close()
        return 0
    finally:
        _finish_telemetry(args, config)


if __name__ == "__main__":
    sys.exit(main())
