"""Command-line front-end: regenerate any paper experiment from a shell.

Usage::

    python -m repro.cli list
    python -m repro.cli run e2 --chips 50 --ros 256
    python -m repro.cli run e6
    python -m repro.cli run all --chips 25 --out results.txt
    python -m repro.cli run e2 --trace
    python -m repro.cli run e2 --profile --metrics-out metrics.json
    python -m repro.cli run e2 --ledger runs/ledger.jsonl --events runs/events.jsonl
    python -m repro.cli run e2 --jobs 4 --trace-out run.trace.json --sample-rss 10
    python -m repro.cli monitor --events runs/events.jsonl --follow
    python -m repro.cli run e2 --jobs 4
    python -m repro.cli run e2 --chips 1000000 --ros 128 --store mmap
    python -m repro.cli run all --cache runs/cache
    python -m repro.cli history --ledger runs/ledger.jsonl
    python -m repro.cli check-anchors --chips 25 --ros 128
    python -m repro.cli explain --chip 3 --top 16
    python -m repro.cli explain --json explain.json --heatmap margins.ppm

``explain`` runs the margin-forensics capture (experiment E13's
machinery) and prints per-design margin summaries plus a per-chip
thinnest-margins bit table: fresh vs aged signed margins, the NBTI/HCI
split of each shift, and whether the enrolment-time forecast called the
bit.  ``--json`` writes the schema-checked payload, ``--heatmap`` a
chips-by-bits oriented-margin PPM (blue = holding, red = flipped).

``run`` executes the experiment(s) at the requested Monte-Carlo scale and
prints the same paper-style tables the benchmark harness produces (the
benchmark harness additionally asserts the paper-anchored bands and times
the kernels — use ``pytest benchmarks/ --benchmark-only`` for that).

Telemetry flags (``run``, ``report`` and ``check-anchors``):

* ``--trace`` prints the nested span tree (wall time per engine stage)
  and the kernel counters after the tables;
* ``--profile`` additionally samples per-span peak traced memory
  (tracemalloc) — slower, opt-in;
* ``--metrics-out PATH`` writes spans + counters + a complete
  :class:`~repro.telemetry.RunManifest` (seed, git SHA, numpy/platform
  versions) as JSON, the artefact CI's smoke step validates;
* ``--ledger PATH`` appends each experiment's headline scalars (plus the
  manifest) to an append-only JSONL run ledger — the longitudinal record
  ``history`` renders and ``check-anchors`` / ``tools/check_anchors.py``
  gate on;
* ``--events PATH`` streams throttled JSONL progress heartbeats (stage,
  chips done, ETA) from the batched kernels while the run is in flight;
* ``--trace-out PATH`` writes the run as Chrome ``trace_event`` JSON —
  open it in Perfetto (ui.perfetto.dev); a ``--jobs N`` run renders as
  one timeline with a lane per worker shard, clock-aligned against the
  coordinator;
* ``--sample-rss HZ`` samples process RSS and registered probes (e.g.
  the store's materialised-block count) on a background thread; the
  series lands in ``--metrics-out`` and as Perfetto counter tracks.

``monitor`` renders a dashboard over an ``--events`` file — per-stage
progress bars with rolling rate and ETA, the open span, an RSS
sparkline — either post-hoc or live with ``--follow``.

Execution flags:

* ``--jobs N`` shards the batched engine's chip axis over N worker
  processes (E1/E2/E3/E5); results are bit-identical for any N;
* ``--store mmap`` evaluates out-of-core: the population lives in lazily
  fabricated memory-mapped column segments and is streamed block by
  block, bounding peak RSS at any chip count (million-chip sweeps in a
  few GB); responses are bit-identical to the in-RAM default.
  ``--block-size`` sets the fabrication block in chips and
  ``--store-dir`` persists the segments for re-attachment;
* ``--cache DIR`` (``run`` / ``check-anchors``) reuses stored results
  when the content-addressed (experiment, config, version) key matches,
  printing an explicit ``cache hit:`` marker and recording hits/misses
  in the run manifest.

``history`` renders per-metric trends over a ledger (sparkline, latest
value, rolling-baseline drift); ``check-anchors`` measures the paper's
anchor experiments fresh (or judges an existing ledger via
``--from-ledger``) and exits non-zero when any anchor lands outside its
fail band.
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import sys
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from .parallel import ResultCache, cache_key

from . import telemetry
from .aging.schedule import MissionProfile
from .analysis import experiments as exp
from .analysis import render
from .service.loadgen import DESIGN_FLIPS_10Y


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable paper experiment: compute, render, describe.

    ``run`` returns the experiment's structured result object (which
    carries ``ledger_scalars()``); ``render`` turns that object into the
    paper-style terminal table.  Keeping the two separate is what lets
    the CLI both print the table and record the scalars from one run.
    """

    run: Callable[[exp.ExperimentConfig], Any]
    render: Callable[[Any], str]
    description: str


#: experiment id -> (run, render, one-line description)
EXPERIMENTS: Dict[str, ExperimentSpec] = {
    "e1": ExperimentSpec(
        exp.frequency_degradation,
        render.render_e1,
        "RO frequency degradation vs years in the field",
    ),
    "e2": ExperimentSpec(
        exp.aging_bitflips,
        render.render_e2,
        "response bit flips vs years (32 % vs 7.7 % @ 10 y)",
    ),
    "e3": ExperimentSpec(
        exp.uniqueness_experiment,
        render.render_e3,
        "inter-chip Hamming distance (45 % vs 49.67 %)",
    ),
    "e4": ExperimentSpec(
        exp.randomness_experiment,
        render.render_e4,
        "uniformity, bit-aliasing, randomness battery",
    ),
    "e5": ExperimentSpec(
        exp.environmental_reliability,
        render.render_e5,
        "intra-chip HD at temperature / supply corners",
    ),
    "e6": ExperimentSpec(
        # E6 is policy-driven, not population-driven; config is unused but
        # the signature is kept uniform for the dispatch table
        lambda config: exp.ecc_area_experiment(),
        render.render_e6,
        "PUF + ECC area for a 128-bit key (~24x band)",
    ),
    "e7": ExperimentSpec(
        exp.duty_ablation,
        render.render_e7,
        "ablation: idle policy and activity duty",
    ),
    "e8": ExperimentSpec(
        exp.layout_ablation,
        render.render_e8,
        "ablation: layout systematics and pairing",
    ),
    "e9": ExperimentSpec(
        exp.masking_ablation,
        render.render_e9,
        "extension: 1-out-of-k masking vs the ARO fix",
    ),
    "e10": ExperimentSpec(
        exp.authentication_experiment,
        render.render_e10,
        "extension: lifetime device authentication",
    ),
    "e11": ExperimentSpec(
        exp.attack_experiment,
        render.render_e11,
        "extension: sorting modeling attack on CRPs",
    ),
    "e12": ExperimentSpec(
        exp.stage_ablation,
        render.render_e12,
        "extension: ring-length design-choice study",
    ),
    "e13": ExperimentSpec(
        exp.margin_forensics,
        render.render_e13,
        "forensics: per-bit margins, NBTI/HCI attribution, at-risk forecast",
    ),
}


def _positive_int(text: str) -> int:
    """argparse type for worker counts: a helpful error beats a traceback."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        )
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value} (use 1 for serial)"
        )
    return value


def _positive_float(text: str) -> float:
    """argparse type for rates (``--sample-rss HZ``)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if not value > 0.0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--chips", type=int, default=50, help="Monte-Carlo chips (default 50)"
    )
    parser.add_argument(
        "--ros", type=int, default=256, help="oscillators per chip (default 256)"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="root RNG seed (default: fixed)"
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes for the batched engine (default 1 = serial; "
        "results are bit-identical for any N)",
    )
    parser.add_argument(
        "--store",
        choices=["ram", "mmap"],
        default="ram",
        help="population storage: 'ram' holds the dense tensors in memory "
        "(default, the bit-identity reference); 'mmap' streams lazily "
        "fabricated memory-mapped column segments, bounding peak RSS at "
        "any chip count (bit-identical to 'ram')",
    )
    parser.add_argument(
        "--block-size",
        type=_positive_int,
        default=None,
        metavar="CHIPS",
        help="chips per store fabrication block with --store mmap "
        "(default: sized for ~2M elements per column block)",
    )
    parser.add_argument(
        "--store-dir",
        metavar="DIR",
        default=None,
        help="directory for --store mmap segments (default: a temporary "
        "directory, removed when the run ends; a named directory persists "
        "and is re-attached by later runs of the same design+seed)",
    )
    parser.add_argument(
        "--dtype",
        choices=["float64", "float32"],
        default="float64",
        help="kernel arithmetic tier (default float64, the reference). "
        "float32 roughly halves kernel time and memory traffic; it is "
        "result-defining (frequencies shift at ~1e-7 relative), so "
        "check-anchors first proves response-bit identity against "
        "float64 at the run's scale and refuses to gate on a mismatch. "
        "RAM engines only (--store mmap is float64 by construction)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ARO-PUF (DATE 2014) reproduction: run paper experiments.",
    )
    execution = telemetry.execution_fields()
    parser.add_argument(
        "--version",
        action="version",
        # package version first (scripted consumers split on it), then
        # the perf-ledger host identity so "which machine produced this
        # number" is answerable from the version string alone
        version=(
            f"%(prog)s {telemetry.package_version()} "
            f"(numpy {execution['numpy_version']}, "
            f"{execution['platform_triple']}, "
            f"host {execution['host_fingerprint']})"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    telemetry_args = argparse.ArgumentParser(add_help=False)
    tgroup = telemetry_args.add_argument_group("telemetry")
    tgroup.add_argument(
        "--trace",
        action="store_true",
        help="print the nested span tree and kernel counters after the run",
    )
    tgroup.add_argument(
        "--profile",
        action="store_true",
        help="like --trace, plus per-span peak traced memory (slower)",
    )
    tgroup.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write spans + counters + run manifest to PATH as JSON",
    )
    tgroup.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write the run as Chrome trace_event JSON (open in Perfetto: "
        "ui.perfetto.dev); parallel runs get one lane per worker shard",
    )
    tgroup.add_argument(
        "--sample-rss",
        type=_positive_float,
        metavar="HZ",
        default=None,
        help="sample process RSS (and registered probes) HZ times per "
        "second on a background thread; the series lands in --metrics-out "
        "and as counter tracks in --trace-out",
    )
    tgroup.add_argument(
        "--ledger",
        metavar="PATH",
        default=None,
        help="append each experiment's headline scalars to this JSONL ledger",
    )
    tgroup.add_argument(
        "--events",
        metavar="PATH",
        default=None,
        help="stream throttled JSONL progress heartbeats to PATH",
    )
    tgroup.add_argument(
        "--events-max-bytes",
        type=int,
        metavar="N",
        default=None,
        help="rotate the --events file to <name>.1 before it exceeds N "
        "bytes (min 1024) and lift the per-run event cap — bounded disk "
        "for long-lived runs like 'serve'; monitor --follow survives the "
        "rotation",
    )

    sub.add_parser("list", help="list the available experiments")

    report = sub.add_parser(
        "report",
        help="run experiments and write a Markdown report",
        parents=[telemetry_args],
    )
    report.add_argument(
        "--experiments",
        nargs="+",
        default=None,
        choices=sorted(EXPERIMENTS),
        help="subset to include (default: all)",
    )
    _add_scale_args(report)
    report.add_argument(
        "--path", default="REPORT.md", help="output file (default REPORT.md)"
    )

    run = sub.add_parser(
        "run",
        help="run one experiment (or 'all')",
        parents=[telemetry_args],
    )
    run.add_argument(
        "experiment",
        help="experiment id from DESIGN.md section 4 (see 'list'), or 'all'",
    )
    _add_scale_args(run)
    run.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also write the tables to this file (parent dirs are created)",
    )
    run.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="content-addressed result cache: reuse a stored result when "
        "the (experiment, config, version) key matches, store it otherwise",
    )

    history = sub.add_parser(
        "history",
        help="render per-metric trends over a run ledger",
    )
    history.add_argument(
        "--ledger",
        metavar="PATH",
        required=True,
        help="the JSONL ledger to read (as written by run/report --ledger)",
    )
    history.add_argument(
        "--metric",
        action="append",
        default=None,
        metavar="SUBSTR",
        help="only metrics containing SUBSTR (repeatable; e.g. --metric e2)",
    )
    history.add_argument(
        "--window",
        type=int,
        default=5,
        help="rolling-baseline window in runs (default 5)",
    )
    history.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative drift threshold vs the baseline (default 0.10)",
    )
    history.add_argument(
        "--last",
        type=int,
        default=None,
        metavar="N",
        help="only the newest N recordings of each metric",
    )
    history.add_argument(
        "--robust",
        action="store_true",
        help="use the median+MAD change-point detector instead of the "
        "rolling-mean drift flag (short series stay in warm-up; the "
        "threshold becomes the detector's relative noise floor)",
    )

    monitor = sub.add_parser(
        "monitor",
        help="render a dashboard over an events JSONL (post-hoc or --follow)",
    )
    monitor.add_argument(
        "--events",
        metavar="PATH",
        required=True,
        help="the events file to read (as written by run/report --events)",
    )
    monitor.add_argument(
        "--follow",
        action="store_true",
        help="keep tailing the file and redrawing until the run ends "
        "(the file may not exist yet; Ctrl-C to stop)",
    )
    monitor.add_argument(
        "--interval",
        type=_positive_float,
        default=0.5,
        metavar="S",
        help="redraw interval in seconds with --follow (default 0.5)",
    )

    perf = sub.add_parser(
        "perf",
        help="the performance observatory: ledger trends, regression "
        "gating, flame graphs and HTML reports",
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)

    perf_ledger_args = argparse.ArgumentParser(add_help=False)
    perf_ledger_args.add_argument(
        "--perf-ledger",
        metavar="PATH",
        required=True,
        help="the perf-ledger JSONL to read (as appended by benchmark "
        "runs with REPRO_PERF_LEDGER set, or PerfLedger.record())",
    )
    perf_ledger_args.add_argument(
        "--metric",
        action="append",
        default=None,
        metavar="SUBSTR",
        help="only metrics containing SUBSTR (repeatable)",
    )
    perf_ledger_args.add_argument(
        "--host",
        metavar="FINGERPRINT",
        default=None,
        help="only entries from this host fingerprint ('this' = the "
        "current machine's); default: no filter",
    )

    perf_history = perf_sub.add_parser(
        "history",
        help="per-metric perf trends with robust change-point verdicts",
        parents=[perf_ledger_args],
    )
    perf_history.add_argument(
        "--window",
        type=int,
        default=telemetry.changepoint.DEFAULT_WINDOW,
        help="trailing baseline window in runs (default %(default)s)",
    )
    perf_history.add_argument(
        "--last",
        type=int,
        default=None,
        metavar="N",
        help="only the newest N recordings of each metric",
    )

    perf_gate = perf_sub.add_parser(
        "gate",
        help="exit non-zero when any perf metric confirmed a regression",
        parents=[perf_ledger_args],
    )
    perf_gate.add_argument(
        "--window",
        type=int,
        default=telemetry.changepoint.DEFAULT_WINDOW,
        help="trailing baseline window in runs (default %(default)s)",
    )
    perf_gate.add_argument(
        "--min-history",
        type=int,
        default=telemetry.changepoint.MIN_HISTORY,
        metavar="N",
        help="prior runs required before the gate may fire "
        "(default %(default)s; shorter series pass as warm-up)",
    )
    perf_gate.add_argument(
        "--z",
        type=float,
        default=telemetry.changepoint.DEFAULT_Z,
        help="robust z-score a movement must exceed (default %(default)s)",
    )
    perf_gate.add_argument(
        "--min-rel",
        type=float,
        default=telemetry.changepoint.DEFAULT_MIN_REL,
        metavar="FRAC",
        help="relative noise floor vs the median baseline "
        "(default %(default)s)",
    )

    perf_flame = perf_sub.add_parser(
        "flame",
        help="collapsed stacks (flamegraph.pl / speedscope) from a "
        "--trace-out Chrome trace artefact",
    )
    perf_flame.add_argument(
        "--trace",
        metavar="PATH",
        required=True,
        help="the Chrome trace_event JSON written by run --trace-out",
    )
    perf_flame.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write collapsed stacks to PATH (default: stdout)",
    )
    perf_flame.add_argument(
        "--critical-path",
        action="store_true",
        help="also print the wall-clock-bounding span chain",
    )

    perf_report = perf_sub.add_parser(
        "report",
        help="single-file static HTML: sparklines, quantiles, self time",
        parents=[perf_ledger_args],
    )
    perf_report.add_argument(
        "--html",
        metavar="PATH",
        required=True,
        help="output HTML file (self-contained, inline SVG sparklines)",
    )
    perf_report.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="optionally fold a --trace-out artefact's top self-time "
        "table and critical path into the report",
    )
    perf_report.add_argument(
        "--window",
        type=int,
        default=telemetry.changepoint.DEFAULT_WINDOW,
        help="trailing baseline window in runs (default %(default)s)",
    )

    serve_p = sub.add_parser(
        "serve",
        help="run the fleet enrollment/authentication service (asyncio "
        "TCP, newline-delimited JSON; Ctrl-C / SIGTERM to stop)",
        parents=[telemetry_args],
    )
    serve_p.add_argument(
        "--host", default="127.0.0.1", help="bind address (default %(default)s)"
    )
    serve_p.add_argument(
        "--port",
        type=int,
        default=9750,
        help="bind port; 0 picks a free one (default %(default)s)",
    )
    serve_p.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional-HD acceptance bound for auth (default %(default)s)",
    )
    serve_p.add_argument(
        "--key-bits",
        type=int,
        default=128,
        help="extracted key width for the fuzzy-extractor endpoints "
        "(default %(default)s)",
    )
    serve_p.add_argument(
        "--seed",
        type=int,
        default=0,
        help="enrollment masking-randomness seed (default %(default)s)",
    )
    serve_p.add_argument(
        "--audit",
        metavar="PATH",
        default=None,
        help="append one JSONL audit line per request (trace id, "
        "endpoint, chip, outcome, duration) to PATH",
    )
    serve_p.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="persist enrollment records (reference + helper data + key "
        "digest) to this append-only JSONL file, reloading it on start",
    )
    serve_p.add_argument(
        "--inject-latency-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="artificial per-request delay inside the measured window "
        "(SLO-regression test hook; default 0)",
    )

    loadgen = sub.add_parser(
        "loadgen",
        help="enroll a synthetic aging fleet and hammer the service; "
        "RED metrics, SLO verdicts and a benchmark-shaped artefact out",
        parents=[telemetry_args],
    )
    loadgen.add_argument(
        "--chips",
        type=int,
        default=16,
        help="synthetic fleet size (default %(default)s)",
    )
    loadgen.add_argument(
        "--design",
        choices=sorted(DESIGN_FLIPS_10Y),
        default="aro-puf",
        help="which 10-year flip-rate curve ages the fleet "
        "(default %(default)s)",
    )
    loadgen.add_argument(
        "--seed", type=int, default=0, help="fleet seed (default %(default)s)"
    )
    bound = loadgen.add_mutually_exclusive_group()
    bound.add_argument(
        "--requests",
        type=int,
        default=None,
        metavar="N",
        help="stop after N requests (default 2000 when --duration unset)",
    )
    bound.add_argument(
        "--duration",
        type=_positive_float,
        default=None,
        metavar="S",
        help="stop after S seconds of request load",
    )
    loadgen.add_argument(
        "--concurrency",
        type=int,
        default=8,
        help="concurrent worker coroutines (default %(default)s)",
    )
    loadgen.add_argument(
        "--years",
        type=float,
        default=10.0,
        help="mission horizon the fleet ages over during the run "
        "(default %(default)s)",
    )
    loadgen.add_argument(
        "--votes",
        type=int,
        default=5,
        help="enrollment-time majority-vote reads per chip "
        "(default %(default)s)",
    )
    loadgen.add_argument(
        "--noise",
        type=float,
        default=1.0,
        metavar="PCT",
        help="fresh measurement-noise floor, %% of bits (default %(default)s)",
    )
    loadgen.add_argument(
        "--key-fraction",
        type=float,
        default=0.0,
        metavar="FRAC",
        help="fraction of requests hitting the fuzzy-extractor 'key' "
        "endpoint instead of 'auth' (default %(default)s)",
    )
    loadgen.add_argument(
        "--impostor-fraction",
        type=float,
        default=0.0,
        metavar="FRAC",
        help="fraction of auths answered from the wrong chip's silicon "
        "(default %(default)s)",
    )
    loadgen.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="inline service's auth threshold (default %(default)s)",
    )
    loadgen.add_argument(
        "--key-bits",
        type=int,
        default=128,
        help="inline service's key width (default %(default)s)",
    )
    loadgen.add_argument(
        "--inject-latency-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="inline service's artificial per-request delay (SLO-"
        "regression test hook; default 0)",
    )
    loadgen.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="load an already-running 'repro serve' over TCP instead of "
        "an in-process service (one connection per worker; retries "
        "until --connect-timeout)",
    )
    loadgen.add_argument(
        "--connect-timeout",
        type=_positive_float,
        default=10.0,
        metavar="S",
        help="seconds to keep retrying --connect (default %(default)s)",
    )
    loadgen.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the benchmark-shaped loadgen artefact (values + "
        "histograms + service RED/SLO sections + manifest) to PATH",
    )
    loadgen.add_argument(
        "--slo-spec",
        metavar="PATH",
        default=None,
        help="JSON SLO spec to judge instead of the built-in defaults "
        "(see docs/observability.md for the format)",
    )
    loadgen.add_argument(
        "--slo-gate",
        choices=["off", "informational", "enforce"],
        default="informational",
        help="off: skip verdicts; informational: print them; enforce: "
        "exit non-zero when any objective fails (default %(default)s)",
    )
    loadgen.add_argument(
        "--perf-ledger",
        metavar="PATH",
        default=None,
        help="append the run's throughput/quantiles to this perf ledger "
        "(REPRO_PERF_LEDGER is honoured when the flag is unset)",
    )

    anchors = sub.add_parser(
        "check-anchors",
        help="measure the paper's anchors and exit non-zero on failure",
        parents=[telemetry_args],
    )
    _add_scale_args(anchors)
    anchors.add_argument(
        "--eval-duty",
        type=float,
        default=None,
        metavar="DUTY",
        help="override the mission's evaluation duty cycle (perturbation "
        "knob: a large duty ages the ARO like a conventional PUF)",
    )
    anchors.add_argument(
        "--from-ledger",
        metavar="PATH",
        default=None,
        help="judge the latest scalars of an existing ledger instead of "
        "running the anchor experiments fresh",
    )
    anchors.add_argument(
        "--require-all",
        action="store_true",
        help="treat anchors with no recorded metric as failures",
    )
    anchors.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="content-addressed result cache for the anchor experiments "
        "(same semantics as 'run --cache')",
    )

    explain = sub.add_parser(
        "explain",
        help="per-bit margin forensics: capture, attribute, forecast",
        parents=[telemetry_args],
    )
    _add_scale_args(explain)
    explain.add_argument(
        "--design",
        choices=["ro-puf", "aro-puf", "both"],
        default="both",
        help="which design to explain (default both)",
    )
    explain.add_argument(
        "--chip",
        type=int,
        default=0,
        help="chip index for the per-bit table (default 0)",
    )
    explain.add_argument(
        "--top",
        type=int,
        default=12,
        help="bits to show, thinnest fresh margins first (default 12)",
    )
    explain.add_argument(
        "--horizon",
        type=float,
        default=None,
        metavar="YEARS",
        help="forecast horizon in years (default: the paper's 10)",
    )
    explain.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the machine-readable forensics payload to PATH",
    )
    explain.add_argument(
        "--heatmap",
        metavar="PATH",
        default=None,
        help="write a chips-by-bits oriented-margin heatmap (binary PPM); "
        "with --design both the design name is suffixed onto PATH",
    )
    return parser


def _unknown_experiment_error(unknown) -> int:
    """Print a helpful unknown-id message; returns the exit status."""
    ids = ", ".join(sorted(EXPERIMENTS))
    if isinstance(unknown, str):
        unknown = [unknown]
    names = ", ".join(repr(u) for u in unknown)
    print(
        f"error: unknown experiment id {names}\n"
        f"valid ids: {ids} (or 'all'); see 'python -m repro.cli list'",
        file=sys.stderr,
    )
    return 2


def _telemetry_wanted(args: argparse.Namespace) -> bool:
    # --trace-out needs spans to export; --sample-rss needs a tracer for
    # span attribution and the perf-counter epoch the series is keyed to
    return bool(
        getattr(args, "trace", False)
        or getattr(args, "profile", False)
        or getattr(args, "metrics_out", None)
        or getattr(args, "trace_out", None)
        or getattr(args, "sample_rss", None)
    )


def _collect_manifest(
    args: argparse.Namespace,
    config: exp.ExperimentConfig,
    cache_summary: Optional[Dict[str, Any]] = None,
    tracer: Optional[telemetry.Tracer] = None,
) -> telemetry.RunManifest:
    """One manifest per CLI invocation (all its ledger entries share it).

    ``jobs``, the store mode and the cache summary ride as top-level
    manifest fields, not inside ``config``: they change how the run
    executed, never what it measured, so the ledger's config digest must
    not see them.  Out-of-core runs additionally sample the process peak
    RSS — the number the store exists to bound — so the ledger records
    the memory high-water mark alongside the scalars it produced.
    """
    peak = telemetry.peak_rss_bytes() if config.store == "mmap" else None
    tracer = tracer if tracer is not None else telemetry.active()
    histograms = tracer.histogram_summaries() if tracer is not None else {}
    return telemetry.RunManifest.collect(
        seed=config.seed,
        config={
            "command": args.command,
            "n_chips": config.n_chips,
            "n_ros": config.n_ros,
            "dtype": config.dtype,
            "experiment": getattr(args, "experiment", None)
            or getattr(args, "experiments", None),
        },
        argv=sys.argv,
        jobs=config.jobs,
        cache=cache_summary,
        store=config.store,
        block_size=config.block_size,
        peak_rss_bytes=peak,
        histograms=histograms or None,
    )


def _result_config(config: exp.ExperimentConfig) -> Dict[str, Any]:
    """The result-determining config dict a cache key digests.

    Everything that changes the numbers is in; ``jobs``, ``store``,
    ``block_size`` and ``store_dir`` — all bit-identical by construction
    — are excluded, so a result computed at any worker count or store
    mode satisfies a request at any other.  ``dtype`` stays in: float32
    frequencies are *not* bit-identical to float64, so the tiers must
    never share a cache entry.
    """
    cfg = dataclasses.asdict(config)
    for key in ("jobs", "store", "block_size", "store_dir"):
        cfg.pop(key, None)
    return cfg


def _open_cache(args: argparse.Namespace) -> Optional[ResultCache]:
    cache_dir = getattr(args, "cache", None)
    return ResultCache(cache_dir) if cache_dir else None


def _run_experiment(
    key: str,
    config: exp.ExperimentConfig,
    cache: Optional[ResultCache],
) -> Tuple[Any, bool]:
    """Run experiment ``key`` (or fetch it); returns ``(result, hit)``."""
    spec = EXPERIMENTS[key]
    if cache is None:
        return spec.run(config), False
    ck = cache_key(key, _result_config(config))
    payload = cache.get(ck)
    if payload is not None:
        print(f"cache hit: {key} (key {ck[:12]})")
        emitter = telemetry.active_emitter()
        if emitter is not None:
            emitter.lifecycle("cache.hit", experiment=key, key=ck)
        return payload, True
    result = spec.run(config)
    cache.put(ck, result, meta={"experiment": key, "config": _result_config(config)})
    return result, False


def _cache_summary(
    cache: Optional[ResultCache], hits: List[str], misses: List[str]
) -> Optional[Dict[str, Any]]:
    if cache is None:
        return None
    return {"dir": str(cache.root), "hits": hits, "misses": misses}


def _start_telemetry(
    args: argparse.Namespace,
    tracer_factory: Optional[Callable[[], telemetry.Tracer]] = None,
) -> None:
    """Install the tracer/emitter/sampler the flags ask for.

    ``tracer_factory`` overrides the tracer construction — the serving
    commands install an :class:`~repro.telemetry.AsyncTracer` so spans
    propagate per task instead of per stack.
    """
    if _telemetry_wanted(args):
        if tracer_factory is None:
            telemetry.install(telemetry.Tracer(memory=args.profile))
        else:
            telemetry.install(tracer_factory())
    if getattr(args, "events", None):
        max_bytes = getattr(args, "events_max_bytes", None)
        kwargs: Dict[str, Any] = {"max_bytes": max_bytes}
        if max_bytes is not None:
            # rotation bounds the disk, so the anti-runaway event cap
            # would only truncate a deliberately long-lived run
            kwargs["max_events"] = 10**9
        emitter = telemetry.install_emitter(
            telemetry.ProgressEmitter(args.events, **kwargs)
        )
        # a raising first heartbeat (unwritable path, closed pipe) must
        # not leave the emitter installed: main() only reaches its
        # finally-cleanup after _start_telemetry returns
        try:
            emitter.lifecycle(
                "run.start",
                command=args.command,
                experiment=getattr(args, "experiment", None),
            )
        except BaseException:
            telemetry.uninstall_emitter()
            raise
    if getattr(args, "sample_rss", None):
        try:
            telemetry.install_sampler(
                telemetry.ResourceSampler(args.sample_rss)
            ).start()
        except BaseException:
            telemetry.uninstall_sampler()
            telemetry.uninstall_emitter()
            telemetry.uninstall()
            raise


def _finish_telemetry(
    args: argparse.Namespace,
    config,
    cache_summary: Optional[Dict[str, Any]] = None,
) -> None:
    """Uninstall tracer/emitter/sampler and emit the requested views.

    The sampler stops first (its final tick may still echo through the
    emitter and read the tracer's open span), the emitter second, the
    tracer last.
    """
    sampler = telemetry.uninstall_sampler()
    emitter = telemetry.active_emitter()
    if emitter is not None:
        # uninstall even if the final lifecycle write raises (disk full,
        # closed pipe): a stuck emitter would poison every later install
        try:
            emitter.lifecycle("run.end", n_events=emitter.n_events + 1)
        finally:
            telemetry.uninstall_emitter()
    tracer = telemetry.uninstall()
    if tracer is None:
        return
    if args.trace or args.profile:
        print("\n── telemetry: span tree " + "─" * 40)
        print(telemetry.render_span_tree(tracer))
        print("\n── telemetry: counters " + "─" * 41)
        print(telemetry.render_counters(tracer))
        if tracer.histograms:
            print("\n── telemetry: histograms " + "─" * 39)
            print(telemetry.render_histograms(tracer))
    if args.metrics_out:
        manifest = _collect_manifest(args, config, cache_summary, tracer)
        path = telemetry.write_metrics(
            args.metrics_out, tracer, manifest, sampler
        )
        print(f"metrics written to {path}")
    if getattr(args, "trace_out", None):
        path = telemetry.write_chrome_trace(args.trace_out, tracer, sampler)
        print(f"chrome trace written to {path} (open in ui.perfetto.dev)")
    if getattr(args, "ledger", None) and tracer.histograms:
        # the run's latency quantiles as ledger scalars, so histogram
        # drift is visible to `repro history` and bench_compare ledgers
        ledger = telemetry.RunLedger(args.ledger)
        ledger.record(
            "telemetry",
            telemetry.flatten_summaries(tracer.histograms),
            _collect_manifest(args, config, cache_summary, tracer),
        )


def _monitor_command(args: argparse.Namespace) -> int:
    """Render the events-file dashboard, once or in a tail loop."""
    import time as _time

    path = pathlib.Path(args.events)
    state = telemetry.MonitorState()
    if not args.follow:
        if not path.exists():
            print(f"error: no events file at {path}", file=sys.stderr)
            return 2
        with path.open() as fh:
            telemetry.parse_events(fh, state)
        print(telemetry.render_monitor(state))
        return 0
    # follow mode: tail new lines, redraw on change, stop at run.end.
    # The file may not exist yet (monitor started before the run).
    pos = 0
    last = None
    try:
        while True:
            if path.exists():
                if path.stat().st_size < pos:
                    # the file shrank under us.  A size-capped emitter
                    # (--events-max-bytes) rotates the full file to
                    # <name>.1 and keeps writing a fresh one: drain the
                    # lines we had not yet read from the rotated file,
                    # then restart from the new file's head.  No .1
                    # sibling means a genuine truncation — the run this
                    # dashboard was following is gone, and re-reading
                    # from `pos` would silently hang at EOF forever.
                    rotated = path.with_name(path.name + ".1")
                    if rotated.exists() and rotated.stat().st_size >= pos:
                        with rotated.open() as fh:
                            fh.seek(pos)
                            tail = fh.readlines()
                        if tail:
                            telemetry.parse_events(tail, state)
                        pos = 0
                    else:
                        print(
                            f"events file {path} was truncated; stopping",
                            flush=True,
                        )
                        return 0
                with path.open() as fh:
                    fh.seek(pos)
                    lines = fh.readlines()
                    pos = fh.tell()
                if lines:
                    telemetry.parse_events(lines, state)
            text = telemetry.render_monitor(state)
            if text != last:
                # clear screen + home, then the fresh dashboard
                print("\x1b[2J\x1b[H" + text, flush=True)
                last = text
            if state.n_events and not state.running:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _history_command(args: argparse.Namespace) -> int:
    ledger = telemetry.RunLedger(args.ledger)
    print(
        telemetry.render_history(
            ledger.entries(),
            metrics=args.metric,
            window=args.window,
            threshold=args.threshold,
            last=args.last,
            robust=args.robust,
        )
    )
    return 0


def _perf_series(args: argparse.Namespace) -> Dict[str, List[float]]:
    """The (host- and metric-filtered) series of a perf ledger."""
    from .telemetry import perfledger

    host = args.host
    if host == "this":
        host = telemetry.host_fingerprint()
    entries = telemetry.PerfLedger(args.perf_ledger).entries()
    series = perfledger.metric_series(entries, host=host)
    if args.metric:
        series = {
            name: values
            for name, values in series.items()
            if any(m in name for m in args.metric)
        }
    return dict(sorted(series.items()))


def _perf_verdicts(
    args: argparse.Namespace, **detect_kwargs
) -> List[Tuple[telemetry.ChangePoint, str]]:
    """``(change point, regress/improve/... verdict)`` per perf metric."""
    out: List[Tuple[telemetry.ChangePoint, str]] = []
    for metric, values in _perf_series(args).items():
        point = telemetry.detect(metric, values, **detect_kwargs)
        verdict = telemetry.classify(
            point, telemetry.metric_orientation(metric)
        )
        out.append((point, verdict))
    return out


def _perf_history_command(args: argparse.Namespace) -> int:
    series = _perf_series(args)
    if not series:
        print("(empty perf ledger)")
        return 0
    rows = []
    for metric, values in series.items():
        if args.last is not None:
            values = values[-args.last :]
        point = telemetry.detect(metric, values, window=args.window)
        verdict = telemetry.classify(
            point, telemetry.metric_orientation(metric)
        )
        rows.append((metric, values, point, verdict))
    width = max(len(m) for m, _, _, _ in rows)
    spark_w = max(len(v) for _, v, _, _ in rows)
    lines = []
    for metric, values, point, verdict in rows:
        spark = telemetry.sparkline(values).rjust(spark_w)
        base = (
            "       --" if point.median is None else f"{point.median:9.4g}"
        )
        delta = ""
        if point.change is not None:
            delta = f"  {point.change:+7.1%} vs median"
        lines.append(
            f"{metric:<{width}}  {spark}  latest {point.latest:9.4g}  "
            f"base {base}{delta}  [{verdict}]"
        )
    print("\n".join(lines))
    return 0


def _perf_gate_command(args: argparse.Namespace) -> int:
    verdicts = _perf_verdicts(
        args,
        window=args.window,
        min_history=args.min_history,
        z=args.z,
        min_rel=args.min_rel,
    )
    if not verdicts:
        print("perf gate: empty perf ledger, nothing to judge")
        return 0
    regressions = []
    for point, verdict in verdicts:
        marker = ""
        if verdict == "regress":
            marker = "  << REGRESSION"
            regressions.append(point.metric)
        detail = ""
        if point.moved and point.change is not None:
            detail = f" ({point.change:+.1%} vs median {point.median:.4g})"
        print(f"{point.metric}: {verdict}{detail}{marker}")
    if regressions:
        print(
            f"perf gate: {len(regressions)} confirmed regression(s): "
            + ", ".join(regressions)
        )
        return 1
    print("perf gate: no confirmed regressions")
    return 0


def _load_trace_lanes(path: str):
    import json as _json

    trace_path = pathlib.Path(path)
    if not trace_path.exists():
        print(f"error: no trace file at {trace_path}", file=sys.stderr)
        return None
    try:
        payload = _json.loads(trace_path.read_text())
    except ValueError as exc:
        print(f"error: {trace_path} is not JSON: {exc}", file=sys.stderr)
        return None
    try:
        return telemetry.lanes_from_chrome_trace(payload)
    except ValueError as exc:
        print(f"error: {trace_path}: {exc}", file=sys.stderr)
        return None


def _perf_flame_command(args: argparse.Namespace) -> int:
    lanes = _load_trace_lanes(args.trace)
    if lanes is None:
        return 2
    stacks = telemetry.collapsed_stacks(lanes)
    if args.out:
        path = telemetry.write_collapsed(args.out, stacks)
        print(f"collapsed stacks written to {path} ({len(stacks)} stacks)")
    else:
        print(telemetry.render_collapsed(stacks))
    if args.critical_path:
        print(telemetry.render_critical_path(telemetry.critical_path(lanes)))
    return 0


def _perf_report_command(args: argparse.Namespace) -> int:
    from .telemetry.report import write_perf_report

    series = _perf_series(args)
    lanes = None
    if args.trace:
        lanes = _load_trace_lanes(args.trace)
        if lanes is None:
            return 2
    path = write_perf_report(
        args.html, series, window=args.window, lanes=lanes
    )
    print(f"perf report written to {path}")
    return 0


def _perf_command(args: argparse.Namespace) -> int:
    return {
        "history": _perf_history_command,
        "gate": _perf_gate_command,
        "flame": _perf_flame_command,
        "report": _perf_report_command,
    }[args.perf_command](args)


def _check_anchors_command(
    args: argparse.Namespace, config: exp.ExperimentConfig
) -> int:
    if not args.from_ledger and config.dtype != "float64":
        # a reduced-precision tier may only gate anchors after proving
        # response-bit identity against the float64 reference at this
        # run's exact scale — the contract of repro.kernel.validate
        from .kernel.validate import validate_response_identity

        for name, design in sorted(config.designs().items()):
            report = validate_response_identity(
                design,
                config.n_chips,
                seed=config.seed,
                mission=config.mission,
                candidate_dtype=config.dtype,
            )
            print(f"[{name}] {report.summary()}")
            if not report.ok:
                print(
                    f"refusing to gate anchors on dtype={config.dtype}: "
                    "response bits diverge from float64 at this scale"
                )
                return 1
    if args.from_ledger:
        entries = telemetry.RunLedger(args.from_ledger).entries()
        scalars = telemetry.latest_scalars(entries)
        source = f"ledger {args.from_ledger} ({len(entries)} entries)"
    else:
        ledger = telemetry.RunLedger(args.ledger) if args.ledger else None
        cache = _open_cache(args)
        hits: List[str] = []
        misses: List[str] = []
        scalars = {}
        recorded = []
        for key in telemetry.ANCHOR_EXPERIMENTS:
            result, hit = _run_experiment(key, config, cache)
            (hits if hit else misses).append(key)
            experiment_scalars = result.ledger_scalars()
            for name, value in experiment_scalars.items():
                scalars[f"{key}.{name}"] = value
            recorded.append((key, experiment_scalars))
        if ledger is not None:
            manifest = _collect_manifest(
                args, config, _cache_summary(cache, hits, misses)
            )
            for key, experiment_scalars in recorded:
                ledger.record(key, experiment_scalars, manifest)
        if cache is not None:
            print(f"cache: {len(hits)} hit(s), {len(misses)} miss(es) in {cache.root}")
        source = (
            f"fresh run, {config.n_chips} chips x {config.n_ros} ROs, "
            f"seed {config.seed}"
        )
    verdicts = telemetry.check_anchors(scalars)
    print(f"anchors vs {source}")
    print(telemetry.render_verdicts(verdicts))
    worst = telemetry.worst_status(
        verdicts, missing_is_fail=args.require_all or not args.from_ledger
    )
    print(f"worst status: {worst}")
    return 1 if worst == "fail" else 0


def _explain_command(
    args: argparse.Namespace, config: exp.ExperimentConfig
) -> int:
    """Run the forensics capture and render/export the requested views."""
    from contextlib import closing

    from .forensics.capture import DEFAULT_HORIZON, capture_forensics
    from .forensics.export import (
        explain_payload,
        write_explain_json,
        write_margin_heatmap,
    )
    from .forensics.report import render_bit_table, render_forensics_summary

    designs = config.designs()
    if args.design != "both":
        designs = {args.design: designs[args.design]}
    t_horizon = args.horizon if args.horizon is not None else DEFAULT_HORIZON
    reports = {}
    for name, design in designs.items():
        with closing(config.batch_study_for(design)) as study:
            reports[name] = capture_forensics(
                study, design_label=name, t_horizon=t_horizon
            )

    print(render_forensics_summary(reports))
    for rep in reports.values():
        print()
        print(render_bit_table(rep, chip=args.chip, top=args.top))

    if args.ledger:
        # the capture is E13's machinery, so the ledger entry matches a
        # `run e13` at the same scale (same keys, same scalars)
        result = exp.MarginForensicsResult(
            reports=reports,
            t_horizon=float(t_horizon),
            k=next(iter(reports.values())).forecast.k,
        )
        ledger = telemetry.RunLedger(args.ledger)
        ledger.record("e13", result.ledger_scalars(), _collect_manifest(args, config))
        print(f"ledger: e13 scalars appended to {ledger.path}")
    if args.json:
        payload = explain_payload(
            reports,
            config={
                "n_chips": config.n_chips,
                "n_ros": config.n_ros,
                "seed": config.seed,
                "jobs": config.jobs,
                "t_horizon": float(t_horizon),
            },
            chip=args.chip,
            top=args.top,
        )
        path = write_explain_json(args.json, payload)
        print(f"explain payload written to {path}")
    if args.heatmap:
        base = pathlib.Path(args.heatmap)
        for name, rep in reports.items():
            path = (
                base
                if len(reports) == 1
                else base.with_name(f"{base.stem}-{name}{base.suffix or '.ppm'}")
            )
            written = write_margin_heatmap(path, rep)
            print(f"margin heatmap ({name}) written to {written}")
    return 0


async def _serve_async(args: argparse.Namespace, service) -> None:
    """Bind the service and serve until SIGINT/SIGTERM (or Ctrl-C)."""
    import asyncio
    import signal

    from .service import serve as bind_service

    server = await bind_service(service, args.host, args.port)
    host, port = server.sockets[0].getsockname()[:2]
    print(
        f"serving on {host}:{port} "
        f"({service.response_bits}-bit responses, threshold "
        f"{service.threshold}, {len(service.store)} chip(s) enrolled); "
        "Ctrl-C to stop",
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, ValueError):  # pragma: no cover
            pass  # non-Unix loop: KeyboardInterrupt still unwinds us
    async with telemetry.EventLoopLagProbe():
        await stop.wait()
    server.close()
    await server.wait_closed()


def _serve_command(args: argparse.Namespace) -> int:
    """``repro serve``: the fleet service with full observability."""
    import asyncio

    from .service import AuditTrail, FleetService, HelperStore, default_extractor

    config = exp.ExperimentConfig(seed=args.seed)
    _start_telemetry(
        args, tracer_factory=lambda: telemetry.AsyncTracer(memory=args.profile)
    )
    service = None
    try:
        service = FleetService(
            extractor=default_extractor(args.key_bits),
            threshold=args.threshold,
            seed=args.seed,
            store=HelperStore(args.store) if args.store else None,
            audit=AuditTrail(args.audit) if args.audit else None,
            inject_latency_s=args.inject_latency_ms / 1e3,
        )
        try:
            asyncio.run(_serve_async(args, service))
        except KeyboardInterrupt:  # pragma: no cover - non-Unix fallback
            pass
        metrics = service.red.metrics()
        if metrics:
            print("service RED metrics:")
            for key, value in sorted(metrics.items()):
                print(f"  {key} = {value:.6g}")
        return 0
    finally:
        if service is not None:
            tracer = telemetry.active()
            if tracer is not None:
                # fold RED counters + latency histograms into the tracer
                # so --metrics-out / --ledger / manifests carry them
                service.red.publish(tracer)
            if service.audit is not None:
                service.audit.close()
                print(
                    f"audit trail: {service.audit.n_records} request(s) "
                    f"in {service.audit.path}"
                )
        _finish_telemetry(args, config)


async def _loadgen_async(args: argparse.Namespace, n_requests: Optional[int]):
    """Build the client (inline or TCP pool) + fleet, run the load."""
    import asyncio
    import time as _time

    from .service import (
        FleetService,
        FleetSpec,
        ServiceClientPool,
        SyntheticFleet,
        default_extractor,
        run_loadgen,
    )

    close_client = None
    if args.connect:
        host, _, port_s = args.connect.rpartition(":")
        host = host or "127.0.0.1"
        try:
            port = int(port_s)
        except ValueError:
            raise SystemExit(f"error: --connect wants HOST:PORT, got {args.connect!r}")
        deadline = _time.perf_counter() + args.connect_timeout
        while True:
            try:
                client = await ServiceClientPool.connect(
                    host, port, args.concurrency
                )
                break
            except OSError:
                if _time.perf_counter() >= deadline:
                    raise
                await asyncio.sleep(0.2)
        close_client = client.close
        status = await client.status()
        response_bits = int(status["response_bits"])
    else:
        client = FleetService(
            extractor=default_extractor(args.key_bits),
            threshold=args.threshold,
            seed=args.seed,
            inject_latency_s=args.inject_latency_ms / 1e3,
        )
        response_bits = client.response_bits
    fleet = SyntheticFleet(
        FleetSpec(
            n_chips=args.chips,
            seed=args.seed,
            design=args.design,
            noise_pct=args.noise,
        ),
        response_bits,
    )
    probe = telemetry.EventLoopLagProbe().start()
    try:
        report = await run_loadgen(
            client,
            fleet,
            n_requests=n_requests,
            duration_s=args.duration,
            concurrency=args.concurrency,
            years=args.years,
            votes=args.votes,
            key_fraction=args.key_fraction,
            impostor_fraction=args.impostor_fraction,
        )
    finally:
        await probe.stop()
        if close_client is not None:
            await close_client()
    report.max_loop_lag_ms = probe.max_lag_ms if probe.n_ticks else None
    return report


def _loadgen_command(args: argparse.Namespace) -> int:
    """``repro loadgen``: synthetic aging fleet + SLO-gated verdicts."""
    import asyncio
    import json as _json
    import os

    from .service import (
        DEFAULT_SLOS,
        check_slos,
        load_slo_spec,
        loadgen_payload,
        render_slo_verdicts,
    )

    try:
        slos = load_slo_spec(args.slo_spec) if args.slo_spec else DEFAULT_SLOS
    except (OSError, ValueError) as exc:
        print(f"error: bad SLO spec {args.slo_spec}: {exc}", file=sys.stderr)
        return 2
    n_requests = args.requests
    if n_requests is None and args.duration is None:
        n_requests = 2000
    config = exp.ExperimentConfig(n_chips=args.chips, seed=args.seed)
    _start_telemetry(
        args, tracer_factory=lambda: telemetry.AsyncTracer(memory=args.profile)
    )
    try:
        report = asyncio.run(_loadgen_async(args, n_requests))
        tracer = telemetry.active()
        if tracer is not None:
            report.red.publish(tracer)
        manifest = _collect_manifest(args, config).to_dict()
        payload = loadgen_payload(report, slos=slos, manifest=manifest)
        print(
            f"loadgen: {report.n_requests} requests in {report.wall_s:.2f}s "
            f"-> {report.auth_per_s:,.0f} req/s "
            f"(concurrency {report.concurrency}, fleet "
            f"{report.spec.n_chips} x {report.spec.design}, "
            f"{report.years:g}y horizon"
            + (
                f", peak loop lag {report.max_loop_lag_ms:.2f} ms)"
                if report.max_loop_lag_ms is not None
                else ")"
            )
        )
        if report.outcomes:
            print(
                "outcomes: "
                + ", ".join(
                    f"{k}={v}" for k, v in sorted(report.outcomes.items())
                )
            )
        if args.out:
            out_path = pathlib.Path(args.out)
            out_path.parent.mkdir(parents=True, exist_ok=True)
            out_path.write_text(
                _json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
            print(f"loadgen artefact written to {out_path}")
        ledger_path = args.perf_ledger or os.environ.get(
            telemetry.PERF_LEDGER_ENV
        )
        if ledger_path:
            telemetry.PerfLedger(ledger_path).append(
                telemetry.entry_from_bench_payload("loadgen", payload)
            )
            print(f"perf ledger: loadgen entry appended to {ledger_path}")
        if args.slo_gate != "off":
            verdicts = check_slos(report.red.metrics(), slos)
            print(render_slo_verdicts(verdicts))
            worst = telemetry.worst_status(verdicts)
            print(f"slo worst status: {worst} (gate: {args.slo_gate})")
            if args.slo_gate == "enforce" and worst == "fail":
                return 1
        return 0
    finally:
        _finish_telemetry(args, config)


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for key in sorted(EXPERIMENTS):
            print(f"{key.ljust(width)}  {EXPERIMENTS[key].description}")
        return 0

    if args.command == "history":
        return _history_command(args)

    if args.command == "monitor":
        return _monitor_command(args)

    if args.command == "perf":
        return _perf_command(args)

    if args.command == "serve":
        return _serve_command(args)

    if args.command == "loadgen":
        return _loadgen_command(args)

    kwargs: Dict[str, Any] = {"n_chips": args.chips, "n_ros": args.ros}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if getattr(args, "jobs", None) is not None:
        kwargs["jobs"] = args.jobs
    if getattr(args, "store", None) is not None:
        kwargs["store"] = args.store
    if getattr(args, "block_size", None) is not None:
        kwargs["block_size"] = args.block_size
    if getattr(args, "store_dir", None) is not None:
        kwargs["store_dir"] = args.store_dir
    if getattr(args, "dtype", None) is not None:
        kwargs["dtype"] = args.dtype
    if getattr(args, "eval_duty", None) is not None:
        kwargs["mission"] = MissionProfile(eval_duty=args.eval_duty)
    config = exp.ExperimentConfig(**kwargs)

    _start_telemetry(args)
    cache_summary: Optional[Dict[str, Any]] = None

    try:
        if args.command == "check-anchors":
            return _check_anchors_command(args, config)

        if args.command == "explain":
            return _explain_command(args, config)

        ledger = telemetry.RunLedger(args.ledger) if args.ledger else None

        if args.command == "report":
            from .analysis.report import ALL_EXPERIMENTS, generate_report

            manifest = _collect_manifest(args, config) if ledger else None
            selected = args.experiments or list(ALL_EXPERIMENTS)
            unknown = [key for key in selected if key not in EXPERIMENTS]
            if unknown:
                return _unknown_experiment_error(unknown)
            generate_report(
                config,
                experiments=selected,
                path=args.path,
                ledger=ledger,
                manifest=manifest,
            )
            print(f"report written to {args.path}")
            return 0

        if args.experiment != "all" and args.experiment not in EXPERIMENTS:
            return _unknown_experiment_error(args.experiment)
        selected = (
            sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        )
        cache = _open_cache(args)
        hits: List[str] = []
        misses: List[str] = []
        chunks = []
        results = []
        for key in selected:
            result, hit = _run_experiment(key, config, cache)
            (hits if hit else misses).append(key)
            results.append((key, result))
            chunks.append(EXPERIMENTS[key].render(result))
        cache_summary = _cache_summary(cache, hits, misses)
        if ledger is not None:
            manifest = _collect_manifest(args, config, cache_summary)
            for key, result in results:
                ledger.record(key, result.ledger_scalars(), manifest)
        text = "\n\n".join(chunks)
        print(text)
        if cache is not None:
            print(f"cache: {len(hits)} hit(s), {len(misses)} miss(es) in {cache.root}")
        if ledger is not None:
            print(f"ledger: {len(selected)} entries appended to {ledger.path}")
        if args.out is not None:
            out_path = pathlib.Path(args.out)
            out_path.parent.mkdir(parents=True, exist_ok=True)
            out_path.write_text(text + "\n")
        return 0
    finally:
        _finish_telemetry(args, config, cache_summary)


if __name__ == "__main__":
    sys.exit(main())
