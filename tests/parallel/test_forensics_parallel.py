"""Parallel forensics: --jobs N must reproduce serial capture exactly.

The acceptance criterion for the forensics layer's parallel path: the
entire DesignForensics record — margins, bits, per-mechanism shifts,
histograms, forecast masks — is bit-identical between the serial engine
and the sharded engine for worker counts that do and do not divide the
chip count.
"""

import numpy as np
import pytest

from repro.core import aro_design
from repro.core.population import make_batch_study
from repro.forensics import capture_forensics
from repro.metrics.margins import histogram_edges
from repro.parallel import make_parallel_study

DESIGN = aro_design(n_ros=16, n_stages=3)
SEED = 987
N_CHIPS = 7  # deliberately not divisible by the worker counts


@pytest.fixture(scope="module")
def serial_report():
    study = make_batch_study(DESIGN, N_CHIPS, rng=SEED)
    return capture_forensics(study, design_label="aro-puf")


class TestParallelForensicsIdentity:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_full_record_identical(self, serial_report, jobs):
        with make_parallel_study(DESIGN, N_CHIPS, rng=SEED, jobs=jobs) as par:
            report = capture_forensics(par, design_label="aro-puf")
        assert report.years == serial_report.years
        for t in report.years:
            assert np.array_equal(report.margins[t], serial_report.margins[t])
            assert np.array_equal(report.bits[t], serial_report.bits[t])
            assert np.array_equal(
                report.histograms[t], serial_report.histograms[t]
            )
        assert np.array_equal(report.bti_shift, serial_report.bti_shift)
        assert np.array_equal(report.hci_shift, serial_report.hci_shift)
        assert np.array_equal(
            report.forecast.at_risk, serial_report.forecast.at_risk
        )
        assert report.forecast.threshold == serial_report.forecast.threshold
        assert report.outcome == serial_report.outcome


class TestParallelMarginPrimitives:
    def test_mechanism_frequencies_identical(self):
        serial = make_batch_study(DESIGN, N_CHIPS, rng=SEED)
        with make_parallel_study(DESIGN, N_CHIPS, rng=SEED, jobs=2) as par:
            for mech in ("bti", "hci"):
                assert np.array_equal(
                    serial.mechanism_frequencies(10.0, mech),
                    par.mechanism_frequencies(10.0, mech),
                )

    def test_mechanism_frequencies_memoised_and_read_only(self):
        with make_parallel_study(DESIGN, 4, rng=SEED, jobs=2) as par:
            a = par.mechanism_frequencies(5.0, "bti")
            assert par.mechanism_frequencies(5.0, "bti") is a
            assert not a.flags.writeable

    def test_unknown_mechanism_rejected(self):
        serial = make_batch_study(DESIGN, 3, rng=SEED)
        with pytest.raises(ValueError, match="mechanism"):
            serial.mechanism_frequencies(10.0, "cosmic-rays")

    def test_margin_histogram_counts_merge_exactly(self):
        edges = histogram_edges()
        serial = make_batch_study(DESIGN, N_CHIPS, rng=SEED)
        expected = serial.margin_histogram(edges, None, 10.0)
        with make_parallel_study(DESIGN, N_CHIPS, rng=SEED, jobs=3) as par:
            counts = par.margin_histogram(edges, None, 10.0)
        assert np.array_equal(counts, expected)
        assert counts.sum() == N_CHIPS * DESIGN.n_bits

    def test_workers_do_not_inherit_coordinator_collector(self):
        """Capture is coordinator-side only: a collector active in the
        parent must not double-record via the worker processes."""
        from repro.forensics import MarginCollector, collector_session

        with make_parallel_study(DESIGN, 4, rng=SEED, jobs=2) as par:
            with collector_session(MarginCollector()) as collector:
                par.responses(t_years=10.0)
            assert len(collector) == 1  # exactly one grid, from the parent
