"""Cross-process observability: worker lanes, clock rebasing, histograms."""

import time

import pytest

from repro import aro_design, telemetry
from repro.parallel import make_parallel_study
from repro.parallel.worker import EvalRequest, evaluate_shard
from repro.telemetry import chrome_trace_events

DESIGN = aro_design(n_ros=16, n_stages=3)
SEED = 987


@pytest.fixture(autouse=True)
def clean_slate():
    telemetry.uninstall()
    yield
    telemetry.uninstall()


@pytest.fixture(scope="module")
def traced_parallel_run():
    """One jobs=2 sweep under a coordinator tracer, folded reports and all."""
    telemetry.uninstall()
    with make_parallel_study(DESIGN, 8, rng=SEED, jobs=2) as par:
        with telemetry.session() as tracer:
            par.frequencies(t_years=0.0)
            par.frequencies(t_years=10.0)
    return tracer


class TestShardReportWire:
    """The worker's reply carries its span forest, histograms and clock."""

    def test_report_sections(self):
        with make_parallel_study(DESIGN, 4, rng=SEED, jobs=2) as par:
            spec = par._specs[0]
        report = evaluate_shard(
            "test-token", spec, 0, [EvalRequest("frequencies", 0.0)]
        )
        assert report.clock is not None and len(report.clock) == 2
        assert report.spans, "worker span forest missing from the report"
        names = {d["name"] for d in report.spans}
        assert "parallel.fabricate_shard" in names
        for d in report.spans:
            assert d["end_ns"] >= d["start_ns"]
        assert "batch.block_s" in report.histograms
        assert report.histograms["batch.block_s"]["count"] >= 1


class TestWorkerLanes:
    def test_one_lane_per_worker(self, traced_parallel_run):
        lanes = traced_parallel_run.remote_lanes
        assert set(lanes) == {"worker-0", "worker-1"}
        for spans in lanes.values():
            assert spans, "a worker lane folded in empty"

    def test_lane_spans_rebased_into_coordinator_window(
        self, traced_parallel_run
    ):
        """The clock handshake puts worker spans on the coordinator's
        perf timeline: inside [tracer construction, now]."""
        tracer = traced_parallel_run
        now_ns = time.perf_counter_ns()
        slack_ns = 1_000_000_000  # wall-clock read skew is µs; be generous
        for spans in tracer.remote_lanes.values():
            for sp in spans:
                assert sp.start_ns >= tracer.perf0_ns - slack_ns
                assert sp.end_ns <= now_ns + slack_ns
                assert sp.end_ns >= sp.start_ns

    def test_chrome_export_renders_lanes_not_synthetic_summaries(
        self, traced_parallel_run
    ):
        events = chrome_trace_events(traced_parallel_run)
        slices = [e for e in events if e["ph"] == "X"]
        names = {e["name"] for e in slices}
        # the folded per-shard summary spans are synthetic duplicates of
        # the real lanes; the timeline must show only clock-valid spans
        assert "parallel.shard" not in names
        lane_meta = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"coordinator", "worker-0", "worker-1"} <= lane_meta
        worker_tids = {e["tid"] for e in slices if e["tid"] != 0}
        assert worker_tids == {1, 2}

    def test_synthetic_summaries_still_in_terminal_tree(
        self, traced_parallel_run
    ):
        shard_spans = [
            c
            for root in traced_parallel_run.roots
            for c in root.children
            if c.name == "parallel.shard"
        ]
        assert len(shard_spans) == 4  # 2 shards x 2 corners
        assert all(s.attrs.get("synthetic") for s in shard_spans)


class TestMergedHistograms:
    def test_worker_kernel_latencies_fold_into_coordinator(
        self, traced_parallel_run
    ):
        hists = traced_parallel_run.histograms
        assert "batch.block_s" in hists
        assert "batch.corner_s" in hists
        # 2 shards x 2 corners, at least one block each
        assert hists["batch.corner_s"].count == 4
        assert hists["batch.block_s"].count >= 4

    def test_quantiles_lie_inside_exact_extremes(self, traced_parallel_run):
        """Merged quantiles obey the same bound as a single histogram:
        the bucket layout is shared, so merging adds no error (the exact
        split-merge identity is unit-tested in test_histogram)."""
        hist = traced_parallel_run.histograms["batch.block_s"]
        for q in (0.5, 0.95, 0.99):
            assert hist.min <= hist.quantile(q) <= hist.max

    def test_summaries_surface_through_tracer(self, traced_parallel_run):
        summaries = traced_parallel_run.histogram_summaries()
        assert summaries["batch.block_s"]["count"] >= 4.0
        flat = telemetry.flatten_summaries(traced_parallel_run.histograms)
        assert "batch.block_s.p99" in flat
