"""ResultCache: round-trip fidelity, key discipline, corruption safety."""

import json
import pickle

import numpy as np
import pytest

from repro.parallel import CACHE_FORMAT, ResultCache, cache_key


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestCacheKey:
    def test_stable_and_order_independent(self):
        a = cache_key("e2", {"n_chips": 8, "seed": 42}, version="1.0")
        b = cache_key("e2", {"seed": 42, "n_chips": 8}, version="1.0")
        assert a == b
        assert len(a) == 64 and int(a, 16) >= 0

    def test_sensitive_to_every_input(self):
        base = cache_key("e2", {"seed": 42}, version="1.0")
        assert cache_key("e3", {"seed": 42}, version="1.0") != base
        assert cache_key("e2", {"seed": 43}, version="1.0") != base
        assert cache_key("e2", {"seed": 42}, version="1.1") != base

    def test_version_stale_means_new_key(self, cache):
        """A new release can never be served a previous release's physics."""
        old = cache_key("e2", {"seed": 1}, version="0.9")
        cache.put(old, {"x": 1})
        assert cache.get(cache_key("e2", {"seed": 1}, version="1.0")) is None

    def test_empty_experiment_rejected(self):
        with pytest.raises(ValueError):
            cache_key("", {"seed": 1})


class TestRoundTrip:
    def test_miss_then_hit_identical_payload(self, cache):
        key = cache_key("e2", {"seed": 7}, version="1.0")
        assert cache.get(key) is None
        payload = {
            "responses": np.arange(24, dtype=np.uint8).reshape(4, 6),
            "flips": [0.0, 3.25, 7.5],
            "label": "e2",
        }
        cache.put(key, payload, meta={"experiment": "e2"})
        got = cache.get(key)
        assert np.array_equal(got["responses"], payload["responses"])
        assert got["responses"].dtype == payload["responses"].dtype
        assert got["flips"] == payload["flips"]
        assert got["label"] == "e2"
        assert key in cache
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1}

    def test_sidecar_records_audit_meta(self, cache):
        key = cache_key("e5", {"seed": 9}, version="1.0")
        path = cache.put(key, [1, 2, 3], meta={"experiment": "e5"})
        sidecar = json.loads(path.with_suffix(".json").read_text())
        assert sidecar["format"] == CACHE_FORMAT
        assert sidecar["meta"]["experiment"] == "e5"
        assert sidecar["payload_bytes"] > 0

    def test_overwrite_updates_entry(self, cache):
        key = cache_key("e2", {"seed": 1}, version="1.0")
        cache.put(key, "old")
        cache.put(key, "new")
        assert cache.get(key) == "new"


class TestCorruptionSafety:
    def _store(self, cache):
        key = cache_key("e2", {"seed": 5}, version="1.0")
        cache.put(key, {"value": 123})
        return key

    def test_corrupted_payload_warns_and_misses(self, cache):
        key = self._store(cache)
        (cache.root / f"{key}.pkl").write_bytes(b"not a pickle")
        with pytest.warns(RuntimeWarning, match="unusable"):
            assert cache.get(key) is None

    def test_tampered_but_valid_pickle_fails_digest(self, cache):
        """A well-formed pickle with the wrong bytes is still rejected."""
        key = self._store(cache)
        (cache.root / f"{key}.pkl").write_bytes(pickle.dumps({"value": 999}))
        with pytest.warns(RuntimeWarning, match="SHA-256"):
            assert cache.get(key) is None

    def test_bad_sidecar_warns_and_misses(self, cache):
        key = self._store(cache)
        (cache.root / f"{key}.json").write_text("{broken json")
        with pytest.warns(RuntimeWarning, match="unusable"):
            assert cache.get(key) is None

    def test_future_format_warns_and_misses(self, cache):
        key = self._store(cache)
        meta_path = cache.root / f"{key}.json"
        meta = json.loads(meta_path.read_text())
        meta["format"] = CACHE_FORMAT + 1
        meta_path.write_text(json.dumps(meta))
        with pytest.warns(RuntimeWarning, match="format"):
            assert cache.get(key) is None

    def test_missing_sidecar_is_silent_miss(self, cache):
        """Half an entry (payload only) is a plain miss — only *present
        but unusable* entries warn."""
        key = self._store(cache)
        (cache.root / f"{key}.json").unlink()
        assert cache.get(key) is None

    def test_recompute_after_corruption_repairs(self, cache):
        key = self._store(cache)
        (cache.root / f"{key}.pkl").write_bytes(b"garbage")
        with pytest.warns(RuntimeWarning):
            assert cache.get(key) is None
        cache.put(key, {"value": 123})
        assert cache.get(key) == {"value": 123}
